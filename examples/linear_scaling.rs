//! A self-contained rerun of the paper's Figure 5 experiment: generate
//! uniform random evolving graphs of growing static edge count, run
//! Algorithm 1 on each, and check that run time grows linearly in |Ẽ|
//! (Theorem 2).
//!
//! Run with `cargo run --release --example linear_scaling -- [scale]`
//! where `scale` multiplies the base edge count (default 1 ⇒ 10⁵–5×10⁵
//! edges; the paper uses 10⁸–5×10⁸ on a 1 TB machine).

use std::time::Instant;

use evolving_graphs::io::report::{linear_fit, SeriesTable};
use evolving_graphs::prelude::*;

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    let num_nodes = 10_000;
    let num_timestamps = 10;
    let base_edges = 100_000 * scale;
    let steps = [1.0, 1.5, 1.8, 2.5, 3.5, 5.0];

    println!(
        "Figure 5 reproduction: {num_nodes} nodes, {num_timestamps} time stamps, \
         |E~| from {} to {}",
        base_edges,
        (base_edges as f64 * steps.last().unwrap()) as usize
    );

    let mut table = SeriesTable::new(
        "Algorithm 1 run time vs static edge count",
        &["|E~|", "time_ms", "reached"],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();

    for &step in &steps {
        let edges = (base_edges as f64 * step) as usize;
        let graph = figure5_workload(num_nodes, num_timestamps, edges, 0xF165);
        let root = graph.active_nodes()[0];

        // Best of five timed runs.
        let mut best = f64::INFINITY;
        let mut reached = 0;
        for _ in 0..5 {
            let start = Instant::now();
            let map = bfs(&graph, root).expect("root is active");
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            reached = map.num_reached();
        }
        xs.push(edges as f64);
        ys.push(best);
        table.push_numeric_row(&[edges as f64, best, reached as f64]);
    }

    print!("{}", table.to_text());
    let (slope, intercept, r2) = linear_fit(&xs, &ys);
    println!("linear fit: time_ms ≈ {slope:.3e}·|E~| + {intercept:.3},  R² = {r2:.4}");
    println!("(the paper reports visually linear scaling; R² close to 1 reproduces that shape)");
}
