//! Serving over HTTP, end to end: start the server on a loopback port,
//! query it over real sockets, push events and seals through `/ingest`,
//! watch a standing subscription receive one frame per seal, and read the
//! serving counters back from `/stats`.
//!
//! Run with `cargo run --release --example serve_http`. Every request in
//! this example is plain HTTP/1.1 + JSON — while it runs, the same dialect
//! works from `curl` against the printed address.

use evolving_graphs::prelude::*;

fn main() -> std::io::Result<()> {
    // ------------------------------------------------------------------
    // 1. A live graph with one sealed snapshot, handed to the server.
    // ------------------------------------------------------------------
    let mut live = LiveGraph::directed(6);
    live.insert(NodeId(0), NodeId(1)).unwrap();
    live.insert(NodeId(1), NodeId(2)).unwrap();
    live.seal_snapshot(0).unwrap();

    let server = Server::start(live, ServerConfig::default())?;
    let client = Client::new(server.addr());
    println!("serving on http://{}", server.addr());

    // ------------------------------------------------------------------
    // 2. Query over the wire: the body is the builder's canonical
    //    descriptor, the answer the result codec's JSON document.
    // ------------------------------------------------------------------
    let reachability = Search::from(TemporalNode::from_raw(0, 0)).descriptor();
    let response = client.query(&reachability)?;
    println!("\nPOST /query -> {}\n  {}", response.status, response.body);

    // The same query again is a pure cache hit (tier 1: peek).
    client.query(&reachability)?;

    // ------------------------------------------------------------------
    // 3. A standing query: the subscription receives the current answer
    //    immediately, then one frame per sealed snapshot.
    // ------------------------------------------------------------------
    let mut subscription = client.subscribe(&reachability)?;
    let initial = subscription.next_frame()?.expect("initial frame");
    println!("\nPOST /subscribe -> frame 0\n  {initial}");

    for (events, label) in [("[[2, 3]]", 1), ("[[3, 4], [4, 5]]", 2)] {
        let body = format!("{{\"events\": {events}, \"seal\": {label}}}");
        let response = client.post("/ingest", &body)?;
        println!("\nPOST /ingest {body} -> {}", response.body);
        let frame = subscription.next_frame()?.expect("push frame");
        println!("  pushed: {frame}");
    }

    // ------------------------------------------------------------------
    // 4. The serving counters: hits, single-flight coalescing, pushes.
    // ------------------------------------------------------------------
    let stats = client.get("/stats")?;
    println!("\nGET /stats -> {}", stats.body);

    let cache = server.cache_stats();
    println!(
        "\ncache outcomes: {} miss, {} hit, {} extended ({} frames pushed)",
        cache.misses,
        cache.hits,
        cache.extensions,
        server.stats().frames_pushed,
    );
    Ok(())
}
