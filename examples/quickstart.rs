//! Quickstart: build the paper's Figure 1 graph by hand, search it with the
//! unified `Search` builder, and cross-check every execution strategy
//! (Algorithm 1 serial and parallel, Algorithm 2 algebraic).
//!
//! Run with `cargo run --release --example quickstart`.

use evolving_graphs::prelude::*;

fn main() -> Result<()> {
    // ------------------------------------------------------------------
    // 1. Build an evolving graph: three nodes, three time stamps.
    //    Paper node k is NodeId(k-1); paper time t_k is TimeIndex(k-1).
    // ------------------------------------------------------------------
    let mut graph = AdjacencyListGraph::directed(3, vec![1, 2, 3])?;
    graph.add_edge(NodeId(0), NodeId(1), TimeIndex(0))?; // 1 → 2 at t1
    graph.add_edge(NodeId(0), NodeId(2), TimeIndex(1))?; // 1 → 3 at t2
    graph.add_edge(NodeId(1), NodeId(2), TimeIndex(2))?; // 2 → 3 at t3

    println!(
        "graph: {} nodes, {} snapshots, {} static edges, {} active temporal nodes",
        graph.num_nodes(),
        graph.num_timestamps(),
        graph.num_static_edges(),
        graph.num_active_nodes()
    );

    // ------------------------------------------------------------------
    // 2. One query, one entry point: the Search builder.
    // ------------------------------------------------------------------
    let root = TemporalNode::from_raw(0, 0); // (1, t1)
    let result = Search::from(root).run(&graph)?;
    println!("\nSearch from (1, t1):");
    for (tn, dist) in result.reached() {
        println!(
            "  ({}, t{})  distance {}",
            tn.node.0 + 1,
            tn.time.0 + 1,
            dist
        );
    }

    // Shortest temporal path to (3, t3), reconstructed from BFS parents.
    let target = TemporalNode::from_raw(2, 2);
    let with_parents = Search::from(root).with_parents().run(&graph)?;
    let path = with_parents.path_to(target).expect("target is reachable");
    let pretty: Vec<String> = path
        .iter()
        .map(|tn| format!("({}, t{})", tn.node.0 + 1, tn.time.0 + 1))
        .collect();
    println!(
        "\nshortest temporal path to (3, t3): {}",
        pretty.join(" → ")
    );

    // All temporal paths of length 4 (the two dashed paths of Figure 2).
    let paths = enumerate_paths(&graph, root, target, 4);
    println!("temporal paths of length 4 to (3, t3): {}", paths.len());

    // ------------------------------------------------------------------
    // 3. Swap the execution strategy without touching the query: the
    //    parallel frontier engine and the algebraic formulation
    //    (Algorithm 2) give identical results.
    // ------------------------------------------------------------------
    for strategy in [Strategy::Parallel, Strategy::Algebraic] {
        let other = Search::from(root).strategy(strategy).run(&graph)?;
        assert_eq!(result.reached(), other.reached());
        println!("\n{strategy:?} strategy agrees with the serial engine ✓");
    }

    // ------------------------------------------------------------------
    // 4. Compose views inside the query: backward in time, or windowed.
    // ------------------------------------------------------------------
    let influencers = Search::from(target)
        .direction(Direction::Backward)
        .run(&graph)?;
    println!(
        "\n(3, t3) is backward-reachable from {} temporal nodes",
        influencers.num_reached() - 1
    );

    let late = Search::from(TemporalNode::from_raw(0, 1))
        .window(TimeIndex(1)..) // drop the irrelevant first snapshot (Sec. II-C)
        .run(&graph)?;
    println!(
        "windowed search from (1, t2) over [t2, t3] reaches {} temporal nodes",
        late.num_reached()
    );

    // The naïve adjacency-product sum, by contrast, miscounts: it sees only
    // one of the two temporal paths from (1, t1) to (3, t3).
    let naive = naive_path_sum(&graph);
    println!(
        "\nnaive Eq.(2) count for 1 → 3: {}   correct count: {}",
        naive.get(0, 2),
        total_path_count(&graph, root, target)
    );
    Ok(())
}
