//! Live streaming quickstart: ingest edge events into a `LiveGraph`, seal
//! snapshots as time advances, and watch the `QueryCache` serve the same
//! standing query by cache hit or by the incremental repair row its shape
//! selects — frontier extension for forward queries, a stable-core resettle
//! for backward ones — depending on what the delta can invalidate.
//!
//! Run with `cargo run --release --example live_stream`.

use evolving_graphs::prelude::*;

fn main() -> Result<()> {
    // ------------------------------------------------------------------
    // 1. A live graph: no snapshots yet, events buffer until sealed.
    // ------------------------------------------------------------------
    let mut live = LiveGraph::directed(5);
    live.apply(EdgeEvent::insert(NodeId(0), NodeId(1)))?;
    live.apply(EdgeEvent::insert(NodeId(1), NodeId(2)))?;
    let t0 = live.seal_snapshot(0)?;
    println!(
        "sealed t{} (version {}): {} edges, touched {:?}",
        t0.0,
        live.version(),
        live.graph().num_static_edges(),
        live.touched_at(t0)
    );

    // ------------------------------------------------------------------
    // 2. Standing queries through the cache: one forward (extended when
    //    stale), one backward (stable-core resettled when stale).
    // ------------------------------------------------------------------
    let cache = QueryCache::new();
    let root = TemporalNode::from_raw(0, 0);
    let forward = Search::from(root);
    let influencers = Search::from(TemporalNode::from_raw(2, 0)).backward();

    let (result, outcome) = cache.execute_traced(&live, &forward)?;
    println!(
        "\nforward from (0, t0): {:?}, reaches {:?}",
        outcome,
        result.reached_node_ids()
    );
    let (result, outcome) = cache.execute_traced(&live, &influencers)?;
    println!(
        "backward from (2, t0): {:?}, reaches {:?}",
        outcome,
        result.reached_node_ids()
    );

    // ------------------------------------------------------------------
    // 3. The stream keeps flowing: grow the universe, seal a new snapshot.
    // ------------------------------------------------------------------
    live.apply(EdgeEvent::grow_nodes(7))?;
    live.apply(EdgeEvent::insert(NodeId(2), NodeId(5)))?;
    live.apply(EdgeEvent::insert(NodeId(5), NodeId(6)))?;
    let t1 = live.seal_snapshot(1)?;
    println!(
        "\nsealed t{} (version {}): now {} nodes, {} edges",
        t1.0,
        live.version(),
        live.graph().num_nodes(),
        live.graph().num_static_edges()
    );

    // The forward query is *extended* from its retained frontier — work
    // proportional to the new snapshot — while the backward query is
    // *resettled*: a fringe scan over the touched nodes verifies the new
    // snapshot cannot reach into its past, so the stable core is reused.
    let (result, outcome) = cache.execute_traced(&live, &forward)?;
    println!(
        "forward from (0, t0): {:?}, reaches {:?}",
        outcome,
        result.reached_node_ids()
    );
    assert_eq!(outcome, CacheOutcome::Extended);
    assert!(result.reaches_node(NodeId(6)));
    let (result, outcome) = cache.execute_traced(&live, &influencers)?;
    println!(
        "backward from (2, t0): {:?}, reaches {:?}",
        outcome,
        result.reached_node_ids()
    );
    assert_eq!(outcome, CacheOutcome::Resettled);

    // Re-asking with no new seals is a pure cache hit.
    let (_, outcome) = cache.execute_traced(&live, &forward)?;
    assert_eq!(outcome, CacheOutcome::Hit);
    println!("\nre-asked with no new seals: {outcome:?}");
    println!("cache stats: {:?}", cache.stats());

    // The fluent route through the builder works too.
    let fluent = Search::from(root)
        .strategy(Strategy::Foremost)
        .run_via(&mut live.session(&cache))?;
    println!(
        "foremost arrival of node 6: t{}",
        fluent.arrival(NodeId(6)).expect("reached").0
    );
    Ok(())
}
