//! Durability and replication, end to end: a leader serving from a
//! write-ahead-logged graph, killed and restarted from its log, then tailed
//! by a follower replica that serves byte-identical reads.
//!
//! Run with `cargo run --release --example replicated_serve`. The flow:
//!
//! 1. boot a durable leader over an empty data directory, ingest three
//!    sealed snapshots (each seal is fsynced before it is acked);
//! 2. kill the leader, boot a fresh one from the log alone, and check the
//!    answer bytes survived the restart;
//! 3. start a follower (`Server::start_follower`): it bootstraps over
//!    `GET /log/tail`, then applies live seals as the leader ships them;
//! 4. subscribe on the *follower* and watch a leader-side seal arrive as a
//!    push frame, then compare leader and follower answers byte for byte.
//!
//! The same wiring is available from the command line:
//! `egraph-serve --data-dir DIR` (durable leader) and
//! `egraph-serve --follow HOST:PORT` (replica).

use std::time::{Duration, Instant};

use evolving_graphs::prelude::*;

fn main() -> std::io::Result<()> {
    let data_dir = std::env::temp_dir().join(format!("egraph-replicated-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);

    // ------------------------------------------------------------------
    // 1. A durable leader: every event is logged, every seal fsynced.
    // ------------------------------------------------------------------
    let recovered = DurableGraph::open_or_create(&data_dir, 6, true).expect("create data dir");
    let mut leader = Server::start_durable(recovered, ServerConfig::default())?;
    let client = Client::new(leader.addr());
    println!(
        "leader on http://{} (data dir {})",
        leader.addr(),
        data_dir.display()
    );

    for (events, label) in [
        ("[[0, 1], [1, 2]]", 0),
        ("[[2, 3], [0, 4]]", 1),
        ("[[3, 5]]", 2),
    ] {
        let body = format!("{{\"events\": {events}, \"seal\": {label}}}");
        let response = client.post("/ingest", &body)?;
        println!("POST /ingest {body} -> {}", response.body);
    }

    let reachability = Search::from(TemporalNode::from_raw(0, 0)).descriptor();
    let before_crash = client.query(&reachability)?.body;
    println!("\nanswer before the crash:\n  {before_crash}");

    // ------------------------------------------------------------------
    // 2. Kill and restart: the log alone rebuilds the graph.
    // ------------------------------------------------------------------
    leader.shutdown();
    let recovered = DurableGraph::open(&data_dir).expect("recover from log");
    println!(
        "\nrestarted: {} segment(s) replayed{}",
        recovered.segments_replayed,
        if recovered.dropped_torn_tail {
            ", torn tail truncated"
        } else {
            ""
        }
    );
    let mut leader = Server::start_durable(recovered, ServerConfig::default())?;
    let client = Client::new(leader.addr());
    let after_crash = client.query(&reachability)?.body;
    assert_eq!(after_crash, before_crash, "restart must not change answers");
    println!("answer after restart is byte-identical");

    // ------------------------------------------------------------------
    // 3. A follower replica tails the leader's sealed-segment stream.
    // ------------------------------------------------------------------
    let mut follower = Server::start_follower(leader.addr(), ServerConfig::default())?;
    let follower_client = Client::new(follower.addr());
    let deadline = Instant::now() + Duration::from_secs(10);
    while follower.stats().follower_lag_seals != 0 {
        assert!(Instant::now() < deadline, "follower failed to converge");
        std::thread::sleep(Duration::from_millis(10));
    }
    println!(
        "\nfollower on http://{} caught up ({} segments replayed, lag 0)",
        follower.addr(),
        follower.stats().segments_replayed
    );

    // ------------------------------------------------------------------
    // 4. A standing query on the follower advances with leader seals.
    // ------------------------------------------------------------------
    let mut subscription = follower_client.subscribe(&reachability)?;
    println!(
        "follower frame 0:\n  {}",
        subscription.next_frame()?.expect("initial frame")
    );

    let body = r#"{"events": [[4, 5]], "seal": 3}"#;
    let response = client.post("/ingest", body)?;
    println!("\nleader POST /ingest {body} -> {}", response.body);
    println!(
        "follower push frame:\n  {}",
        subscription.next_frame()?.expect("replicated frame")
    );

    let from_leader = client.query(&reachability)?.body;
    let from_follower = follower_client.query(&reachability)?.body;
    assert_eq!(
        from_leader, from_follower,
        "replica reads must match the leader"
    );
    println!("\nleader and follower answers are byte-identical:\n  {from_follower}");

    follower.shutdown();
    leader.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
    Ok(())
}
