//! The message-passing game from the paper's introduction.
//!
//! Three players each hold a message. At every turn one player talks to one
//! other player and hands over everything they know. Whether player 3 can
//! ever collect message `a` depends on the *order* of the conversations —
//! exactly the kind of question temporal reachability answers and static
//! reachability gets wrong.
//!
//! Run with `cargo run --release --example message_game`.

use evolving_graphs::baselines::flat_bfs::flat_false_positives;
use evolving_graphs::prelude::*;

fn describe(label: &str, graph: &AdjacencyListGraph) {
    println!("— {label} —");
    // Message `a` starts at player 1 (NodeId 0). Player 1 acts at its first
    // active snapshot.
    let start = graph
        .active_times(NodeId(0))
        .first()
        .map(|&t| TemporalNode::new(NodeId(0), t));

    match start {
        Some(root) => {
            let reached = Search::from(root).run(graph).expect("player 1 is active");
            let holders: Vec<String> = reached
                .reached_node_ids()
                .iter()
                .map(|v| format!("player {}", v.0 + 1))
                .collect();
            println!("  message a ends up with: {}", holders.join(", "));
            let got_it = reached.reached_node_ids().contains(&NodeId(2));
            println!(
                "  player 3 {} message a",
                if got_it {
                    "receives"
                } else {
                    "can NEVER receive"
                }
            );
        }
        None => println!("  player 1 never talks to anyone"),
    }

    // The flattened (time-ignoring) baseline claims otherwise:
    let wrong = flat_false_positives(graph, NodeId(0));
    if wrong.is_empty() {
        println!("  (static flattening agrees here)");
    } else {
        let names: Vec<String> = wrong
            .iter()
            .map(|v| format!("player {}", v.0 + 1))
            .collect();
        println!(
            "  (a static union-graph BFS would wrongly claim {} can get it)",
            names.join(", ")
        );
    }
    println!();
}

fn main() {
    // Ordering 1: player 1 talks to 2 first, then 2 talks to 3.
    let good = evolving_graphs::core::examples::introduction_game(true);
    describe("1→2 happens before 2→3", &good);

    // Ordering 2: player 2 talks to 3 first, then 1 talks to 2.
    let bad = evolving_graphs::core::examples::introduction_game(false);
    describe("2→3 happens before 1→2", &bad);
}
