//! Citation-network mining (Section V of the paper).
//!
//! Generates a synthetic citation corpus, builds the evolving influence
//! graph, and runs the three analyses the paper describes: forward influence
//! sets `T(a, t)`, backward influencer sets `T⁻¹(a, t)` and communities
//! (union of the forward cones of the backward tree's leaves).
//!
//! Run with `cargo run --release --example citation_influence`.

use evolving_graphs::prelude::*;

fn main() {
    // A corpus of 1 000 authors citing each other over 20 epochs.
    let corpus = synthetic_citation_corpus(&CitationConfig {
        num_authors: 1_000,
        num_epochs: 20,
        papers_per_epoch: 80,
        citations_per_paper: 4,
        preferential_bias: 1.5,
        seed: 2016,
    });
    let network = CitationNetwork::from_corpus(&corpus);
    println!(
        "citation network: {} authors, {} epochs, {} citations",
        network.num_authors(),
        network.num_epochs(),
        network.num_citations()
    );

    // Whole-network influence ranking (one BFS per author, in parallel).
    let top = top_influencers(&network, 5);
    println!("\ntop 5 authors by |T(a, first active epoch)|:");
    for s in &top {
        println!(
            "  author {:>4}  (debut epoch {:>2})  influenced {} authors",
            s.author, s.epoch, s.influenced
        );
    }

    // Zoom in on the most influential author.
    let star = top[0].author;
    let debut = top[0].epoch;
    let influenced = influence_set(&network, star, debut).expect("star is active at its debut");
    println!(
        "\nauthor {star} publishing at epoch {debut} influences {} authors",
        influenced.len()
    );

    // How does the same author's influence change if the work appears later?
    println!("influence profile of author {star} by publication epoch:");
    for (epoch, size) in influence_profile(&network, star) {
        println!("  epoch {epoch:>3}: would influence {size} authors");
    }

    // Who influenced the star's latest work, and what community does that
    // induce?
    let last_epoch = *network.active_epochs(star).last().unwrap();
    let influencers = influencer_set(&network, star, last_epoch).unwrap();
    let sources = influence_leaves(&network, star, last_epoch).unwrap();
    let community = community_of(&network, star, last_epoch).unwrap();
    println!(
        "\nat epoch {last_epoch}, author {star} was influenced by {} authors,\n  \
         tracing back to {} original sources; their joint community has {} members",
        influencers.len(),
        sources.len(),
        community.len()
    );

    // An explicit influence chain from the star to one of the influenced
    // authors, as (author, epoch) hops.
    if let Some(&target) = influenced.last() {
        if let Ok(Some(chain)) = influence_chain(&network, star, debut, target) {
            let pretty: Vec<String> = chain.iter().map(|(a, e)| format!("{}@{}", a, e)).collect();
            println!(
                "\nexample influence chain from {star} to {target}: {}",
                pretty.join(" → ")
            );
        }
    }
}
