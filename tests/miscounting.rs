//! EQ2 — Section III-A's demonstration that naïve adjacency-matrix products
//! miscount temporal paths, reproduced as executable assertions and extended
//! to random graphs.

use evolving_graphs::baselines::naive_product::{
    correct_path_count, disagreement_rate, naive_path_count, NaiveScheme,
};
use evolving_graphs::baselines::{flat_false_positives, missed_by_snapshot_bfs};
use evolving_graphs::prelude::*;

/// The exact counter-example of the paper: (S[t3])₁₃ = 1 but the true count
/// of temporal paths from (1,t1) to (3,t3) is 2.
#[test]
fn equation2_undercounts_on_the_paper_example() {
    let g = evolving_graphs::core::examples::paper_figure1();
    assert_eq!(
        naive_path_count(&g, NaiveScheme::PathSum, NodeId(0), NodeId(2)),
        1.0
    );
    assert_eq!(correct_path_count(&g, NodeId(0), NodeId(2)), 2.0);
}

/// The paper's remark that A[t1]·A[t2] = 0, so the plain product misses the
/// path ⟨(1,t1),(1,t2),(3,t2)⟩ entirely.
#[test]
fn plain_product_vanishes_on_the_paper_example() {
    let g = evolving_graphs::core::examples::paper_figure1();
    assert!(plain_product(&g).is_zero());
    // Yet that temporal path exists.
    assert!(is_temporal_path(
        &g,
        &[
            TemporalNode::from_raw(0, 0),
            TemporalNode::from_raw(0, 1),
            TemporalNode::from_raw(2, 1)
        ]
    ));
}

/// Padding the diagonal with ones is still wrong: it counts sequences that
/// wait at inactive nodes.
#[test]
fn identity_padding_overcounts_via_inactive_nodes() {
    let g = evolving_graphs::core::examples::paper_figure1();
    let padded = naive_path_count(&g, NaiveScheme::IdentityPadded, NodeId(2), NodeId(2));
    assert!(padded >= 1.0);
    assert_eq!(correct_path_count(&g, NodeId(2), NodeId(2)), 0.0);
}

/// On random evolving graphs the naïve schemes keep disagreeing with the
/// correct count on a non-trivial fraction of node pairs.
#[test]
fn naive_schemes_disagree_on_random_graphs() {
    let mut total_sum_rate = 0.0;
    let mut total_padded_rate = 0.0;
    let trials = 5;
    for seed in 0..trials {
        let g = figure5_workload(12, 4, 40, 100 + seed);
        total_sum_rate += disagreement_rate(&g, NaiveScheme::PathSum);
        total_padded_rate += disagreement_rate(&g, NaiveScheme::IdentityPadded);
    }
    assert!(
        total_sum_rate > 0.0,
        "Eq.(2) should miscount somewhere across {trials} random graphs"
    );
    assert!(
        total_padded_rate > 0.0,
        "identity padding should miscount somewhere across {trials} random graphs"
    );
}

/// The two BFS baselines bracket the truth: flattening over-approximates
/// (false positives exist for the ordering-sensitive game) and per-snapshot
/// search under-approximates (it misses everything needing causal edges).
#[test]
fn bfs_baselines_over_and_under_approximate() {
    let bad_order = evolving_graphs::core::examples::introduction_game(false);
    assert!(!flat_false_positives(&bad_order, NodeId(0)).is_empty());

    let g = evolving_graphs::core::examples::paper_figure1();
    let missed = missed_by_snapshot_bfs(&g, TemporalNode::from_raw(0, 0));
    assert!(!missed.is_empty());
    // Everything missed lies at a later snapshot or needed a causal hop.
    for tn in missed {
        assert!(bfs(&g, TemporalNode::from_raw(0, 0))
            .unwrap()
            .is_reached(tn));
    }
}
