//! Coverage for the mutation paths the live append layer stresses:
//! `grow_nodes` after edges exist, `add_edge_unique` duplicate handling, and
//! appending snapshots/edges to a graph that has already been searched.

use evolving_graphs::prelude::*;

fn two_snapshot_graph() -> AdjacencyListGraph {
    let mut g = AdjacencyListGraph::directed_with_unit_times(4, 2);
    g.add_edge(NodeId(0), NodeId(1), TimeIndex(0)).unwrap();
    g.add_edge(NodeId(1), NodeId(2), TimeIndex(1)).unwrap();
    g
}

#[test]
fn grow_nodes_after_edges_preserves_structure_and_connects_everywhere() {
    let mut g = two_snapshot_graph();
    let before = g.edge_triples();
    g.grow_nodes(8);
    assert_eq!(g.num_nodes(), 8);
    // Existing adjacency, activity and edge counts are untouched.
    assert_eq!(g.edge_triples(), before);
    assert!(g.is_active(NodeId(1), TimeIndex(0)));
    assert!(!g.is_active(NodeId(7), TimeIndex(0)));
    // New nodes are connectable at *every existing* snapshot, not only new
    // ones — growth must have resized every per-snapshot adjacency row.
    g.add_edge(NodeId(7), NodeId(0), TimeIndex(0)).unwrap();
    g.add_edge(NodeId(2), NodeId(6), TimeIndex(1)).unwrap();
    assert!(g.is_active(NodeId(7), TimeIndex(0)));
    let map = bfs(&g, TemporalNode::from_raw(7, 0)).unwrap();
    assert!(map.is_reached(TemporalNode::from_raw(2, 1)));
    // Growing to a smaller or equal size is a no-op.
    g.grow_nodes(3);
    assert_eq!(g.num_nodes(), 8);
}

#[test]
fn grow_nodes_after_edges_works_for_undirected_graphs_too() {
    let mut g = AdjacencyListGraph::undirected_with_unit_times(3, 2);
    g.add_edge(NodeId(0), NodeId(1), TimeIndex(0)).unwrap();
    g.grow_nodes(5);
    g.add_edge(NodeId(4), NodeId(0), TimeIndex(1)).unwrap();
    // Undirected symmetry holds for edges touching grown nodes.
    assert_eq!(g.in_slice(NodeId(4), TimeIndex(1)), &[NodeId(0)]);
    assert_eq!(g.out_slice(NodeId(4), TimeIndex(1)), &[NodeId(0)]);
    let map = bfs(&g, TemporalNode::from_raw(1, 0)).unwrap();
    assert!(map.is_reached(TemporalNode::from_raw(4, 1)));
}

#[test]
fn add_edge_unique_handles_duplicates_per_direction_and_snapshot() {
    let mut g = AdjacencyListGraph::directed_with_unit_times(3, 2);
    assert!(g
        .add_edge_unique(NodeId(0), NodeId(1), TimeIndex(0))
        .unwrap());
    assert!(!g
        .add_edge_unique(NodeId(0), NodeId(1), TimeIndex(0))
        .unwrap());
    // The reversed pair is a *different* directed edge.
    assert!(g
        .add_edge_unique(NodeId(1), NodeId(0), TimeIndex(0))
        .unwrap());
    // The same pair at another snapshot is also distinct.
    assert!(g
        .add_edge_unique(NodeId(0), NodeId(1), TimeIndex(1))
        .unwrap());
    assert_eq!(g.num_static_edges(), 3);
}

#[test]
fn add_edge_unique_sees_undirected_edges_from_both_end_points() {
    let mut g = AdjacencyListGraph::undirected_with_unit_times(3, 1);
    assert!(g
        .add_edge_unique(NodeId(0), NodeId(1), TimeIndex(0))
        .unwrap());
    // Undirected: (1, 0) is the same edge and must be deduplicated.
    assert!(!g
        .add_edge_unique(NodeId(1), NodeId(0), TimeIndex(0))
        .unwrap());
    assert_eq!(g.num_static_edges(), 1);
}

#[test]
fn appending_to_a_searched_graph_only_extends_results() {
    let mut g = two_snapshot_graph();
    let root = TemporalNode::from_raw(0, 0);
    let before = Search::from(root).run(&g).unwrap();
    assert!(!before.reaches_node(NodeId(3)));

    // Append a snapshot and wire node 3 in; the earlier result object stays
    // coherent and a re-run extends strictly.
    let t = g.push_timestamp(2).unwrap();
    g.add_edge(NodeId(2), NodeId(3), t).unwrap();
    let after = Search::from(root).run(&g).unwrap();
    assert!(after.reaches_node(NodeId(3)));
    for (tn, d) in before.reached() {
        assert_eq!(
            after.distance(tn),
            Some(d),
            "appending snapshots must not change existing distances ({tn:?})"
        );
    }
    assert!(after.num_reached() > before.num_reached());
}

#[test]
fn appending_edges_to_an_existing_snapshot_can_change_past_results() {
    // Contrast case: Figure 5-style growth adds edges to *existing*
    // snapshots, which may create shortcuts — re-query semantics, no
    // monotone-extension guarantee. The query cache treats this as
    // impossible by construction (LiveGraph seals snapshots), but the raw
    // mutation path remains available and must stay consistent.
    let mut g = two_snapshot_graph();
    let root = TemporalNode::from_raw(0, 0);
    let before = Search::from(root).run(&g).unwrap();
    assert_eq!(before.distance(TemporalNode::from_raw(2, 1)), Some(3));
    g.add_edge(NodeId(0), NodeId(2), TimeIndex(0)).unwrap();
    let after = Search::from(root).run(&g).unwrap();
    assert_eq!(after.distance(TemporalNode::from_raw(2, 0)), Some(1));
    assert_eq!(after.distance(TemporalNode::from_raw(2, 1)), Some(2));
}

#[test]
fn interleaved_growth_timestamps_and_searches_stay_consistent() {
    let mut g = AdjacencyListGraph::directed(2, vec![0]).unwrap();
    g.add_edge(NodeId(0), NodeId(1), TimeIndex(0)).unwrap();
    for step in 1..5u32 {
        let t = g.push_timestamp(step as i64).unwrap();
        g.grow_nodes(2 + step as usize);
        g.add_edge(NodeId(step), NodeId(step + 1), t).unwrap();
        let map = bfs(&g, TemporalNode::from_raw(0, 0)).unwrap();
        // The chain grows by one node per snapshot, every prefix reachable.
        assert!(map.is_reached(TemporalNode::from_raw(step + 1, step)));
        assert_eq!(map.num_timestamps(), step as usize + 1);
        assert_eq!(map.num_nodes(), 2 + step as usize);
    }
}
