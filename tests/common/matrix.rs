//! The cache-invalidation matrix, asserted in exactly one place.
//!
//! Two suites consume this module: `live_stream_differential` (standing +
//! random query streams) and `cache_matrix_fuzz` (the seeded harness that
//! sweeps every matrix cell after every seal). Both need the same two
//! ingredients, so they live here rather than drifting apart:
//!
//! * [`expected_outcome`] — the expected-[`CacheOutcome`] table, derived
//!   from the descriptor's *shape* independently of the production
//!   classification (`QueryDescriptor::append_repair`), so a bug that
//!   misroutes a row in the cache cannot also rewrite the expectation;
//! * [`assert_equivalent`] — payload-for-payload equality of a cached
//!   answer against a from-scratch run, with the one deliberate weakening
//!   the incremental paths force: parent *pointers* are checked for
//!   validity (one hop closer, edge exists in the effective direction),
//!   not pointer-for-pointer equality, because extension settles the
//!   appended snapshot in a different first-discoverer order than a
//!   from-scratch run while remaining a correct BFS tree.

use std::sync::Arc;

use evolving_graphs::prelude::*;
use evolving_graphs::stream::CacheOutcome;

/// Every strategy the builder dispatches to.
pub const STRATEGIES: [Strategy; 5] = [
    Strategy::Serial,
    Strategy::Parallel,
    Strategy::Algebraic,
    Strategy::Foremost,
    Strategy::SharedFrontier,
];

/// The repair outcome a *stale, previously cached* query of this shape must
/// report — the matrix rows, re-derived from the raw descriptor axes:
///
/// | shape | outcome |
/// |---|---|
/// | bounded window end (any strategy / direction) | `Redimensioned` |
/// | effective reversal, unbounded end | `Resettled` |
/// | forward, unbounded end (all five strategies, parents included) | `Extended` |
///
/// Empty-window shapes never reach a repair (they error on every run and
/// errors are not cached), so they have no row here.
pub fn expected_repair_outcome(descriptor: &QueryDescriptor) -> CacheOutcome {
    if descriptor.window().end_bound().is_some() {
        CacheOutcome::Redimensioned
    } else if descriptor.effective_reverse() {
        CacheOutcome::Resettled
    } else {
        CacheOutcome::Extended
    }
}

/// The expected [`CacheOutcome`] of executing a query that *succeeds*, given
/// what the cache last did for its descriptor: `prior` is the graph version
/// of the last successful execution, if any (an errored execution caches
/// nothing and must be passed as `None`).
pub fn expected_outcome(
    descriptor: &QueryDescriptor,
    prior: Option<u64>,
    version: u64,
) -> CacheOutcome {
    match prior {
        Some(v) if v == version => CacheOutcome::Hit,
        Some(_) => expected_repair_outcome(descriptor),
        None => CacheOutcome::Miss,
    }
}

/// Asserts payload-for-payload equality of a cached and a from-scratch
/// outcome of `search`, errors included. `graph` is the sealed graph both
/// ran against; it anchors the parent-validity check.
pub fn assert_equivalent<G: EvolvingGraph>(
    label: &str,
    graph: &G,
    search: &Search,
    cached: Result<Arc<SearchResult>>,
    scratch: Result<Arc<SearchResult>>,
) {
    let descriptor = search.descriptor();
    match (cached, scratch) {
        (Err(a), Err(b)) => assert_eq!(a, b, "{label}: errors disagree"),
        (Ok(a), Ok(b)) => match descriptor.strategy() {
            Strategy::Serial | Strategy::Parallel | Strategy::Algebraic => {
                let (am, bm) = (a.distance_maps(), b.distance_maps());
                assert_eq!(am.len(), bm.len(), "{label}: map count");
                for (x, y) in am.iter().zip(bm) {
                    assert_eq!(x.root(), y.root(), "{label}: roots");
                    assert_eq!(
                        x.as_flat_slice(),
                        y.as_flat_slice(),
                        "{label}: distances for root {:?}",
                        x.root()
                    );
                    if descriptor.with_parents() {
                        assert!(y.has_parents(), "{label}: scratch run lost parents");
                        assert_parents_valid(label, graph, &descriptor, x);
                    }
                }
            }
            Strategy::Foremost => {
                let (at, bt) = (a.foremost_results(), b.foremost_results());
                assert_eq!(at.len(), bt.len(), "{label}: table count");
                for (x, y) in at.iter().zip(bt) {
                    assert_eq!(x.root(), y.root(), "{label}: roots");
                    assert_eq!(
                        x.arrivals(),
                        y.arrivals(),
                        "{label}: arrivals for root {:?}",
                        x.root()
                    );
                }
            }
            Strategy::SharedFrontier => {
                let (am, bm) = (a.shared_map(), b.shared_map());
                assert_eq!(am.sources(), bm.sources(), "{label}: sources");
                assert_eq!(am.as_flat_slice(), bm.as_flat_slice(), "{label}: distances");
                for (tn, _, src) in am.reached_with_sources() {
                    assert_eq!(
                        Some(src),
                        bm.nearest_source_index(tn),
                        "{label}: attribution at {tn:?}"
                    );
                }
            }
        },
        (a, b) => panic!("{label}: cached {a:?} disagrees with scratch {b:?}"),
    }
}

/// Asserts `map`'s parent pointers form a valid BFS tree on `graph`: every
/// reached non-root temporal node has a parent one hop closer to the root,
/// joined by an edge that exists in the traversal's effective direction
/// (reversed traversals follow backward neighbors — `ReversedView` forward
/// edges are original backward edges; a window only *restricts* a view's
/// edges, so validity on the full graph is implied).
fn assert_parents_valid<G: EvolvingGraph>(
    label: &str,
    graph: &G,
    descriptor: &QueryDescriptor,
    map: &DistanceMap,
) {
    assert!(map.has_parents(), "{label}: cached map lost parents");
    let root = map.root();
    for (tn, d) in map.reached() {
        if tn == root {
            continue;
        }
        let p = map
            .parent(tn)
            .unwrap_or_else(|| panic!("{label}: reached non-root {tn:?} lacks a parent"));
        assert_eq!(
            map.distance(p),
            Some(d - 1),
            "{label}: parent {p:?} of {tn:?} is not one hop closer"
        );
        let mut is_neighbor = false;
        if descriptor.effective_reverse() {
            graph.for_each_backward_neighbor(p, &mut |w| is_neighbor |= w == tn);
        } else {
            graph.for_each_forward_neighbor(p, &mut |w| is_neighbor |= w == tn);
        }
        assert!(
            is_neighbor,
            "{label}: parent edge {p:?} -> {tn:?} does not exist in the effective direction"
        );
    }
}
