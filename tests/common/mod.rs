//! Shared support for the live-graph differential suites. Each integration
//! test that needs it declares `mod common;` — test binaries compile
//! independently, so not every binary uses every item.
#![allow(dead_code)]

pub mod matrix;
