//! Socket-layer tests of `egraph-serve`: everything here talks to the
//! server over real loopback TCP connections, through the same HTTP dialect
//! a `curl` user would speak — no in-process shortcuts.
//!
//! The load-bearing assertions:
//!
//! * single-flight admission: a burst of identical cold requests performs
//!   **exactly one** underlying computation (1 miss + N−1 coalesced), and
//!   every response is byte-identical;
//! * wire answers are the scratch answers: a mixed bag of unique
//!   descriptors served concurrently equals `Search::run` on an identical
//!   graph, byte for byte through the codec;
//! * standing queries: a subscriber gets one frame per sealed snapshot, in
//!   seal order, each carrying the result the graph had at that seal;
//! * hostile input: malformed, wrong-shaped and oversized requests get
//!   structured `4xx` answers and the accept loop keeps serving.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use egraph_core::ids::{NodeId, TemporalNode};
use egraph_query::codec::search_result_to_json;
use egraph_query::{Search, Strategy};
use egraph_serve::{Client, Server, ServerConfig};
use egraph_stream::LiveGraph;

/// The shared fixture: built twice per test that needs a local twin —
/// once moved into the server, once kept for scratch comparisons.
fn fixture_live() -> LiveGraph {
    let mut live = LiveGraph::directed(6);
    live.insert(NodeId(0), NodeId(1)).unwrap();
    live.insert(NodeId(1), NodeId(2)).unwrap();
    live.seal_snapshot(0).unwrap();
    live.insert(NodeId(2), NodeId(3)).unwrap();
    live.insert(NodeId(0), NodeId(4)).unwrap();
    live.seal_snapshot(1).unwrap();
    live.insert(NodeId(3), NodeId(5)).unwrap();
    live.seal_snapshot(2).unwrap();
    live
}

fn start(config: ServerConfig) -> (Server, Client) {
    let server = Server::start(fixture_live(), config).unwrap();
    let client = Client::new(server.addr());
    (server, client)
}

#[test]
fn concurrent_identical_requests_coalesce_onto_one_computation() {
    const RACERS: usize = 16;
    let (server, client) = start(ServerConfig {
        // Determinism hook: the leader computes only once the other 15
        // requests are parked behind it, so the coalescing counts below
        // are exact, not race-dependent.
        hold_leader_until_waiters: Some(RACERS - 1),
        ..ServerConfig::default()
    });
    let descriptor = Search::from(TemporalNode::from_raw(0, 0)).descriptor();

    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..RACERS)
            .map(|_| {
                let client = client.clone();
                let descriptor = descriptor.clone();
                scope.spawn(move || {
                    let response = client.query(&descriptor).unwrap();
                    assert_eq!(response.status, 200);
                    response.body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Byte-identical responses, all equal to the scratch answer.
    let scratch = descriptor.to_search().run(fixture_live().graph()).unwrap();
    let expected = search_result_to_json(&scratch);
    for body in &bodies {
        assert_eq!(body, &expected);
    }

    // Exactly one computation happened: 1 miss, 15 coalesced, no hits
    // (every racer arrived before the entry existed).
    let stats = server.cache_stats();
    assert_eq!(stats.misses, 1, "one leader computes");
    assert_eq!(
        stats.coalesced,
        RACERS as u64 - 1,
        "everyone else coalesces"
    );
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.requests(), RACERS as u64);

    // The next identical request is a pure cache hit (tier 1, no flight).
    let response = client.query(&descriptor).unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(response.body, expected);
    assert_eq!(server.cache_stats().hits, 1);
}

#[test]
fn concurrent_unique_descriptors_match_single_threaded_scratch() {
    let (_server, client) = start(ServerConfig::default());
    let twin = fixture_live();

    // One descriptor per query shape the builder supports.
    let searches: Vec<Search> = vec![
        Search::from(TemporalNode::from_raw(0, 0)),
        Search::from(TemporalNode::from_raw(0, 0)).strategy(Strategy::Parallel),
        Search::from(TemporalNode::from_raw(0, 0)).strategy(Strategy::Algebraic),
        Search::from(TemporalNode::from_raw(0, 0)).strategy(Strategy::Foremost),
        Search::from(TemporalNode::from_raw(3, 2)).backward(),
        Search::from(TemporalNode::from_raw(0, 0)).reverse(),
        Search::from(TemporalNode::from_raw(0, 1)).window(1..=2),
        Search::from(TemporalNode::from_raw(0, 0)).with_parents(),
        Search::from_sources([TemporalNode::from_raw(0, 0), TemporalNode::from_raw(2, 1)]),
        Search::from_sources([TemporalNode::from_raw(0, 0), TemporalNode::from_raw(2, 1)])
            .strategy(Strategy::SharedFrontier),
    ];

    std::thread::scope(|scope| {
        for search in &searches {
            let client = client.clone();
            let twin = &twin;
            scope.spawn(move || {
                let expected = search_result_to_json(&search.run(twin.graph()).unwrap());
                // Twice each: the second round exercises the peek tier.
                for _ in 0..2 {
                    let response = client.query(&search.descriptor()).unwrap();
                    assert_eq!(response.status, 200);
                    assert_eq!(
                        response.body,
                        expected,
                        "descriptor {:?}",
                        search.descriptor()
                    );
                }
            });
        }
    });
}

#[test]
fn subscribers_receive_one_frame_per_seal_in_order() {
    let (server, client) = start(ServerConfig::default());
    let search = Search::from(TemporalNode::from_raw(0, 0));
    let mut subscription = client.subscribe(&search.descriptor()).unwrap();

    // The initial frame carries the current answer, seq 0, no label.
    let twin = fixture_live();
    let frame = parse_frame(&subscription.next_frame().unwrap().unwrap());
    assert_eq!(frame.seq, 0);
    assert_eq!(frame.label, None);
    assert_eq!(
        frame.result_json,
        search_result_to_json(&search.run(twin.graph()).unwrap())
    );

    // Three seals → three frames, in order, each matching a twin graph
    // sealed to the same point.
    let mut twin = twin;
    let seals: [(u32, u32, i64); 3] = [(4, 5, 10), (5, 0, 11), (2, 0, 12)];
    for (i, &(u, v, label)) in seals.iter().enumerate() {
        let response = client
            .post(
                "/ingest",
                &format!("{{\"events\": [[{u}, {v}]], \"seal\": {label}}}"),
            )
            .unwrap();
        assert_eq!(response.status, 200);

        twin.insert(NodeId(u), NodeId(v)).unwrap();
        twin.seal_snapshot(label).unwrap();

        let frame = parse_frame(&subscription.next_frame().unwrap().unwrap());
        assert_eq!(frame.seq, i as u64 + 1, "frames arrive in seal order");
        assert_eq!(frame.label, Some(label));
        assert_eq!(
            frame.result_json,
            search_result_to_json(&search.run(twin.graph()).unwrap()),
            "frame {} must carry the answer as of seal {label}",
            i + 1
        );
        // Forward unbounded hop query: the standing query is advanced
        // incrementally, never recomputed.
        assert_eq!(frame.outcome, "extended");
    }

    let stats = server.stats();
    assert_eq!(stats.subscriptions_opened, 1);
    assert_eq!(stats.frames_pushed, 4);
}

#[test]
fn shared_and_windowed_subscriptions_repair_incrementally_on_the_wire() {
    // The two matrix rows this PR closes, observed end to end through the
    // socket: a shared-frontier standing query must push `extended` frames
    // (its packed frontier grows append-only) and a bounded-window standing
    // query must push `redimensioned` frames (no graph work at all) — and
    // both must carry byte-identical JSON to a from-scratch run on a twin
    // graph sealed to the same point.
    let (server, client) = start(ServerConfig::default());
    let shared = Search::from_sources([TemporalNode::from_raw(0, 0), TemporalNode::from_raw(2, 1)])
        .strategy(Strategy::SharedFrontier);
    let windowed = Search::from(TemporalNode::from_raw(0, 0)).window(0..=2);
    let mut shared_sub = client.subscribe(&shared.descriptor()).unwrap();
    let mut windowed_sub = client.subscribe(&windowed.descriptor()).unwrap();

    let mut twin = fixture_live();
    for (sub, search) in [(&mut shared_sub, &shared), (&mut windowed_sub, &windowed)] {
        let frame = parse_frame(&sub.next_frame().unwrap().unwrap());
        assert_eq!(frame.seq, 0);
        assert_eq!(
            frame.result_json,
            search_result_to_json(&search.run(twin.graph()).unwrap())
        );
    }

    let seals: [(u32, u32, i64); 2] = [(4, 5, 10), (5, 1, 11)];
    for (i, &(u, v, label)) in seals.iter().enumerate() {
        let response = client
            .post(
                "/ingest",
                &format!("{{\"events\": [[{u}, {v}]], \"seal\": {label}}}"),
            )
            .unwrap();
        assert_eq!(response.status, 200);
        twin.insert(NodeId(u), NodeId(v)).unwrap();
        twin.seal_snapshot(label).unwrap();

        for (sub, search, outcome) in [
            (&mut shared_sub, &shared, "extended"),
            (&mut windowed_sub, &windowed, "redimensioned"),
        ] {
            let frame = parse_frame(&sub.next_frame().unwrap().unwrap());
            assert_eq!(frame.seq, i as u64 + 1);
            assert_eq!(frame.label, Some(label));
            assert_eq!(frame.outcome, outcome, "seal {label}");
            assert_eq!(
                frame.result_json,
                search_result_to_json(&search.run(twin.graph()).unwrap()),
                "seal {label}: wire answer must equal the scratch twin"
            );
        }
    }

    // The push path reported its repairs through the same per-row counters
    // the /stats endpoint exposes.
    let stats = server.cache_stats();
    assert_eq!(stats.extended_shared, 2, "{stats:?}");
    assert_eq!(stats.redimensioned, 2, "{stats:?}");
    assert_eq!(stats.recomputes, 0, "{stats:?}");
}

struct Frame {
    seq: u64,
    label: Option<i64>,
    outcome: String,
    result_json: String,
}

fn parse_frame(raw: &str) -> Frame {
    let value = egraph_io::parse_value(raw).unwrap();
    let object = value.as_object("frame").unwrap();
    Frame {
        seq: object.get("seq").unwrap().as_i64("seq").unwrap() as u64,
        label: object.get_opt("label").map(|v| v.as_i64("label").unwrap()),
        outcome: object
            .get("outcome")
            .unwrap()
            .as_str("outcome")
            .unwrap()
            .to_string(),
        result_json: object.get("result").unwrap().to_json(),
    }
}

#[test]
fn hostile_requests_get_structured_errors_and_the_server_keeps_serving() {
    let (server, client) = start(ServerConfig {
        max_body_bytes: 512,
        ..ServerConfig::default()
    });

    // Not HTTP at all.
    {
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.write_all(b"garbage\r\n\r\n").unwrap();
        let mut buf = String::new();
        raw.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400"), "got {buf:?}");
    }

    // Valid HTTP, body is not JSON.
    let response = client.post("/query", "not json").unwrap();
    assert_eq!(response.status, 400);
    assert!(
        response.body.starts_with("{\"error\": "),
        "{}",
        response.body
    );

    // Valid JSON, wrong shape (no sources).
    let response = client.post("/query", "{}").unwrap();
    assert_eq!(response.status, 400);

    // Non-canonical descriptor forms are rejected, not guessed at.
    let response = client
        .post("/query", r#"{"sources": [[0, 0]], "strategy": "quantum"}"#)
        .unwrap();
    assert_eq!(response.status, 400);

    // Oversized body: 413 from the declaration alone.
    let huge = format!(
        r#"{{"sources": [[0, 0]], "padding": "{}"}}"#,
        "x".repeat(4096)
    );
    let response = client.post("/query", &huge).unwrap();
    assert_eq!(response.status, 413);

    // Well-formed but semantically impossible: snapshot 9 does not exist.
    let bad_root = Search::from(TemporalNode::from_raw(0, 9)).descriptor();
    let response = client.query(&bad_root).unwrap();
    assert_eq!(response.status, 422);

    // Unknown route / wrong method.
    assert_eq!(client.get("/nope").unwrap().status, 404);
    assert_eq!(client.get("/query").unwrap().status, 405);

    // Ingest validation: malformed pairs and bad labels.
    assert_eq!(
        client
            .post("/ingest", r#"{"events": [[0]]}"#)
            .unwrap()
            .status,
        400
    );
    assert_eq!(client.post("/ingest", "{}").unwrap().status, 400);
    // Seal labels must be strictly increasing: the fixture sealed label 2.
    assert_eq!(
        client.post("/ingest", r#"{"seal": 0}"#).unwrap().status,
        422
    );

    // After all of that, the accept loop still serves real queries.
    let good = Search::from(TemporalNode::from_raw(0, 0)).descriptor();
    let response = client.query(&good).unwrap();
    assert_eq!(response.status, 200);
    let expected = search_result_to_json(&good.to_search().run(fixture_live().graph()).unwrap());
    assert_eq!(response.body, expected);
}

#[test]
fn stats_and_health_report_the_serving_state() {
    let (server, client) = start(ServerConfig::default());
    let descriptor = Search::from(TemporalNode::from_raw(0, 0)).descriptor();
    client.query(&descriptor).unwrap(); // miss
    client.query(&descriptor).unwrap(); // peek hit

    let health = client.get("/health").unwrap();
    assert_eq!(health.status, 200);
    let value = egraph_io::parse_value(&health.body).unwrap();
    let object = value.as_object("health").unwrap();
    assert!(object.get("ok").unwrap().as_bool("ok").unwrap());
    assert_eq!(
        object
            .get("num_sealed")
            .unwrap()
            .as_usize("num_sealed")
            .unwrap(),
        3
    );

    let stats = client.get("/stats").unwrap();
    assert_eq!(stats.status, 200);
    let value = egraph_io::parse_value(&stats.body).unwrap();
    let object = value.as_object("stats").unwrap();
    let cache = object.get("cache").unwrap().as_object("cache").unwrap();
    assert_eq!(cache.get("misses").unwrap().as_i64("misses").unwrap(), 1);
    assert_eq!(cache.get("hits").unwrap().as_i64("hits").unwrap(), 1);
    assert_eq!(
        cache.get("requests").unwrap().as_i64("requests").unwrap(),
        2
    );
    assert!((cache.get("hit_rate").unwrap().as_f64("hit_rate").unwrap() - 0.5).abs() < 1e-9);
    let graph = object.get("graph").unwrap().as_object("graph").unwrap();
    assert_eq!(graph.get("num_nodes").unwrap().as_usize("n").unwrap(), 6);
    // Server-side counters: 2 queries + health + this stats request so far.
    let served = object.get("server").unwrap().as_object("server").unwrap();
    assert!(served.get("requests").unwrap().as_i64("requests").unwrap() >= 4);
    drop(server);
}

#[test]
fn shutdown_terminates_subscriptions_and_refuses_new_connections() {
    let (mut server, client) = start(ServerConfig::default());
    let descriptor = Search::from(TemporalNode::from_raw(0, 0)).descriptor();
    let mut subscription = client.subscribe(&descriptor).unwrap();
    // Drain the initial frame so shutdown's final chunk is next.
    assert!(subscription.next_frame().unwrap().is_some());

    let addr = server.addr();
    server.shutdown();

    // The stream ends cleanly with the chunked terminator, not an abort.
    assert_eq!(subscription.next_frame().unwrap(), None);

    // The listener is gone: new connections fail outright or are never
    // answered (the accept loop has exited either way).
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(stream) => {
            stream
                .set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let mut buf = [0u8; 1];
            let n = (&stream).read(&mut buf).unwrap_or(0);
            assert_eq!(n, 0, "nothing must answer after shutdown");
        }
    }
}

#[test]
fn a_stalled_client_cannot_wedge_the_server() {
    let (server, client) = start(ServerConfig {
        io_timeout: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    });
    // Connect and send nothing: the handler's read times out and the
    // connection is abandoned without a response.
    let stalled = TcpStream::connect(server.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(300));

    // The server is still fully serviceable.
    let descriptor = Search::from(TemporalNode::from_raw(0, 0)).descriptor();
    let response = client.query(&descriptor).unwrap();
    assert_eq!(response.status, 200);
    drop(stalled);
}
