//! Seeded differential fuzz harness for the cache-invalidation matrix — the
//! pin that keeps every incremental repair row honest.
//!
//! Each seed drives a randomized interleaved event stream (insert /
//! insert-unique / grow-nodes / seal) into a cached [`LiveGraph`] *and* an
//! identical **twin** graph that is never cached. After every seal, every
//! cell of the matrix — all five strategies × direction × window × reverse
//! × parents, error cells included — is executed through the cache and
//! from scratch on the twin, asserting:
//!
//! * **result equality** payload-for-payload (`common::matrix::
//!   assert_equivalent` — the same assertion the standing differential
//!   suite uses), errors compared exactly;
//! * **the expected [`CacheOutcome`] per row** (`common::matrix::
//!   expected_outcome`): a descriptor that succeeded at this version hits;
//!   one that succeeded at an older version repairs via its matrix row
//!   (`Extended` / `Redimensioned` / `Resettled` — never `Recomputed`);
//!   anything else (first sight, or previously erroring) misses.
//!
//! A wrong retained frontier would silently serve stale distances forever —
//! this harness is the reason it can't. The default seed sweep is eight
//! fixed seeds (CI runs them in release); override with a comma-separated
//! `EGRAPH_MATRIX_FUZZ_SEEDS` to reproduce or broaden a run.

mod common;

use common::matrix::{assert_equivalent, expected_outcome, STRATEGIES};
use evolving_graphs::prelude::*;
use evolving_graphs::stream::{CacheOutcome, EdgeEvent, LiveGraph, QueryCache};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const DEFAULT_SEEDS: [u64; 8] = [
    0xA11CE, 0xB0B, 0xCAFE, 0xD00D, 0x5EED5, 0xF00D, 0xBEEF7, 0x1CEB01,
];

fn seeds() -> Vec<u64> {
    match std::env::var("EGRAPH_MATRIX_FUZZ_SEEDS") {
        Ok(spec) => spec
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad seed {s:?} in EGRAPH_MATRIX_FUZZ_SEEDS"))
            })
            .collect(),
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

/// Applies one event to the cached graph and its scratch twin, keeping the
/// two byte-identical by construction.
fn apply_both(live: &mut LiveGraph, twin: &mut LiveGraph, event: EdgeEvent) {
    live.apply(event).unwrap();
    twin.apply(event).unwrap();
}

/// One randomized ingestion batch sealed under `label` on both graphs.
fn seal_both(rng: &mut SmallRng, live: &mut LiveGraph, twin: &mut LiveGraph, label: i64) {
    let mut n = live.graph().num_nodes();
    if rng.gen_range(0..3) == 0 {
        n += rng.gen_range(1..3usize);
        apply_both(live, twin, EdgeEvent::grow_nodes(n));
    }
    for _ in 0..rng.gen_range(2..3 * n) {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u == v {
            continue;
        }
        let event = if rng.gen_range(0..4) == 0 {
            EdgeEvent::insert_unique(u, v)
        } else {
            EdgeEvent::insert(u, v)
        };
        apply_both(live, twin, event);
    }
    live.seal_snapshot(label).unwrap();
    twin.seal_snapshot(label).unwrap();
}

/// Every cell of the invalidation matrix for one root configuration. Window
/// bounds are fixed per seed (not per seal) so each descriptor stays stable
/// across the run and walks the miss → hit → repair lifecycle; the `..=far`
/// cell starts as a `TimeOutOfRange` error and *heals* into a miss once
/// enough snapshots seal — errors must never be cached.
fn matrix_cells(root: TemporalNode, partner: TemporalNode, num_nodes: usize) -> Vec<Search> {
    let windows: [fn(Search) -> Search; 5] = [
        |s| s,                  // full
        |s| s.window(1u32..),   // start-bounded, unbounded end
        |s| s.window(0u32..=1), // bounded end, always sealed after step 2
        |s| s.window(..=3u32),  // bounded end beyond the early graph: heals
        |s| s.window(2u32..2),  // statically empty: errors forever
    ];
    let mut cells = Vec::new();
    for &strategy in &STRATEGIES {
        for backward in [false, true] {
            for reverse in [false, true] {
                for window in windows {
                    let mut s = Search::from(root).strategy(strategy);
                    if backward {
                        s = s.direction(Direction::Backward);
                    }
                    if reverse {
                        s = s.reverse();
                    }
                    cells.push(window(s.clone()));
                    // Parents only compose with the hop engines (the builder
                    // forces Serial); adding them to every strategy would
                    // collapse into duplicate Serial descriptors.
                    if strategy == Strategy::Serial {
                        cells.push(window(s.with_parents()));
                    }
                }
            }
        }
    }
    // Multi-source cells (duplicates included) for the engines where source
    // lists matter most: the shared frontier and the per-source hop engine.
    for strategy in [Strategy::Serial, Strategy::SharedFrontier] {
        for backward in [false, true] {
            for window in [windows[0], windows[2]] {
                let mut s = Search::from_sources([root, partner, root]).strategy(strategy);
                if backward {
                    s = s.direction(Direction::Backward);
                }
                cells.push(window(s));
            }
        }
    }
    // Error cells: a root past the node universe (heals if the graph grows
    // over it) and a root in a not-yet-sealed snapshot (heals with seals).
    cells.push(Search::from(TemporalNode::from_raw(
        num_nodes as u32 + 1,
        0,
    )));
    cells.push(Search::from(TemporalNode::new(root.node, TimeIndex(4))));
    cells.push(
        Search::from(TemporalNode::new(root.node, TimeIndex(4)))
            .strategy(Strategy::Foremost)
            .backward(),
    );
    cells
}

#[test]
fn every_matrix_cell_matches_a_scratch_twin_after_every_seal() {
    for seed in seeds() {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n0 = 8 + (seed % 5) as usize;
        let mut live = LiveGraph::directed(n0);
        let mut twin = LiveGraph::directed(n0);
        let cache = QueryCache::new();
        seal_both(&mut rng, &mut live, &mut twin, 0);

        let root = live
            .graph()
            .active_nodes()
            .first()
            .copied()
            .expect("the first seal inserts at least one edge");
        let partner = live
            .graph()
            .active_nodes()
            .last()
            .copied()
            .expect("at least one active node");
        let cells = matrix_cells(root, partner, n0);

        // Version of the last *successful* execution per descriptor — the
        // harness's independent model of what the cache should do next.
        let mut last_ok: HashMap<QueryDescriptor, u64> = HashMap::new();

        for step in 1..7i64 {
            let version = live.version();
            for (i, cell) in cells.iter().enumerate() {
                let descriptor = cell.descriptor();
                let label = format!("seed {seed:#x} step {step} cell {i} {descriptor:?}");
                let traced = cache.execute_traced(&live, cell);
                let scratch = cell.run(twin.graph());
                match &traced {
                    Ok((_, outcome)) => {
                        let expected = expected_outcome(
                            &descriptor,
                            last_ok.get(&descriptor).copied(),
                            version,
                        );
                        assert_eq!(*outcome, expected, "{label}: outcome");
                        assert_ne!(
                            *outcome,
                            CacheOutcome::Recomputed,
                            "{label}: no matrix row recomputes"
                        );
                        last_ok.insert(descriptor, version);
                    }
                    Err(_) => {
                        assert!(
                            !last_ok.contains_key(&descriptor),
                            "{label}: a query that once succeeded can never fail again \
                             on an append-only graph"
                        );
                    }
                }
                assert_equivalent(&label, live.graph(), cell, traced.map(|(r, _)| r), scratch);
            }
            seal_both(&mut rng, &mut live, &mut twin, step);
        }

        let stats = cache.stats();
        assert_eq!(stats.recomputes, 0, "seed {seed:#x}: {stats:?}");
        assert!(stats.hits > 0, "seed {seed:#x}: {stats:?}");
        assert!(stats.extensions > 0, "seed {seed:#x}: {stats:?}");
        assert!(stats.extended_shared > 0, "seed {seed:#x}: {stats:?}");
        assert!(stats.redimensioned > 0, "seed {seed:#x}: {stats:?}");
        assert!(stats.stable_core_resettled > 0, "seed {seed:#x}: {stats:?}");
    }
}

#[test]
fn healed_error_cells_enter_the_normal_lifecycle() {
    // Deterministic companion to the fuzz sweep: a bounded window whose end
    // does not exist yet must error, heal into a miss once sealed, hit while
    // current, and re-dimension after further seals — never recompute.
    let mut live = LiveGraph::directed(4);
    let cache = QueryCache::new();
    live.insert(NodeId(0), NodeId(1)).unwrap();
    live.seal_snapshot(0).unwrap();
    let query = Search::from(TemporalNode::from_raw(0, 0)).window(..=1u32);

    assert!(matches!(
        cache.execute(&live, &query),
        Err(GraphError::TimeOutOfRange { .. })
    ));
    live.insert(NodeId(1), NodeId(2)).unwrap();
    live.seal_snapshot(1).unwrap();
    let (_, o) = cache.execute_traced(&live, &query).unwrap();
    assert_eq!(o, CacheOutcome::Miss, "healed error enters as a miss");
    let (_, o) = cache.execute_traced(&live, &query).unwrap();
    assert_eq!(o, CacheOutcome::Hit);
    live.insert(NodeId(2), NodeId(3)).unwrap();
    live.seal_snapshot(2).unwrap();
    let (result, o) = cache.execute_traced(&live, &query).unwrap();
    assert_eq!(o, CacheOutcome::Redimensioned);
    assert_eq!(
        result.distance_map().as_flat_slice(),
        query
            .run(live.graph())
            .unwrap()
            .distance_map()
            .as_flat_slice()
    );
    assert_eq!(cache.stats().recomputes, 0);
}
