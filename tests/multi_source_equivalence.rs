//! Oracle suite for the shared-frontier multi-source engines: the single
//! shared traversal (`Strategy::SharedFrontier`, `multi_source_shared`,
//! `par_multi_source_shared`) must agree with the per-source-minimum oracle
//! built from independent `Strategy::{Serial, Parallel, Algebraic}` runs —
//! distances *and* nearest-source attribution (ties to the smallest source
//! index) — including duplicate roots, roots at different snapshots and
//! unreachable components.

use evolving_graphs::prelude::*;

const HOP_STRATEGIES: [Strategy; 3] = [Strategy::Serial, Strategy::Parallel, Strategy::Algebraic];

fn workloads() -> Vec<(&'static str, AdjacencyListGraph)> {
    let mut out = Vec::new();
    for seed in [5u64, 6] {
        out.push((
            "uniform_random",
            uniform_random_graph(&UniformRandomConfig {
                num_nodes: 40,
                num_timestamps: 5,
                num_edges: 220,
                directed: true,
                seed,
            }),
        ));
    }
    out.push((
        "preferential",
        preferential_attachment(&PreferentialConfig {
            num_nodes: 45,
            num_timestamps: 6,
            edges_per_timestamp: 35,
            seed: 7,
        }),
    ));
    out
}

/// Deterministic multi-source seed sets, deliberately spanning different
/// snapshots (the generators attach edges at every snapshot, so stepping
/// through `active_nodes` mixes times).
fn sample_sources(g: &AdjacencyListGraph) -> Vec<TemporalNode> {
    let actives = g.active_nodes();
    let step = (actives.len() / 4).max(1);
    actives.into_iter().step_by(step).take(4).collect()
}

/// The per-source-minimum oracle: minimum distance over per-source hop maps,
/// attribution to the smallest source index achieving it.
fn oracle(result: &SearchResult, tn: TemporalNode) -> Option<(u32, usize)> {
    result
        .distance_maps()
        .iter()
        .enumerate()
        .filter_map(|(i, m)| m.distance(tn).map(|d| (d, i)))
        .min()
}

#[test]
fn shared_frontier_matches_per_source_minimum_of_every_hop_strategy() {
    for (name, g) in workloads() {
        let sources = sample_sources(&g);
        let shared = Search::from_sources(sources.iter().copied())
            .strategy(Strategy::SharedFrontier)
            .run(&g)
            .unwrap();
        for strategy in HOP_STRATEGIES {
            let per_source = Search::from_sources(sources.iter().copied())
                .strategy(strategy)
                .run(&g)
                .unwrap();
            for tn in g.active_nodes() {
                let expected = oracle(&per_source, tn);
                assert_eq!(
                    shared.distance(tn),
                    expected.map(|(d, _)| d),
                    "{name}: {strategy:?} distance at {tn:?}"
                );
                assert_eq!(
                    shared.nearest_source_index(tn),
                    expected.map(|(_, i)| i),
                    "{name}: {strategy:?} attribution at {tn:?}"
                );
                assert_eq!(
                    shared.nearest_source(tn),
                    per_source.nearest_source(tn),
                    "{name}: {strategy:?} nearest source at {tn:?}"
                );
            }
            assert_eq!(shared.num_reached(), per_source.num_reached(), "{name}");
            assert_eq!(shared.reached(), per_source.reached(), "{name}");
            assert_eq!(
                shared.reached_node_ids(),
                per_source.reached_node_ids(),
                "{name}"
            );
        }
    }
}

#[test]
fn serial_and_parallel_shared_engines_are_bit_identical() {
    for (name, g) in workloads() {
        let sources = sample_sources(&g);
        let serial = multi_source_shared(&g, &sources).unwrap();
        let parallel = par_multi_source_shared(&g, &sources).unwrap();
        assert_eq!(serial.as_flat_slice(), parallel.as_flat_slice(), "{name}");
        for tn in g.active_nodes() {
            assert_eq!(
                serial.nearest_source_index(tn),
                parallel.nearest_source_index(tn),
                "{name} at {tn:?}"
            );
        }
    }
}

#[test]
fn shared_frontier_composes_with_windows_backward_and_reverse() {
    for (name, g) in workloads() {
        let n_t = g.num_timestamps() as u32;
        let sources: Vec<TemporalNode> = sample_sources(&g)
            .into_iter()
            .filter(|s| s.time.0 >= 1)
            .collect();
        if sources.len() < 2 {
            continue;
        }
        for direction in [Direction::Forward, Direction::Backward] {
            for reversed in [false, true] {
                let build = || {
                    let mut s = Search::from_sources(sources.iter().copied())
                        .direction(direction)
                        .window(1..=n_t - 1);
                    if reversed {
                        s = s.reverse();
                    }
                    s
                };
                let shared = build().strategy(Strategy::SharedFrontier).run(&g).unwrap();
                let per_source = build().run(&g).unwrap();
                for tn in g.active_nodes() {
                    let expected = oracle(&per_source, tn);
                    assert_eq!(
                        shared.distance(tn).zip(shared.nearest_source_index(tn)),
                        expected,
                        "{name}: {direction:?} reversed={reversed} at {tn:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn duplicate_roots_attribute_to_the_first_occurrence() {
    for (name, g) in workloads() {
        let mut sources = sample_sources(&g);
        let dup = sources[0];
        sources.push(dup); // same temporal node twice, indices 0 and len-1
        let shared = Search::from_sources(sources.iter().copied())
            .strategy(Strategy::SharedFrontier)
            .run(&g)
            .unwrap();
        assert_eq!(shared.num_sources(), sources.len(), "{name}");
        let last = sources.len() - 1;
        for tn in g.active_nodes() {
            if let Some(i) = shared.nearest_source_index(tn) {
                assert_ne!(
                    i, last,
                    "{name}: duplicate source stole attribution at {tn:?}"
                );
            }
        }
    }
}

#[test]
fn roots_at_different_snapshots_claim_their_own_regions() {
    // staircase(n): node i active at snapshots i-1 and i. Seeding the two
    // ends splits the chain: every node is claimed by the nearer end.
    let n = 6u32;
    let g = evolving_graphs::core::examples::staircase(n as usize);
    let early = TemporalNode::from_raw(0, 0);
    let late = TemporalNode::from_raw(n - 1, n - 2);
    let shared = multi_source_shared(&g, &[early, late]).unwrap();
    assert_eq!(shared.nearest_source_index(early), Some(0));
    assert_eq!(shared.nearest_source_index(late), Some(1));
    assert_eq!(shared.distance(early), Some(0));
    assert_eq!(shared.distance(late), Some(0));
    // The oracle agrees everywhere, including interior nodes.
    let a = bfs(&g, early).unwrap();
    let b = bfs(&g, late).unwrap();
    for tn in g.active_nodes() {
        let expected = [a.distance(tn), b.distance(tn)]
            .into_iter()
            .enumerate()
            .filter_map(|(i, d)| d.map(|d| (d, i)))
            .min();
        assert_eq!(shared.distance(tn), expected.map(|(d, _)| d), "at {tn:?}");
        assert_eq!(
            shared.nearest_source_index(tn),
            expected.map(|(_, i)| i),
            "at {tn:?}"
        );
    }
}

#[test]
fn unreachable_components_stay_unreached() {
    // Two disjoint 2-node components across 2 snapshots; sources only in the
    // first component.
    let mut g = AdjacencyListGraph::directed_with_unit_times(4, 2);
    g.add_edge(NodeId(0), NodeId(1), TimeIndex(0)).unwrap();
    g.add_edge(NodeId(0), NodeId(1), TimeIndex(1)).unwrap();
    g.add_edge(NodeId(2), NodeId(3), TimeIndex(0)).unwrap();
    let sources = [TemporalNode::from_raw(0, 0), TemporalNode::from_raw(1, 0)];
    let shared = multi_source_shared(&g, &sources).unwrap();
    for v in [2u32, 3] {
        for t in [0u32, 1] {
            let tn = TemporalNode::from_raw(v, t);
            assert_eq!(shared.distance(tn), None, "at {tn:?}");
            assert_eq!(shared.nearest_source(tn), None, "at {tn:?}");
        }
    }
    let via_builder = Search::from_sources(sources)
        .strategy(Strategy::SharedFrontier)
        .run(&g)
        .unwrap();
    assert!(!via_builder.reaches_node(NodeId(2)));
    assert!(!via_builder.reaches_node(NodeId(3)));
    assert_eq!(via_builder.reached_node_ids(), vec![NodeId(0), NodeId(1)]);
}
