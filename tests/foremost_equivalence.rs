//! Differential equivalence suite for `Strategy::Foremost`: on seeded
//! Erdős–Rényi, preferential-attachment and citation workloads, the dedicated
//! time-ordered sweep must report exactly the arrivals that the hop-BFS
//! engines derive from their full temporal-node expansion — for every
//! combination of direction × window × reverse the builder accepts. Mirrors
//! `tests/search_equivalence.rs`, which pins the hop engines to each other.

use evolving_graphs::citation::CitationNetwork;
use evolving_graphs::prelude::*;

/// The generated workloads the suite sweeps.
fn workloads() -> Vec<(&'static str, AdjacencyListGraph)> {
    let mut out = Vec::new();
    for seed in [11u64, 12] {
        out.push((
            "erdos_renyi",
            erdos_renyi_evolving(&ErConfig {
                num_nodes: 36,
                num_timestamps: 5,
                edge_probability: 0.06,
                directed: true,
                seed,
            }),
        ));
    }
    out.push((
        "preferential",
        preferential_attachment(&PreferentialConfig {
            num_nodes: 50,
            num_timestamps: 6,
            edges_per_timestamp: 40,
            seed: 21,
        }),
    ));
    let corpus = synthetic_citation_corpus(&CitationConfig {
        num_authors: 60,
        num_epochs: 8,
        papers_per_epoch: 12,
        citations_per_paper: 3,
        preferential_bias: 1.0,
        seed: 31,
    });
    out.push((
        "citation",
        CitationNetwork::from_corpus(&corpus).graph().clone(),
    ));
    out
}

/// A few active roots spread across the graph, deterministically.
fn sample_roots(g: &AdjacencyListGraph) -> Vec<TemporalNode> {
    let actives = g.active_nodes();
    let step = (actives.len() / 5).max(1);
    actives.into_iter().step_by(step).take(5).collect()
}

/// The windows swept per workload: full, suffix, prefix, and (when the graph
/// is deep enough) a proper interior slice.
fn windows(num_timestamps: usize) -> Vec<(u32, u32)> {
    let last = (num_timestamps - 1) as u32;
    let mut out = vec![(0, last)];
    if last >= 1 {
        out.push((1, last));
        out.push((0, last - 1));
    }
    if last >= 2 {
        out.push((1, last - 1));
    }
    out
}

/// Applies one direction × window × reverse combination to a fresh builder.
fn configure(
    root: TemporalNode,
    direction: Direction,
    window: (u32, u32),
    reversed: bool,
) -> Search {
    let mut search = Search::from(root)
        .direction(direction)
        .window(window.0..=window.1);
    if reversed {
        search = search.reverse();
    }
    search
}

#[test]
fn foremost_arrivals_match_hop_bfs_derivation_everywhere() {
    for (name, g) in workloads() {
        let n = g.num_nodes();
        for root in sample_roots(&g) {
            for direction in [Direction::Forward, Direction::Backward] {
                for window in windows(g.num_timestamps()) {
                    for reversed in [false, true] {
                        let label = format!(
                            "{name}: root {root:?}, {direction:?}, window {window:?}, \
                             reversed {reversed}"
                        );
                        let hops = configure(root, direction, window, reversed).run(&g);
                        let sweep = configure(root, direction, window, reversed)
                            .strategy(Strategy::Foremost)
                            .run(&g);
                        match (hops, sweep) {
                            (Ok(hops), Ok(sweep)) => {
                                for v in 0..n {
                                    let v = NodeId::from_index(v);
                                    assert_eq!(
                                        sweep.arrival(v),
                                        hops.arrival(v),
                                        "{label}, node {v:?}"
                                    );
                                    assert_eq!(
                                        sweep.reaches_node(v),
                                        hops.reaches_node(v),
                                        "{label}, node {v:?}"
                                    );
                                }
                                assert_eq!(
                                    sweep.reached_node_ids(),
                                    hops.reached_node_ids(),
                                    "{label}"
                                );
                            }
                            // Both engines must agree on rejection too
                            // (source outside the window, inactive in the
                            // windowed view, …).
                            (Err(h), Err(s)) => assert_eq!(h, s, "{label}"),
                            (hops, sweep) => panic!(
                                "{label}: engines disagree on validity: \
                                 hops {hops:?}, sweep {sweep:?}"
                            ),
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn foremost_multi_source_unions_per_source_arrivals() {
    for (name, g) in workloads() {
        let roots = sample_roots(&g);
        let multi = Search::from_sources(roots.iter().copied())
            .strategy(Strategy::Foremost)
            .run(&g)
            .unwrap();
        let singles: Vec<std::sync::Arc<SearchResult>> = roots
            .iter()
            .map(|&r| {
                Search::from(r)
                    .strategy(Strategy::Foremost)
                    .run(&g)
                    .unwrap()
            })
            .collect();
        for v in 0..g.num_nodes() {
            let v = NodeId::from_index(v);
            let expected = singles.iter().filter_map(|s| s.arrival(v)).min();
            assert_eq!(multi.arrival(v), expected, "{name}, node {v:?}");
        }
    }
}

#[test]
fn foremost_matches_the_engine_sweep_on_the_identity_query() {
    // Without window/reverse/backward the builder must hand back exactly the
    // engine's arrivals in original coordinates.
    for (name, g) in workloads() {
        for root in sample_roots(&g) {
            let via_builder = Search::from(root)
                .strategy(Strategy::Foremost)
                .run(&g)
                .unwrap();
            let via_engine = earliest_arrival(&g, root);
            for v in 0..g.num_nodes() {
                let v = NodeId::from_index(v);
                assert_eq!(
                    via_builder.arrival(v),
                    via_engine.arrival(v),
                    "{name}, root {root:?}, node {v:?}"
                );
            }
            assert_eq!(
                via_builder.foremost_results()[0].reachable(),
                via_engine.reachable(),
                "{name}, root {root:?}"
            );
        }
    }
}

#[test]
fn backward_foremost_reports_latest_departures() {
    // A hand-checkable case on the paper example: backward from (3, t3), the
    // latest snapshot from which each node can still reach the root.
    let g = evolving_graphs::core::examples::paper_figure1();
    let root = TemporalNode::from_raw(2, 2);
    let sweep = Search::from(root)
        .backward()
        .strategy(Strategy::Foremost)
        .run(&g)
        .unwrap();
    assert!(sweep.is_time_reversed());
    // Node 1 (paper 2) can depart for (3, t3) as late as t3 itself.
    assert_eq!(sweep.arrival(NodeId(1)), Some(TimeIndex(2)));
    // Node 0 (paper 1) must depart by t2 (1 → 3 at t2, then wait).
    assert_eq!(sweep.arrival(NodeId(0)), Some(TimeIndex(1)));
    assert_eq!(sweep.arrival(NodeId(2)), Some(TimeIndex(2)));
}
