//! Property-based tests of the structural invariants behind the paper's
//! definitions: every BFS distance is witnessed by a valid temporal path,
//! activeness gates reachability, acyclic snapshots give nilpotent block
//! matrices, incremental construction equals batch construction, and the
//! serialisation formats round-trip.

use proptest::prelude::*;

use evolving_graphs::io::{
    bfs_result_from_json, bfs_result_to_json, graph_from_json, graph_to_json, read_edge_list,
    to_edge_list_string,
};
use evolving_graphs::prelude::*;

fn graph_strategy() -> impl Strategy<Value = (usize, usize, Vec<(u32, u32, u32)>)> {
    (2usize..12, 1usize..5).prop_flat_map(|(n, t)| {
        let edge = (0..n as u32, 0..n as u32, 0..t as u32);
        proptest::collection::vec(edge, 0..50).prop_map(move |edges| (n, t, edges))
    })
}

fn build(n: usize, t: usize, edges: &[(u32, u32, u32)]) -> AdjacencyListGraph {
    let mut g = AdjacencyListGraph::directed_with_unit_times(n, t);
    for &(u, v, time) in edges {
        if u != v {
            g.add_edge(NodeId(u), NodeId(v), TimeIndex(time)).unwrap();
        }
    }
    g
}

/// DAG-snapshot strategy: edges always point from a lower to a higher node
/// id, so every snapshot is acyclic (the hypothesis of Lemma 1).
fn acyclic_graph_strategy() -> impl Strategy<Value = (usize, usize, Vec<(u32, u32, u32)>)> {
    graph_strategy().prop_map(|(n, t, edges)| {
        let dag_edges = edges
            .into_iter()
            .map(|(u, v, time)| if u < v { (u, v, time) } else { (v, u, time) })
            .collect();
        (n, t, dag_edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every reached temporal node has a BFS-tree path that (a) is a valid
    /// temporal path per Definition 4 and (b) has exactly `distance + 1`
    /// nodes; and distance-1 nodes are exactly the root's forward neighbors.
    #[test]
    fn bfs_distances_are_witnessed_by_temporal_paths((n, t, edges) in graph_strategy()) {
        let g = build(n, t, &edges);
        if let Some(&root) = g.active_nodes().first() {
            let map = bfs_with_parents(&g, root).unwrap();
            for (tn, d) in map.reached() {
                let path = map.path_to(tn).unwrap();
                prop_assert_eq!(path.len() as u32, d + 1);
                prop_assert!(is_temporal_path(&g, &path), "invalid path {:?}", path);
            }
            let mut layer1 = map.layer(1);
            layer1.sort();
            let mut fwd: Vec<TemporalNode> = g.forward_neighbors(root);
            fwd.sort();
            fwd.dedup();
            prop_assert_eq!(layer1, fwd);
        }
    }

    /// Reachability respects activeness and time ordering: nothing strictly
    /// earlier than the root is ever reached, and inactive temporal nodes are
    /// never reached.
    #[test]
    fn reached_nodes_are_active_and_not_earlier((n, t, edges) in graph_strategy()) {
        let g = build(n, t, &edges);
        for &root in g.active_nodes().iter().take(4) {
            let map = bfs(&g, root).unwrap();
            for (tn, _) in map.reached() {
                prop_assert!(g.is_active(tn.node, tn.time));
                prop_assert!(tn.time >= root.time);
            }
        }
    }

    /// BFS layers are monotone: a node at distance k+1 has some in-neighbor
    /// (in the forward-neighbor relation) at distance k.
    #[test]
    fn bfs_layers_are_consistent((n, t, edges) in graph_strategy()) {
        let g = build(n, t, &edges);
        if let Some(&root) = g.active_nodes().first() {
            let map = bfs(&g, root).unwrap();
            for (tn, d) in map.reached() {
                if d == 0 { continue; }
                let found = g
                    .backward_neighbors(tn)
                    .iter()
                    .any(|&p| map.distance(p) == Some(d - 1));
                prop_assert!(found, "node {:?} at distance {} has no predecessor", tn, d);
            }
        }
    }

    /// Lemma 1: acyclic snapshots ⇒ nilpotent block adjacency matrix; and the
    /// algebraic BFS terminates with the same result as Algorithm 1.
    #[test]
    fn lemma1_nilpotency_on_acyclic_graphs((n, t, edges) in acyclic_graph_strategy()) {
        let g = build(n, t, &edges);
        let (acyclic, nilpotent) = lemma1_check(&g);
        prop_assert!(acyclic);
        prop_assert!(nilpotent);
    }

    /// Incremental insertion and batch construction produce identical graphs
    /// (same activeness, edges and BFS results).
    #[test]
    fn incremental_equals_batch_construction((n, t, edges) in graph_strategy()) {
        let filtered: Vec<(u32, u32, u32)> =
            edges.iter().copied().filter(|&(u, v, _)| u != v).collect();
        let batch = AdjacencyListGraph::from_indexed_edges(n, t, &filtered).unwrap();
        let incremental = build(n, t, &edges);
        prop_assert_eq!(batch.edge_triples(), incremental.edge_triples());
        prop_assert_eq!(batch.active_nodes(), incremental.active_nodes());
        if let Some(&root) = incremental.active_nodes().first() {
            let a = bfs(&batch, root).unwrap();
            let b = bfs(&incremental, root).unwrap();
            prop_assert_eq!(a.as_flat_slice(), b.as_flat_slice());
        }
    }

    /// The adjacency-list and snapshot-sequence representations agree.
    #[test]
    fn representations_agree((n, t, edges) in graph_strategy()) {
        let filtered: Vec<(u32, u32, u32)> =
            edges.iter().copied().filter(|&(u, v, _)| u != v).collect();
        let adj = AdjacencyListGraph::from_indexed_edges(n, t, &filtered).unwrap();
        let snap = SnapshotSequence::from_indexed_edges(n, t, &filtered).unwrap();
        prop_assert_eq!(adj.num_static_edges(), snap.num_static_edges());
        prop_assert_eq!(adj.active_nodes(), snap.active_nodes());
        if let Some(&root) = adj.active_nodes().first() {
            let a = bfs(&adj, root).unwrap();
            let b = bfs(&snap, root).unwrap();
            prop_assert_eq!(a.as_flat_slice(), b.as_flat_slice());
        }
    }

    /// Edge-list and JSON serialisation round-trip graphs and BFS results.
    #[test]
    fn serialisation_round_trips((n, t, edges) in graph_strategy()) {
        let g = build(n, t, &edges);
        // Drop graphs with no edges: the inferred universe of an empty edge
        // list is legitimately empty.
        prop_assume!(g.num_static_edges() > 0);

        let text = to_edge_list_string(&g);
        let from_text = read_edge_list(text.as_bytes()).unwrap();
        prop_assert_eq!(from_text.num_static_edges(), g.num_static_edges());

        let json = graph_to_json(&g).unwrap();
        let from_json = graph_from_json(&json).unwrap();
        prop_assert_eq!(from_json.edge_triples(), g.edge_triples());

        if let Some(&root) = g.active_nodes().first() {
            let map = bfs(&g, root).unwrap();
            let round = bfs_result_from_json(&bfs_result_to_json(&map).unwrap()).unwrap();
            prop_assert_eq!(round.as_flat_slice(), map.as_flat_slice());
        }
    }

    /// The time-window view starting at the root's snapshot reproduces the
    /// full BFS (Section II-C's "earlier snapshots are irrelevant").
    #[test]
    fn suffix_window_is_equivalent((n, t, edges) in graph_strategy()) {
        let g = build(n, t, &edges);
        for &root in g.active_nodes().iter().take(3) {
            let full = bfs(&g, root).unwrap();
            let w = TimeWindowView::from_start(&g, root.time).unwrap();
            let wroot = w.to_window_temporal(root).unwrap();
            let windowed = bfs(&w, wroot).unwrap();
            prop_assert_eq!(full.num_reached(), windowed.num_reached());
            for (tn, d) in windowed.reached() {
                prop_assert_eq!(full.distance(w.to_inner_temporal(tn)), Some(d));
            }
        }
    }
}
