//! Property-style tests of the structural invariants behind the paper's
//! definitions: every BFS distance is witnessed by a valid temporal path,
//! activeness gates reachability, acyclic snapshots give nilpotent block
//! matrices, incremental construction equals batch construction, and the
//! serialisation formats round-trip.
//!
//! The build environment has no proptest, so the suite drives the same
//! properties with a deterministic seeded generator: every case is
//! reproducible from its trial index.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use evolving_graphs::io::{
    bfs_result_from_json, bfs_result_to_json, graph_from_json, graph_to_json, read_edge_list,
    to_edge_list_string,
};
use evolving_graphs::prelude::*;

const TRIALS: u64 = 64;

/// Deterministic random edge set for one trial: 2–11 nodes, 1–4 snapshots,
/// up to 50 directed edges (self-loops excluded).
fn random_edges(seed: u64) -> (usize, usize, Vec<(u32, u32, u32)>) {
    let mut rng = SmallRng::seed_from_u64(0x1A7B_4000 ^ seed);
    let n = rng.gen_range(2usize..12);
    let t = rng.gen_range(1usize..5);
    let num_edges = rng.gen_range(0usize..50);
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        let time = rng.gen_range(0..t as u32);
        if u != v {
            edges.push((u, v, time));
        }
    }
    (n, t, edges)
}

fn build(n: usize, t: usize, edges: &[(u32, u32, u32)]) -> AdjacencyListGraph {
    AdjacencyListGraph::from_indexed_edges(n, t, edges).unwrap()
}

/// Every reached temporal node has a BFS-tree path that (a) is a valid
/// temporal path per Definition 4 and (b) has exactly `distance + 1` nodes;
/// and distance-1 nodes are exactly the root's forward neighbors.
#[test]
fn bfs_distances_are_witnessed_by_temporal_paths() {
    for trial in 0..TRIALS {
        let (n, t, edges) = random_edges(trial);
        let g = build(n, t, &edges);
        if let Some(&root) = g.active_nodes().first() {
            let map = bfs_with_parents(&g, root).unwrap();
            for (tn, d) in map.reached() {
                let path = map.path_to(tn).unwrap();
                assert_eq!(path.len() as u32, d + 1, "trial {trial}");
                assert!(
                    is_temporal_path(&g, &path),
                    "trial {trial}: invalid path {path:?}"
                );
            }
            let mut layer1 = map.layer(1);
            layer1.sort();
            let mut fwd: Vec<TemporalNode> = g.forward_neighbors(root);
            fwd.sort();
            fwd.dedup();
            assert_eq!(layer1, fwd, "trial {trial}");
        }
    }
}

/// Reachability respects activeness and time ordering: nothing strictly
/// earlier than the root is ever reached, and inactive temporal nodes are
/// never reached.
#[test]
fn reached_nodes_are_active_and_not_earlier() {
    for trial in 0..TRIALS {
        let (n, t, edges) = random_edges(trial);
        let g = build(n, t, &edges);
        for &root in g.active_nodes().iter().take(4) {
            let map = bfs(&g, root).unwrap();
            for (tn, _) in map.reached() {
                assert!(g.is_active(tn.node, tn.time), "trial {trial}, {tn:?}");
                assert!(tn.time >= root.time, "trial {trial}, {tn:?}");
            }
        }
    }
}

/// BFS layers are monotone: a node at distance k+1 has some in-neighbor (in
/// the forward-neighbor relation) at distance k.
#[test]
fn bfs_layers_are_consistent() {
    for trial in 0..TRIALS {
        let (n, t, edges) = random_edges(trial);
        let g = build(n, t, &edges);
        if let Some(&root) = g.active_nodes().first() {
            let map = bfs(&g, root).unwrap();
            for (tn, d) in map.reached() {
                if d == 0 {
                    continue;
                }
                let found = g
                    .backward_neighbors(tn)
                    .iter()
                    .any(|&p| map.distance(p) == Some(d - 1));
                assert!(
                    found,
                    "trial {trial}: node {tn:?} at distance {d} has no predecessor"
                );
            }
        }
    }
}

/// Lemma 1: acyclic snapshots ⇒ nilpotent block adjacency matrix; and the
/// algebraic BFS terminates with the same result as Algorithm 1.
#[test]
fn lemma1_nilpotency_on_acyclic_graphs() {
    for trial in 0..TRIALS {
        let (n, t, edges) = random_edges(trial);
        // Orient every edge from the lower to the higher node id, so every
        // snapshot is a DAG (the hypothesis of Lemma 1).
        let dag_edges: Vec<(u32, u32, u32)> = edges
            .into_iter()
            .map(|(u, v, time)| if u < v { (u, v, time) } else { (v, u, time) })
            .collect();
        let g = build(n, t, &dag_edges);
        let (acyclic, nilpotent) = lemma1_check(&g);
        assert!(acyclic, "trial {trial}");
        assert!(nilpotent, "trial {trial}");
    }
}

/// Incremental insertion and batch construction produce identical graphs
/// (same activeness, edges and BFS results).
#[test]
fn incremental_equals_batch_construction() {
    for trial in 0..TRIALS {
        let (n, t, edges) = random_edges(trial);
        let batch = AdjacencyListGraph::from_indexed_edges(n, t, &edges).unwrap();
        let mut incremental = AdjacencyListGraph::directed_with_unit_times(n, t);
        for &(u, v, time) in &edges {
            incremental
                .add_edge(NodeId(u), NodeId(v), TimeIndex(time))
                .unwrap();
        }
        assert_eq!(batch.edge_triples(), incremental.edge_triples());
        assert_eq!(batch.active_nodes(), incremental.active_nodes());
        if let Some(&root) = incremental.active_nodes().first() {
            let a = bfs(&batch, root).unwrap();
            let b = bfs(&incremental, root).unwrap();
            assert_eq!(a.as_flat_slice(), b.as_flat_slice(), "trial {trial}");
        }
    }
}

/// The adjacency-list and snapshot-sequence representations agree.
#[test]
fn representations_agree() {
    for trial in 0..TRIALS {
        let (n, t, edges) = random_edges(trial);
        let adj = AdjacencyListGraph::from_indexed_edges(n, t, &edges).unwrap();
        let snap = SnapshotSequence::from_indexed_edges(n, t, &edges).unwrap();
        assert_eq!(adj.num_static_edges(), snap.num_static_edges());
        assert_eq!(adj.active_nodes(), snap.active_nodes());
        if let Some(&root) = adj.active_nodes().first() {
            let a = bfs(&adj, root).unwrap();
            let b = bfs(&snap, root).unwrap();
            assert_eq!(a.as_flat_slice(), b.as_flat_slice(), "trial {trial}");
        }
    }
}

/// Edge-list and JSON serialisation round-trip graphs and BFS results.
#[test]
fn serialisation_round_trips() {
    for trial in 0..TRIALS {
        let (n, t, edges) = random_edges(trial);
        let g = build(n, t, &edges);
        // Skip graphs with no edges: the inferred universe of an empty edge
        // list is legitimately empty.
        if g.num_static_edges() == 0 {
            continue;
        }

        let text = to_edge_list_string(&g);
        let from_text = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(from_text.num_static_edges(), g.num_static_edges());

        let json = graph_to_json(&g).unwrap();
        let from_json = graph_from_json(&json).unwrap();
        assert_eq!(from_json.edge_triples(), g.edge_triples(), "trial {trial}");

        if let Some(&root) = g.active_nodes().first() {
            let map = bfs(&g, root).unwrap();
            let round = bfs_result_from_json(&bfs_result_to_json(&map).unwrap()).unwrap();
            assert_eq!(round.as_flat_slice(), map.as_flat_slice(), "trial {trial}");
        }
    }
}

/// The time-window view starting at the root's snapshot reproduces the full
/// BFS (Section II-C's "earlier snapshots are irrelevant").
#[test]
fn suffix_window_is_equivalent() {
    for trial in 0..TRIALS {
        let (n, t, edges) = random_edges(trial);
        let g = build(n, t, &edges);
        for &root in g.active_nodes().iter().take(3) {
            let full = bfs(&g, root).unwrap();
            let w = TimeWindowView::from_start(&g, root.time).unwrap();
            let wroot = w.to_window_temporal(root).unwrap();
            let windowed = bfs(&w, wroot).unwrap();
            assert_eq!(full.num_reached(), windowed.num_reached(), "trial {trial}");
            for (tn, d) in windowed.reached() {
                assert_eq!(
                    full.distance(w.to_inner_temporal(tn)),
                    Some(d),
                    "trial {trial}"
                );
            }
        }
    }
}
