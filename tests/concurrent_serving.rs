//! Concurrent-reader differential suite for the sharded `QueryCache`.
//!
//! The cache's serving contract is that `execute(&self, ...)` can be
//! hammered from many threads at once — mixed hits and every incremental
//! repair row of the invalidation matrix — and every thread observes
//! exactly the answer a single-threaded from-scratch `Search::run` on the
//! sealed graph produces. These tests drive that contract with
//! `std::thread::scope` over one shared cache: the graph is sealed between
//! *query storms*, so within a storm some standing queries are current
//! (hits) and some are stale (one thread wins the repair, the rest hit).

use std::sync::Arc;

use evolving_graphs::prelude::*;
use evolving_graphs::stream::{LiveGraph, QueryCache};

const THREADS: usize = 8;
const ROUNDS_PER_THREAD: usize = 10;

const STRATEGIES: [Strategy; 5] = [
    Strategy::Serial,
    Strategy::Parallel,
    Strategy::Algebraic,
    Strategy::Foremost,
    Strategy::SharedFrontier,
];

/// A deterministic xorshift stream (workspace convention for seeded tests).
struct Xs(u64);
impl Xs {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn seal_random_snapshot(rng: &mut Xs, live: &mut LiveGraph, label: i64) {
    let n = live.graph().num_nodes() as u64;
    for _ in 0..3 * n {
        let u = (rng.next() % n) as u32;
        let v = (rng.next() % n) as u32;
        if u != v {
            live.insert(NodeId(u), NodeId(v)).unwrap();
        }
    }
    live.seal_snapshot(label).unwrap();
}

/// The standing queries every thread re-issues: all five strategies, both
/// time directions, plus windowed and multi-source shapes — covering the
/// hit path and every repair row (extend, re-dimension, resettle).
fn standing_queries(root: TemporalNode) -> Vec<Search> {
    let mut queries: Vec<Search> = STRATEGIES
        .iter()
        .flat_map(|&s| {
            [
                Search::from(root).strategy(s),
                Search::from(root).strategy(s).backward(),
            ]
        })
        .collect();
    queries.push(Search::from_sources([root, root]));
    queries.push(Search::from(root).window(0u32..=0));
    queries.push(Search::from(root).reverse());
    queries
}

/// Payload-level equality of a served result against a from-scratch oracle.
fn assert_serves_oracle(label: &str, served: &SearchResult, oracle: &SearchResult) {
    assert_eq!(
        served.sources(),
        oracle.sources(),
        "{label}: sources disagree"
    );
    assert_eq!(
        served.reached_node_ids(),
        oracle.reached_node_ids(),
        "{label}: reached node sets disagree"
    );
    for v in 0..oracle.sources()[0].node.0 + 8 {
        assert_eq!(
            served.arrival(NodeId(v)),
            oracle.arrival(NodeId(v)),
            "{label}: arrival of node {v} disagrees"
        );
    }
}

#[test]
fn threads_hammering_a_shared_cache_match_single_threaded_search() {
    let mut rng = Xs(0x5EED_CAFE);
    let mut live = LiveGraph::directed(24);
    seal_random_snapshot(&mut rng, &mut live, 0);
    let root = live
        .graph()
        .active_nodes()
        .first()
        .copied()
        .expect("the first seal inserts edges");
    let queries = standing_queries(root);
    let cache = QueryCache::new();

    for step in 1..5i64 {
        // Warm some entries so the next storm mixes hits with repairs, then
        // seal: every warmed entry is stale at storm time.
        for query in queries.iter().step_by(2) {
            let _ = cache.execute(&live, query);
        }
        seal_random_snapshot(&mut rng, &mut live, step);

        // Single-threaded oracles on the sealed graph, computed up front.
        let oracles: Vec<Result<Arc<SearchResult>>> =
            queries.iter().map(|q| q.run(live.graph())).collect();

        std::thread::scope(|scope| {
            for thread in 0..THREADS {
                let (live, cache, queries, oracles) = (&live, &cache, &queries, &oracles);
                scope.spawn(move || {
                    for round in 0..ROUNDS_PER_THREAD {
                        // Stagger the starting query per thread so repairs
                        // and hits of *different* descriptors overlap.
                        for (i, query) in queries
                            .iter()
                            .enumerate()
                            .cycle()
                            .skip(thread)
                            .take(queries.len())
                        {
                            let label = format!("step {step} thread {thread} round {round} q{i}");
                            match (cache.execute(live, query), &oracles[i]) {
                                (Ok(served), Ok(oracle)) => {
                                    assert_serves_oracle(&label, &served, oracle)
                                }
                                (Err(got), Err(want)) => {
                                    assert_eq!(&got, want, "{label}: errors disagree")
                                }
                                (got, want) => {
                                    panic!("{label}: cached {got:?} disagrees with {want:?}")
                                }
                            }
                        }
                    }
                });
            }
        });
    }

    let stats = cache.stats();
    assert!(stats.hits > 0, "no hits: {stats:?}");
    assert!(stats.misses > 0, "no misses: {stats:?}");
    assert!(stats.extensions > 0, "no extensions: {stats:?}");
    assert!(
        stats.extended_shared > 0,
        "no shared-frontier extensions: {stats:?}"
    );
    assert!(stats.redimensioned > 0, "no re-dimensions: {stats:?}");
    assert!(
        stats.stable_core_resettled > 0,
        "no stable-core resettles: {stats:?}"
    );
    assert_eq!(
        stats.recomputes, 0,
        "every stale row repairs incrementally: {stats:?}"
    );
    // Repairs run outside the locks, so racing threads may each repair the
    // same stale descriptor (install is deduplicated, the counters are
    // not): at most THREADS repairs per (step, descriptor), against
    // THREADS × ROUNDS_PER_THREAD servings of it — the storms must be
    // hit-dominated by an order of magnitude.
    assert!(
        stats.hits > stats.incremental_repairs(),
        "storms should be hit-dominated: {stats:?}"
    );
}

#[test]
fn concurrent_hits_on_one_entry_serve_the_same_allocation() {
    let mut rng = Xs(0xA11C);
    let mut live = LiveGraph::directed(16);
    seal_random_snapshot(&mut rng, &mut live, 0);
    let root = live.graph().active_nodes()[0];
    let cache = QueryCache::new();
    let query = Search::from(root);
    let baseline = cache.execute(&live, &query).unwrap();

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let (live, cache, query, baseline) = (&live, &cache, &query, &baseline);
            scope.spawn(move || {
                for _ in 0..200 {
                    let served = cache.execute(live, query).unwrap();
                    assert!(
                        Arc::ptr_eq(&served, baseline),
                        "a hit must be an Arc clone of the cached materialisation"
                    );
                }
            });
        }
    });
    let stats = cache.stats();
    assert_eq!(stats.hits as usize, THREADS * 200);
    assert_eq!(stats.misses, 1);
}

#[test]
fn a_bounded_cache_stays_correct_under_concurrent_thrashing() {
    // Eviction under concurrency must never corrupt answers: a capacity far
    // below the working set forces constant miss/evict churn while threads
    // compare every answer to the oracle.
    let mut rng = Xs(0xE71C7);
    let mut live = LiveGraph::directed(16);
    seal_random_snapshot(&mut rng, &mut live, 0);
    let roots = live.graph().active_nodes();
    let queries: Vec<Search> = roots.iter().map(|&r| Search::from(r)).collect();
    let oracles: Vec<Arc<SearchResult>> = queries
        .iter()
        .map(|q| q.run(live.graph()).unwrap())
        .collect();
    let cache = QueryCache::with_capacity(4);

    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let (live, cache, queries, oracles) = (&live, &cache, &queries, &oracles);
            scope.spawn(move || {
                for round in 0..ROUNDS_PER_THREAD {
                    for (i, query) in queries.iter().enumerate() {
                        let served = cache.execute(live, query).unwrap();
                        assert_eq!(
                            served.reached_node_ids(),
                            oracles[i].reached_node_ids(),
                            "thread {thread} round {round} query {i}"
                        );
                    }
                }
            });
        }
    });
    assert!(
        cache.stats().evictions > 0,
        "a working set larger than the bound must evict: {:?}",
        cache.stats()
    );
}
