//! Differential suite for the live-graph subsystem: every answer produced by
//! the `QueryCache` — cache hits and every incremental repair row of the
//! invalidation matrix — must equal a from-scratch `Search::run` on the
//! materialized (sealed) graph, across all five strategies × direction ×
//! window × reverse, errors included.
//!
//! Randomized event streams (seeded, deterministic — the workspace
//! convention for property suites) interleave edge inserts, unique inserts,
//! node growth, snapshot seals and query batches. A fixed set of *standing
//! queries* is re-issued after every seal so every cache outcome (miss, hit,
//! extension, re-dimension, stable-core resettle) is exercised on every run.
//! The expected-outcome table and the equivalence assertion live in
//! `common::matrix`, shared with the `cache_matrix_fuzz` harness so the
//! matrix is asserted in exactly one place.

mod common;

use common::matrix::{assert_equivalent, STRATEGIES};
use evolving_graphs::prelude::*;
use evolving_graphs::stream::{CacheOutcome, EdgeEvent, LiveGraph, QueryCache};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A random query over (and slightly beyond) the current graph shape —
/// deliberately including inactive roots, out-of-range nodes and times,
/// degenerate windows, and multi-source lists.
fn random_search(rng: &mut SmallRng, num_nodes: usize, num_sealed: usize) -> Search {
    let nt = num_sealed.max(1);
    let random_root = |rng: &mut SmallRng| {
        TemporalNode::from_raw(
            rng.gen_range(0..num_nodes as u32 + 2),
            rng.gen_range(0..nt as u32 + 1),
        )
    };
    let mut search = if rng.gen_range(0..4) == 0 {
        let k = rng.gen_range(1..4usize);
        Search::from_sources((0..k).map(|_| random_root(rng)).collect::<Vec<_>>())
    } else {
        Search::from(random_root(rng))
    };
    search = search.strategy(STRATEGIES[rng.gen_range(0..STRATEGIES.len())]);
    if rng.gen_range(0..2) == 0 {
        search = search.direction(Direction::Backward);
    }
    if rng.gen_range(0..3) == 0 {
        search = search.reverse();
    }
    if rng.gen_range(0..5) == 0 {
        search = search.with_parents();
    }
    search = match rng.gen_range(0..5) {
        0 => search, // full window
        1 => search.window(rng.gen_range(0..nt as u32 + 1)..),
        2 => {
            let a = rng.gen_range(0..nt as u32);
            let b = rng.gen_range(0..nt as u32 + 1);
            search.window(a..=b)
        }
        3 => {
            let a = rng.gen_range(0..nt as u32 + 1);
            search.window(a..a) // statically empty
        }
        _ => search.window(..rng.gen_range(0..nt as u32 + 2)),
    };
    search
}

/// Applies a random ingestion batch (inserts, unique inserts, occasional
/// node growth) and seals it under the next label.
fn random_seal(rng: &mut SmallRng, live: &mut LiveGraph, step: usize) {
    let mut n = live.graph().num_nodes();
    if rng.gen_range(0..4) == 0 {
        n += rng.gen_range(1..4usize);
        live.apply(EdgeEvent::grow_nodes(n)).unwrap();
    }
    let edges = rng.gen_range(1..3 * n.max(2));
    for _ in 0..edges {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u == v {
            continue;
        }
        let event = if rng.gen_range(0..4) == 0 {
            EdgeEvent::insert_unique(u, v)
        } else {
            EdgeEvent::insert(u, v)
        };
        live.apply(event).unwrap();
    }
    live.seal_snapshot(step as i64).unwrap();
}

#[test]
fn randomized_event_streams_match_from_scratch_search() {
    for seed in [0x11u64, 0x22, 0x33, 0x5EED] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut live = LiveGraph::directed(8 + (seed % 5) as usize);
        let cache = QueryCache::new();
        random_seal(&mut rng, &mut live, 0);

        // Standing queries: re-issued after every seal, so the same
        // descriptor flows through miss → hit → its repair row.
        let root = live
            .graph()
            .active_nodes()
            .first()
            .copied()
            .expect("the first seal inserts at least one edge");
        let standing: Vec<Search> = STRATEGIES
            .iter()
            .flat_map(|&s| {
                [
                    Search::from(root).strategy(s),
                    Search::from(root).strategy(s).backward(),
                ]
            })
            .chain([
                Search::from_sources([root, root]).window(0u32..),
                Search::from(root).window(0u32..=0),
                Search::from(root).with_parents(),
            ])
            .collect();

        for step in 1..8usize {
            for (i, search) in standing.iter().enumerate() {
                // Twice: the second execution of an unchanged graph must hit.
                for round in 0..2 {
                    let label = format!("seed {seed:#x} step {step} standing {i} round {round}");
                    let cached = cache.execute(&live, search);
                    let scratch = search.run(live.graph());
                    assert_equivalent(&label, live.graph(), search, cached, scratch);
                }
            }
            for q in 0..6 {
                let search = random_search(&mut rng, live.graph().num_nodes(), live.num_sealed());
                let label = format!("seed {seed:#x} step {step} random {q}");
                let cached = cache.execute(&live, &search);
                let scratch = search.run(live.graph());
                assert_equivalent(&label, live.graph(), &search, cached, scratch);
            }
            random_seal(&mut rng, &mut live, step);
        }

        let stats = cache.stats();
        assert!(stats.misses > 0, "seed {seed:#x}: no misses: {stats:?}");
        assert!(stats.hits > 0, "seed {seed:#x}: no hits: {stats:?}");
        assert!(
            stats.extensions > 0,
            "seed {seed:#x}: no extensions: {stats:?}"
        );
        assert!(
            stats.extended_shared > 0,
            "seed {seed:#x}: no shared/parents extensions: {stats:?}"
        );
        assert!(
            stats.redimensioned > 0,
            "seed {seed:#x}: no re-dimensions: {stats:?}"
        );
        assert!(
            stats.stable_core_resettled > 0,
            "seed {seed:#x}: no stable-core resettles: {stats:?}"
        );
        assert_eq!(
            stats.recomputes, 0,
            "seed {seed:#x}: every row repairs incrementally now: {stats:?}"
        );
    }
}

#[test]
fn extension_and_recompute_agree_after_node_growth_bursts() {
    // Node growth changes result dimensions; every cached shape must track
    // the sealed graph's dimensions exactly.
    let mut live = LiveGraph::directed(3);
    let cache = QueryCache::new();
    live.insert(NodeId(0), NodeId(1)).unwrap();
    live.seal_snapshot(0).unwrap();
    let root = TemporalNode::from_raw(0, 0);
    let queries: Vec<Search> = STRATEGIES
        .iter()
        .map(|&s| Search::from(root).strategy(s))
        .collect();
    for step in 1..5i64 {
        for search in &queries {
            let cached = cache.execute(&live, search);
            let scratch = search.run(live.graph());
            assert_equivalent(
                &format!("growth step {step} {:?}", search.descriptor().strategy()),
                live.graph(),
                search,
                cached,
                scratch,
            );
        }
        let new_node = live.graph().num_nodes();
        live.apply(EdgeEvent::grow_nodes(new_node + 2)).unwrap();
        live.insert(NodeId((new_node - 1) as u32), NodeId(new_node as u32))
            .unwrap();
        live.insert(NodeId(1), NodeId(new_node as u32)).unwrap();
        live.seal_snapshot(step).unwrap();
    }
}

#[test]
fn a_query_stream_over_one_evolving_graph_reports_every_outcome() {
    let mut live = LiveGraph::directed(5);
    let cache = QueryCache::new();
    live.insert(NodeId(0), NodeId(1)).unwrap();
    live.seal_snapshot(0).unwrap();
    let forward = Search::from(TemporalNode::from_raw(0, 0));
    let reversed = Search::from(TemporalNode::from_raw(0, 0)).reverse();

    let (_, o1) = cache.execute_traced(&live, &forward).unwrap();
    let (_, o2) = cache.execute_traced(&live, &forward).unwrap();
    let (_, o3) = cache.execute_traced(&live, &reversed).unwrap();
    live.insert(NodeId(1), NodeId(2)).unwrap();
    live.seal_snapshot(1).unwrap();
    let (_, o4) = cache.execute_traced(&live, &forward).unwrap();
    let (_, o5) = cache.execute_traced(&live, &reversed).unwrap();

    assert_eq!(
        (o1, o2, o3, o4, o5),
        (
            CacheOutcome::Miss,
            CacheOutcome::Hit,
            CacheOutcome::Miss,
            CacheOutcome::Extended,
            CacheOutcome::Resettled,
        )
    );
}
