//! End-to-end reproduction of the paper's worked examples (Figures 1–4 and
//! the Section III matrices), exercising the public API of the umbrella
//! crate the way a reader following the paper would.

use evolving_graphs::prelude::*;

fn tn(v: u32, t: u32) -> TemporalNode {
    TemporalNode::from_raw(v, t)
}

/// Figure 1 / Section II-A: the example graph, its active and inactive
/// temporal nodes, and its forward neighbors.
#[test]
fn figure1_active_nodes_and_forward_neighbors() {
    let g = evolving_graphs::core::examples::paper_figure1();

    assert_eq!(g.num_active_nodes(), 6);
    // Paper: (1,t1) and (2,t2)... — (2, t2) is listed as active in the text
    // but the figure shows it inactive; the edge list makes it inactive.
    assert!(g.is_active(NodeId(0), TimeIndex(0)));
    assert!(!g.is_active(NodeId(2), TimeIndex(0)));

    // "the forward neighbors of (1, t1) are (2, t1) and (1, t2)"
    let mut fwd = g.forward_neighbors(tn(0, 0));
    fwd.sort();
    let mut expected = vec![tn(1, 0), tn(0, 1)];
    expected.sort();
    assert_eq!(fwd, expected);

    // "the only forward neighbor of (2, t1) is (2, t3)"
    assert_eq!(g.forward_neighbors(tn(1, 0)), vec![tn(1, 2)]);
}

/// Figure 2: exactly two temporal paths of length 4 from (1,t1) to (3,t3),
/// and the specific invalid sequence through the inactive (2,t2).
#[test]
fn figure2_temporal_paths() {
    let g = evolving_graphs::core::examples::paper_figure1();
    let paths = enumerate_paths(&g, tn(0, 0), tn(2, 2), 4);
    assert_eq!(paths.len(), 2);

    let expected_a = vec![tn(0, 0), tn(0, 1), tn(2, 1), tn(2, 2)];
    let expected_b = vec![tn(0, 0), tn(1, 0), tn(1, 2), tn(2, 2)];
    assert!(paths.contains(&expected_a));
    assert!(paths.contains(&expected_b));

    // The sequence through (2, t2) is not a temporal path.
    assert!(!is_temporal_path(
        &g,
        &[tn(0, 0), tn(0, 1), tn(1, 1), tn(2, 1), tn(2, 2)]
    ));
}

/// Figure 3: the BFS trace from root (1, t2) — t1 plays no part.
#[test]
fn figure3_bfs_trace_from_1_t2() {
    let g = evolving_graphs::core::examples::paper_figure1();
    let map = bfs(&g, tn(0, 1)).unwrap();
    assert_eq!(map.layer(0), vec![tn(0, 1)]);
    assert_eq!(map.layer(1), vec![tn(2, 1)]);
    assert_eq!(map.layer(2), vec![tn(2, 2)]);
    assert!(map.layer(3).is_empty());
    assert!(!map.is_reached(tn(0, 0)));
    assert!(!map.is_reached(tn(1, 0)));

    // Section II-C: BFS from (v, t') ignores all snapshots before t', so the
    // suffix window gives the same answer.
    let w = TimeWindowView::from_start(&g, TimeIndex(1)).unwrap();
    let windowed = bfs(&w, tn(0, 0)).unwrap();
    assert_eq!(windowed.num_reached(), map.num_reached());
}

/// Theorem 1: BFS on the evolving graph equals BFS on the equivalent static
/// graph (V = active nodes, E = static ∪ causal edges).
#[test]
fn theorem1_equivalence_with_static_graph() {
    let g = evolving_graphs::core::examples::paper_figure1();
    let eq = EquivalentStaticGraph::build(&g);
    assert_eq!(eq.num_nodes(), 6);
    assert_eq!(eq.num_edges(), 6);

    for &root in &g.active_nodes() {
        let evolving = bfs(&g, root).unwrap();
        let on_static = eq.bfs_distances_from(root).unwrap();
        assert_eq!(on_static.len(), evolving.num_reached());
        for (node, d) in on_static {
            assert_eq!(evolving.distance(node), Some(d));
        }
    }
}

/// Figure 4 / Section III-C: the A3 matrix, the causal block M[t1,t2] of
/// Equation (4), the iterate sequence and the final path count of 2.
#[test]
fn figure4_block_matrices_and_power_iteration() {
    let g = evolving_graphs::core::examples::paper_figure1();
    let blocks = BlockAdjacency::from_graph(&g);

    // Equation (4).
    let m12 = blocks.causal_block(TimeIndex(0), TimeIndex(1));
    assert_eq!(m12.get(0, 0), 1.0);
    assert_eq!(m12.count_nonzeros(), 1);

    // A3 as printed in the paper (time-major active-node ordering).
    let (an, labels) = blocks.to_dense_an();
    let expected = DenseMatrix::from_ones(6, 6, &[(0, 1), (0, 2), (2, 3), (1, 4), (3, 5), (4, 5)]);
    assert_eq!(an, expected);
    assert_eq!(labels.len(), 6);

    // The printed iterate sequence.
    let (_, iterates) = iterate_sequence(&g, tn(0, 0), 4);
    assert_eq!(iterates[3], vec![0.0, 0.0, 0.0, 0.0, 0.0, 2.0]);
    assert_eq!(iterates[4], vec![0.0; 6]);

    // (A3ᵀ)³ counts the two temporal paths.
    assert_eq!(total_path_count(&g, tn(0, 0), tn(2, 2)), 2.0);

    // Lemma 1: the snapshots are acyclic, so A3 is nilpotent.
    let (acyclic, nilpotent) = lemma1_check(&g);
    assert!(acyclic && nilpotent);
}

/// Algorithms 1 and 2 (both engines) and the parallel variant agree on every
/// root of the example (Theorem 4).
#[test]
fn theorem4_algorithm_equivalence_on_the_example() {
    let g = evolving_graphs::core::examples::paper_figure1();
    for &root in &g.active_nodes() {
        let alg1 = bfs(&g, root).unwrap();
        let alg2 = algebraic_bfs(&g, root).unwrap();
        let alg2_dense = algebraic_bfs_dense(&g, root).unwrap();
        let parallel = par_bfs(&g, root).unwrap();
        assert_eq!(alg1.as_flat_slice(), alg2.as_flat_slice());
        assert_eq!(alg1.as_flat_slice(), alg2_dense.as_flat_slice());
        assert_eq!(alg1.as_flat_slice(), parallel.as_flat_slice());
    }
}

/// The introduction's message-passing game: time ordering decides whether
/// player 3 can collect message a.
#[test]
fn introduction_game_reachability() {
    let good = evolving_graphs::core::examples::introduction_game(true);
    let bad = evolving_graphs::core::examples::introduction_game(false);

    let root = |g: &AdjacencyListGraph| {
        let t = g.active_times(NodeId(0))[0];
        TemporalNode::new(NodeId(0), t)
    };

    let reach_good = bfs(&good, root(&good)).unwrap();
    assert!(reach_good.reached_node_ids().contains(&NodeId(2)));

    let reach_bad = bfs(&bad, root(&bad)).unwrap();
    assert!(!reach_bad.reached_node_ids().contains(&NodeId(2)));
}
