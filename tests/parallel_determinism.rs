//! Parallel-determinism suite: now that the rayon shim executes on a real
//! thread pool, every parallel engine must produce **bit-for-bit** the same
//! answer — and the same errors — at every pool size.
//!
//! Two differentials are pinned for every query shape (direction × window ×
//! reverse × single/multi-source):
//!
//! * **engine**: `Strategy::Parallel` vs `Strategy::Serial`, and
//!   `Strategy::SharedFrontier` vs the serial `multi_source_shared` free
//!   function — at a threshold of 1, so the pool path runs even on narrow
//!   levels;
//! * **schedule**: the same parallel query under pools of 1, 2 and 8
//!   threads must agree exactly (1-thread pools execute inline, so this
//!   also pins the parallel path against purely sequential execution).
//!
//! Determinism is by construction — level-synchronous expansion with
//! first-writer-wins CAS discovery (distances are fixed by the level
//! structure) and packed `(distance, source)` `fetch_min` claims (ties are
//! fixed by the key order) — and this suite is what keeps that argument
//! honest under a real scheduler.

use evolving_graphs::prelude::*;
use rayon::ThreadPoolBuilder;

const POOL_SIZES: [usize; 3] = [1, 2, 8];

fn workloads() -> Vec<(&'static str, AdjacencyListGraph)> {
    let mut out = Vec::new();
    for seed in [11u64, 29] {
        out.push((
            "uniform_random",
            uniform_random_graph(&UniformRandomConfig {
                num_nodes: 60,
                num_timestamps: 5,
                num_edges: 400,
                directed: true,
                seed,
            }),
        ));
    }
    out.push((
        "preferential",
        preferential_attachment(&PreferentialConfig {
            num_nodes: 50,
            num_timestamps: 6,
            edges_per_timestamp: 40,
            seed: 13,
        }),
    ));
    out
}

/// Deterministic sample of active roots.
fn sample_roots(g: &AdjacencyListGraph) -> Vec<TemporalNode> {
    let actives = g.active_nodes();
    let step = (actives.len() / 4).max(1);
    actives.into_iter().step_by(step).take(4).collect()
}

/// The window shapes the suite sweeps, including statically valid, empty and
/// out-of-range ones (the latter two must error identically everywhere).
fn window_specs() -> Vec<(&'static str, WindowSpec)> {
    vec![
        ("full", WindowSpec::from(..)),
        ("suffix", WindowSpec::from(1u32..)),
        ("bounded", WindowSpec::from(0u32..=2)),
        ("inner", WindowSpec::from(1u32..=3)),
        #[allow(clippy::reversed_empty_ranges)]
        ("empty", WindowSpec::from(2u32..2)),
        ("out_of_range", WindowSpec::from(0u32..=40)),
    ]
}

/// Every single-source parallel query shape for one root.
fn parallel_shapes(root: TemporalNode) -> Vec<(String, Search)> {
    let mut shapes = Vec::new();
    for (window_name, window) in window_specs() {
        for backward in [false, true] {
            for reversed in [false, true] {
                let mut search = Search::from(root)
                    .strategy(Strategy::Parallel)
                    .parallel_threshold(1)
                    .window(window);
                if backward {
                    search = search.backward();
                }
                if reversed {
                    search = search.reverse();
                }
                shapes.push((
                    format!("parallel/{window_name}/backward={backward}/reversed={reversed}"),
                    search,
                ));
            }
        }
    }
    shapes
}

/// Every shared-frontier query shape for a source set.
fn shared_shapes(sources: &[TemporalNode]) -> Vec<(String, Search)> {
    let mut shapes = Vec::new();
    for (window_name, window) in window_specs() {
        for backward in [false, true] {
            for reversed in [false, true] {
                let mut search = Search::from_sources(sources.iter().copied())
                    .strategy(Strategy::SharedFrontier)
                    .parallel_threshold(1)
                    .window(window);
                if backward {
                    search = search.backward();
                }
                if reversed {
                    search = search.reverse();
                }
                shapes.push((
                    format!("shared/{window_name}/backward={backward}/reversed={reversed}"),
                    search,
                ));
            }
        }
    }
    shapes
}

/// Runs `search` and projects the outcome into a comparable form: the flat
/// distance slice plus reach counters on success, the exact error otherwise.
fn outcome(
    search: &Search,
    g: &AdjacencyListGraph,
) -> std::result::Result<(Vec<u32>, usize, u32), GraphError> {
    search.run(g).map(|result| {
        if search.sources().len() > 1 {
            let shared = result.shared_map();
            (
                shared.as_flat_slice().to_vec(),
                shared.num_reached(),
                shared.max_distance(),
            )
        } else {
            let map = result.distance_map();
            (
                map.as_flat_slice().to_vec(),
                map.num_reached(),
                map.max_distance(),
            )
        }
    })
}

#[test]
fn parallel_strategy_matches_serial_under_every_pool_size() {
    for (name, g) in workloads() {
        for root in sample_roots(&g) {
            for (shape, search) in parallel_shapes(root) {
                let serial = outcome(&search.clone().strategy(Strategy::Serial), &g);
                for threads in POOL_SIZES {
                    let pool = ThreadPoolBuilder::new()
                        .num_threads(threads)
                        .build()
                        .unwrap();
                    let parallel = pool.install(|| outcome(&search, &g));
                    assert_eq!(
                        parallel, serial,
                        "{name}: {shape} from {root:?} under {threads} threads"
                    );
                }
            }
        }
    }
}

#[test]
fn shared_frontier_matches_serial_engine_under_every_pool_size() {
    for (name, g) in workloads() {
        let actives = g.active_nodes();
        let sources: Vec<TemporalNode> = actives.iter().copied().step_by(17).take(6).collect();
        for (shape, search) in shared_shapes(&sources) {
            // The 1-thread pool run *is* sequential execution of the
            // parallel engine; 2 and 8 threads must replicate it exactly.
            let baseline = ThreadPoolBuilder::new()
                .num_threads(1)
                .build()
                .unwrap()
                .install(|| outcome(&search, &g));
            for threads in [2usize, 8] {
                let pool = ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let parallel = pool.install(|| outcome(&search, &g));
                assert_eq!(
                    parallel, baseline,
                    "{name}: {shape} under {threads} threads"
                );
            }
        }
    }
}

#[test]
fn shared_frontier_attribution_matches_the_serial_free_function() {
    // Full-graph forward shape: the builder's parallel shared-frontier
    // engine against the serial `multi_source_shared`, source attribution
    // included, under the largest pool.
    for (name, g) in workloads() {
        let actives = g.active_nodes();
        let sources: Vec<TemporalNode> = actives.iter().copied().step_by(11).take(8).collect();
        let serial = multi_source_shared(&g, &sources).unwrap();
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let result = pool
            .install(|| {
                Search::from_sources(sources.iter().copied())
                    .strategy(Strategy::SharedFrontier)
                    .parallel_threshold(1)
                    .run(&g)
            })
            .unwrap();
        let shared = result.shared_map();
        assert_eq!(shared.as_flat_slice(), serial.as_flat_slice(), "{name}");
        for &tn in &actives {
            assert_eq!(
                shared.nearest_source_index(tn),
                serial.nearest_source_index(tn),
                "{name}: attribution at {tn:?}"
            );
        }
    }
}

#[test]
fn invalid_sources_error_identically_under_every_pool_size() {
    let (_, g) = &workloads()[0];
    let inactive = Search::from(TemporalNode::from_raw(0, 4))
        .strategy(Strategy::Parallel)
        .parallel_threshold(1);
    let out_of_range = Search::from(TemporalNode::from_raw(999, 0))
        .strategy(Strategy::Parallel)
        .parallel_threshold(1);
    let no_sources = Search::from_sources(Vec::<TemporalNode>::new())
        .strategy(Strategy::SharedFrontier)
        .parallel_threshold(1);
    for threads in POOL_SIZES {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            // (0, t4) may be active in some seeds; accept either outcome but
            // require it to match the serial engine exactly.
            assert_eq!(
                inactive.run(g).map(|r| r.num_reached()),
                inactive
                    .clone()
                    .strategy(Strategy::Serial)
                    .run(g)
                    .map(|r| r.num_reached()),
                "inactive root under {threads} threads"
            );
            assert!(matches!(
                out_of_range.run(g).unwrap_err(),
                GraphError::NodeOutOfRange { .. }
            ));
            assert!(matches!(
                no_sources.run(g).unwrap_err(),
                GraphError::NoSources
            ));
        });
    }
}

#[test]
fn multi_source_per_root_parallel_queries_match_serial() {
    // The per-root parallel pattern (one BFS per source distributed over the
    // pool) — the citation-mining access shape — under every pool size.
    for (name, g) in workloads() {
        let sources = sample_roots(&g);
        let serial = Search::from_sources(sources.iter().copied())
            .run(&g)
            .unwrap();
        for threads in POOL_SIZES {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let result = pool
                .install(|| {
                    Search::from_sources(sources.iter().copied())
                        .strategy(Strategy::Parallel)
                        .parallel_threshold(1)
                        .run(&g)
                })
                .unwrap();
            for (a, b) in serial.distance_maps().iter().zip(result.distance_maps()) {
                assert_eq!(
                    a.as_flat_slice(),
                    b.as_flat_slice(),
                    "{name} under {threads} threads"
                );
            }
        }
    }
}
