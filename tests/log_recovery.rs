//! Crash-recovery suite for the durable event log: a recovered graph must
//! be indistinguishable from one that never restarted, and a damaged log
//! must either restore the last fully-sealed snapshot (torn tail — the
//! residue of a crash mid-seal) or fail loudly — never serve silently
//! corrupt data.
//!
//! The load-bearing assertions:
//!
//! * **differential recovery**: a seeded random event stream is fed to a
//!   [`DurableGraph`] and an identical never-persisted twin; after a
//!   simulated kill (drop with unsealed events pending), the recovered
//!   graph answers every cell of the invalidation matrix — all five
//!   strategies × direction × window × reverse — payload-identically to
//!   the twin, and further seals repair cached entries through their
//!   matrix rows (the restored monotone version re-validates, never
//!   recomputes);
//! * **crash injection**: the final segment of a multi-segment log is
//!   truncated at *every* byte offset; recovery restores exactly the last
//!   fully-sealed snapshot every time;
//! * **corruption**: a flipped byte mid-history or a truncated non-final
//!   segment fails recovery outright;
//! * **checkpoints**: with a checkpoint policy set, recovery restores the
//!   newest valid checkpoint and replays only the bounded segment suffix
//!   sealed after it (`recovery_replayed_events` is the proof); a
//!   checkpoint truncated at *every* byte offset falls back to an older
//!   checkpoint (and ultimately to a loud error once compaction has made
//!   full replay impossible) without ever serving a wrong graph, staging
//!   `.tmp` residue is ignored, and a compaction crash mid-delete leaves a
//!   log that still recovers.

mod common;

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use common::matrix::{assert_equivalent, expected_outcome, STRATEGIES};
use evolving_graphs::prelude::*;
use evolving_graphs::stream::{DurableGraph, EdgeEvent, LiveGraph, QueryCache};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A scratch directory under the system temp root, removed on drop. The
/// container has no `tempfile` crate; process id + counter keep parallel
/// test binaries and intra-binary tests apart.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("egraph-recovery-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One randomized ingestion batch sealed under `label` on both the durable
/// graph and its never-persisted twin — the same generator the cache
/// matrix fuzz suite uses, pointed at the durable wrapper.
fn seal_both(rng: &mut SmallRng, durable: &mut DurableGraph, twin: &mut LiveGraph, label: i64) {
    let mut n = durable.live().graph().num_nodes();
    if rng.gen_range(0..3) == 0 {
        n += rng.gen_range(1..3usize);
        durable.apply(EdgeEvent::grow_nodes(n)).unwrap();
        twin.apply(EdgeEvent::grow_nodes(n)).unwrap();
    }
    for _ in 0..rng.gen_range(2..3 * n) {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u == v {
            continue;
        }
        let event = if rng.gen_range(0..4) == 0 {
            EdgeEvent::insert_unique(u, v)
        } else {
            EdgeEvent::insert(u, v)
        };
        durable.apply(event).unwrap();
        twin.apply(event).unwrap();
    }
    durable.seal_snapshot(label).unwrap();
    twin.seal_snapshot(label).unwrap();
}

/// Every (strategy × direction × window × reverse) cell of the matrix for
/// one root, plus the parents and multi-source shapes that ride on it.
fn matrix_cells(root: TemporalNode, partner: TemporalNode) -> Vec<Search> {
    let windows: [fn(Search) -> Search; 3] = [
        |s| s,                  // full history
        |s| s.window(1u32..),   // start-bounded, unbounded end
        |s| s.window(0u32..=1), // bounded end
    ];
    let mut cells = Vec::new();
    for &strategy in &STRATEGIES {
        for backward in [false, true] {
            for reverse in [false, true] {
                for window in windows {
                    let mut s = Search::from(root).strategy(strategy);
                    if backward {
                        s = s.direction(Direction::Backward);
                    }
                    if reverse {
                        s = s.reverse();
                    }
                    cells.push(window(s.clone()));
                    if strategy == Strategy::Serial {
                        cells.push(window(s.with_parents()));
                    }
                }
            }
        }
    }
    cells.push(Search::from_sources([root, partner]).strategy(Strategy::SharedFrontier));
    cells.push(Search::from_sources([root, partner, root]));
    cells
}

#[test]
fn recovered_graph_is_equivalent_to_a_never_restarted_twin() {
    for seed in [0xA11CEu64, 0xBEEF7, 0x5EED5] {
        let dir = TempDir::new("differential");
        let mut rng = SmallRng::seed_from_u64(seed);
        let n0 = 8 + (seed % 5) as usize;
        let mut twin = LiveGraph::directed(n0);
        {
            let mut durable = DurableGraph::create(dir.path(), n0, true).unwrap();
            for label in 0..4i64 {
                seal_both(&mut rng, &mut durable, &mut twin, label);
            }
            // Applied but never sealed: the crash must lose exactly these.
            durable.insert(NodeId(0), NodeId(1)).unwrap();
            durable.apply(EdgeEvent::grow_nodes(64)).unwrap();
            // Simulated kill: dropped without sealing.
        }

        let recovered = LiveGraph::recover(dir.path())
            .unwrap_or_else(|e| panic!("seed {seed:#x}: recovery failed: {e}"));
        assert_eq!(recovered.segments_replayed, 4, "seed {seed:#x}");
        assert!(!recovered.dropped_torn_tail, "seed {seed:#x}");
        let mut durable = recovered.graph;
        assert_eq!(durable.live().version(), twin.version(), "seed {seed:#x}");
        assert_eq!(
            durable.live().graph().num_nodes(),
            twin.graph().num_nodes(),
            "seed {seed:#x}: unsealed grow_nodes must not survive"
        );
        assert_eq!(
            durable.live().num_static_edges(),
            twin.num_static_edges(),
            "seed {seed:#x}"
        );

        let root = durable
            .live()
            .graph()
            .active_nodes()
            .first()
            .copied()
            .expect("the first seal inserts at least one edge");
        let partner = durable
            .live()
            .graph()
            .active_nodes()
            .last()
            .copied()
            .expect("at least one active node");
        let cells = matrix_cells(root, partner);
        let cache = QueryCache::new();
        let mut last_ok: HashMap<QueryDescriptor, u64> = HashMap::new();

        // Two passes with a seal in between: the first populates the cache
        // against the *recovered* version stamp, the second proves that
        // stamp re-validates — every row repairs through the matrix, and
        // nothing recomputes.
        for step in 0..2 {
            let version = durable.live().version();
            for (i, cell) in cells.iter().enumerate() {
                let descriptor = cell.descriptor();
                let label = format!("seed {seed:#x} step {step} cell {i} {descriptor:?}");
                let traced = cache.execute_traced(durable.live(), cell);
                let scratch = cell.run(twin.graph());
                if let Ok((_, outcome)) = &traced {
                    let expected =
                        expected_outcome(&descriptor, last_ok.get(&descriptor).copied(), version);
                    assert_eq!(*outcome, expected, "{label}: outcome");
                    last_ok.insert(descriptor, version);
                }
                assert_equivalent(
                    &label,
                    durable.live().graph(),
                    cell,
                    traced.map(|(r, _)| r),
                    scratch,
                );
            }
            seal_both(&mut rng, &mut durable, &mut twin, 4 + step as i64);
        }
        let stats = cache.stats();
        assert_eq!(stats.recomputes, 0, "seed {seed:#x}: {stats:?}");
        assert!(stats.extensions > 0, "seed {seed:#x}: {stats:?}");
    }
}

/// The deterministic three-segment fixture the damage tests below operate
/// on: segment 0 grows the node universe, segment 1 exercises unique
/// inserts, segment 2 is the victim. Returns the twin sealed through
/// segment `keep`.
fn twin_through(keep: usize) -> LiveGraph {
    let mut twin = LiveGraph::directed(8);
    let batches: [(&[(u32, u32)], i64); 3] = [
        (&[(0, 1), (1, 2), (7, 3)], 10),
        (&[(2, 3), (0, 4), (2, 3)], 20),
        (&[(3, 5), (4, 6), (6, 8)], 30),
    ];
    for (i, (edges, label)) in batches.iter().enumerate() {
        if i >= keep {
            break;
        }
        if i == 2 {
            twin.apply(EdgeEvent::grow_nodes(9)).unwrap();
        }
        for &(u, v) in *edges {
            twin.insert(NodeId(u), NodeId(v)).unwrap();
        }
        twin.seal_snapshot(*label).unwrap();
    }
    twin
}

/// Writes the same fixture through a [`DurableGraph`] at `dir`.
fn write_fixture(dir: &Path) {
    let mut durable = DurableGraph::create(dir, 8, true).unwrap();
    for (i, (edges, label)) in [
        (vec![(0u32, 1u32), (1, 2), (7, 3)], 10i64),
        (vec![(2, 3), (0, 4), (2, 3)], 20),
        (vec![(3, 5), (4, 6), (6, 8)], 30),
    ]
    .into_iter()
    .enumerate()
    {
        if i == 2 {
            durable.apply(EdgeEvent::grow_nodes(9)).unwrap();
        }
        for (u, v) in edges {
            durable.insert(NodeId(u), NodeId(v)).unwrap();
        }
        durable.seal_snapshot(label).unwrap();
    }
}

/// Payload-level equality of two graphs, checked through the query layer:
/// same version, same CSR size, same forward answer from `root`.
fn assert_same_graph(label: &str, a: &LiveGraph, b: &LiveGraph) {
    use egraph_query::codec::search_result_to_json;
    assert_eq!(a.version(), b.version(), "{label}: version");
    assert_eq!(a.num_static_edges(), b.num_static_edges(), "{label}: edges");
    assert_eq!(
        a.graph().num_nodes(),
        b.graph().num_nodes(),
        "{label}: nodes"
    );
    let probe = Search::from(TemporalNode::from_raw(0, 0)).with_parents();
    assert_eq!(
        search_result_to_json(&probe.run(a.graph()).unwrap()),
        search_result_to_json(&probe.run(b.graph()).unwrap()),
        "{label}: probe query"
    );
}

#[test]
fn truncation_at_every_byte_offset_restores_the_last_sealed_snapshot() {
    let dir = TempDir::new("torn");
    write_fixture(dir.path());
    let tail_path = egraph_log::log::segment_path(dir.path(), 2);
    let pristine = std::fs::read(&tail_path).unwrap();
    assert!(pristine.len() > 16, "fixture tail segment is too small");
    let twin_full = twin_through(3);
    let twin_sealed = twin_through(2);

    for cut in 0..=pristine.len() {
        // Recovery removes a torn tail file; re-materialize the victim at
        // this cut length before every attempt.
        std::fs::write(&tail_path, &pristine[..cut]).unwrap();
        let label = format!("cut {cut}/{}", pristine.len());
        let recovered = LiveGraph::recover(dir.path())
            .unwrap_or_else(|e| panic!("{label}: a pure truncation must recover, got {e}"));
        if cut == pristine.len() {
            assert_eq!(recovered.segments_replayed, 3, "{label}");
            assert!(!recovered.dropped_torn_tail, "{label}");
            assert_same_graph(&label, recovered.graph.live(), &twin_full);
        } else {
            assert_eq!(
                recovered.segments_replayed, 2,
                "{label}: exactly the fully-sealed prefix survives"
            );
            assert!(recovered.dropped_torn_tail, "{label}");
            assert_same_graph(&label, recovered.graph.live(), &twin_sealed);
            assert!(
                !tail_path.exists(),
                "{label}: the torn file must be truncated away"
            );
        }
    }

    // After the last torn recovery the log must accept a re-seal of the
    // lost snapshot under the same sequence number.
    std::fs::write(&tail_path, &pristine[..pristine.len() - 1]).unwrap();
    let mut durable = LiveGraph::recover(dir.path()).unwrap().graph;
    durable.apply(EdgeEvent::grow_nodes(9)).unwrap();
    for (u, v) in [(3u32, 5u32), (4, 6), (6, 8)] {
        durable.insert(NodeId(u), NodeId(v)).unwrap();
    }
    let receipt = durable.seal_snapshot(30).unwrap();
    assert_eq!(receipt.seq, 2, "the torn sequence number is reused");
    assert_same_graph("re-sealed", durable.live(), &twin_full);
}

/// Builds a checkpointed fixture: `seals` randomized batches under policy
/// (`every`, `retain`), mirrored into a never-persisted twin. Returns the
/// twin.
fn write_checkpointed_fixture(
    dir: &Path,
    seed: u64,
    seals: i64,
    every: u64,
    retain: usize,
) -> LiveGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut twin = LiveGraph::directed(8);
    let mut durable = DurableGraph::create(dir, 8, true).unwrap();
    durable.set_checkpoint_policy(every, retain);
    for label in 0..seals {
        seal_both(&mut rng, &mut durable, &mut twin, label);
    }
    twin
}

#[test]
fn checkpointed_recovery_is_equivalent_and_replays_only_the_suffix() {
    // Policy (3, 2) over 8 seals: checkpoints install at versions 3 and 6
    // (covering segments ..=2 and ..=5), and the first one's compaction
    // deletes segments 0..=2. Recovery must restore from checkpoint 5 and
    // replay exactly segments 6 and 7.
    let dir = TempDir::new("ckpt-differential");
    let mut twin = write_checkpointed_fixture(dir.path(), 0xC4EC4, 8, 3, 2);

    let recovered = LiveGraph::recover(dir.path()).unwrap();
    assert_eq!(recovered.checkpoint_seq, Some(5));
    assert_eq!(recovered.segments_replayed, 2);
    assert!(recovered.recovery_replayed_events > 0);
    let mut durable = recovered.graph;
    assert_same_graph("checkpointed recovery", durable.live(), &twin);

    // The recovered graph answers every matrix cell payload-identically to
    // the twin, and keeps sealing from the restored sequence number.
    let root = durable
        .live()
        .graph()
        .active_nodes()
        .first()
        .copied()
        .unwrap();
    let partner = durable
        .live()
        .graph()
        .active_nodes()
        .last()
        .copied()
        .unwrap();
    let cache = QueryCache::new();
    for (i, cell) in matrix_cells(root, partner).iter().enumerate() {
        let label = format!("ckpt cell {i}");
        let traced = cache.execute_traced(durable.live(), cell);
        let scratch = cell.run(twin.graph());
        assert_equivalent(
            &label,
            durable.live().graph(),
            cell,
            traced.map(|(r, _)| r),
            scratch,
        );
    }
    let mut rng = SmallRng::seed_from_u64(0xAF7E2);
    seal_both(&mut rng, &mut durable, &mut twin, 8);
    durable.insert(NodeId(0), NodeId(2)).unwrap();
    twin.insert(NodeId(0), NodeId(2)).unwrap();
    let receipt = durable.seal_snapshot(9).unwrap();
    twin.seal_snapshot(9).unwrap();
    assert_eq!(receipt.seq, 9, "sealing resumes at the restored sequence");
    assert_same_graph("post-recovery seal", durable.live(), &twin);
}

#[test]
fn checkpoints_bound_recovery_replay_to_the_suffix_events() {
    // Deterministic event counts: every seal applies exactly 3 inserts, so
    // the bounded-replay metric is exact. Policy (2, 1) over 11 seals:
    // the last checkpoint lands at version 10 (covering segments ..=9) and
    // compacts everything it covers, leaving segment 10 — recovery replays
    // exactly one segment's 3 events out of the 33-event history.
    let dir = TempDir::new("ckpt-bounded");
    {
        let mut durable = DurableGraph::create(dir.path(), 8, true).unwrap();
        durable.set_checkpoint_policy(2, 1);
        for s in 0..11i64 {
            let base = (s as u32) % 6;
            for (u, v) in [(base, base + 1), (base + 1, base + 2), (base, base + 2)] {
                durable.insert(NodeId(u), NodeId(v)).unwrap();
            }
            durable.seal_snapshot(s).unwrap();
        }
    }
    let recovered = LiveGraph::recover(dir.path()).unwrap();
    assert_eq!(recovered.checkpoint_seq, Some(9));
    assert_eq!(recovered.segments_replayed, 1);
    assert_eq!(recovered.recovery_replayed_events, 3);
    assert!(
        recovered.recovery_replayed_events <= 2 * 3,
        "replay must stay within checkpoint_every seals' worth of events"
    );
    assert_eq!(recovered.graph.live().version(), 11);
    assert_eq!(recovered.graph.live().num_static_edges(), 33);
}

#[test]
fn checkpoint_damage_at_every_byte_falls_back_and_never_corrupts() {
    // Policy (2, 2) over 6 seals: checkpoints survive at 3 and 5, segments
    // at 4 and 5 (the first checkpoint's compaction removed 0..=1, the
    // third's removed 2..=3 and pruned checkpoint 1).
    let dir = TempDir::new("ckpt-torn");
    let twin = write_checkpointed_fixture(dir.path(), 0xD00D5, 6, 2, 2);
    let newest = egraph_log::checkpoint_path(dir.path(), 5);
    let older = egraph_log::checkpoint_path(dir.path(), 3);
    let pristine = std::fs::read(&newest).unwrap();
    assert!(
        std::fs::read(&older).is_ok(),
        "fixture must retain two checkpoints"
    );

    for cut in 0..=pristine.len() {
        // (a) The newest checkpoint torn at this byte: recovery falls back
        // to checkpoint 3 and replays segments 4..=5 — payload-identical
        // either way.
        std::fs::write(&newest, &pristine[..cut]).unwrap();
        let label = format!("cut {cut}/{}", pristine.len());
        let recovered = LiveGraph::recover(dir.path())
            .unwrap_or_else(|e| panic!("{label}: must fall back, got {e}"));
        if cut == pristine.len() {
            assert_eq!(recovered.checkpoint_seq, Some(5), "{label}");
            assert_eq!(recovered.segments_replayed, 0, "{label}");
        } else {
            assert_eq!(recovered.checkpoint_seq, Some(3), "{label}");
            assert_eq!(recovered.segments_replayed, 2, "{label}");
        }
        assert_same_graph(&label, recovered.graph.live(), &twin);

        // (b) The same bytes as crash residue in the staging window (the
        // `.tmp` a kill between write and rename leaves): invisible to
        // recovery, which serves the intact installed checkpoint.
        std::fs::write(&newest, &pristine).unwrap();
        let tmp = dir.path().join("checkpoint-0000000007.tmp");
        std::fs::write(&tmp, &pristine[..cut]).unwrap();
        let recovered = LiveGraph::recover(dir.path())
            .unwrap_or_else(|e| panic!("{label}: tmp residue must be ignored, got {e}"));
        assert_eq!(recovered.checkpoint_seq, Some(5), "{label} (tmp residue)");
        assert_same_graph(&format!("{label} (tmp)"), recovered.graph.live(), &twin);
        std::fs::remove_file(&tmp).unwrap();
    }

    // Both checkpoints damaged: compaction already deleted segments 0..=3,
    // so full replay is impossible — recovery must refuse loudly instead
    // of rebuilding a truncated history.
    let older_pristine = std::fs::read(&older).unwrap();
    std::fs::write(&newest, &pristine[..pristine.len() / 2]).unwrap();
    std::fs::write(&older, &older_pristine[..older_pristine.len() / 2]).unwrap();
    let err = LiveGraph::recover(dir.path())
        .expect_err("a compacted log without a valid checkpoint must fail");
    assert!(
        err.to_string().contains("no valid checkpoint"),
        "the error must say why recovery is impossible, got: {err}"
    );
}

#[test]
fn a_compaction_crash_mid_delete_still_recovers() {
    // Same fixture as above: checkpoints 3 and 5, segments 4 and 5. A
    // compaction covering through segment 5 that crashes after deleting
    // segment 4 leaves {seg 5} — checkpoint 5 still covers the hole, and
    // checkpoint 3 (now unusable: the log starts past its suffix) must be
    // skipped, not trusted.
    let dir = TempDir::new("ckpt-middelete");
    let twin = write_checkpointed_fixture(dir.path(), 0x5EA15, 6, 2, 2);
    std::fs::remove_file(egraph_log::log::segment_path(dir.path(), 4)).unwrap();

    let recovered = LiveGraph::recover(dir.path()).unwrap();
    assert_eq!(recovered.checkpoint_seq, Some(5));
    assert_eq!(recovered.segments_replayed, 0);
    assert_eq!(recovered.recovery_replayed_events, 0);
    assert_same_graph("mid-delete", recovered.graph.live(), &twin);

    // With the newest checkpoint *also* gone the older one must not paper
    // over the hole (segment 4 is missing from its suffix): loud failure.
    std::fs::remove_file(egraph_log::checkpoint_path(dir.path(), 5)).unwrap();
    assert!(
        LiveGraph::recover(dir.path()).is_err(),
        "an older checkpoint must not bridge a compaction hole"
    );
}

#[test]
fn damaged_history_fails_loudly_never_silently() {
    // A flipped byte in a non-final segment: recovery must refuse.
    {
        let dir = TempDir::new("bitflip");
        write_fixture(dir.path());
        let path = egraph_log::log::segment_path(dir.path(), 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err =
            LiveGraph::recover(dir.path()).expect_err("mid-history corruption must fail recovery");
        assert!(
            err.to_string().contains("corrupt"),
            "error must name the corruption, got: {err}"
        );
    }
    // A truncated non-final segment is a torn *middle* — crash residue is
    // only legal at the tail, so this is corruption too.
    {
        let dir = TempDir::new("midtorn");
        write_fixture(dir.path());
        let path = egraph_log::log::segment_path(dir.path(), 0);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(
            LiveGraph::recover(dir.path()).is_err(),
            "a torn non-final segment must fail recovery"
        );
    }
    // A missing segment (sequence gap) must refuse as well.
    {
        let dir = TempDir::new("gap");
        write_fixture(dir.path());
        std::fs::remove_file(egraph_log::log::segment_path(dir.path(), 1)).unwrap();
        assert!(
            LiveGraph::recover(dir.path()).is_err(),
            "a sequence gap must fail recovery"
        );
    }
}
