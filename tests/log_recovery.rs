//! Crash-recovery suite for the durable event log: a recovered graph must
//! be indistinguishable from one that never restarted, and a damaged log
//! must either restore the last fully-sealed snapshot (torn tail — the
//! residue of a crash mid-seal) or fail loudly — never serve silently
//! corrupt data.
//!
//! The load-bearing assertions:
//!
//! * **differential recovery**: a seeded random event stream is fed to a
//!   [`DurableGraph`] and an identical never-persisted twin; after a
//!   simulated kill (drop with unsealed events pending), the recovered
//!   graph answers every cell of the invalidation matrix — all five
//!   strategies × direction × window × reverse — payload-identically to
//!   the twin, and further seals repair cached entries through their
//!   matrix rows (the restored monotone version re-validates, never
//!   recomputes);
//! * **crash injection**: the final segment of a multi-segment log is
//!   truncated at *every* byte offset; recovery restores exactly the last
//!   fully-sealed snapshot every time;
//! * **corruption**: a flipped byte mid-history or a truncated non-final
//!   segment fails recovery outright.

mod common;

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use common::matrix::{assert_equivalent, expected_outcome, STRATEGIES};
use evolving_graphs::prelude::*;
use evolving_graphs::stream::{DurableGraph, EdgeEvent, LiveGraph, QueryCache};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A scratch directory under the system temp root, removed on drop. The
/// container has no `tempfile` crate; process id + counter keep parallel
/// test binaries and intra-binary tests apart.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("egraph-recovery-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One randomized ingestion batch sealed under `label` on both the durable
/// graph and its never-persisted twin — the same generator the cache
/// matrix fuzz suite uses, pointed at the durable wrapper.
fn seal_both(rng: &mut SmallRng, durable: &mut DurableGraph, twin: &mut LiveGraph, label: i64) {
    let mut n = durable.live().graph().num_nodes();
    if rng.gen_range(0..3) == 0 {
        n += rng.gen_range(1..3usize);
        durable.apply(EdgeEvent::grow_nodes(n)).unwrap();
        twin.apply(EdgeEvent::grow_nodes(n)).unwrap();
    }
    for _ in 0..rng.gen_range(2..3 * n) {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u == v {
            continue;
        }
        let event = if rng.gen_range(0..4) == 0 {
            EdgeEvent::insert_unique(u, v)
        } else {
            EdgeEvent::insert(u, v)
        };
        durable.apply(event).unwrap();
        twin.apply(event).unwrap();
    }
    durable.seal_snapshot(label).unwrap();
    twin.seal_snapshot(label).unwrap();
}

/// Every (strategy × direction × window × reverse) cell of the matrix for
/// one root, plus the parents and multi-source shapes that ride on it.
fn matrix_cells(root: TemporalNode, partner: TemporalNode) -> Vec<Search> {
    let windows: [fn(Search) -> Search; 3] = [
        |s| s,                  // full history
        |s| s.window(1u32..),   // start-bounded, unbounded end
        |s| s.window(0u32..=1), // bounded end
    ];
    let mut cells = Vec::new();
    for &strategy in &STRATEGIES {
        for backward in [false, true] {
            for reverse in [false, true] {
                for window in windows {
                    let mut s = Search::from(root).strategy(strategy);
                    if backward {
                        s = s.direction(Direction::Backward);
                    }
                    if reverse {
                        s = s.reverse();
                    }
                    cells.push(window(s.clone()));
                    if strategy == Strategy::Serial {
                        cells.push(window(s.with_parents()));
                    }
                }
            }
        }
    }
    cells.push(Search::from_sources([root, partner]).strategy(Strategy::SharedFrontier));
    cells.push(Search::from_sources([root, partner, root]));
    cells
}

#[test]
fn recovered_graph_is_equivalent_to_a_never_restarted_twin() {
    for seed in [0xA11CEu64, 0xBEEF7, 0x5EED5] {
        let dir = TempDir::new("differential");
        let mut rng = SmallRng::seed_from_u64(seed);
        let n0 = 8 + (seed % 5) as usize;
        let mut twin = LiveGraph::directed(n0);
        {
            let mut durable = DurableGraph::create(dir.path(), n0, true).unwrap();
            for label in 0..4i64 {
                seal_both(&mut rng, &mut durable, &mut twin, label);
            }
            // Applied but never sealed: the crash must lose exactly these.
            durable.insert(NodeId(0), NodeId(1)).unwrap();
            durable.apply(EdgeEvent::grow_nodes(64)).unwrap();
            // Simulated kill: dropped without sealing.
        }

        let recovered = LiveGraph::recover(dir.path())
            .unwrap_or_else(|e| panic!("seed {seed:#x}: recovery failed: {e}"));
        assert_eq!(recovered.segments_replayed, 4, "seed {seed:#x}");
        assert!(!recovered.dropped_torn_tail, "seed {seed:#x}");
        let mut durable = recovered.graph;
        assert_eq!(durable.live().version(), twin.version(), "seed {seed:#x}");
        assert_eq!(
            durable.live().graph().num_nodes(),
            twin.graph().num_nodes(),
            "seed {seed:#x}: unsealed grow_nodes must not survive"
        );
        assert_eq!(
            durable.live().num_static_edges(),
            twin.num_static_edges(),
            "seed {seed:#x}"
        );

        let root = durable
            .live()
            .graph()
            .active_nodes()
            .first()
            .copied()
            .expect("the first seal inserts at least one edge");
        let partner = durable
            .live()
            .graph()
            .active_nodes()
            .last()
            .copied()
            .expect("at least one active node");
        let cells = matrix_cells(root, partner);
        let cache = QueryCache::new();
        let mut last_ok: HashMap<QueryDescriptor, u64> = HashMap::new();

        // Two passes with a seal in between: the first populates the cache
        // against the *recovered* version stamp, the second proves that
        // stamp re-validates — every row repairs through the matrix, and
        // nothing recomputes.
        for step in 0..2 {
            let version = durable.live().version();
            for (i, cell) in cells.iter().enumerate() {
                let descriptor = cell.descriptor();
                let label = format!("seed {seed:#x} step {step} cell {i} {descriptor:?}");
                let traced = cache.execute_traced(durable.live(), cell);
                let scratch = cell.run(twin.graph());
                if let Ok((_, outcome)) = &traced {
                    let expected =
                        expected_outcome(&descriptor, last_ok.get(&descriptor).copied(), version);
                    assert_eq!(*outcome, expected, "{label}: outcome");
                    last_ok.insert(descriptor, version);
                }
                assert_equivalent(
                    &label,
                    durable.live().graph(),
                    cell,
                    traced.map(|(r, _)| r),
                    scratch,
                );
            }
            seal_both(&mut rng, &mut durable, &mut twin, 4 + step as i64);
        }
        let stats = cache.stats();
        assert_eq!(stats.recomputes, 0, "seed {seed:#x}: {stats:?}");
        assert!(stats.extensions > 0, "seed {seed:#x}: {stats:?}");
    }
}

/// The deterministic three-segment fixture the damage tests below operate
/// on: segment 0 grows the node universe, segment 1 exercises unique
/// inserts, segment 2 is the victim. Returns the twin sealed through
/// segment `keep`.
fn twin_through(keep: usize) -> LiveGraph {
    let mut twin = LiveGraph::directed(8);
    let batches: [(&[(u32, u32)], i64); 3] = [
        (&[(0, 1), (1, 2), (7, 3)], 10),
        (&[(2, 3), (0, 4), (2, 3)], 20),
        (&[(3, 5), (4, 6), (6, 8)], 30),
    ];
    for (i, (edges, label)) in batches.iter().enumerate() {
        if i >= keep {
            break;
        }
        if i == 2 {
            twin.apply(EdgeEvent::grow_nodes(9)).unwrap();
        }
        for &(u, v) in *edges {
            twin.insert(NodeId(u), NodeId(v)).unwrap();
        }
        twin.seal_snapshot(*label).unwrap();
    }
    twin
}

/// Writes the same fixture through a [`DurableGraph`] at `dir`.
fn write_fixture(dir: &Path) {
    let mut durable = DurableGraph::create(dir, 8, true).unwrap();
    for (i, (edges, label)) in [
        (vec![(0u32, 1u32), (1, 2), (7, 3)], 10i64),
        (vec![(2, 3), (0, 4), (2, 3)], 20),
        (vec![(3, 5), (4, 6), (6, 8)], 30),
    ]
    .into_iter()
    .enumerate()
    {
        if i == 2 {
            durable.apply(EdgeEvent::grow_nodes(9)).unwrap();
        }
        for (u, v) in edges {
            durable.insert(NodeId(u), NodeId(v)).unwrap();
        }
        durable.seal_snapshot(label).unwrap();
    }
}

/// Payload-level equality of two graphs, checked through the query layer:
/// same version, same CSR size, same forward answer from `root`.
fn assert_same_graph(label: &str, a: &LiveGraph, b: &LiveGraph) {
    use egraph_query::codec::search_result_to_json;
    assert_eq!(a.version(), b.version(), "{label}: version");
    assert_eq!(a.num_static_edges(), b.num_static_edges(), "{label}: edges");
    assert_eq!(
        a.graph().num_nodes(),
        b.graph().num_nodes(),
        "{label}: nodes"
    );
    let probe = Search::from(TemporalNode::from_raw(0, 0)).with_parents();
    assert_eq!(
        search_result_to_json(&probe.run(a.graph()).unwrap()),
        search_result_to_json(&probe.run(b.graph()).unwrap()),
        "{label}: probe query"
    );
}

#[test]
fn truncation_at_every_byte_offset_restores_the_last_sealed_snapshot() {
    let dir = TempDir::new("torn");
    write_fixture(dir.path());
    let tail_path = egraph_log::log::segment_path(dir.path(), 2);
    let pristine = std::fs::read(&tail_path).unwrap();
    assert!(pristine.len() > 16, "fixture tail segment is too small");
    let twin_full = twin_through(3);
    let twin_sealed = twin_through(2);

    for cut in 0..=pristine.len() {
        // Recovery removes a torn tail file; re-materialize the victim at
        // this cut length before every attempt.
        std::fs::write(&tail_path, &pristine[..cut]).unwrap();
        let label = format!("cut {cut}/{}", pristine.len());
        let recovered = LiveGraph::recover(dir.path())
            .unwrap_or_else(|e| panic!("{label}: a pure truncation must recover, got {e}"));
        if cut == pristine.len() {
            assert_eq!(recovered.segments_replayed, 3, "{label}");
            assert!(!recovered.dropped_torn_tail, "{label}");
            assert_same_graph(&label, recovered.graph.live(), &twin_full);
        } else {
            assert_eq!(
                recovered.segments_replayed, 2,
                "{label}: exactly the fully-sealed prefix survives"
            );
            assert!(recovered.dropped_torn_tail, "{label}");
            assert_same_graph(&label, recovered.graph.live(), &twin_sealed);
            assert!(
                !tail_path.exists(),
                "{label}: the torn file must be truncated away"
            );
        }
    }

    // After the last torn recovery the log must accept a re-seal of the
    // lost snapshot under the same sequence number.
    std::fs::write(&tail_path, &pristine[..pristine.len() - 1]).unwrap();
    let mut durable = LiveGraph::recover(dir.path()).unwrap().graph;
    durable.apply(EdgeEvent::grow_nodes(9)).unwrap();
    for (u, v) in [(3u32, 5u32), (4, 6), (6, 8)] {
        durable.insert(NodeId(u), NodeId(v)).unwrap();
    }
    let receipt = durable.seal_snapshot(30).unwrap();
    assert_eq!(receipt.seq, 2, "the torn sequence number is reused");
    assert_same_graph("re-sealed", durable.live(), &twin_full);
}

#[test]
fn damaged_history_fails_loudly_never_silently() {
    // A flipped byte in a non-final segment: recovery must refuse.
    {
        let dir = TempDir::new("bitflip");
        write_fixture(dir.path());
        let path = egraph_log::log::segment_path(dir.path(), 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err =
            LiveGraph::recover(dir.path()).expect_err("mid-history corruption must fail recovery");
        assert!(
            err.to_string().contains("corrupt"),
            "error must name the corruption, got: {err}"
        );
    }
    // A truncated non-final segment is a torn *middle* — crash residue is
    // only legal at the tail, so this is corruption too.
    {
        let dir = TempDir::new("midtorn");
        write_fixture(dir.path());
        let path = egraph_log::log::segment_path(dir.path(), 0);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(
            LiveGraph::recover(dir.path()).is_err(),
            "a torn non-final segment must fail recovery"
        );
    }
    // A missing segment (sequence gap) must refuse as well.
    {
        let dir = TempDir::new("gap");
        write_fixture(dir.path());
        std::fs::remove_file(egraph_log::log::segment_path(dir.path(), 1)).unwrap();
        assert!(
            LiveGraph::recover(dir.path()).is_err(),
            "a sequence gap must fail recovery"
        );
    }
}
