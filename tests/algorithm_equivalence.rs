//! Property-style tests of Theorems 1 and 4: on arbitrary evolving graphs,
//! Algorithm 1, Algorithm 2 (blocked and dense), the frontier-parallel BFS
//! and classical BFS on the Theorem 1 equivalent static graph all compute
//! the same distances.
//!
//! The build environment has no proptest, so the suite drives the same
//! properties with a deterministic seeded generator: every case is
//! reproducible from its trial index.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use evolving_graphs::prelude::*;

const TRIALS: u64 = 64;

/// Deterministic random instance for one trial: 2–13 nodes, 1–4 snapshots,
/// up to 60 directed edges with self-loops dropped.
fn random_graph(seed: u64) -> AdjacencyListGraph {
    let mut rng = SmallRng::seed_from_u64(0xA1B2_0000 ^ seed);
    let n = rng.gen_range(2usize..14);
    let t = rng.gen_range(1usize..5);
    let num_edges = rng.gen_range(0usize..60);
    let mut g = AdjacencyListGraph::directed_with_unit_times(n, t);
    for _ in 0..num_edges {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        let time = rng.gen_range(0..t as u32);
        if u != v {
            g.add_edge(NodeId(u), NodeId(v), TimeIndex(time)).unwrap();
        }
    }
    g
}

/// Theorem 4 + the parallel variant: all four BFS engines agree.
#[test]
fn all_bfs_engines_agree() {
    for trial in 0..TRIALS {
        let g = random_graph(trial);
        for &root in &g.active_nodes() {
            let alg1 = bfs(&g, root).unwrap();
            let alg2 = algebraic_bfs(&g, root).unwrap();
            let dense = algebraic_bfs_dense(&g, root).unwrap();
            let parallel = par_bfs(&g, root).unwrap();
            assert_eq!(alg1.as_flat_slice(), alg2.as_flat_slice(), "trial {trial}");
            assert_eq!(alg1.as_flat_slice(), dense.as_flat_slice(), "trial {trial}");
            assert_eq!(
                alg1.as_flat_slice(),
                parallel.as_flat_slice(),
                "trial {trial}"
            );
        }
    }
}

/// Theorem 1: BFS on the evolving graph equals classical BFS on the
/// equivalent static graph, for every active root.
#[test]
fn evolving_bfs_equals_static_bfs() {
    for trial in 0..TRIALS {
        let g = random_graph(trial);
        let eq = EquivalentStaticGraph::build(&g);
        for &root in &g.active_nodes() {
            let evolving = bfs(&g, root).unwrap();
            let on_static = eq.bfs_distances_from(root).unwrap();
            assert_eq!(on_static.len(), evolving.num_reached(), "trial {trial}");
            for (tn, d) in on_static {
                assert_eq!(evolving.distance(tn), Some(d), "trial {trial}, {tn:?}");
            }
        }
    }
}

/// The dense A_n built by the matrix crate has exactly the edges of the
/// Theorem 1 static graph.
#[test]
fn block_matrix_matches_equivalent_graph() {
    for trial in 0..TRIALS {
        let g = random_graph(trial);
        let eq = EquivalentStaticGraph::build(&g);
        let (an, labels) = BlockAdjacency::from_graph(&g).to_dense_an();
        assert_eq!(labels.as_slice(), eq.temporal_nodes(), "trial {trial}");
        for i in 0..labels.len() {
            for j in 0..labels.len() {
                assert_eq!(
                    an.get(i, j) != 0.0,
                    eq.static_graph().has_edge(i, j),
                    "trial {trial}, entry ({i}, {j})"
                );
            }
        }
    }
}

/// Matrix-power walk counts equal the graph-side dynamic program.
#[test]
fn walk_counts_agree() {
    for trial in 0..TRIALS {
        let g = random_graph(trial);
        let hops = (trial % 4) as usize;
        let actives = g.active_nodes();
        if let Some(&root) = actives.first() {
            let via_matrix = matrix_walk_counts(&g, root, hops);
            let via_dp: Vec<f64> = walk_count_vector(&g, root, hops)
                .iter()
                .map(|&x| x as f64)
                .collect();
            assert_eq!(via_matrix, via_dp, "trial {trial}, hops {hops}");
        }
    }
}

/// The backward BFS from b reaches a iff the forward BFS from a reaches b,
/// with the same distance.
#[test]
fn forward_backward_duality() {
    for trial in 0..TRIALS {
        let g = random_graph(trial);
        let actives = g.active_nodes();
        for &a in actives.iter().take(4) {
            let fwd = bfs(&g, a).unwrap();
            for &b in actives.iter().take(4) {
                let bwd = backward_bfs(&g, b).unwrap();
                assert_eq!(
                    fwd.distance(b),
                    bwd.distance(a),
                    "trial {trial}, a = {a:?}, b = {b:?}"
                );
            }
        }
    }
}

/// A forward BFS on the time-reversed view equals a backward BFS on the
/// original graph.
#[test]
fn reversed_view_duality() {
    for trial in 0..TRIALS {
        let g = random_graph(trial);
        let view = ReversedView::new(&g);
        let actives = g.active_nodes();
        for &root in actives.iter().take(4) {
            let bwd = backward_bfs(&g, root).unwrap();
            let mapped_root = view.map_temporal(root);
            let fwd = bfs(&view, mapped_root).unwrap();
            assert_eq!(bwd.num_reached(), fwd.num_reached(), "trial {trial}");
            for (tn, d) in bwd.reached() {
                assert_eq!(
                    fwd.distance(view.map_temporal(tn)),
                    Some(d),
                    "trial {trial}, {tn:?}"
                );
            }
        }
    }
}
