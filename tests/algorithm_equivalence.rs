//! Property-based tests of Theorems 1 and 4: on arbitrary evolving graphs,
//! Algorithm 1, Algorithm 2 (blocked and dense), the rayon-parallel BFS and
//! classical BFS on the Theorem 1 equivalent static graph all compute the
//! same distances.

use proptest::prelude::*;

use evolving_graphs::prelude::*;

/// Strategy: a random directed evolving graph given as
/// `(num_nodes, num_timestamps, edges)` with 2–14 nodes, 1–5 snapshots and up
/// to 60 edges (self-loops filtered out later).
fn graph_strategy() -> impl Strategy<Value = (usize, usize, Vec<(u32, u32, u32)>)> {
    (2usize..14, 1usize..5).prop_flat_map(|(n, t)| {
        let edge = (0..n as u32, 0..n as u32, 0..t as u32);
        proptest::collection::vec(edge, 0..60).prop_map(move |edges| (n, t, edges))
    })
}

/// Builds the graph, dropping self-loops.
fn build(n: usize, t: usize, edges: &[(u32, u32, u32)]) -> AdjacencyListGraph {
    let mut g = AdjacencyListGraph::directed_with_unit_times(n, t);
    for &(u, v, time) in edges {
        if u != v {
            g.add_edge(NodeId(u), NodeId(v), TimeIndex(time)).unwrap();
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 4 + the parallel variant: all four BFS engines agree.
    #[test]
    fn all_bfs_engines_agree((n, t, edges) in graph_strategy()) {
        let g = build(n, t, &edges);
        for &root in &g.active_nodes() {
            let alg1 = bfs(&g, root).unwrap();
            let alg2 = algebraic_bfs(&g, root).unwrap();
            let dense = algebraic_bfs_dense(&g, root).unwrap();
            let parallel = par_bfs(&g, root).unwrap();
            prop_assert_eq!(alg1.as_flat_slice(), alg2.as_flat_slice());
            prop_assert_eq!(alg1.as_flat_slice(), dense.as_flat_slice());
            prop_assert_eq!(alg1.as_flat_slice(), parallel.as_flat_slice());
        }
    }

    /// Theorem 1: BFS on the evolving graph equals classical BFS on the
    /// equivalent static graph, for every active root.
    #[test]
    fn evolving_bfs_equals_static_bfs((n, t, edges) in graph_strategy()) {
        let g = build(n, t, &edges);
        let eq = EquivalentStaticGraph::build(&g);
        for &root in &g.active_nodes() {
            let evolving = bfs(&g, root).unwrap();
            let on_static = eq.bfs_distances_from(root).unwrap();
            prop_assert_eq!(on_static.len(), evolving.num_reached());
            for (tn, d) in on_static {
                prop_assert_eq!(evolving.distance(tn), Some(d));
            }
        }
    }

    /// The dense A_n built by the matrix crate has exactly the edges of the
    /// Theorem 1 static graph.
    #[test]
    fn block_matrix_matches_equivalent_graph((n, t, edges) in graph_strategy()) {
        let g = build(n, t, &edges);
        let eq = EquivalentStaticGraph::build(&g);
        let (an, labels) = BlockAdjacency::from_graph(&g).to_dense_an();
        prop_assert_eq!(labels.as_slice(), eq.temporal_nodes());
        for i in 0..labels.len() {
            for j in 0..labels.len() {
                prop_assert_eq!(an.get(i, j) != 0.0, eq.static_graph().has_edge(i, j));
            }
        }
    }

    /// Matrix-power walk counts equal the graph-side dynamic program.
    #[test]
    fn walk_counts_agree((n, t, edges) in graph_strategy(), hops in 0usize..4) {
        let g = build(n, t, &edges);
        let actives = g.active_nodes();
        if let Some(&root) = actives.first() {
            let via_matrix = matrix_walk_counts(&g, root, hops);
            let via_dp: Vec<f64> = walk_count_vector(&g, root, hops)
                .iter()
                .map(|&x| x as f64)
                .collect();
            prop_assert_eq!(via_matrix, via_dp);
        }
    }

    /// The backward BFS from b reaches a iff the forward BFS from a reaches b,
    /// with the same distance.
    #[test]
    fn forward_backward_duality((n, t, edges) in graph_strategy()) {
        let g = build(n, t, &edges);
        let actives = g.active_nodes();
        for &a in actives.iter().take(4) {
            let fwd = bfs(&g, a).unwrap();
            for &b in actives.iter().take(4) {
                let bwd = backward_bfs(&g, b).unwrap();
                prop_assert_eq!(fwd.distance(b), bwd.distance(a),
                    "a = {:?}, b = {:?}", a, b);
            }
        }
    }

    /// A forward BFS on the time-reversed view equals a backward BFS on the
    /// original graph.
    #[test]
    fn reversed_view_duality((n, t, edges) in graph_strategy()) {
        let g = build(n, t, &edges);
        let view = ReversedView::new(&g);
        let actives = g.active_nodes();
        for &root in actives.iter().take(4) {
            let bwd = backward_bfs(&g, root).unwrap();
            let mapped_root = view.map_temporal(root);
            let fwd = bfs(&view, mapped_root).unwrap();
            prop_assert_eq!(bwd.num_reached(), fwd.num_reached());
            for (tn, d) in bwd.reached() {
                prop_assert_eq!(fwd.distance(view.map_temporal(tn)), Some(d));
            }
        }
    }
}
