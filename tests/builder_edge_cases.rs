//! Edge-case regressions for the `Search` builder's window resolution and
//! degenerate-graph handling — the previously untested corners of
//! `WindowSpec::resolve`: empty windows, single-snapshot graphs, and roots at
//! the boundary snapshots under `Backward` direction. Every strategy must
//! agree on acceptance *and* rejection.

use evolving_graphs::prelude::*;

const ALL_STRATEGIES: [Strategy; 5] = [
    Strategy::Serial,
    Strategy::Parallel,
    Strategy::Algebraic,
    Strategy::Foremost,
    Strategy::SharedFrontier,
];

fn paper() -> AdjacencyListGraph {
    evolving_graphs::core::examples::paper_figure1()
}

#[test]
#[allow(clippy::reversed_empty_ranges)] // deliberately empty windows
fn empty_windows_are_rejected_by_every_strategy() {
    let g = paper();
    let root = TemporalNode::from_raw(0, 0);
    for strategy in ALL_STRATEGIES {
        for (label, search) in [
            ("half-open empty", Search::from(root).window(1u32..1)),
            ("inverted inclusive", Search::from(root).window(2u32..=1)),
            ("zero prefix", Search::from(root).window(..0u32)),
        ] {
            let err = search.strategy(strategy).run(&g).unwrap_err();
            assert!(
                matches!(err, GraphError::EmptyWindow),
                "{label} under {strategy:?}: {err:?}"
            );
        }
        // Out-of-range is a different rejection and must stay one.
        let err = Search::from(root)
            .window(0u32..=9)
            .strategy(strategy)
            .run(&g)
            .unwrap_err();
        assert!(
            matches!(err, GraphError::TimeOutOfRange { .. }),
            "{strategy:?}: {err:?}"
        );
    }
}

#[test]
fn zero_snapshot_graphs_report_empty_graph() {
    let g = AdjacencyListGraph::directed(3, Vec::new()).unwrap();
    for strategy in ALL_STRATEGIES {
        let err = Search::from(TemporalNode::from_raw(0, 0))
            .strategy(strategy)
            .run(&g)
            .unwrap_err();
        assert!(
            matches!(err, GraphError::EmptyGraph),
            "{strategy:?}: {err:?}"
        );
    }
}

#[test]
fn single_snapshot_graphs_search_within_the_snapshot() {
    // One snapshot, a 3-node path 0 → 1 → 2: no causal edges exist, so every
    // traversal is a static BFS of that snapshot.
    let mut g = AdjacencyListGraph::directed_with_unit_times(3, 1);
    g.add_edge(NodeId(0), NodeId(1), TimeIndex(0)).unwrap();
    g.add_edge(NodeId(1), NodeId(2), TimeIndex(0)).unwrap();
    let root = TemporalNode::from_raw(0, 0);

    for strategy in [Strategy::Serial, Strategy::Parallel, Strategy::Algebraic] {
        let result = Search::from(root).strategy(strategy).run(&g).unwrap();
        assert_eq!(result.distance(TemporalNode::from_raw(2, 0)), Some(2));
        assert_eq!(result.num_reached(), 3, "{strategy:?}");
        // The only window expression a 1-snapshot graph admits is 0..=0,
        // and it must reproduce the full search.
        let windowed = Search::from(root)
            .window(0u32..=0)
            .strategy(strategy)
            .run(&g)
            .unwrap();
        assert_eq!(windowed.num_reached(), 3, "{strategy:?}");
    }
    let sweep = Search::from(root)
        .strategy(Strategy::Foremost)
        .run(&g)
        .unwrap();
    for v in 0..3u32 {
        assert_eq!(sweep.arrival(NodeId(v)), Some(TimeIndex(0)), "node {v}");
    }
    // Backward from the sink inverts the path within the single snapshot.
    let back = Search::from(TemporalNode::from_raw(2, 0))
        .backward()
        .run(&g)
        .unwrap();
    assert_eq!(back.distance(TemporalNode::from_raw(0, 0)), Some(2));
}

#[test]
fn backward_from_the_last_snapshot_works_for_every_strategy() {
    let g = paper();
    let root = TemporalNode::from_raw(2, 2); // (3, t3): the last snapshot
    let serial = Search::from(root).backward().run(&g).unwrap();
    assert!(serial.is_reached(TemporalNode::from_raw(0, 0)));
    for strategy in [
        Strategy::Parallel,
        Strategy::Algebraic,
        Strategy::SharedFrontier,
    ] {
        let other = Search::from(root)
            .backward()
            .strategy(strategy)
            .run(&g)
            .unwrap();
        for tn in g.active_nodes() {
            assert_eq!(
                other.distance(tn),
                serial.distance(tn),
                "{strategy:?} at {tn:?}"
            );
        }
    }
    let sweep = Search::from(root)
        .backward()
        .strategy(Strategy::Foremost)
        .run(&g)
        .unwrap();
    for v in 0..g.num_nodes() {
        let v = NodeId::from_index(v);
        assert_eq!(sweep.arrival(v), serial.arrival(v), "node {v:?}");
    }
}

#[test]
fn backward_root_at_the_last_snapshot_composes_with_windows() {
    let g = paper();
    let root = TemporalNode::from_raw(2, 2);
    // Window ending exactly at the root's snapshot.
    let windowed = Search::from(root)
        .backward()
        .window(1u32..=2)
        .run(&g)
        .unwrap();
    assert!(windowed.is_reached(TemporalNode::from_raw(0, 1)));
    assert!(!windowed.is_reached(TemporalNode::from_raw(0, 0)));
    // Degenerate-but-valid window holding only the last snapshot: the root
    // has no static in-edges at t3... except 2 → 3 exists at t3, so node 1
    // is one hop back.
    let point = Search::from(root)
        .backward()
        .window(2u32..=2)
        .run(&g)
        .unwrap();
    assert_eq!(point.distance(TemporalNode::from_raw(1, 2)), Some(1));
    assert_eq!(point.num_reached(), 2);
}

#[test]
fn window_spec_full_and_suffix_boundaries_resolve() {
    let g = paper();
    let root = TemporalNode::from_raw(0, 1);
    // `..` is the identity window.
    let full = Search::from(root).window(..).run(&g).unwrap();
    let bare = Search::from(root).run(&g).unwrap();
    assert_eq!(
        full.distance_map().as_flat_slice(),
        bare.distance_map().as_flat_slice()
    );
    // A suffix window starting at the final snapshot is valid.
    let last = Search::from(TemporalNode::from_raw(1, 2))
        .window(2u32..)
        .run(&g)
        .unwrap();
    assert_eq!(last.num_reached(), 2); // (2, t3) and its static neighbor (3, t3)
}
