//! Chaos differential suite: scripted faults, crashes and overload against
//! the durability contract PR 8 promised.
//!
//! Every test here drives the *real* stack — `DurableGraph` over
//! `egraph-log`, or a full `egraph-serve` server over a socket — with
//! faults scripted through the `egraph-fault` registry, and asserts the
//! recovered state against a **never-faulted twin** built from the model of
//! what was acknowledged:
//!
//! * a failed seal leaves both the graph and the log unsealed and
//!   retryable, and the eventual successful seal is byte-identical to a
//!   twin that never saw the fault;
//! * publish-after-fsync cannot fail — a crash scripted between the fsync
//!   and the publish recovers the sealed segment even though it was never
//!   acknowledged;
//! * recovery after any interleaving of ingest / seal / query / fault /
//!   crash equals the twin, payload-for-payload
//!   ([`common::matrix::assert_equivalent`]);
//! * overload sheds with `503` + `Retry-After` from the accept thread
//!   while admitted requests and parked subscribers ride it out, and the
//!   retrying client lands its request once the storm passes;
//! * a follower's write-forwarding survives a leader restart, an injected
//!   forward failure is shed and recovered by the client's retry, and a
//!   replication gap halts the follower loudly instead of skipping ahead;
//! * checkpoint lifecycle faults (`ckpt.write` / `ckpt.fsync` /
//!   `ckpt.rename` / `ckpt.read` / `log.compact.delete`) never fail the
//!   seal they ride on and never corrupt recovery — a torn or unreadable
//!   newest checkpoint falls back to an older one, replay stays bounded
//!   by the retained checkpoints, and the recovered graph equals the
//!   never-faulted twin;
//! * a follower whose tail position the leader compacted away
//!   re-bootstraps from `GET /checkpoint/latest` and converges instead of
//!   halting.
//!
//! Failpoints compile out of release builds ([`fault::is_active_build`]),
//! so fault-dependent tests skip there — but the crash/restart,
//! leader-restart and gap-halt tests run in every build. The seed sweep
//! defaults to eight fixed seeds; override with a comma-separated
//! `EGRAPH_CHAOS_SEEDS` to reproduce or broaden a run. All tests serialize
//! on one gate: the failpoint registry is process-global, and a rule armed
//! by one test must never leak into another's I/O.

mod common;

use std::fs;
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use common::matrix::assert_equivalent;
use egraph_core::ids::{NodeId, TemporalNode};
use egraph_fault::{self as fault, Rule};
use egraph_io::binary::LogRecord;
use egraph_log::encode_segment;
use egraph_log::log::segment_path;
use egraph_query::codec::{descriptor_to_json, search_result_to_json};
use egraph_query::{Search, Strategy};
use egraph_serve::http;
use egraph_serve::{Client, RetryPolicy, Server, ServerConfig};
use egraph_stream::durable::DurableError;
use egraph_stream::{DurableGraph, EdgeEvent, LiveGraph, QueryCache};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Harness plumbing
// ---------------------------------------------------------------------------

/// Serializes the whole suite and guarantees a clean registry on both
/// entry (a previous test may have panicked mid-script) and exit.
struct FaultGate(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FaultGate {
    fn drop(&mut self) {
        fault::reset();
    }
}

fn gate() -> FaultGate {
    static GATE: Mutex<()> = Mutex::new(());
    let guard = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    fault::reset();
    FaultGate(guard)
}

/// A scratch directory under the system temp root, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("egraph-chaos-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Polls `ok` for up to ten seconds; panics with `what` on timeout.
fn wait_until(what: &str, mut ok: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !ok() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The `serve_http` fixture graph: three sealed snapshots over six nodes.
fn fixture_live() -> LiveGraph {
    let mut live = LiveGraph::directed(6);
    live.insert(NodeId(0), NodeId(1)).unwrap();
    live.insert(NodeId(1), NodeId(2)).unwrap();
    live.seal_snapshot(0).unwrap();
    live.insert(NodeId(2), NodeId(3)).unwrap();
    live.insert(NodeId(0), NodeId(4)).unwrap();
    live.seal_snapshot(1).unwrap();
    live.insert(NodeId(3), NodeId(5)).unwrap();
    live.seal_snapshot(2).unwrap();
    live
}

/// One search per query shape the matrix distinguishes, rooted inside the
/// six-node universe every chaos graph here uses. Shapes whose window or
/// root does not exist yet *error* — [`assert_equivalent`] compares errors
/// exactly, so those cells pin the error paths too.
fn chaos_searches() -> Vec<Search> {
    vec![
        Search::from(TemporalNode::from_raw(0, 0)),
        Search::from(TemporalNode::from_raw(0, 0)).strategy(Strategy::Parallel),
        Search::from(TemporalNode::from_raw(1, 0)).strategy(Strategy::Foremost),
        Search::from(TemporalNode::from_raw(2, 0)).backward(),
        Search::from(TemporalNode::from_raw(0, 0)).reverse(),
        Search::from(TemporalNode::from_raw(0, 0)).with_parents(),
        Search::from(TemporalNode::from_raw(0, 0)).window(0u32..=1),
        Search::from_sources([TemporalNode::from_raw(0, 0), TemporalNode::from_raw(1, 0)])
            .strategy(Strategy::SharedFrontier),
    ]
}

// ---------------------------------------------------------------------------
// The failpoint contract itself
// ---------------------------------------------------------------------------

#[test]
fn release_builds_compile_failpoints_to_no_ops() {
    let _gate = gate();
    fault::configure("chaos.release.probe", Rule::error());
    if fault::is_active_build() {
        assert!(fault::fired("chaos.release.probe").is_some());
        assert_eq!(fault::times_evaluated("chaos.release.probe"), 1);
    } else {
        assert_eq!(
            fault::fired("chaos.release.probe"),
            None,
            "a configured site must still be inert in a release build"
        );
        assert_eq!(fault::times_evaluated("chaos.release.probe"), 0);
    }
}

#[test]
fn failpoint_scripts_parse_and_the_env_hook_is_sound() {
    let _gate = gate();
    // The grammar parses (and rejects typos loudly) in every build.
    assert!(fault::script("log.seal.fsync=times:1,error; serve.query.compute=delay:5").is_ok());
    assert!(fault::script("log.seal.fsync=wat").is_err());
    assert!(fault::script("p:1.5,error").is_err());
    fault::reset();
    // The env hook is what CI's chaos job scripts through: a malformed
    // EGRAPH_FAILPOINTS must fail the run, a well-formed one must reach
    // the registry (in debug builds).
    let spec = std::env::var("EGRAPH_FAILPOINTS").unwrap_or_default();
    let configured = fault::script_from_env().expect("EGRAPH_FAILPOINTS must parse");
    if fault::is_active_build() && spec.contains('=') && !spec.contains("off") {
        assert!(
            configured > 0,
            "a non-empty EGRAPH_FAILPOINTS script must configure at least one site"
        );
    }
    if spec.is_empty() {
        assert_eq!(configured, 0);
    }
}

// ---------------------------------------------------------------------------
// Seal faults at the DurableGraph layer (ENOSPC / torn write / failed
// fsync): unsealed, retryable, byte-identical on recovery
// ---------------------------------------------------------------------------

#[test]
fn a_faulted_seal_stays_unsealed_and_retries_byte_identically() {
    let _gate = gate();
    if !fault::is_active_build() {
        return; // failpoints compile out of release builds
    }
    let faulted_dir = TempDir::new("seal-fault");
    let twin_dir = TempDir::new("seal-twin");
    let mut faulted = DurableGraph::create(faulted_dir.path(), 6, true).unwrap();
    let mut twin = DurableGraph::create(twin_dir.path(), 6, true).unwrap();
    for (u, v) in [(0u32, 1u32), (1, 2), (0, 3)] {
        faulted.insert(NodeId(u), NodeId(v)).unwrap();
        twin.insert(NodeId(u), NodeId(v)).unwrap();
    }

    // Every disk-failure class in sequence: ENOSPC on the write, a torn
    // write (crash residue), a failed file fsync, a failed directory sync.
    // Each one must leave the graph unsealed and everything pending.
    for (site, rule) in [
        ("log.seal.write", Rule::error().times(1)),
        ("log.seal.write", Rule::partial(40).times(1)),
        ("log.seal.fsync", Rule::error().times(1)),
        ("log.dir.fsync", Rule::error().times(1)),
    ] {
        fault::configure(site, rule);
        let err = faulted.seal_snapshot(10).unwrap_err();
        assert!(
            matches!(err, DurableError::Log(_)),
            "{site}: injected fault must surface as a log error, got {err}"
        );
        assert_eq!(faulted.live().version(), 0, "{site}: nothing published");
        assert_eq!(
            faulted.live().num_pending(),
            3,
            "{site}: events stay pending"
        );
        assert_eq!(faulted.log().segments_sealed(), 0, "{site}: log unsealed");
        assert_eq!(
            faulted.log().num_pending(),
            3,
            "{site}: records stay pending"
        );
        fault::clear(site);
    }

    // Ingest stays retryable after the faults: more events still append...
    faulted.insert(NodeId(3), NodeId(4)).unwrap();
    twin.insert(NodeId(3), NodeId(4)).unwrap();

    // ...and the eventual successful seal is byte-identical to the twin
    // that never saw a fault — in the receipt and on disk.
    let healed = faulted.seal_snapshot(10).unwrap();
    let clean = twin.seal_snapshot(10).unwrap();
    assert_eq!(healed.seq, clean.seq);
    assert_eq!(
        healed.bytes, clean.bytes,
        "the healed seal must produce the never-faulted twin's exact bytes"
    );
    assert_eq!(
        fs::read(segment_path(faulted_dir.path(), 0)).unwrap(),
        fs::read(segment_path(twin_dir.path(), 0)).unwrap(),
        "the on-disk segments must be byte-identical"
    );

    // Both recover to the same graph.
    drop(faulted);
    drop(twin);
    let faulted = DurableGraph::open(faulted_dir.path()).unwrap();
    let twin = DurableGraph::open(twin_dir.path()).unwrap();
    assert_eq!(faulted.segments_replayed, 1);
    assert_eq!(twin.segments_replayed, 1);
    let cache = QueryCache::new();
    for (i, search) in chaos_searches().iter().enumerate() {
        let label = format!("post-recovery cell {i}");
        let cached = cache.execute(faulted.graph.live(), search);
        let scratch = search.run(twin.graph.live().graph());
        assert_equivalent(
            &label,
            faulted.graph.live().graph(),
            search,
            cached,
            scratch,
        );
    }
}

#[test]
fn a_failed_seal_over_the_wire_is_unacknowledged_and_retryable() {
    let _gate = gate();
    if !fault::is_active_build() {
        return;
    }
    let dir = TempDir::new("wire-enospc");
    let recovered = DurableGraph::open_or_create(dir.path(), 6, true).unwrap();
    let mut server = Server::start_durable(recovered, ServerConfig::default()).unwrap();
    let client = Client::new(server.addr());

    let response = client
        .post("/ingest", r#"{"events": [[0, 1], [1, 2]]}"#)
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);

    // The disk refuses the fsync: the seal is answered 500 and nothing is
    // acknowledged or published.
    fault::configure("log.seal.fsync", Rule::error().times(1));
    let response = client.post("/ingest", r#"{"seal": 0}"#).unwrap();
    assert_eq!(response.status, 500, "{}", response.body);
    assert!(
        response.body.contains("failed to persist the seal"),
        "{}",
        response.body
    );
    let health = client.get("/health").unwrap();
    assert!(health.body.contains("\"num_sealed\": 0"), "{}", health.body);
    assert_eq!(server.stats().segments_sealed, 0);

    // The disk recovers; the same seal retried succeeds, and every answer
    // equals a twin that never saw the fault.
    let response = client.post("/ingest", r#"{"seal": 0}"#).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(
        response.body.contains("\"num_sealed\": 1"),
        "{}",
        response.body
    );
    let mut twin = LiveGraph::directed(6);
    twin.insert(NodeId(0), NodeId(1)).unwrap();
    twin.insert(NodeId(1), NodeId(2)).unwrap();
    twin.seal_snapshot(0).unwrap();
    for search in [
        Search::from(TemporalNode::from_raw(0, 0)),
        Search::from(TemporalNode::from_raw(2, 0)).backward(),
    ] {
        let response = client.query(&search.descriptor()).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        assert_eq!(
            response.body,
            search_result_to_json(&search.run(twin.graph()).unwrap()),
            "{:?}",
            search.descriptor()
        );
    }
    server.shutdown();
}

#[test]
fn a_crash_between_fsync_and_publish_recovers_the_sealed_segment() {
    let _gate = gate();
    if !fault::is_active_build() {
        return;
    }
    let dir = TempDir::new("publish-crash");
    let mut durable = DurableGraph::create(dir.path(), 6, true).unwrap();
    durable.insert(NodeId(0), NodeId(1)).unwrap();
    durable.seal_snapshot(0).unwrap();
    durable.insert(NodeId(1), NodeId(2)).unwrap();

    // The process "dies" between the segment fsync and the publish: the
    // seal was durable but never acknowledged and never visible.
    fault::configure("durable.publish", Rule::panic_now().times(1));
    let outcome = catch_unwind(AssertUnwindSafe(|| durable.seal_snapshot(1)));
    assert!(outcome.is_err(), "the scripted panic must fire");
    fault::reset();
    drop(durable);

    // Recovery replays the fsynced segment — publish-after-fsync can never
    // fail, so the durability point alone decides what survives.
    let recovered = DurableGraph::open(dir.path()).unwrap();
    assert_eq!(
        recovered.segments_replayed, 2,
        "the fsynced-but-unacknowledged segment must be replayed"
    );
    let mut twin = LiveGraph::directed(6);
    twin.insert(NodeId(0), NodeId(1)).unwrap();
    twin.seal_snapshot(0).unwrap();
    twin.insert(NodeId(1), NodeId(2)).unwrap();
    twin.seal_snapshot(1).unwrap();
    let cache = QueryCache::new();
    for (i, search) in chaos_searches().iter().enumerate() {
        let label = format!("publish-crash cell {i}");
        let cached = cache.execute(recovered.graph.live(), search);
        let scratch = search.run(twin.graph());
        assert_equivalent(
            &label,
            recovered.graph.live().graph(),
            search,
            cached,
            scratch,
        );
    }
}

// ---------------------------------------------------------------------------
// The seeded chaos differential: ingest / seal / query / fault / crash
// ---------------------------------------------------------------------------

const DEFAULT_CHAOS_SEEDS: [u64; 8] = [
    0xC4A0501, 0xC4A0502, 0xC4A0503, 0xC4A0504, 0xD15C0BE, 0xFA17ED, 0x0DD5EED, 0xB007CA7,
];

fn chaos_seeds() -> Vec<u64> {
    match std::env::var("EGRAPH_CHAOS_SEEDS") {
        Ok(spec) => spec
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad seed {s:?} in EGRAPH_CHAOS_SEEDS"))
            })
            .collect(),
        Err(_) => DEFAULT_CHAOS_SEEDS.to_vec(),
    }
}

/// The never-faulted twin of an acknowledged history: replaying exactly the
/// acked seals must reproduce the durable graph bit-for-bit.
fn twin_of(history: &[(i64, Vec<EdgeEvent>)], num_nodes: usize) -> LiveGraph {
    let mut twin = LiveGraph::directed(num_nodes);
    for (label, events) in history {
        for &event in events {
            twin.apply(event).unwrap();
        }
        twin.seal_snapshot(*label).unwrap();
    }
    twin
}

/// Asserts the durable graph equals the model: version, seal count and
/// pending depth match the acked history, and every matrix shape answers
/// payload-for-payload like the never-faulted twin.
fn assert_matches_twin(
    seed: u64,
    stage: &str,
    cache: &QueryCache,
    durable: &DurableGraph,
    history: &[(i64, Vec<EdgeEvent>)],
    pending: usize,
    num_nodes: usize,
) {
    let live = durable.live();
    assert_eq!(
        live.version(),
        history.len() as u64,
        "seed {seed:#x} {stage}: version"
    );
    assert_eq!(
        durable.log().segments_sealed(),
        history.len() as u64,
        "seed {seed:#x} {stage}: log seal count"
    );
    assert_eq!(
        live.num_pending(),
        pending,
        "seed {seed:#x} {stage}: pending events"
    );
    let twin = twin_of(history, num_nodes);
    for (i, search) in chaos_searches().iter().enumerate() {
        let label = format!("seed {seed:#x} {stage} cell {i}");
        let cached = cache.execute(live, search);
        let scratch = search.run(twin.graph());
        assert_equivalent(&label, live.graph(), search, cached, scratch);
    }
}

/// One seeded run: a random interleaving of ingest bursts, seals (clean or
/// scripted to fail at one of the four disk sites), query differentials and
/// kill/restart cycles. The model tracks the acked history, the pending
/// tail, and the one subtle case — a seal whose file was completely written
/// and fsynced before the failure (failed file-fsync *ack*, or failed
/// directory sync): never acknowledged, but durably on disk, so a crash
/// legitimately recovers it.
fn run_chaos_seed(seed: u64) {
    const NUM_NODES: usize = 6;
    let mut rng = SmallRng::seed_from_u64(seed);
    let dir = TempDir::new(&format!("diff-{seed:x}"));
    let mut durable = DurableGraph::create(dir.path(), NUM_NODES, true).unwrap();
    let cache = QueryCache::new();
    let mut history: Vec<(i64, Vec<EdgeEvent>)> = Vec::new();
    let mut pending: Vec<EdgeEvent> = Vec::new();
    let mut unacked_complete: Option<(i64, Vec<EdgeEvent>)> = None;
    let mut next_label: i64 = 0;

    for step in 0..16u32 {
        match rng.gen_range(0..8u32) {
            // Ingest a burst of events, mirrored into the model.
            0..=2 => {
                for _ in 0..rng.gen_range(1..4u32) {
                    let u = rng.gen_range(0..NUM_NODES as u32);
                    let v = rng.gen_range(0..NUM_NODES as u32);
                    if u == v {
                        continue;
                    }
                    let event = if rng.gen_range(0..4u32) == 0 {
                        EdgeEvent::insert_unique(NodeId(u), NodeId(v))
                    } else {
                        EdgeEvent::insert(NodeId(u), NodeId(v))
                    };
                    durable.apply(event).unwrap();
                    pending.push(event);
                }
            }
            // Seal — clean, or scripted to fail at one disk site. The
            // third tuple field records whether the failure mode leaves a
            // complete segment on disk (fsync-ack and dir-sync failures do;
            // write errors and torn writes leave only truncatable residue).
            3..=5 => {
                let label = next_label;
                next_label += 1;
                let roll = rng.gen_range(0..8u32);
                let scripted: Option<(&str, Rule, bool)> = if !fault::is_active_build() {
                    None // failpoints compile out: every seal runs clean
                } else {
                    match roll {
                        0 => Some(("log.seal.write", Rule::error().times(1), false)),
                        1 => Some((
                            "log.seal.write",
                            Rule::partial(rng.gen_range(1..99u32) as u8).times(1),
                            false,
                        )),
                        2 => Some(("log.seal.fsync", Rule::error().times(1), true)),
                        3 => Some(("log.dir.fsync", Rule::error().times(1), true)),
                        _ => None,
                    }
                };
                if let Some((site, rule, _)) = &scripted {
                    fault::configure(site, rule.clone());
                }
                let result = durable.seal_snapshot(label);
                if let Some((site, _, _)) = &scripted {
                    fault::clear(site);
                }
                match (result, &scripted) {
                    (Ok(receipt), scripted) => {
                        assert!(
                            scripted.is_none(),
                            "seed {seed:#x} step {step}: a scripted fault must fail the seal"
                        );
                        assert_eq!(receipt.seq, history.len() as u64);
                        history.push((label, std::mem::take(&mut pending)));
                        unacked_complete = None;
                    }
                    (Err(err), Some((site, _, complete))) => {
                        assert!(
                            matches!(err, DurableError::Log(_)),
                            "seed {seed:#x} step {step}: injected {site} fault must surface \
                             as a log error, got {err}"
                        );
                        // Failed seal: neither side advanced; everything
                        // stays pending and retryable on both sides.
                        assert_eq!(durable.live().version(), history.len() as u64);
                        assert_eq!(durable.log().segments_sealed(), history.len() as u64);
                        assert_eq!(durable.live().num_pending(), pending.len());
                        unacked_complete = if *complete {
                            Some((label, pending.clone()))
                        } else {
                            None
                        };
                        // Half the time the disk "heals" and the seal is
                        // retried immediately; otherwise the failure is
                        // left to interact with whatever comes next.
                        if rng.gen_bool(0.5) {
                            let receipt = durable.seal_snapshot(label).unwrap();
                            assert_eq!(receipt.seq, history.len() as u64);
                            history.push((label, std::mem::take(&mut pending)));
                            unacked_complete = None;
                        }
                    }
                    (Err(err), None) => {
                        panic!("seed {seed:#x} step {step}: unscripted seal failure: {err}")
                    }
                }
            }
            // Query differential against the never-faulted twin.
            6 => assert_matches_twin(
                seed,
                &format!("step {step}"),
                &cache,
                &durable,
                &history,
                pending.len(),
                NUM_NODES,
            ),
            // Kill and restart: everything in memory dies; recovery must
            // rebuild exactly the durable prefix — the acked history plus
            // at most one complete-but-unacknowledged segment.
            7 => {
                drop(durable);
                if let Some((label, events)) = unacked_complete.take() {
                    history.push((label, events));
                }
                pending.clear();
                let recovered = DurableGraph::open(dir.path()).unwrap();
                assert_eq!(
                    recovered.segments_replayed,
                    history.len() as u64,
                    "seed {seed:#x} step {step}: recovery must replay exactly the durable seals"
                );
                durable = recovered.graph;
                assert_matches_twin(
                    seed,
                    &format!("step {step} post-crash"),
                    &cache,
                    &durable,
                    &history,
                    0,
                    NUM_NODES,
                );
            }
            _ => unreachable!(),
        }
    }

    // Wind down deterministically: one clean seal, then a final
    // crash/recovery round trip so every seed ends on a recovery check.
    durable.insert(NodeId(0), NodeId(1)).unwrap();
    pending.push(EdgeEvent::insert(NodeId(0), NodeId(1)));
    durable.seal_snapshot(next_label).unwrap();
    history.push((next_label, std::mem::take(&mut pending)));
    unacked_complete = None;
    assert_matches_twin(seed, "final", &cache, &durable, &history, 0, NUM_NODES);
    drop(durable);
    drop(unacked_complete);
    let recovered = DurableGraph::open(dir.path()).unwrap();
    assert_eq!(recovered.segments_replayed, history.len() as u64);
    assert_matches_twin(
        seed,
        "final post-crash",
        &cache,
        &recovered.graph,
        &history,
        0,
        NUM_NODES,
    );
}

#[test]
fn chaos_differential_recovered_state_equals_a_never_faulted_twin() {
    let _gate = gate();
    for seed in chaos_seeds() {
        run_chaos_seed(seed);
    }
}

// ---------------------------------------------------------------------------
// The checkpointed chaos differential: the checkpoint lifecycle itself
// under faults — seals must survive them, recovery must stay bounded
// ---------------------------------------------------------------------------

/// One seeded run with the checkpoint policy on (every 2 seals, retain 2)
/// and the checkpoint lifecycle under scripted faults: the temp write, its
/// fsync, the rename, and the compaction delete at seal time; the
/// checkpoint read at recovery time. The invariants this pins:
///
/// * a checkpoint fault never fails the seal it rides on — the segment is
///   already fsynced when the hook runs, so the receipt merely reports no
///   checkpoint and the next due seal retries;
/// * recovery replays at most the suffix past the *oldest* retained
///   checkpoint, even when the newest is unreadable (`ckpt.read` falls
///   back) — replay is bounded, never a full-history rebuild;
/// * whatever the interleaving, the recovered graph answers every matrix
///   shape payload-identically to the never-faulted twin.
///
/// The wind-down corrupts the newest *installed* checkpoint on disk
/// (truncation, not a failpoint — so it runs in release builds too) and
/// proves the CRC frame rejects it and recovery lands on the older one.
fn run_checkpoint_chaos_seed(seed: u64) {
    const NUM_NODES: usize = 6;
    const EVERY: u64 = 2;
    let mut rng = SmallRng::seed_from_u64(seed);
    let dir = TempDir::new(&format!("ckpt-{seed:x}"));
    let mut durable = DurableGraph::create(dir.path(), NUM_NODES, true).unwrap();
    durable.set_checkpoint_policy(EVERY, 2);
    let cache = QueryCache::new();
    let mut history: Vec<(i64, Vec<EdgeEvent>)> = Vec::new();
    let mut pending: Vec<EdgeEvent> = Vec::new();
    let mut next_label: i64 = 0;

    for step in 0..16u32 {
        match rng.gen_range(0..8u32) {
            // Ingest a burst of events, mirrored into the model.
            0..=2 => {
                for _ in 0..rng.gen_range(1..4u32) {
                    let u = rng.gen_range(0..NUM_NODES as u32);
                    let v = rng.gen_range(0..NUM_NODES as u32);
                    if u == v {
                        continue;
                    }
                    let event = EdgeEvent::insert(NodeId(u), NodeId(v));
                    durable.apply(event).unwrap();
                    pending.push(event);
                }
            }
            // Seal — sometimes with one checkpoint-lifecycle site scripted
            // to fail. The seal itself must succeed either way.
            3..=5 => {
                let label = next_label;
                next_label += 1;
                let scripted: Option<(&str, Rule)> = if !fault::is_active_build() {
                    None // failpoints compile out: every checkpoint runs clean
                } else {
                    match rng.gen_range(0..8u32) {
                        0 => Some(("ckpt.write", Rule::error().times(1))),
                        1 => Some((
                            "ckpt.write",
                            Rule::partial(rng.gen_range(1..99u32) as u8).times(1),
                        )),
                        2 => Some(("ckpt.fsync", Rule::error().times(1))),
                        3 => Some(("ckpt.rename", Rule::error().times(1))),
                        4 => Some(("log.compact.delete", Rule::error().times(1))),
                        _ => None,
                    }
                };
                if let Some((site, rule)) = &scripted {
                    fault::configure(site, rule.clone());
                }
                let receipt = durable.seal_snapshot(label).unwrap_or_else(|err| {
                    panic!(
                        "seed {seed:#x} step {step}: a checkpoint fault must never fail \
                         the seal it rides on: {err}"
                    )
                });
                if let Some((site, _)) = &scripted {
                    fault::clear(site);
                }
                assert_eq!(receipt.seq, history.len() as u64);
                let due = (history.len() as u64 + 1).is_multiple_of(EVERY);
                match (due, &scripted) {
                    // A scripted `log.compact.delete` only fires when the
                    // covered range still holds segment files; when an
                    // earlier checkpoint already compacted it, the loop is
                    // empty and the checkpoint legitimately installs.
                    (true, Some(("log.compact.delete", _))) => {
                        if let Some(checkpoint) = &receipt.checkpoint {
                            assert_eq!(
                                checkpoint.segments_compacted, 0,
                                "seed {seed:#x} step {step}: a checkpoint that survived a \
                                 scripted compaction fault cannot have deleted anything"
                            );
                        }
                    }
                    (true, Some((site, _))) => assert!(
                        receipt.checkpoint.is_none(),
                        "seed {seed:#x} step {step}: a checkpoint faulted at {site} must \
                         not be reported installed"
                    ),
                    (true, None) => assert!(
                        receipt.checkpoint.is_some(),
                        "seed {seed:#x} step {step}: a clean due checkpoint must install"
                    ),
                    (false, _) => assert!(
                        receipt.checkpoint.is_none(),
                        "seed {seed:#x} step {step}: no checkpoint was due"
                    ),
                }
                history.push((label, std::mem::take(&mut pending)));
            }
            // Query differential against the never-faulted twin.
            6 => assert_matches_twin(
                seed,
                &format!("ckpt step {step}"),
                &cache,
                &durable,
                &history,
                pending.len(),
                NUM_NODES,
            ),
            // Kill and restart. When at least two checkpoints are retained,
            // half the kills also make the newest unreadable (`ckpt.read`):
            // recovery must fall back to the older one, and in every case
            // replay is bounded by the oldest retained checkpoint's suffix.
            7 => {
                drop(durable);
                pending.clear();
                let checkpoints = egraph_log::list_checkpoints(dir.path()).unwrap();
                if fault::is_active_build() && checkpoints.len() >= 2 && rng.gen_bool(0.5) {
                    fault::configure("ckpt.read", Rule::error().times(1));
                }
                let recovered = DurableGraph::open(dir.path()).unwrap();
                fault::clear("ckpt.read");
                if let Some(&oldest) = checkpoints.first() {
                    assert!(
                        recovered.checkpoint_seq.is_some(),
                        "seed {seed:#x} step {step}: with a checkpoint on disk, recovery \
                         must start from one"
                    );
                    let bound = history.len() as u64 - (oldest + 1);
                    assert!(
                        recovered.segments_replayed <= bound,
                        "seed {seed:#x} step {step}: replay must be bounded by the oldest \
                         retained checkpoint's suffix ({} > {bound})",
                        recovered.segments_replayed
                    );
                }
                durable = recovered.graph;
                durable.set_checkpoint_policy(EVERY, 2);
                assert_matches_twin(
                    seed,
                    &format!("ckpt step {step} post-crash"),
                    &cache,
                    &durable,
                    &history,
                    0,
                    NUM_NODES,
                );
            }
            _ => unreachable!(),
        }
    }

    // Wind down: one clean seal, then a final restart with the newest
    // installed checkpoint torn in half on disk.
    durable.insert(NodeId(0), NodeId(1)).unwrap();
    pending.push(EdgeEvent::insert(NodeId(0), NodeId(1)));
    durable.seal_snapshot(next_label).unwrap();
    history.push((next_label, std::mem::take(&mut pending)));
    drop(durable);
    let checkpoints = egraph_log::list_checkpoints(dir.path()).unwrap();
    if checkpoints.len() >= 2 {
        let newest = checkpoints[checkpoints.len() - 1];
        let fallback = checkpoints[checkpoints.len() - 2];
        let path = egraph_log::checkpoint_path(dir.path(), newest);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let recovered = DurableGraph::open(dir.path()).unwrap();
        assert_eq!(
            recovered.checkpoint_seq,
            Some(fallback),
            "seed {seed:#x}: a torn newest checkpoint must fall back to the older one"
        );
        assert_matches_twin(
            seed,
            "ckpt final torn-newest",
            &cache,
            &recovered.graph,
            &history,
            0,
            NUM_NODES,
        );
    } else {
        let recovered = DurableGraph::open(dir.path()).unwrap();
        assert_matches_twin(
            seed,
            "ckpt final",
            &cache,
            &recovered.graph,
            &history,
            0,
            NUM_NODES,
        );
    }
}

#[test]
fn checkpoint_chaos_recovery_equals_a_never_faulted_twin() {
    let _gate = gate();
    for seed in chaos_seeds() {
        run_checkpoint_chaos_seed(seed);
    }
}

// ---------------------------------------------------------------------------
// Overload: bounded admission sheds, in-flight completes, retry recovers
// ---------------------------------------------------------------------------

#[test]
fn overload_sheds_with_retry_after_while_inflight_completes() {
    let _gate = gate();
    if !fault::is_active_build() {
        return; // overload is manufactured with a scripted compute delay
    }
    let config = ServerConfig {
        max_inflight: 2,
        retry_after_secs: 1,
        ..ServerConfig::default()
    };
    let mut server = Server::start(fixture_live(), config).unwrap();
    let addr = server.addr();
    let client = Client::new(addr);

    // A parked subscriber holds no handler slot and must ride out the
    // storm untouched. Its *handler* does hold a slot for an instant after
    // the initial frame lands, so give it a beat to return before filling
    // admission — otherwise one pinned query below is the one shed.
    let standing = Search::from(TemporalNode::from_raw(0, 0));
    let mut subscription = client.subscribe(&standing.descriptor()).unwrap();
    assert!(subscription.next_frame().unwrap().is_some());
    std::thread::sleep(Duration::from_millis(500));

    // Pin both admission slots with slow cold computations (distinct
    // descriptors, so they cannot coalesce). Spawning is staged on the
    // request counter: a pinned query that has been *read* holds its slot
    // for the full scripted delay, so once both are counted the server is
    // provably saturated.
    fault::configure("serve.query.compute", Rule::delay_ms(2500).times(2));
    let mut pinned = Vec::new();
    for (n, search) in [
        Search::from(TemporalNode::from_raw(1, 0)),
        Search::from(TemporalNode::from_raw(2, 0)),
    ]
    .into_iter()
    .enumerate()
    {
        pinned.push(std::thread::spawn(move || {
            Client::new(addr).query(&search.descriptor()).unwrap()
        }));
        wait_until("the pinned query to be admitted", || {
            server.stats().requests >= 2 + n as u64
        });
    }

    // Both slots are pinned: anything else is shed straight from the
    // accept thread — full 503, Retry-After header, clean close.
    let shed = client.get("/health").unwrap();
    assert_eq!(shed.status, 503, "{}", shed.body);
    assert_eq!(
        shed.retry_after,
        Some(1),
        "a shed response must carry Retry-After"
    );
    assert!(shed.body.contains("overloaded"), "{}", shed.body);

    // A retrying client honors the hint and lands its query once the
    // storm passes — the cold compute behind it runs undelayed (the delay
    // rule is exhausted by the two pinned queries).
    let policy = RetryPolicy {
        attempts: 10,
        backoff: Duration::from_millis(25),
        ..RetryPolicy::default()
    };
    let cold = Search::from(TemporalNode::from_raw(3, 1));
    let (response, retries) = client
        .post_with_retry("/query", &descriptor_to_json(&cold.descriptor()), &policy)
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(
        retries > 0,
        "the retrying client must have been shed at least once"
    );

    // The pinned requests complete unharmed, and the shed counter saw the
    // refusals.
    for handle in pinned {
        let response = handle.join().unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
    }
    assert!(server.stats().requests_shed >= 2, "{:?}", server.stats());

    // The parked subscriber was never shed: the next seal still reaches it.
    let response = client
        .post("/ingest", r#"{"events": [[4, 5]], "seal": 9}"#)
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let frame = subscription.next_frame().unwrap().unwrap();
    assert!(frame.contains("\"label\": 9"), "{frame}");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Follower forwarding under faults and restarts
// ---------------------------------------------------------------------------

#[test]
fn an_injected_forward_failure_sheds_and_the_client_retry_recovers() {
    let _gate = gate();
    if !fault::is_active_build() {
        return;
    }
    let dir = TempDir::new("forward-fault");
    let recovered = DurableGraph::open_or_create(dir.path(), 6, true).unwrap();
    let mut leader = Server::start_durable(recovered, ServerConfig::default()).unwrap();
    let follower_config = ServerConfig {
        retry_after_secs: 0, // shed responses say "retry immediately"
        ..ServerConfig::default()
    };
    let mut follower = Server::start_follower(leader.addr(), follower_config).unwrap();
    let follower_client = Client::new(follower.addr());

    // The first forward dies before it reaches the leader: the follower
    // answers 503 + Retry-After; the client's retry goes through.
    fault::configure("serve.ingest.forward", Rule::error().times(1));
    let policy = RetryPolicy {
        attempts: 4,
        backoff: Duration::from_millis(10),
        ..RetryPolicy::default()
    };
    let (response, retries) = follower_client
        .post_with_retry("/ingest", r#"{"events": [[0, 1]], "seal": 0}"#, &policy)
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    assert_eq!(retries, 1, "exactly the injected failure is retried");
    assert_eq!(follower.stats().forward_failures, 1);
    assert_eq!(follower.stats().ingest_forwarded, 1);
    wait_until("the forwarded write to replicate back", || {
        follower.stats().segments_replayed == 1
    });
    follower.shutdown();
    leader.shutdown();
}

#[test]
fn write_forwarding_survives_a_leader_restart() {
    let _gate = gate(); // serializes against armed failpoints elsewhere
    let dir = TempDir::new("leader-restart");

    // Reserve a concrete port so the restarted leader comes back at the
    // address the follower keeps forwarding to.
    let addr = TcpListener::bind(("127.0.0.1", 0))
        .unwrap()
        .local_addr()
        .unwrap();
    let leader_config = ServerConfig {
        bind: Some(addr),
        ..ServerConfig::default()
    };
    let start_leader = |dir: PathBuf, config: ServerConfig| -> Server {
        // The old listener may linger briefly; retry the bind.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let recovered = DurableGraph::open_or_create(&dir, 6, true).unwrap();
            match Server::start_durable(recovered, config.clone()) {
                Ok(server) => return server,
                Err(err) => {
                    assert!(Instant::now() < deadline, "leader could not rebind: {err}");
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        }
    };

    let mut leader = start_leader(dir.path().to_path_buf(), leader_config.clone());
    let leader_client = Client::new(addr);
    for body in [
        r#"{"events": [[0, 1], [1, 2]], "seal": 0}"#,
        r#"{"events": [[2, 3], [0, 4]], "seal": 1}"#,
        r#"{"events": [[3, 5]], "seal": 2}"#,
    ] {
        assert_eq!(leader_client.post("/ingest", body).unwrap().status, 200);
    }

    let follower_config = ServerConfig {
        forward_attempts: 20,
        forward_backoff: Duration::from_millis(25),
        ..ServerConfig::default()
    };
    let mut follower = Server::start_follower(addr, follower_config).unwrap();
    let follower_client = Client::new(follower.addr());
    wait_until("the follower to bootstrap", || {
        follower.stats().segments_replayed == 3 && follower.stats().follower_lag_seals == 0
    });

    // A write through the follower while the leader is up.
    let response = follower_client
        .post("/ingest", r#"{"events": [[4, 5]], "seal": 10}"#)
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    wait_until("the forwarded write to replicate", || {
        follower.stats().segments_replayed == 4
    });

    // Kill the leader. A write forwarded during the outage rides the
    // bounded retry loop until the restarted leader answers it.
    leader.shutdown();
    drop(leader);
    let restart = {
        let dir = dir.path().to_path_buf();
        let config = leader_config.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            start_leader(dir, config)
        })
    };
    let response = follower_client
        .post("/ingest", r#"{"events": [[5, 0]], "seal": 11}"#)
        .unwrap();
    assert_eq!(
        response.status, 200,
        "the forward must survive the restart: {}",
        response.body
    );
    let mut leader = restart.join().unwrap();

    // The follower reconnects its tail and converges on the full history,
    // and both servers answer byte-identically.
    wait_until("the follower to reconverge after the restart", || {
        follower.stats().segments_replayed == 5 && follower.stats().follower_lag_seals == 0
    });
    assert_eq!(follower.stats().ingest_forwarded, 2);
    for search in chaos_searches() {
        let from_leader = leader_client.query(&search.descriptor()).unwrap();
        let from_follower = follower_client.query(&search.descriptor()).unwrap();
        assert_eq!(from_leader.status, from_follower.status);
        assert_eq!(
            from_follower.body,
            from_leader.body,
            "follower must serve the restarted leader's bytes for {:?}",
            search.descriptor()
        );
    }
    follower.shutdown();
    leader.shutdown();
}

// ---------------------------------------------------------------------------
// Replication under faults: read errors recover, gaps halt loudly
// ---------------------------------------------------------------------------

#[test]
fn tail_read_errors_are_counted_and_the_tailer_recovers() {
    let _gate = gate();
    if !fault::is_active_build() {
        return;
    }
    let dir = TempDir::new("tail-read");
    let recovered = DurableGraph::open_or_create(dir.path(), 6, true).unwrap();
    let mut leader = Server::start_durable(recovered, ServerConfig::default()).unwrap();
    let leader_client = Client::new(leader.addr());
    for body in [
        r#"{"events": [[0, 1], [1, 2]], "seal": 0}"#,
        r#"{"events": [[2, 3]], "seal": 1}"#,
        r#"{"events": [[3, 5]], "seal": 2}"#,
    ] {
        assert_eq!(leader_client.post("/ingest", body).unwrap().status, 200);
    }

    // The first segment read of the follower's catch-up fails: the tailer
    // is dropped (and counted), reconnects, and converges anyway.
    fault::configure("log.segment.read", Rule::error().times(1));
    let follower_config = ServerConfig {
        forward_backoff: Duration::from_millis(20), // fast tail reconnect
        ..ServerConfig::default()
    };
    let mut follower = Server::start_follower(leader.addr(), follower_config).unwrap();
    wait_until(
        "the follower to converge past the injected read error",
        || follower.stats().segments_replayed == 3 && follower.stats().follower_lag_seals == 0,
    );
    assert_eq!(
        leader.stats().tail_read_errors,
        1,
        "the dropped tailer must be visible in the leader's stats"
    );
    follower.shutdown();
    leader.shutdown();
}

#[test]
fn a_follower_halts_loudly_on_a_replication_gap() {
    let _gate = gate();
    // A fake "leader" speaking just enough of /log/tail to ship segment 0
    // and then segment 2 — a sequence gap the real leader's fsync-ordered
    // stream can never produce. (Dropped connections *reconnect* — the
    // tail-read-error test above proves convergence after that; a gap is
    // corruption and must stop replication instead of skipping history.)
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let fake_leader = std::thread::spawn(move || {
        // The follower probes `/checkpoint/latest` before tailing, and once
        // more when it hits the gap (a checkpoint could legally bridge it).
        // Answer 404 both times: with no checkpoint on offer, the gap has
        // no legitimate explanation and must halt.
        let refuse_checkpoint = |listener: &TcpListener| {
            let (mut stream, _) = listener.accept().unwrap();
            let mut scratch = [0u8; 1024];
            let _ = std::io::Read::read(&mut stream, &mut scratch);
            let _ = http::write_response(
                &mut stream,
                404,
                &http::error_body("no checkpoint has been installed yet"),
            );
        };
        refuse_checkpoint(&listener);
        let (mut stream, _) = listener.accept().unwrap();
        let mut scratch = [0u8; 1024];
        let _ = std::io::Read::read(&mut stream, &mut scratch); // the GET head
        http::write_chunked_head(&mut stream).unwrap();
        http::write_chunk(
            &mut stream,
            "{\"init\": {\"num_nodes\": 4, \"directed\": true}, \"latest\": 3}",
        )
        .unwrap();
        let insert = LogRecord::Insert { src: 0, dst: 1 };
        for (seq, label) in [(0u64, 0i64), (2, 2)] {
            let bytes = encode_segment(seq, &[insert], label);
            http::write_chunk(
                &mut stream,
                &format!(
                    "{{\"seq\": {seq}, \"len\": {}, \"latest\": 3}}",
                    bytes.len()
                ),
            )
            .unwrap();
            http::write_chunk_bytes(&mut stream, &bytes).unwrap();
        }
        refuse_checkpoint(&listener); // the gap-time probe
        stream // held open: EOF must not be mistaken for the halt
    });

    let mut follower = Server::start_follower(addr, ServerConfig::default()).unwrap();
    let follower_client = Client::new(follower.addr());
    wait_until("the good segment to apply", || {
        follower.stats().segments_replayed == 1
    });
    // The gap halts replication: the out-of-order segment is never
    // applied, no matter how long we wait.
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(
        follower.stats().segments_replayed,
        1,
        "a sequence gap must halt replication, not skip ahead"
    );
    // Reads keep serving the last good state.
    let response = follower_client
        .query(&Search::from(TemporalNode::from_raw(0, 0)).descriptor())
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let stream = fake_leader.join().unwrap();
    drop(stream);
    follower.shutdown();
}

#[test]
fn a_follower_rebootstraps_from_a_checkpoint_after_compaction() {
    let _gate = gate(); // serializes against armed failpoints elsewhere
    let dir = TempDir::new("rebootstrap");

    // Reserve a concrete port so the restarted leader comes back at the
    // address the follower keeps tailing.
    let addr = TcpListener::bind(("127.0.0.1", 0))
        .unwrap()
        .local_addr()
        .unwrap();
    let leader_config = ServerConfig {
        bind: Some(addr),
        checkpoint_every: 2,
        retain_checkpoints: 1,
        ..ServerConfig::default()
    };
    let start_leader = |dir: PathBuf, config: ServerConfig| -> Server {
        // The old listener may linger briefly; retry the bind.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let recovered = DurableGraph::open_or_create(&dir, 6, true).unwrap();
            match Server::start_durable(recovered, config.clone()) {
                Ok(server) => return server,
                Err(err) => {
                    assert!(Instant::now() < deadline, "leader could not rebind: {err}");
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        }
    };

    // Two seals: version 2, so the checkpoint at segment 1 is installed
    // and segments 0..=1 are already compacted away.
    let mut leader = start_leader(dir.path().to_path_buf(), leader_config.clone());
    let leader_client = Client::new(addr);
    let mut history: Vec<(i64, Vec<EdgeEvent>)> = Vec::new();
    for (body, label, events) in [
        (
            r#"{"events": [[0, 1], [1, 2]], "seal": 0}"#,
            0i64,
            vec![(0u32, 1u32), (1, 2)],
        ),
        (
            r#"{"events": [[2, 3], [0, 4]], "seal": 1}"#,
            1,
            vec![(2, 3), (0, 4)],
        ),
    ] {
        assert_eq!(leader_client.post("/ingest", body).unwrap().status, 200);
        let events = events
            .into_iter()
            .map(|(u, v)| EdgeEvent::insert(NodeId(u), NodeId(v)))
            .collect();
        history.push((label, events));
    }

    // A fresh follower bootstraps from the checkpoint: nothing is tailed
    // (the covered segments no longer exist to replay).
    let follower_config = ServerConfig {
        forward_backoff: Duration::from_millis(25), // fast tail reconnect
        ..ServerConfig::default()
    };
    let mut follower = Server::start_follower(addr, follower_config).unwrap();
    let follower_client = Client::new(follower.addr());
    wait_until("the follower to bootstrap from the checkpoint", || {
        let health = follower_client.get("/health").unwrap();
        health.body.contains("\"version\": 2") && follower.stats().follower_lag_seals == 0
    });
    assert_eq!(
        follower.stats().segments_replayed,
        0,
        "the bootstrap must come from the checkpoint, not a segment replay"
    );

    // Kill the leader; while it is down, advance and compact the log past
    // the follower's resume point (version 2): four more seals install
    // checkpoints at segments 3 and 5, and retain-1 compaction leaves the
    // log starting at segment 6.
    leader.shutdown();
    drop(leader);
    {
        let recovered = DurableGraph::open(dir.path()).unwrap();
        let mut durable = recovered.graph;
        durable.set_checkpoint_policy(2, 1);
        for (label, (u, v)) in [(2i64, (3u32, 5u32)), (3, (4, 5)), (4, (5, 0)), (5, (0, 2))] {
            durable.insert(NodeId(u), NodeId(v)).unwrap();
            durable.seal_snapshot(label).unwrap();
            history.push((label, vec![EdgeEvent::insert(NodeId(u), NodeId(v))]));
        }
    }

    // The restarted leader answers the follower's resume with 410 Gone;
    // the follower must fetch the checkpoint and re-bootstrap instead of
    // halting.
    let mut leader = start_leader(dir.path().to_path_buf(), leader_config.clone());
    wait_until("the follower to re-bootstrap past the compaction", || {
        let health = follower_client.get("/health").unwrap();
        health.body.contains("\"version\": 6") && follower.stats().follower_lag_seals == 0
    });

    // Replication is live again: a new seal flows through the re-opened
    // tail.
    let response = leader_client
        .post("/ingest", r#"{"events": [[1, 3]], "seal": 6}"#)
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    history.push((6, vec![EdgeEvent::insert(NodeId(1), NodeId(3))]));
    wait_until("the post-re-bootstrap seal to replicate", || {
        follower.stats().segments_replayed == 1 && follower.stats().follower_lag_seals == 0
    });

    // The follower serves the leader's exact bytes, and both match the
    // never-restarted twin of the full history.
    let twin = twin_of(&history, 6);
    for search in chaos_searches() {
        let from_leader = leader_client.query(&search.descriptor()).unwrap();
        let from_follower = follower_client.query(&search.descriptor()).unwrap();
        assert_eq!(from_follower.status, from_leader.status);
        assert_eq!(
            from_follower.body,
            from_leader.body,
            "the re-bootstrapped follower must serve the leader's bytes for {:?}",
            search.descriptor()
        );
        if let Ok(result) = search.run(twin.graph()) {
            assert_eq!(
                from_follower.body,
                search_result_to_json(&result),
                "the re-bootstrapped follower must match the twin for {:?}",
                search.descriptor()
            );
        }
    }
    follower.shutdown();
    leader.shutdown();
}
