//! End-to-end tests of the Section V citation-mining pipeline: synthetic
//! corpus → evolving influence graph → influence sets, influencer sets,
//! communities and rankings, with cross-checks between the analyses.

use evolving_graphs::prelude::*;

fn small_corpus(seed: u64) -> CitationNetwork {
    let corpus = synthetic_citation_corpus(&CitationConfig {
        num_authors: 120,
        num_epochs: 12,
        papers_per_epoch: 25,
        citations_per_paper: 3,
        preferential_bias: 1.0,
        seed,
    });
    CitationNetwork::from_corpus(&corpus)
}

#[test]
fn corpus_to_network_preserves_counts() {
    let corpus = synthetic_citation_corpus(&CitationConfig {
        num_authors: 120,
        num_epochs: 12,
        papers_per_epoch: 25,
        citations_per_paper: 3,
        preferential_bias: 1.0,
        seed: 11,
    });
    let net = CitationNetwork::from_corpus(&corpus);
    assert_eq!(net.num_citations(), corpus.num_events());
    assert!(net.num_epochs() <= 12);
    assert!(net.num_authors() <= 120);
}

#[test]
fn influence_and_influencer_sets_are_dual() {
    let net = small_corpus(21);
    let ranking = rank_by_influence(&net);
    let star = ranking[0];
    assert!(
        star.influenced > 0,
        "the corpus should have influence chains"
    );

    // Every author b in T(star) must list star in T⁻¹(b, some epoch at which
    // the influence arrived). Use the forward map's earliest reach times for
    // that epoch.
    let map = influence_map(&net, star.author, star.epoch).unwrap();
    for (b, t) in map.earliest_reach_times().into_iter().take(10) {
        if b == star.author {
            continue;
        }
        let epoch = net.epoch_label(t);
        let influencers = influencer_set(&net, b, epoch).unwrap();
        assert!(
            influencers.contains(&star.author),
            "author {b:?} reached at epoch {epoch} must count {:?} as an influencer",
            star.author
        );
    }
}

#[test]
fn communities_contain_the_query_author_and_its_influencers_sources() {
    let net = small_corpus(33);
    let ranking = rank_by_influence(&net);
    // Pick an author somewhere in the middle of the ranking so it has both
    // influencers and influencees.
    let mid = ranking[ranking.len() / 2];
    let epochs = net.active_epochs(mid.author);
    let epoch = *epochs.last().unwrap();

    let community = community_of(&net, mid.author, epoch).unwrap();
    assert!(
        community.contains(&mid.author),
        "an author belongs to its own community"
    );
    let leaves = influence_leaves(&net, mid.author, epoch).unwrap();
    for (leaf, _) in leaves {
        assert!(
            community.contains(&leaf),
            "community must contain the influence source {leaf:?}"
        );
    }
}

#[test]
fn ranking_is_consistent_with_direct_queries() {
    let net = small_corpus(44);
    let ranking = rank_by_influence(&net);
    // Spot-check the first three entries against direct influence_set calls.
    for score in ranking.iter().take(3) {
        let direct = influence_set(&net, score.author, score.epoch).unwrap();
        assert_eq!(direct.len(), score.influenced);
    }
    // The batch API agrees too.
    let queries: Vec<(AuthorId, Epoch)> = ranking
        .iter()
        .take(3)
        .map(|s| (s.author, s.epoch))
        .collect();
    let sizes = batch_influence_sizes(&net, &queries);
    for (score, size) in ranking.iter().take(3).zip(sizes) {
        assert_eq!(size, Some(score.influenced));
    }
}

#[test]
fn influence_chains_are_valid_temporal_citation_cascades() {
    let net = small_corpus(55);
    let star = rank_by_influence(&net)[0];
    let influenced = influence_set(&net, star.author, star.epoch).unwrap();
    // Check a handful of chains end-to-end.
    for &target in influenced.iter().take(5) {
        let chain = influence_chain(&net, star.author, star.epoch, target)
            .unwrap()
            .expect("target is influenced, so a chain exists");
        assert_eq!(chain.first().unwrap().0, star.author);
        assert_eq!(chain.last().unwrap().0, target);
        for w in chain.windows(2) {
            assert!(w[0].1 <= w[1].1, "epochs never decrease along a chain");
        }
    }
}

#[test]
fn backward_search_equals_forward_search_on_reversed_view() {
    let net = small_corpus(66);
    let star = rank_by_influence(&net)[0];
    let last_epoch = *net.active_epochs(star.author).last().unwrap();
    let influencers = influencer_set(&net, star.author, last_epoch).unwrap();

    // Manually reverse the graph and run a forward BFS; the distinct node
    // sets must agree (Section V's t → −t construction).
    let view = ReversedView::new(net.graph());
    let t = net.epoch_index(last_epoch).unwrap();
    let root = view.map_temporal(TemporalNode::new(star.author, t));
    let fwd = bfs(&view, root).unwrap();
    let mut via_view: Vec<AuthorId> = fwd
        .reached_node_ids()
        .into_iter()
        .filter(|&a| a != star.author)
        .collect();
    via_view.sort();
    let mut direct = influencers;
    direct.sort();
    assert_eq!(direct, via_view);
}
