//! Strategy-equivalence suite for the unified `Search` builder: on generated
//! workloads (uniform random and preferential attachment from `egraph-gen`),
//! a `Search` with each `Strategy` must return distances identical to the
//! legacy free functions — for forward and backward directions, for
//! single-source and multi-source queries, and through windowed and
//! time-reversed view compositions.

use evolving_graphs::prelude::*;

/// The generated workloads the suite sweeps. Sizes are chosen so every
/// engine (including the dense-adjacent algebraic one) finishes quickly
/// while frontiers are wide enough to exercise the parallel path.
fn workloads() -> Vec<(&'static str, AdjacencyListGraph)> {
    let mut out = Vec::new();
    for seed in [1u64, 2, 3] {
        out.push((
            "uniform_random",
            uniform_random_graph(&UniformRandomConfig {
                num_nodes: 40,
                num_timestamps: 5,
                num_edges: 250,
                directed: true,
                seed,
            }),
        ));
    }
    out.push((
        "uniform_sparse",
        uniform_random_graph(&UniformRandomConfig {
            num_nodes: 60,
            num_timestamps: 4,
            num_edges: 60,
            directed: true,
            seed: 77,
        }),
    ));
    out.push((
        "preferential",
        preferential_attachment(&PreferentialConfig {
            num_nodes: 50,
            num_timestamps: 6,
            edges_per_timestamp: 40,
            seed: 9,
        }),
    ));
    out
}

const STRATEGIES: [Strategy; 3] = [Strategy::Serial, Strategy::Parallel, Strategy::Algebraic];

/// A few active roots spread across the graph, deterministically.
fn sample_roots(g: &AdjacencyListGraph) -> Vec<TemporalNode> {
    let actives = g.active_nodes();
    let step = (actives.len() / 5).max(1);
    actives.into_iter().step_by(step).take(5).collect()
}

#[test]
fn every_strategy_matches_legacy_forward_bfs() {
    for (name, g) in workloads() {
        for root in sample_roots(&g) {
            let legacy = bfs(&g, root).unwrap();
            for strategy in STRATEGIES {
                let result = Search::from(root).strategy(strategy).run(&g).unwrap();
                assert_eq!(
                    result.distance_map().as_flat_slice(),
                    legacy.as_flat_slice(),
                    "{name}: {strategy:?} from {root:?}"
                );
            }
        }
    }
}

#[test]
fn every_strategy_matches_legacy_backward_bfs() {
    for (name, g) in workloads() {
        for root in sample_roots(&g) {
            let legacy = backward_bfs(&g, root).unwrap();
            for strategy in STRATEGIES {
                let result = Search::from(root)
                    .direction(Direction::Backward)
                    .strategy(strategy)
                    .run(&g)
                    .unwrap();
                assert_eq!(
                    result.distance_map().as_flat_slice(),
                    legacy.as_flat_slice(),
                    "{name}: {strategy:?} backward from {root:?}"
                );
            }
        }
    }
}

#[test]
fn windowed_search_matches_legacy_view_composition() {
    for (name, g) in workloads() {
        let n_t = g.num_timestamps();
        // Try every window that keeps at least two snapshots.
        for start in 0..n_t - 1 {
            let end = n_t - 1;
            let view =
                TimeWindowView::new(&g, TimeIndex::from_index(start), TimeIndex::from_index(end))
                    .unwrap();
            for root in sample_roots(&g) {
                let Some(view_root) = view.to_window_temporal(root) else {
                    continue;
                };
                let Ok(legacy) = bfs(&view, view_root) else {
                    continue;
                };
                for strategy in STRATEGIES {
                    let result = Search::from(root)
                        .window(start as u32..=end as u32)
                        .strategy(strategy)
                        .run(&g)
                        .unwrap();
                    // Same reached set and distances, modulo the coordinate
                    // shift the builder undoes.
                    assert_eq!(
                        result.num_reached(),
                        legacy.num_reached(),
                        "{name}: {strategy:?} window {start}..={end} from {root:?}"
                    );
                    for (tn, d) in legacy.reached() {
                        let original = view.to_inner_temporal(tn);
                        assert_eq!(
                            result.distance(original),
                            Some(d),
                            "{name}: {strategy:?} window {start}..={end} at {original:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn reversed_search_matches_legacy_view_composition() {
    for (name, g) in workloads() {
        let view = ReversedView::new(&g);
        for root in sample_roots(&g) {
            let legacy = bfs(&view, view.map_temporal(root)).unwrap();
            for strategy in STRATEGIES {
                let result = Search::from(root)
                    .reverse()
                    .strategy(strategy)
                    .run(&g)
                    .unwrap();
                assert_eq!(
                    result.num_reached(),
                    legacy.num_reached(),
                    "{name}: {strategy:?} reversed from {root:?}"
                );
                for (tn, d) in legacy.reached() {
                    let original = view.map_temporal(tn);
                    assert_eq!(
                        result.distance(original),
                        Some(d),
                        "{name}: {strategy:?} reversed at {original:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn reversed_backward_search_equals_forward_bfs() {
    // reverse() composed with Backward is the identity transformation.
    for (name, g) in workloads() {
        for root in sample_roots(&g).into_iter().take(2) {
            let legacy = bfs(&g, root).unwrap();
            for strategy in STRATEGIES {
                let result = Search::from(root)
                    .backward()
                    .reverse()
                    .strategy(strategy)
                    .run(&g)
                    .unwrap();
                assert_eq!(
                    result.distance_map().as_flat_slice(),
                    legacy.as_flat_slice(),
                    "{name}: {strategy:?} double-reversed from {root:?}"
                );
            }
        }
    }
}

#[test]
fn multi_source_search_matches_legacy_multi_source_bfs() {
    for (name, g) in workloads() {
        let roots = sample_roots(&g);
        let legacy = multi_source_bfs(&g, &roots);
        for strategy in STRATEGIES {
            let result = Search::from_sources(roots.iter().copied())
                .strategy(strategy)
                .run(&g)
                .unwrap();
            assert_eq!(result.num_sources(), roots.len(), "{name}");
            for (i, per_root) in legacy.iter().enumerate() {
                let legacy_map = per_root.as_ref().unwrap();
                assert_eq!(
                    result.distance_maps()[i].as_flat_slice(),
                    legacy_map.as_flat_slice(),
                    "{name}: {strategy:?} source {i}"
                );
            }
        }
    }
}

#[test]
fn windowed_backward_search_matches_legacy_composition() {
    // Backward traversal inside a window: legacy composition is
    // backward_bfs on a TimeWindowView.
    for (name, g) in workloads() {
        let n_t = g.num_timestamps();
        let start = 1usize.min(n_t - 1);
        let end = n_t - 1;
        let view =
            TimeWindowView::new(&g, TimeIndex::from_index(start), TimeIndex::from_index(end))
                .unwrap();
        for root in sample_roots(&g) {
            let Some(view_root) = view.to_window_temporal(root) else {
                continue;
            };
            let Ok(legacy) = backward_bfs(&view, view_root) else {
                continue;
            };
            for strategy in STRATEGIES {
                let result = Search::from(root)
                    .direction(Direction::Backward)
                    .window(start as u32..=end as u32)
                    .strategy(strategy)
                    .run(&g)
                    .unwrap();
                assert_eq!(
                    result.num_reached(),
                    legacy.num_reached(),
                    "{name}: {strategy:?} backward window from {root:?}"
                );
                for (tn, d) in legacy.reached() {
                    let original = view.to_inner_temporal(tn);
                    assert_eq!(
                        result.distance(original),
                        Some(d),
                        "{name}: {strategy:?} backward window at {original:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn derived_queries_match_their_legacy_free_functions() {
    for (name, g) in workloads() {
        for root in sample_roots(&g).into_iter().take(3) {
            let result = Search::from(root).run(&g).unwrap();
            // reachable_set
            let legacy_set = reachable_set(&g, root).unwrap();
            assert_eq!(result.reachable_set(), legacy_set, "{name} from {root:?}");
            // eccentricity
            assert_eq!(
                Some(result.eccentricity()),
                eccentricity(&g, root),
                "{name} from {root:?}"
            );
            // distance_between / is_reachable on a few probes
            for probe in sample_roots(&g) {
                assert_eq!(
                    result.distance(probe),
                    distance_between(&g, root, probe).unwrap(),
                    "{name} {root:?} -> {probe:?}"
                );
                assert_eq!(
                    result.is_reached(probe),
                    is_reachable(&g, root, probe).unwrap(),
                    "{name} {root:?} -> {probe:?}"
                );
            }
            // earliest arrival agrees with the foremost sweep
            let foremost = earliest_arrival(&g, root);
            for v in 0..g.num_nodes() {
                let v = NodeId::from_index(v);
                assert_eq!(
                    result.earliest_arrival(v),
                    foremost.arrival(v),
                    "{name} from {root:?}, node {v:?}"
                );
            }
        }
    }
}
