//! Socket-layer tests of durability and replication in `egraph-serve`:
//! kill-and-restart round trips through the event log, and a follower
//! replica tailing a leader's sealed-segment stream.
//!
//! The load-bearing assertions:
//!
//! * **kill and restart**: a durable server is shut down and rebooted from
//!   its `--data-dir` log; every `/query` response is byte-identical to
//!   the pre-crash answer, unsealed events are lost (the seal is the ack
//!   boundary), and the restored version stamp re-validates cached
//!   entries — the first post-restart seal pushes an `extended` frame,
//!   not a recompute;
//! * **replication**: a follower bootstraps from `GET /log/tail`,
//!   converges to `follower_lag_seals == 0`, serves byte-identical reads
//!   from its own cache, keeps pace as the leader seals more snapshots,
//!   pushes frames to its own subscribers, and refuses writes;
//! * **guards**: `/log/tail` on a log-less server is 403, malformed or
//!   out-of-range `from` is 400;
//! * **checkpoints**: a leader under a checkpoint policy installs
//!   checkpoints and compacts covered segments (visible in `/stats` disk
//!   accounting), a fresh follower bootstraps from `GET /checkpoint/latest`
//!   and tails only the segment suffix, tailing the compacted prefix is
//!   410, and a leader restart replays only the bounded suffix
//!   (`recovery_replayed_events`).

use std::time::{Duration, Instant};

use egraph_core::ids::{NodeId, TemporalNode};
use egraph_query::codec::search_result_to_json;
use egraph_query::{Search, Strategy};
use egraph_serve::{Client, Server, ServerConfig};
use egraph_stream::{DurableGraph, LiveGraph};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A scratch directory under the system temp root, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "egraph-replication-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Boots a durable server over the log at `dir` (creating it on first
/// call) and returns it with a client.
fn start_durable(dir: &Path) -> (Server, Client) {
    let recovered = DurableGraph::open_or_create(dir, 6, true).unwrap();
    let server = Server::start_durable(recovered, ServerConfig::default()).unwrap();
    let client = Client::new(server.addr());
    (server, client)
}

/// Ingests the `serve_http` fixture history over the wire: three seals
/// under labels 0, 1, 2.
fn ingest_fixture(client: &Client) {
    for body in [
        r#"{"events": [[0, 1], [1, 2]], "seal": 0}"#,
        r#"{"events": [[2, 3], [0, 4]], "seal": 1}"#,
        r#"{"events": [[3, 5]], "seal": 2}"#,
    ] {
        let response = client.post("/ingest", body).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
    }
}

/// The local twin of [`ingest_fixture`]'s history.
fn fixture_live() -> LiveGraph {
    let mut live = LiveGraph::directed(6);
    live.insert(NodeId(0), NodeId(1)).unwrap();
    live.insert(NodeId(1), NodeId(2)).unwrap();
    live.seal_snapshot(0).unwrap();
    live.insert(NodeId(2), NodeId(3)).unwrap();
    live.insert(NodeId(0), NodeId(4)).unwrap();
    live.seal_snapshot(1).unwrap();
    live.insert(NodeId(3), NodeId(5)).unwrap();
    live.seal_snapshot(2).unwrap();
    live
}

/// One descriptor per query shape the builder supports — the byte-identity
/// sweep both tests below run.
fn searches() -> Vec<Search> {
    vec![
        Search::from(TemporalNode::from_raw(0, 0)),
        Search::from(TemporalNode::from_raw(0, 0)).strategy(Strategy::Parallel),
        Search::from(TemporalNode::from_raw(0, 0)).strategy(Strategy::Algebraic),
        Search::from(TemporalNode::from_raw(0, 0)).strategy(Strategy::Foremost),
        Search::from(TemporalNode::from_raw(3, 2)).backward(),
        Search::from(TemporalNode::from_raw(0, 0)).reverse(),
        Search::from(TemporalNode::from_raw(0, 1)).window(1..=2),
        Search::from(TemporalNode::from_raw(0, 0)).with_parents(),
        Search::from_sources([TemporalNode::from_raw(0, 0), TemporalNode::from_raw(2, 1)])
            .strategy(Strategy::SharedFrontier),
    ]
}

/// Polls `ok` for up to ten seconds; panics with `what` on timeout.
fn wait_until(what: &str, mut ok: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !ok() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Reads one integer out of the `"log"` section of a `/stats` body.
fn log_stat(client: &Client, key: &str) -> i64 {
    stat_in(client, "log", key)
}

/// Reads one integer out of the `"server"` section of a `/stats` body.
fn server_stat(client: &Client, key: &str) -> i64 {
    stat_in(client, "server", key)
}

fn stat_in(client: &Client, section: &str, key: &str) -> i64 {
    let response = client.get("/stats").unwrap();
    assert_eq!(response.status, 200);
    let value = egraph_io::parse_value(&response.body).unwrap();
    let object = value.as_object("stats").unwrap();
    let section = object.get(section).unwrap().as_object(section).unwrap();
    section.get(key).unwrap().as_i64(key).unwrap()
}

#[test]
fn kill_and_restart_serves_byte_identical_responses() {
    let dir = TempDir::new("restart");
    let searches = searches();

    // First life: ingest the history, record every answer, then buffer an
    // event that is applied but never sealed.
    let before: Vec<String> = {
        let (mut server, client) = start_durable(dir.path());
        ingest_fixture(&client);
        let bodies = searches
            .iter()
            .map(|s| {
                let response = client.query(&s.descriptor()).unwrap();
                assert_eq!(response.status, 200, "{}", response.body);
                response.body
            })
            .collect();
        let response = client.post("/ingest", r#"{"events": [[5, 0]]}"#).unwrap();
        assert_eq!(response.status, 200);
        server.shutdown();
        bodies
    };

    // Second life: boot from the log alone.
    let (mut server, client) = start_durable(dir.path());
    assert_eq!(log_stat(&client, "segments_replayed"), 3);
    assert_eq!(log_stat(&client, "segments_sealed"), 3);
    assert_eq!(log_stat(&client, "follower_lag_seals"), 0);

    let twin = fixture_live();
    for (search, before_body) in searches.iter().zip(&before) {
        let response = client.query(&search.descriptor()).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        assert_eq!(
            &response.body,
            before_body,
            "restart must not change the answer to {:?}",
            search.descriptor()
        );
        // And both lives equal the scratch twin: the unsealed [5, 0] event
        // from the first life never existed.
        assert_eq!(
            response.body,
            search_result_to_json(&search.run(twin.graph()).unwrap()),
            "{:?}",
            search.descriptor()
        );
    }

    // The restored version stamp re-validates the cache across the seal
    // boundary: a standing forward query is *extended* by the first
    // post-restart seal, and the frame carries the new segment count.
    let standing = Search::from(TemporalNode::from_raw(0, 0));
    let mut subscription = client.subscribe(&standing.descriptor()).unwrap();
    assert!(subscription.next_frame().unwrap().is_some());
    let response = client
        .post("/ingest", r#"{"events": [[4, 5]], "seal": 7}"#)
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let frame = subscription.next_frame().unwrap().unwrap();
    assert!(frame.contains("\"outcome\": \"extended\""), "{frame}");
    assert!(frame.contains("\"segments_sealed\": 4"), "{frame}");
    assert_eq!(server.cache_stats().recomputes, 0);
    server.shutdown();

    // Third life: both the replayed history and the post-restart seal are
    // on disk.
    let (mut server, client) = start_durable(dir.path());
    assert_eq!(log_stat(&client, "segments_replayed"), 4);
    let health = client.get("/health").unwrap();
    assert!(health.body.contains("\"num_sealed\": 4"), "{}", health.body);
    server.shutdown();
}

#[test]
fn follower_converges_and_serves_byte_identical_reads() {
    let dir = TempDir::new("leader");
    let (mut leader, leader_client) = start_durable(dir.path());
    ingest_fixture(&leader_client);

    let mut follower = Server::start_follower(leader.addr(), ServerConfig::default()).unwrap();
    let follower_client = Client::new(follower.addr());
    wait_until("follower to replay the backlog", || {
        log_stat(&follower_client, "follower_lag_seals") == 0
            && log_stat(&follower_client, "segments_replayed") == 3
    });

    let compare = |stage: &str| {
        for search in searches() {
            let from_leader = leader_client.query(&search.descriptor()).unwrap();
            let from_follower = follower_client.query(&search.descriptor()).unwrap();
            assert_eq!(from_leader.status, 200, "{stage}: {}", from_leader.body);
            assert_eq!(from_follower.status, 200, "{stage}: {}", from_follower.body);
            assert_eq!(
                from_follower.body,
                from_leader.body,
                "{stage}: follower must serve the leader's bytes for {:?}",
                search.descriptor()
            );
        }
    };
    compare("after bootstrap");

    // A standing query on the *follower* advances as the leader seals.
    let standing = Search::from(TemporalNode::from_raw(0, 0));
    let mut subscription = follower_client.subscribe(&standing.descriptor()).unwrap();
    assert!(subscription.next_frame().unwrap().is_some());

    // The leader keeps sealing; the follower keeps pace.
    let mut twin = fixture_live();
    for (u, v, label) in [(4u32, 5u32, 10i64), (5, 1, 11)] {
        let response = leader_client
            .post(
                "/ingest",
                &format!("{{\"events\": [[{u}, {v}]], \"seal\": {label}}}"),
            )
            .unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        twin.insert(NodeId(u), NodeId(v)).unwrap();
        twin.seal_snapshot(label).unwrap();

        let frame = subscription.next_frame().unwrap().unwrap();
        assert!(
            frame.contains(&format!("\"label\": {label}")),
            "follower frame must carry the leader's seal label: {frame}"
        );
        assert!(
            frame.contains(&format!(
                "\"result\": {}",
                search_result_to_json(&standing.run(twin.graph()).unwrap())
            )),
            "follower frame must carry the sealed answer: {frame}"
        );
    }
    wait_until("follower to catch up to live seals", || {
        log_stat(&follower_client, "follower_lag_seals") == 0
            && log_stat(&follower_client, "segments_replayed") == 5
    });
    compare("after live seals");

    // Writes sent to the follower are forwarded to the leader (the
    // follower relays the leader's answer) and come back on the tail
    // stream like any replicated write. Followers still expose no log of
    // their own to tail.
    let response = follower_client
        .post("/ingest", r#"{"events": [[1, 3]], "seal": 99}"#)
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    twin.insert(NodeId(1), NodeId(3)).unwrap();
    twin.seal_snapshot(99).unwrap();
    wait_until("forwarded write to replicate back", || {
        log_stat(&follower_client, "follower_lag_seals") == 0
            && log_stat(&follower_client, "segments_replayed") == 6
    });
    assert_eq!(
        server_stat(&follower_client, "ingest_forwarded"),
        1,
        "the follower must count the forwarded write"
    );
    compare("after a forwarded write");
    assert_eq!(follower_client.get("/log/tail?from=0").unwrap().status, 403);

    follower.shutdown();
    leader.shutdown();
}

#[test]
fn fresh_follower_bootstraps_from_a_checkpoint_and_tails_only_the_suffix() {
    let dir = TempDir::new("ckpt-bootstrap");
    let config = ServerConfig {
        checkpoint_every: 2,
        retain_checkpoints: 1,
        ..ServerConfig::default()
    };
    let recovered = DurableGraph::open_or_create(dir.path(), 6, true).unwrap();
    let mut leader = Server::start_durable(recovered, config.clone()).unwrap();
    let leader_client = Client::new(leader.addr());
    ingest_fixture(&leader_client);

    // Policy (2, 1) over the three fixture seals: the second seal installed
    // checkpoint 1 and its compaction deleted segments 0..=1. The `/stats`
    // disk accounting sees all of it.
    assert_eq!(log_stat(&leader_client, "checkpoints_written"), 1);
    assert_eq!(log_stat(&leader_client, "segments_compacted"), 2);
    assert!(log_stat(&leader_client, "checkpoint_bytes") > 0);
    assert!(log_stat(&leader_client, "segments_bytes") > 0);
    let (last_seq, _payload) = leader_client.fetch_checkpoint().unwrap().unwrap();
    assert_eq!(last_seq, 1, "the newest checkpoint covers segments 0..=1");

    // The compacted prefix is gone for good: tailing it is 410 with a
    // pointer at the checkpoint endpoint, not a silent hole.
    let response = leader_client.get("/log/tail?from=0").unwrap();
    assert_eq!(response.status, 410, "{}", response.body);
    assert!(
        response.body.contains("/checkpoint/latest"),
        "{}",
        response.body
    );

    // A fresh follower restores the checkpoint and tails only segment 2.
    let mut follower = Server::start_follower(leader.addr(), ServerConfig::default()).unwrap();
    let follower_client = Client::new(follower.addr());
    wait_until("follower to bootstrap from the checkpoint", || {
        log_stat(&follower_client, "follower_lag_seals") == 0
    });
    assert_eq!(
        log_stat(&follower_client, "segments_replayed"),
        1,
        "bootstrap must restore the checkpoint and replay only the suffix"
    );
    let twin = fixture_live();
    for search in searches() {
        let from_leader = leader_client.query(&search.descriptor()).unwrap();
        let from_follower = follower_client.query(&search.descriptor()).unwrap();
        assert_eq!(from_follower.status, 200, "{}", from_follower.body);
        assert_eq!(
            from_follower.body,
            from_leader.body,
            "checkpoint-bootstrapped follower must serve the leader's bytes for {:?}",
            search.descriptor()
        );
        assert_eq!(
            from_follower.body,
            search_result_to_json(&search.run(twin.graph()).unwrap())
        );
    }
    follower.shutdown();

    // Kill + restart the leader: recovery is checkpoint + bounded suffix —
    // segment 2 holds exactly one event, and that is all that replays.
    leader.shutdown();
    let recovered = DurableGraph::open_or_create(dir.path(), 6, true).unwrap();
    assert_eq!(recovered.checkpoint_seq, Some(1));
    let mut leader = Server::start_durable(recovered, config).unwrap();
    let leader_client = Client::new(leader.addr());
    assert_eq!(log_stat(&leader_client, "segments_replayed"), 1);
    assert_eq!(log_stat(&leader_client, "recovery_replayed_events"), 1);
    for search in searches() {
        let response = leader_client.query(&search.descriptor()).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        assert_eq!(
            response.body,
            search_result_to_json(&search.run(twin.graph()).unwrap()),
            "restart must not change the answer to {:?}",
            search.descriptor()
        );
    }
    leader.shutdown();
}

#[test]
fn tail_endpoint_guards_reject_bad_requests() {
    // No log, nothing to tail.
    let mut plain = Server::start(fixture_live(), ServerConfig::default()).unwrap();
    let client = Client::new(plain.addr());
    let response = client.get("/log/tail?from=0").unwrap();
    assert_eq!(response.status, 403, "{}", response.body);
    assert_eq!(
        client.get("/checkpoint/latest").unwrap().status,
        403,
        "no log means no checkpoints either"
    );
    plain.shutdown();

    let dir = TempDir::new("guards");
    let (mut server, client) = start_durable(dir.path());
    ingest_fixture(&client);
    assert_eq!(client.get("/log/tail?from=abc").unwrap().status, 400);
    assert_eq!(client.get("/log/tail?from=99").unwrap().status, 400);
    // Durable but checkpointing disabled: the endpoint exists, has nothing
    // to serve, and the client maps the 404 to `None`.
    assert_eq!(client.get("/checkpoint/latest").unwrap().status, 404);
    assert!(client.fetch_checkpoint().unwrap().is_none());

    // The raw wire: tailing from 1 ships segments 1 and 2, bytes equal to
    // the leader's own disk, then stays open for live seals.
    let (init, mut tail) = client.tail_log(1).unwrap();
    assert_eq!((init.num_nodes, init.directed, init.latest), (6, true, 3));
    for expected_seq in [1u64, 2] {
        let segment = tail.next_segment().unwrap().unwrap();
        assert_eq!(segment.seq, expected_seq);
        assert_eq!(
            segment.bytes,
            std::fs::read(egraph_log::log::segment_path(dir.path(), expected_seq)).unwrap(),
            "tailed bytes must equal the on-disk segment"
        );
        let decoded = egraph_log::decode_segment(&segment.bytes).unwrap();
        assert_eq!(decoded.seq, expected_seq);
    }
    let response = client
        .post("/ingest", r#"{"events": [[4, 5]], "seal": 9}"#)
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let segment = tail.next_segment().unwrap().unwrap();
    assert_eq!(segment.seq, 3);
    assert_eq!(egraph_log::decode_segment(&segment.bytes).unwrap().label, 9);
    server.shutdown();
}
