//! # evolving-graphs
//!
//! Umbrella crate for the Rust reproduction of *"The Right Way to Search
//! Evolving Graphs"* (Chen & Zhang, IPPS 2016). It re-exports the workspace
//! crates under one roof so applications can depend on a single crate:
//!
//! * [`query`] (`egraph-query`) — the unified [`Search`](egraph_query::Search)
//!   query builder: **the recommended entry point** for every traversal;
//! * [`core`] (`egraph-core`) — evolving-graph data structures, temporal
//!   paths, Algorithm 1 BFS (serial and frontier-parallel engines);
//! * [`matrix`] (`egraph-matrix`) — sparse/dense linear algebra, the block
//!   adjacency matrix, the `⊙` product and Algorithm 2 (algebraic engine);
//! * [`gen`] (`egraph-gen`) — reproducible workload generators;
//! * [`citation`] (`egraph-citation`) — the Section V citation-mining
//!   application;
//! * [`stream`] (`egraph-stream`) — live graphs: append-only event
//!   ingestion, query caching and incremental re-search;
//! * [`log`] (`egraph-log`) — the durable segmented event log: append-only
//!   CRC-framed segments, fsync-on-seal, torn-tail crash recovery;
//! * [`fault`] (`egraph-fault`) — the deterministic failpoint registry the
//!   chaos suite scripts against (zero-cost in release builds);
//! * [`serve`] (`egraph-serve`) — the HTTP serving layer: single-flight
//!   admission over the query cache, standing-query push, durable leaders
//!   and follower replication;
//! * [`baselines`] (`egraph-baselines`) — the incorrect/restricted schemes
//!   the paper argues against;
//! * [`io`] (`egraph-io`) — edge lists, JSON and benchmark report tables.
//!
//! ## Quickstart
//!
//! Build a graph, then describe the traversal once with [`Search`] and pick
//! the execution strategy independently:
//!
//! ```
//! use evolving_graphs::prelude::*;
//!
//! let g = evolving_graphs::core::examples::paper_figure1();
//! let root = TemporalNode::from_raw(0, 0);
//!
//! // Forward BFS from (1, t1) — serial Algorithm 1 under the hood.
//! let result = Search::from(root).run(&g)?;
//! assert_eq!(result.num_reached(), 6);
//!
//! // The algebraic engine (Algorithm 2) computes identical distances.
//! let algebraic = Search::from(root).strategy(Strategy::Algebraic).run(&g)?;
//! assert_eq!(result.reached(), algebraic.reached());
//!
//! // Backward in time, restricted to the last two snapshots.
//! let influencers = Search::from(TemporalNode::from_raw(2, 2))
//!     .direction(Direction::Backward)
//!     .window(1u32..=2)
//!     .run(&g)?;
//! assert!(influencers.is_reached(TemporalNode::from_raw(0, 1)));
//! # Ok::<(), GraphError>(())
//! ```
//!
//! The legacy free functions (`bfs`, `backward_bfs`, `par_bfs`,
//! `multi_source_bfs`, `reachable_set`, `eccentricity`, …) remain exported
//! and continue to work; the builder dispatches to the same engines.
//!
//! [`Search`]: egraph_query::Search

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use egraph_baselines as baselines;
pub use egraph_citation as citation;
pub use egraph_core as core;
pub use egraph_fault as fault;
pub use egraph_gen as gen;
pub use egraph_io as io;
pub use egraph_log as log;
pub use egraph_matrix as matrix;
pub use egraph_query as query;
pub use egraph_serve as serve;
pub use egraph_stream as stream;

/// Commonly used items from every sub-crate.
pub mod prelude {
    pub use egraph_citation::prelude::*;
    pub use egraph_core::prelude::*;
    pub use egraph_gen::prelude::*;
    pub use egraph_matrix::prelude::*;
    pub use egraph_query::prelude::*;
    pub use egraph_serve::prelude::*;
    pub use egraph_stream::prelude::*;
}
