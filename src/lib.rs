//! # evolving-graphs
//!
//! Umbrella crate for the Rust reproduction of *"The Right Way to Search
//! Evolving Graphs"* (Chen & Zhang, IPPS 2016). It re-exports the workspace
//! crates under one roof so applications can depend on a single crate:
//!
//! * [`core`] (`egraph-core`) — evolving-graph data structures, temporal
//!   paths, Algorithm 1 BFS (serial and rayon-parallel);
//! * [`matrix`] (`egraph-matrix`) — sparse/dense linear algebra, the block
//!   adjacency matrix, the `⊙` product and Algorithm 2;
//! * [`gen`] (`egraph-gen`) — reproducible workload generators;
//! * [`citation`] (`egraph-citation`) — the Section V citation-mining
//!   application;
//! * [`baselines`] (`egraph-baselines`) — the incorrect/restricted schemes
//!   the paper argues against;
//! * [`io`] (`egraph-io`) — edge lists, JSON and benchmark report tables.
//!
//! ```
//! use evolving_graphs::prelude::*;
//!
//! let g = evolving_graphs::core::examples::paper_figure1();
//! let reached = bfs(&g, TemporalNode::from_raw(0, 0)).unwrap();
//! assert_eq!(reached.num_reached(), 6);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use egraph_baselines as baselines;
pub use egraph_citation as citation;
pub use egraph_core as core;
pub use egraph_gen as gen;
pub use egraph_io as io;
pub use egraph_matrix as matrix;

/// Commonly used items from every sub-crate.
pub mod prelude {
    pub use egraph_citation::prelude::*;
    pub use egraph_core::prelude::*;
    pub use egraph_gen::prelude::*;
    pub use egraph_matrix::prelude::*;
}
