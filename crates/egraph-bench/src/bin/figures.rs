//! `figures` — regenerate the paper's figures and worked examples as text
//! tables, without Criterion overhead.
//!
//! ```text
//! cargo run --release -p egraph-bench --bin figures            # everything
//! cargo run --release -p egraph-bench --bin figures -- fig5    # one figure
//! cargo run --release -p egraph-bench --bin figures -- fig5 --scale 4
//! ```
//!
//! Experiment identifiers match DESIGN.md / EXPERIMENTS.md:
//! `fig1-3`, `fig4`, `eq2`, `fig5`, `sec5`, `abl-a`, `abl-b`, `abl-c`.

use std::time::Instant;

use egraph_baselines::naive_product::{naive_path_count, NaiveScheme};
use egraph_bench::{
    alg_comparison_workload, citation_workload, figure5_sweep, first_active_node,
    parallel_bfs_workload, Figure5Config,
};
use egraph_citation::community::community_of;
use egraph_citation::influence::influence_set;
use egraph_citation::model::CitationNetwork;
use egraph_citation::rank::top_influencers;
use egraph_core::bfs::bfs;
use egraph_core::examples::paper_figure1;
use egraph_core::graph::EvolvingGraph;
use egraph_core::ids::{NodeId, TemporalNode, TimeIndex};
use egraph_core::par_bfs::par_bfs;
use egraph_core::paths::enumerate_paths;
use egraph_gen::citation::synthetic_citation_corpus;
use egraph_gen::random::figure5_workload;
use egraph_gen::stream::{apply_batch, rebuild_from_batches, EdgeStream};
use egraph_io::report::{linear_fit, SeriesTable};
use egraph_matrix::algebraic_bfs::{algebraic_bfs_blocked, algebraic_bfs_dense};
use egraph_matrix::block::BlockAdjacency;
use egraph_matrix::path_count::{iterate_sequence, total_path_count};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = parse_scale(&args);
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--") && a.parse::<usize>().is_err())
        .map(|s| s.as_str())
        .collect();
    let all = which.is_empty() || which.contains(&"all");

    if all || which.contains(&"fig1-3") || which.contains(&"paper") {
        fig1_to_3();
    }
    if all || which.contains(&"fig4") || which.contains(&"paper") {
        fig4();
    }
    if all || which.contains(&"eq2") || which.contains(&"paper") {
        eq2();
    }
    if all || which.contains(&"fig5") {
        fig5(scale);
    }
    if all || which.contains(&"sec5") {
        sec5();
    }
    if all || which.contains(&"abl-a") || which.contains(&"ablations") {
        abl_a();
    }
    if all || which.contains(&"abl-b") || which.contains(&"ablations") {
        abl_b(scale);
    }
    if all || which.contains(&"abl-c") || which.contains(&"ablations") {
        abl_c();
    }
}

fn parse_scale(args: &[String]) -> usize {
    args.iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// FIG1-3: the worked example — active nodes, forward neighbors, the two
/// temporal paths of Figure 2 and the BFS trace of Figure 3.
fn fig1_to_3() {
    let g = paper_figure1();

    let mut t = SeriesTable::new(
        "FIG1-3: Figure 1 example — BFS distances from (1,t1) and (1,t2)",
        &["temporal node", "dist from (1,t1)", "dist from (1,t2)"],
    );
    let from_t1 = bfs(&g, TemporalNode::from_raw(0, 0)).unwrap();
    let from_t2 = bfs(&g, TemporalNode::from_raw(0, 1)).unwrap();
    for &tn in &g.active_nodes() {
        let label = format!("({}, t{})", tn.node.0 + 1, tn.time.0 + 1);
        let d1 = from_t1
            .distance(tn)
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".into());
        let d2 = from_t2
            .distance(tn)
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".into());
        t.push_row(&[label, d1, d2]);
    }
    print!("{}", t.to_text());

    let paths = enumerate_paths(
        &g,
        TemporalNode::from_raw(0, 0),
        TemporalNode::from_raw(2, 2),
        4,
    );
    println!(
        "Temporal paths of length 4 from (1,t1) to (3,t3): {} (paper: 2)",
        paths.len()
    );
    for p in &paths {
        let pretty: Vec<String> = p
            .iter()
            .map(|tn| format!("({},t{})", tn.node.0 + 1, tn.time.0 + 1))
            .collect();
        println!("  {}", pretty.join(" -> "));
    }
    println!();
}

/// FIG4: the equivalent static graph, the block matrix A3 and the power
/// iteration sequence of Section III-C.
fn fig4() {
    let g = paper_figure1();
    let blocks = BlockAdjacency::from_graph(&g);
    let (an, labels) = blocks.to_dense_an();

    let mut t = SeriesTable::new(
        "FIG4: adjacency matrix A3 of the equivalent static graph",
        &["row \\ col", "1t1", "2t1", "1t2", "3t2", "2t3", "3t3"],
    );
    for (i, &tn) in labels.iter().enumerate() {
        let mut row = vec![format!("({},t{})", tn.node.0 + 1, tn.time.0 + 1)];
        for j in 0..labels.len() {
            row.push(format!("{}", an.get(i, j) as i64));
        }
        t.push_row(&row);
    }
    print!("{}", t.to_text());

    let (_, iterates) = iterate_sequence(&g, TemporalNode::from_raw(0, 0), 4);
    println!("Power iteration (A3^T)^k e_(1,t1), k = 0..4:");
    for (k, it) in iterates.iter().enumerate() {
        let pretty: Vec<String> = it.iter().map(|x| format!("{}", *x as i64)).collect();
        println!("  k={k}: [{}]", pretty.join(", "));
    }
    println!(
        "Path count from (1,t1) to (3,t3) via block matrix: {} (paper: 2)\n",
        total_path_count(
            &g,
            TemporalNode::from_raw(0, 0),
            TemporalNode::from_raw(2, 2)
        )
    );
}

/// EQ2: the naïve path-sum miscount of Section III-A.
fn eq2() {
    let g = paper_figure1();
    let mut t = SeriesTable::new(
        "EQ2: naive adjacency-product counts vs correct counts (Figure 1 graph)",
        &["pair", "eq2 path sum", "identity padded", "correct"],
    );
    for (src, dst, label) in [
        (NodeId(0), NodeId(2), "1 -> 3"),
        (NodeId(0), NodeId(1), "1 -> 2"),
        (NodeId(2), NodeId(2), "3 -> 3"),
    ] {
        let naive = naive_path_count(&g, NaiveScheme::PathSum, src, dst);
        let padded = naive_path_count(&g, NaiveScheme::IdentityPadded, src, dst);
        let correct = total_path_count(
            &g,
            TemporalNode::new(src, TimeIndex(0)),
            TemporalNode::new(dst, TimeIndex(2)),
        );
        t.push_row(&[
            label.to_string(),
            format!("{naive}"),
            format!("{padded}"),
            format!("{correct}"),
        ]);
    }
    print!("{}", t.to_text());
    println!("The paper's miscount: the (1,3) entry of S[t3] is 1, the true count is 2.\n");
}

/// FIG5: linear scaling of Algorithm 1 in |Ẽ|.
fn fig5(scale: usize) {
    let config = Figure5Config {
        base_edges: 100_000 * scale,
        ..Figure5Config::default()
    };
    println!(
        "FIG5 workload: {} nodes, {} time stamps, base |E~| = {} (paper: 1e5 nodes, 10 stamps, 1e8 edges)",
        config.num_nodes, config.num_timestamps, config.base_edges
    );
    let sweep = figure5_sweep(&config);
    let mut t = SeriesTable::new(
        "FIG5: Algorithm 1 run time vs number of static edges",
        &["|E~|", "time_ms", "reached", "ns_per_edge"],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (edges, graph, root) in &sweep {
        // Best of five runs to damp noise, as is conventional for timing.
        let mut best = f64::INFINITY;
        let mut reached = 0usize;
        for _ in 0..5 {
            let start = Instant::now();
            let map = bfs(graph, *root).unwrap();
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            reached = map.num_reached();
            best = best.min(elapsed);
        }
        xs.push(*edges as f64);
        ys.push(best);
        t.push_numeric_row(&[
            *edges as f64,
            best,
            reached as f64,
            best * 1e6 / *edges as f64,
        ]);
    }
    print!("{}", t.to_text());
    let (slope, intercept, r2) = linear_fit(&xs, &ys);
    println!(
        "Linear fit: time_ms = {:.3e} * |E~| + {:.3}, R^2 = {:.4} (paper: visually linear)\n",
        slope, intercept, r2
    );
}

/// SEC5: citation mining on the synthetic corpus.
fn sec5() {
    let corpus = synthetic_citation_corpus(&citation_workload());
    let network = CitationNetwork::from_corpus(&corpus);
    println!(
        "SEC5 corpus: {} authors, {} epochs, {} citations",
        network.num_authors(),
        network.num_epochs(),
        network.num_citations()
    );

    let start = Instant::now();
    let top = top_influencers(&network, 10);
    let rank_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut t = SeriesTable::new(
        "SEC5: top-10 authors by |T(a, first active epoch)|",
        &["author", "epoch", "influenced"],
    );
    for s in &top {
        t.push_row(&[
            format!("{}", s.author),
            format!("{}", s.epoch),
            format!("{}", s.influenced),
        ]);
    }
    print!("{}", t.to_text());

    let star = top[0].author;
    let epoch = top[0].epoch;
    let influence = influence_set(&network, star, epoch).unwrap();
    let community = community_of(&network, star, epoch).unwrap();
    println!(
        "Author {} at epoch {}: |T| = {}, |community| = {}; full ranking took {:.1} ms\n",
        star,
        epoch,
        influence.len(),
        community.len(),
        rank_ms
    );
}

/// ABL-A: Algorithm 1 vs Algorithm 2 (blocked and dense).
fn abl_a() {
    let mut t = SeriesTable::new(
        "ABL-A: Algorithm 1 vs Algorithm 2 (times in ms)",
        &["nodes", "alg1", "alg2_blocked", "alg2_dense"],
    );
    for &n in &[100usize, 200, 400, 800] {
        let (graph, root) = alg_comparison_workload(n, 0xAB1A + n as u64);
        let alg1 = time_ms(|| bfs(&graph, root).unwrap().num_reached());
        let blocks = BlockAdjacency::from_graph(&graph);
        let alg2 = time_ms(|| algebraic_bfs_blocked(&blocks, root).num_reached());
        let dense = if n <= 400 {
            time_ms(|| algebraic_bfs_dense(&graph, root).unwrap().num_reached())
        } else {
            f64::NAN
        };
        t.push_row(&[
            format!("{n}"),
            format!("{alg1:.3}"),
            format!("{alg2:.3}"),
            if dense.is_nan() {
                "-".into()
            } else {
                format!("{dense:.3}")
            },
        ]);
    }
    println!("{}", t.to_text());
}

/// ABL-B: serial vs parallel BFS.
fn abl_b(scale: usize) {
    let mut t = SeriesTable::new(
        "ABL-B: serial vs rayon frontier-parallel BFS (times in ms)",
        &["scale", "nodes", "edges", "serial", "parallel", "speedup"],
    );
    for &s in &[scale, scale * 2] {
        let (graph, root) = parallel_bfs_workload(s, 0xB0B + s as u64);
        let serial = time_ms(|| bfs(&graph, root).unwrap().num_reached());
        let parallel = time_ms(|| par_bfs(&graph, root).unwrap().num_reached());
        t.push_row(&[
            format!("{s}"),
            format!("{}", graph.num_nodes()),
            format!("{}", graph.num_static_edges()),
            format!("{serial:.2}"),
            format!("{parallel:.2}"),
            format!("{:.2}x", serial / parallel),
        ]);
    }
    println!("{}", t.to_text());
}

/// ABL-C: incremental insertion vs rebuild.
fn abl_c() {
    let num_nodes = 5_000usize;
    let num_timestamps = 10usize;
    let batch_size = 20_000usize;
    let mut stream = EdgeStream::new(num_nodes, num_timestamps, batch_size, 0xABC);
    let batches: Vec<_> = (0..5).map(|_| stream.next_batch()).collect();

    let mut t = SeriesTable::new(
        "ABL-C: incremental insertion vs rebuild (times in ms)",
        &[
            "batches applied",
            "apply_one_batch",
            "rebuild_all",
            "bfs_after",
        ],
    );
    let mut incremental = stream.empty_graph();
    for (k, batch) in batches.iter().enumerate() {
        let apply = time_ms(|| {
            apply_batch(&mut incremental, batch);
            incremental.num_static_edges()
        });
        let rebuild = time_ms(|| {
            rebuild_from_batches(num_nodes, num_timestamps, &batches[..=k]).num_static_edges()
        });
        let root = first_active_node(&incremental);
        let query = time_ms(|| bfs(&incremental, root).unwrap().num_reached());
        t.push_row(&[
            format!("{}", k + 1),
            format!("{apply:.2}"),
            format!("{rebuild:.2}"),
            format!("{query:.2}"),
        ]);
    }
    println!("{}", t.to_text());

    // Sanity context: same workload built once, timed end to end.
    let total_edges = batches.iter().map(|b| b.len()).sum::<usize>();
    let once =
        time_ms(|| figure5_workload(num_nodes, num_timestamps, total_edges, 7).num_static_edges());
    println!("(building the same {total_edges} edges in one shot takes {once:.2} ms)\n");
}

fn time_ms<T>(mut f: impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    start.elapsed().as_secs_f64() * 1e3
}
