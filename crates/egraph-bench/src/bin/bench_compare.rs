//! `bench_compare` — gate a fresh bench run against committed baselines.
//!
//! ```text
//! bench_compare <baseline_dir> <candidate_dir> [--threshold 0.20]
//! ```
//!
//! Both directories hold `BENCH_*.json` summaries (the committed baselines
//! vs. the files a fresh `cargo bench` run just wrote). The two trees are
//! walked in lockstep and **stable** numeric leaves are compared
//! direction-aware:
//!
//! * higher is better — `qps`, `hit_rate`, `*_per_sec`, `*_speedup`;
//! * lower is better — `p50`, `*_ns`.
//!
//! A candidate worse than its baseline by more than the threshold (default
//! 20%) is a regression and the process exits non-zero, listing every
//! offender. Everything else — tail percentiles (`p99`, `p999`, `max`),
//! raw counts, race-dependent coalescing numbers — is deliberately *not*
//! gated: on shared CI hardware those are noise, and the bench JSONs mark
//! them `*_asserted: false` for the same reason. A baseline file missing
//! from the candidate directory is an error (a bench silently disappearing
//! must not read as green); a metric missing from one side is reported and
//! skipped (bench schemas are allowed to evolve).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use egraph_io::{parse_value, Value};

/// How a metric key is gated.
#[derive(Clone, Copy, PartialEq)]
enum Direction {
    HigherIsBetter,
    LowerIsBetter,
    Ignored,
}

fn classify(key: &str) -> Direction {
    if key == "qps" || key == "hit_rate" || key.ends_with("_per_sec") || key.ends_with("_speedup") {
        Direction::HigherIsBetter
    } else if key == "p50" || key.ends_with("_ns") {
        Direction::LowerIsBetter
    } else {
        Direction::Ignored
    }
}

struct Comparison {
    path: String,
    baseline: f64,
    candidate: f64,
    /// Relative change in the *bad* direction; positive means worse.
    regression: f64,
}

/// Flatten every gated numeric leaf under `value` into `out`, keyed by a
/// dotted path like `sizes[1].hit_ns`.
fn collect(value: &Value, prefix: &str, out: &mut Vec<(String, f64)>) {
    match value {
        Value::Object(entries) => {
            for (key, child) in entries {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                match child {
                    Value::Int(x) if classify(key) != Direction::Ignored => {
                        out.push((path, *x as f64));
                    }
                    Value::Number(x) if classify(key) != Direction::Ignored => {
                        out.push((path, *x));
                    }
                    _ => collect(child, &path, out),
                }
            }
        }
        Value::Array(items) => {
            for (index, item) in items.iter().enumerate() {
                collect(item, &format!("{prefix}[{index}]"), out);
            }
        }
        _ => {}
    }
}

/// The key a dotted path gates on is its last object segment.
fn leaf_key(path: &str) -> &str {
    let tail = path.rsplit('.').next().unwrap_or(path);
    tail.split('[').next().unwrap_or(tail)
}

fn compare_file(
    name: &str,
    baseline: &Value,
    candidate: &Value,
    comparisons: &mut Vec<Comparison>,
    skipped: &mut Vec<String>,
) {
    let mut base_metrics = Vec::new();
    let mut cand_metrics = Vec::new();
    collect(baseline, "", &mut base_metrics);
    collect(candidate, "", &mut cand_metrics);

    for (path, base) in &base_metrics {
        let Some((_, cand)) = cand_metrics.iter().find(|(p, _)| p == path) else {
            skipped.push(format!("{name}: {path} missing from candidate"));
            continue;
        };
        let direction = classify(leaf_key(path));
        let regression = if *base == 0.0 {
            0.0
        } else {
            match direction {
                Direction::HigherIsBetter => (base - cand) / base,
                Direction::LowerIsBetter => (cand - base) / base,
                Direction::Ignored => unreachable!("collect only keeps gated keys"),
            }
        };
        comparisons.push(Comparison {
            path: format!("{name}: {path}"),
            baseline: *base,
            candidate: *cand,
            regression,
        });
    }
    for (path, _) in &cand_metrics {
        if !base_metrics.iter().any(|(p, _)| p == path) {
            skipped.push(format!("{name}: {path} new in candidate (no baseline)"));
        }
    }
}

fn bench_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| {
            path.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    Ok(files)
}

fn load(path: &Path) -> Result<Value, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    parse_value(&text).map_err(|e| format!("parse {}: {e}", path.display()))
}

fn run() -> Result<bool, String> {
    let mut args = std::env::args().skip(1);
    let baseline_dir = PathBuf::from(
        args.next()
            .ok_or("usage: bench_compare <baseline_dir> <candidate_dir> [--threshold 0.20]")?,
    );
    let candidate_dir = PathBuf::from(
        args.next()
            .ok_or("usage: bench_compare <baseline_dir> <candidate_dir> [--threshold 0.20]")?,
    );
    let mut threshold = 0.20_f64;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--threshold" => {
                let raw = args.next().ok_or("--threshold needs a value")?;
                threshold = raw
                    .parse()
                    .map_err(|_| format!("--threshold: not a number: {raw}"))?;
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }

    let baselines =
        bench_files(&baseline_dir).map_err(|e| format!("list {}: {e}", baseline_dir.display()))?;
    if baselines.is_empty() {
        return Err(format!(
            "no BENCH_*.json baselines found in {}",
            baseline_dir.display()
        ));
    }

    let mut comparisons = Vec::new();
    let mut skipped = Vec::new();
    for base_path in &baselines {
        let name = base_path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .into_owned();
        let cand_path = candidate_dir.join(&name);
        if !cand_path.exists() {
            return Err(format!(
                "{name}: present in baselines but not produced by the candidate run \
                 ({} missing) — a vanished bench must not pass silently",
                cand_path.display()
            ));
        }
        let baseline = load(base_path)?;
        let candidate = load(&cand_path)?;
        compare_file(&name, &baseline, &candidate, &mut comparisons, &mut skipped);
    }

    println!(
        "bench_compare: {} gated metrics across {} files (threshold {:.0}%)",
        comparisons.len(),
        baselines.len(),
        threshold * 100.0
    );
    let mut failed = false;
    for c in &comparisons {
        let verdict = if c.regression > threshold {
            failed = true;
            "REGRESSION"
        } else if c.regression < -threshold {
            "improved"
        } else {
            "ok"
        };
        println!(
            "  [{verdict:>10}] {}  baseline {:.3}  candidate {:.3}  ({:+.1}%)",
            c.path,
            c.baseline,
            c.candidate,
            c.regression * 100.0
        );
    }
    for s in &skipped {
        println!("  [   skipped] {s}");
    }
    if comparisons.is_empty() {
        return Err("baselines parsed but contained no gated metrics".into());
    }
    Ok(!failed)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("bench_compare: at least one gated metric regressed past the threshold");
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("bench_compare: {message}");
            ExitCode::FAILURE
        }
    }
}
