//! # egraph-bench
//!
//! Shared workload definitions for the benchmark harness. Each Criterion
//! bench target (and the `figures` binary) pulls its parameters from here so
//! that the quick terminal reproduction and the statistically rigorous
//! Criterion runs measure exactly the same workloads.
//!
//! The experiment identifiers (FIG5, ABL-A, …) match the per-experiment index
//! in `DESIGN.md` and the result log in `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod workloads;

pub use workloads::*;
