//! Canonical benchmark workloads, shared between the Criterion targets and
//! the `figures` binary.

use egraph_core::adjacency::AdjacencyListGraph;
use egraph_core::graph::EvolvingGraph;
use egraph_core::ids::TemporalNode;
use egraph_gen::citation::CitationConfig;
use egraph_gen::random::figure5_workload;

/// The scaled-down Figure 5 sweep.
///
/// The paper uses 10⁵ active nodes, 10 time stamps and 1–5 ×10⁸ static edges
/// on an 80-core, 1 TB machine. The reproduction keeps the *shape* — a fixed
/// node universe and snapshot count with a growing static edge count whose
/// relative spacing matches the paper's (≈1, 1.5, 1.8, 2.5, 3.5, 5 ×) — while
/// scaling the absolute sizes so the sweep finishes in seconds on a laptop.
/// `scale` multiplies the base edge count; `scale = 1` gives 10⁴ nodes and
/// 10⁵–5×10⁵ edges.
#[derive(Clone, Copy, Debug)]
pub struct Figure5Config {
    /// Number of nodes in the universe (paper: 10⁵).
    pub num_nodes: usize,
    /// Number of snapshots (paper: 10).
    pub num_timestamps: usize,
    /// Base static edge count that the relative series multiplies.
    pub base_edges: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Figure5Config {
    fn default() -> Self {
        Figure5Config {
            num_nodes: 10_000,
            num_timestamps: 10,
            base_edges: 100_000,
            seed: 0xF165,
        }
    }
}

/// The relative edge-count series of Figure 5 (the paper grows the graph from
/// ≈1×10⁸ to ≈5×10⁸ edges through these steps).
pub const FIGURE5_RELATIVE_STEPS: [f64; 6] = [1.0, 1.5, 1.8, 2.5, 3.5, 5.0];

/// Materialises the Figure 5 sweep: one graph per step, each with the step's
/// edge count, plus the BFS root used for timing (an active node with the
/// earliest possible time stamp, as the paper assumes WLOG).
pub fn figure5_sweep(config: &Figure5Config) -> Vec<(usize, AdjacencyListGraph, TemporalNode)> {
    FIGURE5_RELATIVE_STEPS
        .iter()
        .map(|&step| {
            let edges = (config.base_edges as f64 * step) as usize;
            let g = figure5_workload(config.num_nodes, config.num_timestamps, edges, config.seed);
            let root = first_active_node(&g);
            (edges, g, root)
        })
        .collect()
}

/// The first active temporal node of a graph (panics if the graph has no
/// edges — benchmark workloads always do).
pub fn first_active_node<G: EvolvingGraph>(graph: &G) -> TemporalNode {
    graph
        .active_nodes()
        .into_iter()
        .next()
        .expect("benchmark workloads contain at least one edge")
}

/// Workload for the ABL-A (Algorithm 1 vs Algorithm 2) ablation: small enough
/// that the dense engine is feasible, dense enough that the sparse engines
/// have work to do.
pub fn alg_comparison_workload(num_nodes: usize, seed: u64) -> (AdjacencyListGraph, TemporalNode) {
    let g = figure5_workload(num_nodes, 8, num_nodes * 8, seed);
    let root = first_active_node(&g);
    (g, root)
}

/// Workload for the ABL-B (serial vs parallel BFS) ablation: a large, shallow
/// graph so frontiers are wide enough to parallelise.
pub fn parallel_bfs_workload(scale: usize, seed: u64) -> (AdjacencyListGraph, TemporalNode) {
    let num_nodes = 20_000 * scale;
    let g = figure5_workload(num_nodes, 6, num_nodes * 10, seed);
    let root = first_active_node(&g);
    (g, root)
}

/// The synthetic citation corpus used by the SEC5 benchmark and example.
pub fn citation_workload() -> CitationConfig {
    CitationConfig {
        num_authors: 2_000,
        num_epochs: 30,
        papers_per_epoch: 100,
        citations_per_paper: 5,
        preferential_bias: 1.0,
        seed: 0x5EC5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_sweep_grows_monotonically() {
        let cfg = Figure5Config {
            num_nodes: 500,
            num_timestamps: 5,
            base_edges: 2_000,
            seed: 1,
        };
        let sweep = figure5_sweep(&cfg);
        assert_eq!(sweep.len(), FIGURE5_RELATIVE_STEPS.len());
        for w in sweep.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        for (edges, g, root) in &sweep {
            assert_eq!(g.num_static_edges(), *edges);
            assert!(g.is_active(root.node, root.time));
        }
    }

    #[test]
    fn ablation_workloads_have_active_roots() {
        let (g, root) = alg_comparison_workload(200, 3);
        assert!(g.is_active(root.node, root.time));
        let (g, root) = parallel_bfs_workload(1, 4);
        assert!(g.is_active(root.node, root.time));
    }
}
