//! ABL-A — Algorithm 1 (adjacency lists) versus Algorithm 2 (algebraic BFS)
//! in its blocked-CSC and dense forms.
//!
//! Theorems 2, 5 and 6 predict the ordering: the adjacency-list BFS is
//! `O(|E| + |V|)`, the blocked-sparse power iteration pays an extra factor of
//! the iteration count `k`, and the dense engine pays `O(k |V|²)`. The bench
//! sweeps the node count so the separation (and the dense engine's quadratic
//! blow-up) is visible in the series.
//!
//! Both production-shaped contestants go through the `Search` builder —
//! `Strategy::Serial` and `Strategy::Algebraic` — with the prebuilt variant
//! using `Prepared` to separate block-assembly cost from iteration cost; the
//! dense engine stays on its free function, as it exists only for this
//! ablation and has no strategy surface.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egraph_bench::alg_comparison_workload;
use egraph_matrix::algebraic_bfs::algebraic_bfs_dense;
use egraph_query::{Prepared, Search, Strategy};

fn alg1_vs_alg2(c: &mut Criterion) {
    let sizes = [100usize, 200, 400, 800];
    let mut group = c.benchmark_group("alg1_vs_alg2");
    group.sample_size(10);

    for &n in &sizes {
        let (graph, root) = alg_comparison_workload(n, 0xAB1A + n as u64);

        group.bench_with_input(BenchmarkId::new("alg1_adjacency", n), &n, |b, _| {
            b.iter(|| {
                let result = Search::from(root).run(&graph).unwrap();
                std::hint::black_box(result.num_reached())
            })
        });

        // The blocked engine is benchmarked both with and without the block
        // construction, to separate assembly cost from iteration cost.
        group.bench_with_input(
            BenchmarkId::new("alg2_blocked_with_build", n),
            &n,
            |b, _| {
                b.iter(|| {
                    let result = Search::from(root)
                        .strategy(Strategy::Algebraic)
                        .run(&graph)
                        .unwrap();
                    std::hint::black_box(result.num_reached())
                })
            },
        );

        let prepared = Prepared::new(&graph);
        group.bench_with_input(BenchmarkId::new("alg2_blocked_prebuilt", n), &n, |b, _| {
            b.iter(|| {
                let result = Search::from(root)
                    .strategy(Strategy::Algebraic)
                    .run_prepared(&prepared)
                    .unwrap();
                std::hint::black_box(result.num_reached())
            })
        });

        // The dense engine is only feasible for the smaller sizes.
        if n <= 400 {
            group.bench_with_input(BenchmarkId::new("alg2_dense", n), &n, |b, _| {
                b.iter(|| {
                    std::hint::black_box(algebraic_bfs_dense(&graph, root).unwrap().num_reached())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, alg1_vs_alg2);
criterion_main!(benches);
