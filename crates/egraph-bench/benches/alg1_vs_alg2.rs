//! ABL-A — Algorithm 1 (adjacency lists) versus Algorithm 2 (algebraic BFS)
//! in its blocked-CSC and dense forms.
//!
//! Theorems 2, 5 and 6 predict the ordering: the adjacency-list BFS is
//! `O(|E| + |V|)`, the blocked-sparse power iteration pays an extra factor of
//! the iteration count `k`, and the dense engine pays `O(k |V|²)`. The bench
//! sweeps the node count so the separation (and the dense engine's quadratic
//! blow-up) is visible in the series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egraph_bench::alg_comparison_workload;
use egraph_core::bfs::bfs;
use egraph_matrix::algebraic_bfs::{algebraic_bfs_blocked, algebraic_bfs_dense};
use egraph_matrix::block::BlockAdjacency;

fn alg1_vs_alg2(c: &mut Criterion) {
    let sizes = [100usize, 200, 400, 800];
    let mut group = c.benchmark_group("alg1_vs_alg2");
    group.sample_size(10);

    for &n in &sizes {
        let (graph, root) = alg_comparison_workload(n, 0xAB1A + n as u64);

        group.bench_with_input(BenchmarkId::new("alg1_adjacency", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(bfs(&graph, root).unwrap().num_reached()))
        });

        // The blocked engine is benchmarked both with and without the block
        // construction, to separate assembly cost from iteration cost.
        group.bench_with_input(
            BenchmarkId::new("alg2_blocked_with_build", n),
            &n,
            |b, _| {
                b.iter(|| {
                    let blocks = BlockAdjacency::from_graph(&graph);
                    std::hint::black_box(algebraic_bfs_blocked(&blocks, root).num_reached())
                })
            },
        );

        let blocks = BlockAdjacency::from_graph(&graph);
        group.bench_with_input(BenchmarkId::new("alg2_blocked_prebuilt", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(algebraic_bfs_blocked(&blocks, root).num_reached()))
        });

        // The dense engine is only feasible for the smaller sizes.
        if n <= 400 {
            group.bench_with_input(BenchmarkId::new("alg2_dense", n), &n, |b, _| {
                b.iter(|| {
                    std::hint::black_box(algebraic_bfs_dense(&graph, root).unwrap().num_reached())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, alg1_vs_alg2);
criterion_main!(benches);
