//! EQ2 — the naïve adjacency-product path sums of Section III-A versus the
//! correct block-matrix counting.
//!
//! Correctness is settled by the tests (the naïve schemes miscount); this
//! bench adds the cost dimension: the naïve sum enumerates `2^(n-2)` products
//! of dense matrices and blows up with the number of snapshots, while the
//! correct block power iteration stays polynomial. The series over the
//! snapshot count makes that separation visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egraph_baselines::naive_product::{naive_path_count, NaiveScheme};
use egraph_core::graph::EvolvingGraph;
use egraph_core::ids::{NodeId, TemporalNode, TimeIndex};
use egraph_gen::random::figure5_workload;
use egraph_matrix::path_count::total_path_count;

fn naive_vs_correct(c: &mut Criterion) {
    let mut group = c.benchmark_group("naive_vs_correct");
    group.sample_size(10);

    for &n_t in &[4usize, 6, 8] {
        let num_nodes = 40usize;
        let graph = figure5_workload(num_nodes, n_t, num_nodes * n_t, 0xEC2 + n_t as u64);
        let src = NodeId(0);
        let dst = NodeId((num_nodes - 1) as u32);
        let from = TemporalNode::new(src, TimeIndex(0));
        let to = TemporalNode::new(dst, TimeIndex::from_index(graph.num_timestamps() - 1));

        group.bench_with_input(BenchmarkId::new("naive_eq2_path_sum", n_t), &n_t, |b, _| {
            b.iter(|| {
                std::hint::black_box(naive_path_count(&graph, NaiveScheme::PathSum, src, dst))
            })
        });

        group.bench_with_input(
            BenchmarkId::new("naive_identity_padded", n_t),
            &n_t,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(naive_path_count(
                        &graph,
                        NaiveScheme::IdentityPadded,
                        src,
                        dst,
                    ))
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("correct_block_matrix", n_t),
            &n_t,
            |b, _| b.iter(|| std::hint::black_box(total_path_count(&graph, from, to))),
        );
    }
    group.finish();
}

criterion_group!(benches, naive_vs_correct);
criterion_main!(benches);
