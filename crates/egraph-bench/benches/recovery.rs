//! RECOVERY — what durability costs, measured end to end.
//!
//! Three numbers anchor the durable event log's perf story:
//!
//! 1. **Replay rate.** `LiveGraph::recover` decodes every sealed segment
//!    and rebuilds the CSR serve graph; the events-per-second it sustains
//!    bounds restart time. Gated (`replay_events_per_sec`, best of five
//!    runs) against the committed baseline.
//! 2. **Checkpointed recovery rate.** The same history written under a
//!    checkpoint policy (`every 6, retain 1`) recovers from the installed
//!    checkpoint plus a two-segment suffix. The effective rate —
//!    total logged events divided by recovery wall time — is gated
//!    (`checkpoint_recover_events_per_sec`), and the run *asserts* the
//!    bounded-replay contract: `recovery_replayed_events` never exceeds
//!    two snapshots' worth of events, however long the history.
//! 3. **Seal fsync cost.** `DurableGraph::seal_snapshot` encodes, writes
//!    and fsyncs the segment *before* publishing — the per-seal latency
//!    tax every durable ingest pays. Recorded, not gated: fsync time on
//!    shared CI storage is weather, not signal.
//! 4. **Tail-to-serve latency.** From the leader's `/ingest` seal ack to a
//!    follower subscriber receiving the pushed frame: the whole
//!    replication pipe (segment ship over `GET /log/tail`, replay into the
//!    replica, cache repair, push). Recorded, not gated.
//!
//! What *is* asserted is correctness under the measurement load: recovery
//! restores the exact version, the follower converges to zero lag, and
//! every live seal reaches the follower's subscriber.
//!
//! Results land in a machine-readable `BENCH_recovery.json` (committed);
//! CI's `bench_compare` step gates `replay_events_per_sec` and
//! `checkpoint_recover_events_per_sec`.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use egraph_core::ids::{NodeId, TemporalNode};
use egraph_query::Search;
use egraph_serve::{Client, Server, ServerConfig};
use egraph_stream::{DurableGraph, LiveGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const NUM_NODES: usize = 400;
const EDGES_PER_SNAPSHOT: usize = 2_000;
const SNAPSHOTS: usize = 8;
const REPLAY_RUNS: usize = 5;
const LIVE_SEALS: usize = 12;
/// Checkpoint cadence for the checkpointed-recovery dir: a checkpoint at
/// version 6 of 8 leaves exactly a two-segment replay suffix.
const CHECKPOINT_EVERY: u64 = 6;

/// A scratch directory under the system temp root, removed on drop (the
/// container has no `tempfile` crate).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "egraph-bench-recovery-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Writes the measurement log: `SNAPSHOTS` sealed segments of random
/// edges, optionally under a checkpoint policy (`retain 1`, so compaction
/// runs too). Returns the total event count and the per-seal wall times.
fn build_log(dir: &Path, checkpoint_every: u64) -> (u64, Vec<f64>) {
    let mut rng = SmallRng::seed_from_u64(0x5EA1);
    let mut durable = DurableGraph::create(dir, NUM_NODES, true).unwrap();
    durable.set_checkpoint_policy(checkpoint_every, 1);
    let mut events = 0u64;
    let mut seal_us = Vec::with_capacity(SNAPSHOTS);
    for label in 0..SNAPSHOTS {
        let mut inserted = 0;
        while inserted < EDGES_PER_SNAPSHOT {
            let u = rng.gen_range(0..NUM_NODES) as u32;
            let v = rng.gen_range(0..NUM_NODES) as u32;
            if u != v {
                durable.insert(NodeId(u), NodeId(v)).unwrap();
                inserted += 1;
                events += 1;
            }
        }
        let sealed_at = Instant::now();
        durable.seal_snapshot(label as i64).unwrap();
        seal_us.push(sealed_at.elapsed().as_nanos() as f64 / 1_000.0);
    }
    (events, seal_us)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn sorted(mut values: Vec<f64>) -> Vec<f64> {
    values.sort_by(|a, b| a.total_cmp(b));
    values
}

/// Best-of-N replay rate, with the recovered state verified every run.
fn measure_replay(dir: &Path, events: u64) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..REPLAY_RUNS {
        let started = Instant::now();
        let recovered = LiveGraph::recover(dir).unwrap();
        let elapsed = started.elapsed().as_secs_f64();
        assert_eq!(recovered.segments_replayed, SNAPSHOTS as u64);
        assert!(!recovered.dropped_torn_tail);
        assert_eq!(recovered.graph.live().version(), SNAPSHOTS as u64);
        best = best.min(elapsed);
    }
    events as f64 / best
}

/// Best-of-N effective recovery rate on the checkpointed dir: total logged
/// events divided by the wall time of a checkpoint-plus-suffix recovery.
/// Every run asserts the bounded-replay contract the checkpoint exists to
/// provide: only the two post-checkpoint segments are replayed, and the
/// replayed event count never exceeds two snapshots' worth.
fn measure_checkpoint_recover(dir: &Path, events: u64) -> (f64, u64) {
    let suffix_segments = SNAPSHOTS as u64 - CHECKPOINT_EVERY;
    let mut best = f64::MAX;
    let mut replayed_events = 0u64;
    for _ in 0..REPLAY_RUNS {
        let started = Instant::now();
        let recovered = LiveGraph::recover(dir).unwrap();
        let elapsed = started.elapsed().as_secs_f64();
        assert_eq!(
            recovered.checkpoint_seq,
            Some(CHECKPOINT_EVERY - 1),
            "recovery must start from the installed checkpoint"
        );
        assert_eq!(recovered.segments_replayed, suffix_segments);
        assert!(
            recovered.recovery_replayed_events <= suffix_segments * EDGES_PER_SNAPSHOT as u64,
            "bounded replay: {} events replayed, bound {}",
            recovered.recovery_replayed_events,
            suffix_segments * EDGES_PER_SNAPSHOT as u64
        );
        assert!(!recovered.dropped_torn_tail);
        assert_eq!(recovered.graph.live().version(), SNAPSHOTS as u64);
        replayed_events = recovered.recovery_replayed_events;
        best = best.min(elapsed);
    }
    (events as f64 / best, replayed_events)
}

/// Leader + follower over loopback: median time from the leader's seal ack
/// to the follower's push frame, across `LIVE_SEALS` live seals.
fn measure_tail_to_serve(dir: &Path) -> Vec<f64> {
    let recovered = DurableGraph::open(dir).unwrap();
    let mut leader = Server::start_durable(recovered, ServerConfig::default()).unwrap();
    let leader_client = Client::new(leader.addr());
    let mut follower = Server::start_follower(leader.addr(), ServerConfig::default()).unwrap();

    // Converge before measuring: the backlog replay is the replay bench's
    // story, not this one's.
    let deadline = Instant::now() + Duration::from_secs(30);
    while follower.stats().follower_lag_seals != 0
        || follower.stats().segments_replayed != SNAPSHOTS as u64
    {
        assert!(
            Instant::now() < deadline,
            "follower failed to converge: {:?}",
            follower.stats()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let standing = Search::from(TemporalNode::from_raw(0, 0)).descriptor();
    let follower_client = Client::new(follower.addr());
    let mut subscription = follower_client.subscribe(&standing).unwrap();
    assert!(subscription.next_frame().unwrap().is_some());

    let mut samples = Vec::with_capacity(LIVE_SEALS);
    for i in 0..LIVE_SEALS {
        let label = (SNAPSHOTS + i) as i64;
        let body = format!(
            "{{\"events\": [[{}, {}]], \"seal\": {label}}}",
            i % 7,
            i % 5 + 7
        );
        let sealed_at = Instant::now();
        let response = leader_client.post("/ingest", &body).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        let frame = subscription
            .next_frame()
            .unwrap()
            .expect("every live seal must reach the follower's subscriber");
        samples.push(sealed_at.elapsed().as_nanos() as f64 / 1_000.0);
        assert!(frame.contains(&format!("\"label\": {label}")), "{frame}");
    }
    follower.shutdown();
    leader.shutdown();
    samples
}

fn recovery(c: &mut Criterion) {
    let dir = TempDir::new("log");
    let (events, seal_us) = build_log(dir.path(), 0);
    let replay_events_per_sec = measure_replay(dir.path(), events);
    let ckpt_dir = TempDir::new("ckpt");
    let (ckpt_events, _) = build_log(ckpt_dir.path(), CHECKPOINT_EVERY);
    assert_eq!(ckpt_events, events, "both dirs log the same seeded history");
    let (checkpoint_recover_events_per_sec, checkpoint_replayed_events) =
        measure_checkpoint_recover(ckpt_dir.path(), events);
    let tail_us = sorted(measure_tail_to_serve(dir.path()));
    let seal_us = sorted(seal_us);

    println!(
        "recovery: {events} events over {SNAPSHOTS} segments; replay {:.0} events/s; \
         checkpointed recovery {:.0} events/s ({checkpoint_replayed_events} replayed); \
         seal fsync p50 {:.0} us (max {:.0} us); follower tail-to-serve p50 {:.0} us \
         (max {:.0} us over {LIVE_SEALS} live seals)",
        replay_events_per_sec,
        checkpoint_recover_events_per_sec,
        percentile(&seal_us, 0.50),
        seal_us.last().copied().unwrap_or(0.0),
        percentile(&tail_us, 0.50),
        tail_us.last().copied().unwrap_or(0.0),
    );

    let json = format!(
        "{{\n  \"bench\": \"recovery\",\n  \"num_nodes\": {NUM_NODES},\n  \
         \"edges_per_snapshot\": {EDGES_PER_SNAPSHOT},\n  \"snapshots\": {SNAPSHOTS},\n  \
         \"events_logged\": {events},\n  \"replay_runs\": {REPLAY_RUNS},\n  \
         \"replay_events_per_sec\": {replay_events_per_sec:.0},\n  \
         \"checkpoint_every\": {CHECKPOINT_EVERY},\n  \
         \"checkpoint_recover_events_per_sec\": {checkpoint_recover_events_per_sec:.0},\n  \
         \"checkpoint_replayed_events\": {checkpoint_replayed_events},\n  \
         \"checkpoint_replay_asserted\": true,\n  \
         \"seal_fsync_p50_us\": {:.1},\n  \"seal_fsync_max_us\": {:.1},\n  \
         \"live_seals\": {LIVE_SEALS},\n  \
         \"tail_to_serve_p50_us\": {:.1},\n  \"tail_to_serve_max_us\": {:.1},\n  \
         \"fsync_asserted\": false,\n  \"tail_to_serve_asserted\": false,\n  \
         \"notes\": \"replay_events_per_sec and checkpoint_recover_events_per_sec are \
         the gated metrics (best of {REPLAY_RUNS} full LiveGraph::recover runs each, \
         recovered state verified every run); the checkpointed run also asserts bounded \
         replay — recovery_replayed_events stays within the post-checkpoint suffix \
         regardless of total history; seal fsync and follower tail-to-serve latencies \
         are wall-clock on shared storage/loopback and are recorded, not gated — the \
         recovery and replication test suites assert the correctness half \
         (byte-identical restarts, zero-lag convergence) deterministically\"\n}}\n",
        percentile(&seal_us, 0.50),
        seal_us.last().copied().unwrap_or(0.0),
        percentile(&tail_us, 0.50),
        tail_us.last().copied().unwrap_or(0.0),
    );
    let path = "BENCH_recovery.json";
    std::fs::write(path, &json).expect("write bench summary");
    println!("wrote {path}");

    // Criterion trajectory entry: one full recovery of the measurement log.
    let mut group = c.benchmark_group("recovery");
    group.sample_size(10);
    group.bench_function("replay_log", |b| {
        b.iter(|| std::hint::black_box(LiveGraph::recover(dir.path()).unwrap().segments_replayed))
    });
    group.finish();
}

criterion_group!(benches, recovery);
criterion_main!(benches);
