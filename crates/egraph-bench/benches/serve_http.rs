//! SERVE-HTTP — open-loop load generation against the real server.
//!
//! Everything the serving stack claims is exercised over actual loopback
//! sockets: HTTP parsing, descriptor decoding, the three-tier serve path
//! (peek → single-flight → compute), result serialization, and concurrent
//! ingest invalidating standing queries mid-run.
//!
//! Two measurement phases:
//!
//! 1. **Mixed open-loop run.** Client lanes fire requests on a fixed
//!    schedule (open-loop: the next request's send time does not wait for
//!    the previous response, so queueing delay is *included* in latency —
//!    the honest way to measure a server). The mix is ~70% hot standing
//!    queries (cache hits), ~20% backward queries (stable-core resettled
//!    when stale), ~10% cold uniques (misses), while an ingest lane seals
//!    snapshots mid-run so the hot forward queries really take the
//!    *extension* path and the backward ones the *resettle* path.
//!    Reported: achieved QPS and p50/p99/p999 latency.
//! 2. **Coalescing burst.** A salvo of concurrent identical cold requests
//!    against a production-configured server (no determinism hook);
//!    whatever coalescing the race actually produced is reported.
//!
//! Wall-clock numbers and race-dependent counts are **recorded, not
//! asserted** (`*_asserted: false` in the JSON) — the build container is a
//! single-core box where timeslicing dominates tail latency. What *is*
//! asserted is invariant under load: every response is a `200`, the
//! percentile order holds, the outcome mix actually contains hits,
//! extensions, resettles and misses — and zero recomputes, now that every
//! matrix row repairs incrementally — and the server's books balance.
//!
//! Results land in a machine-readable `BENCH_serve_http.json` (committed),
//! and CI's baseline-compare step (`bench_compare`) gates the stable
//! metrics against the committed file.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use egraph_core::ids::{NodeId, TemporalNode};
use egraph_query::{QueryDescriptor, Search};
use egraph_serve::{Client, Server, ServerConfig};
use egraph_stream::LiveGraph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const NUM_NODES: usize = 600;
const EDGES_PER_SNAPSHOT: usize = 1_500;
const SEED_SNAPSHOTS: usize = 6;
const LANES: usize = 2;
const REQUESTS_PER_LANE: usize = 400;
/// Open-loop schedule: one request per lane per this interval.
const LANE_INTERVAL: Duration = Duration::from_micros(2_500);
const BURST_SIZE: usize = 16;

fn build_live(seed: u64) -> LiveGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut live = LiveGraph::directed(NUM_NODES);
    for label in 0..SEED_SNAPSHOTS {
        let mut inserted = 0;
        while inserted < EDGES_PER_SNAPSHOT {
            let u = rng.gen_range(0..NUM_NODES) as u32;
            let v = rng.gen_range(0..NUM_NODES) as u32;
            if u != v {
                live.insert(NodeId(u), NodeId(v)).unwrap();
                inserted += 1;
            }
        }
        live.seal_snapshot(label as i64).unwrap();
    }
    live
}

/// The request mix for one lane: hot forward standing queries, backward
/// queries (stale after every seal), and cold uniques.
struct Mix {
    hot: Vec<QueryDescriptor>,
    backward: Vec<QueryDescriptor>,
}

impl Mix {
    fn build() -> Mix {
        let hot = (0..4)
            .map(|v| Search::from(TemporalNode::from_raw(v * 7, 0)).descriptor())
            .collect();
        let backward = (0..16)
            .map(|v| {
                Search::from(TemporalNode::from_raw(v * 11 + 1, 2))
                    .backward()
                    .descriptor()
            })
            .collect();
        Mix { hot, backward }
    }

    /// Deterministic 70/20/10 hot/backward/cold schedule by request index.
    fn pick(&self, lane: usize, index: usize) -> QueryDescriptor {
        match index % 10 {
            0 | 1 => self.backward[(lane * 31 + index) % self.backward.len()].clone(),
            2 => {
                // A cold unique: a root and snapshot the pools never use.
                let node = ((lane * REQUESTS_PER_LANE + index) * 13) % NUM_NODES;
                Search::from(TemporalNode::from_raw(node as u32, 1)).descriptor()
            }
            _ => self.hot[(lane + index) % self.hot.len()].clone(),
        }
    }
}

struct LoadReport {
    achieved_qps: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    max_us: f64,
    requests: usize,
    seals: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn open_loop_run(client: &Client) -> LoadReport {
    let mix = Mix::build();
    let seals = AtomicU64::new(0);
    let stop_ingest = std::sync::atomic::AtomicBool::new(false);

    let wall = Instant::now();
    let (latencies, span): (Vec<Vec<f64>>, f64) = std::thread::scope(|scope| {
        // The ingest lane: seal a fresh snapshot every ~150 ms so standing
        // queries go stale mid-run and the extension/resettle paths are
        // genuinely exercised under load.
        scope.spawn(|| {
            let mut label = SEED_SNAPSHOTS as i64;
            let mut rng = SmallRng::seed_from_u64(0xF00D);
            while !stop_ingest.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(150));
                let events: Vec<String> = (0..64)
                    .map(|_| {
                        let u = rng.gen_range(0..NUM_NODES);
                        let v = (u + 1 + rng.gen_range(0..NUM_NODES - 1)) % NUM_NODES;
                        format!("[{u}, {v}]")
                    })
                    .collect();
                let body = format!("{{\"events\": [{}], \"seal\": {label}}}", events.join(", "));
                if client.post("/ingest", &body).map(|r| r.status).ok() == Some(200) {
                    seals.fetch_add(1, Ordering::Relaxed);
                    label += 1;
                }
            }
        });

        let lanes: Vec<_> = (0..LANES)
            .map(|lane| {
                let client = client.clone();
                let mix = &mix;
                scope.spawn(move || {
                    let mut recorded = Vec::with_capacity(REQUESTS_PER_LANE);
                    let start = Instant::now();
                    for index in 0..REQUESTS_PER_LANE {
                        // Open loop: fire at the scheduled instant (or
                        // immediately if already late — the lateness shows
                        // up in the next requests' queueing latency).
                        let scheduled = LANE_INTERVAL * index as u32;
                        if let Some(wait) = scheduled.checked_sub(start.elapsed()) {
                            std::thread::sleep(wait);
                        }
                        let descriptor = mix.pick(lane, index);
                        let sent = Instant::now();
                        let response = client.query(&descriptor).unwrap();
                        assert_eq!(
                            response.status, 200,
                            "mixed-load responses must all succeed: {}",
                            response.body
                        );
                        recorded.push(sent.elapsed().as_nanos() as f64 / 1_000.0);
                    }
                    recorded
                })
            })
            .collect();
        let recorded: Vec<Vec<f64>> = lanes.into_iter().map(|h| h.join().unwrap()).collect();
        // Wall clock from first scheduled send to last response drained,
        // measured before the ingest lane winds down; if the server keeps
        // up this approaches the configured schedule span, and the
        // shortfall below the offered rate is the overload signal.
        let span = wall.elapsed().as_secs_f64();
        stop_ingest.store(true, Ordering::Relaxed);
        (recorded, span)
    });

    let mut all: Vec<f64> = latencies.into_iter().flatten().collect();
    all.sort_by(|a, b| a.total_cmp(b));
    let requests = all.len();
    LoadReport {
        achieved_qps: requests as f64 / span,
        p50_us: percentile(&all, 0.50),
        p99_us: percentile(&all, 0.99),
        p999_us: percentile(&all, 0.999),
        max_us: all.last().copied().unwrap_or(0.0),
        requests,
        seals: seals.load(Ordering::Relaxed),
    }
}

/// A salvo of concurrent identical cold requests; returns how many
/// coalesced onto the leader's computation (race-dependent — recorded,
/// not asserted).
fn coalescing_burst(server: &Server, client: &Client) -> (u64, u64) {
    let before = server.cache_stats();
    // A descriptor no other phase uses, so the burst is genuinely cold.
    let descriptor = Search::from(TemporalNode::from_raw(5, 3))
        .backward()
        .descriptor();
    std::thread::scope(|scope| {
        for _ in 0..BURST_SIZE {
            let client = client.clone();
            let descriptor = descriptor.clone();
            scope.spawn(move || {
                let response = client.query(&descriptor).unwrap();
                assert_eq!(response.status, 200);
            });
        }
    });
    let after = server.cache_stats();
    (
        after.coalesced - before.coalesced,
        after.misses - before.misses,
    )
}

fn serve_http(c: &mut Criterion) {
    let server = Server::start(build_live(0xCAFE), ServerConfig::default()).unwrap();
    let client = Client::new(server.addr());

    // Warm the hot set so the run starts from a serving steady state.
    let mix = Mix::build();
    for descriptor in &mix.hot {
        assert_eq!(client.query(descriptor).unwrap().status, 200);
    }

    let report = open_loop_run(&client);
    let (burst_coalesced, burst_misses) = coalescing_burst(&server, &client);
    let cache = server.cache_stats();
    let served = server.stats();

    // Invariants that hold regardless of scheduling noise.
    assert!(report.p50_us <= report.p99_us && report.p99_us <= report.p999_us);
    assert!(report.seals > 0, "the ingest lane must seal mid-run");
    assert!(cache.hits > 0, "the hot set must produce hits");
    assert!(cache.misses > 0, "cold uniques must produce misses");
    assert!(
        cache.extensions > 0,
        "hot forward queries must extend across mid-run seals"
    );
    assert!(
        cache.stable_core_resettled > 0,
        "backward queries must resettle across mid-run seals"
    );
    assert_eq!(
        cache.recomputes, 0,
        "every stale row repairs incrementally now"
    );
    assert_eq!(served.bad_requests, 0);
    assert!(burst_misses >= 1, "someone in the burst computes");

    println!(
        "serve_http: {:.0} qps over {} requests; p50 {:.0} us, p99 {:.0} us, \
         p999 {:.0} us (max {:.0} us); {} mid-run seals; outcomes: {} hit / \
         {} ext / {} resettle / {} miss / {} coalesced; burst: {}/{} coalesced",
        report.achieved_qps,
        report.requests,
        report.p50_us,
        report.p99_us,
        report.p999_us,
        report.max_us,
        report.seals,
        cache.hits,
        cache.extensions,
        cache.stable_core_resettled,
        cache.misses,
        cache.coalesced,
        burst_coalesced,
        BURST_SIZE - 1,
    );

    write_json_summary(&report, &cache, burst_coalesced, burst_misses);

    // Criterion trajectory entry: the closed-loop round-trip cost of one
    // hot query over a real socket (connect + parse + peek + serialize).
    let hot = &mix.hot[0];
    let mut group = c.benchmark_group("serve_http");
    group.sample_size(10);
    group.bench_function("roundtrip_hit", |b| {
        b.iter(|| std::hint::black_box(client.query(hot).unwrap().status))
    });
    group.finish();
}

fn write_json_summary(
    report: &LoadReport,
    cache: &egraph_stream::CacheStats,
    burst_coalesced: u64,
    burst_misses: u64,
) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"serve_http\",\n  \"num_nodes\": {NUM_NODES},\n  \
         \"edges_per_snapshot\": {EDGES_PER_SNAPSHOT},\n  \
         \"seed_snapshots\": {SEED_SNAPSHOTS},\n  \"lanes\": {LANES},\n  \
         \"requests\": {},\n  \"mid_run_seals\": {},\n  \
         \"available_parallelism\": {cores},\n  \"qps\": {:.0},\n  \
         \"latency_us\": {{\"p50\": {:.0}, \"p99\": {:.0}, \"p999\": {:.0}, \"max\": {:.0}}},\n  \
         \"latency_asserted\": false,\n  \
         \"outcomes\": {{\"hits\": {}, \"extensions\": {}, \"extended_shared\": {}, \
         \"redimensioned\": {}, \"stable_core_resettled\": {}, \"recomputes\": {}, \
         \"misses\": {}, \"coalesced\": {}}},\n  \
         \"burst\": {{\"size\": {BURST_SIZE}, \"coalesced\": {burst_coalesced}, \
         \"misses\": {burst_misses}, \"coalesced_asserted\": false}},\n  \
         \"notes\": \"open-loop mixed load over real loopback sockets; requests fire on a \
         fixed schedule so queueing delay is included in latency; the ingest lane seals \
         snapshots mid-run, forcing the extension (forward) and stable-core resettle \
         (backward) repair rows; wall-clock numbers and race-dependent burst coalescing are \
         recorded, not asserted, on the single-core build container (hits/extensions/\
         resettles/misses > 0 and recomputes == 0 ARE asserted; the socket-layer test suite \
         asserts exact 1-miss-15-coalesced behavior deterministically via the \
         hold_leader_until_waiters hook)\"\n}}\n",
        report.requests,
        report.seals,
        report.achieved_qps,
        report.p50_us,
        report.p99_us,
        report.p999_us,
        report.max_us,
        cache.hits,
        cache.extensions,
        cache.extended_shared,
        cache.redimensioned,
        cache.stable_core_resettled,
        cache.recomputes,
        cache.misses,
        cache.coalesced,
    );
    let path = "BENCH_serve_http.json";
    std::fs::write(path, &json).expect("write bench summary");
    println!("wrote {path}");
}

criterion_group!(benches, serve_http);
criterion_main!(benches);
