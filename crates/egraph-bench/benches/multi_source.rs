//! MSS — per-source multi-source BFS vs the shared-frontier engine.
//!
//! The per-source loop (`multi_source_bfs`, and the hop strategies of the
//! `Search` builder) costs `O(|E| + |V|)` *per source*; the shared-frontier
//! engine pays it once for the whole source set. Wall clock depends on the
//! pool size of the host, so the bench reports node-expansion counters
//! alongside it: the shared frontier's work stays flat as the source count
//! grows while the per-source loop's grows linearly, at any thread count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egraph_core::bfs::multi_source_shared;
use egraph_core::graph::EvolvingGraph;
use egraph_core::ids::TemporalNode;
use egraph_core::instrument::CountingView;
use egraph_core::par_bfs::{multi_source_bfs, par_multi_source_shared};
use egraph_gen::random::figure5_workload;
use egraph_query::{Search, Strategy};

const SOURCE_COUNTS: [usize; 3] = [4, 16, 64];

fn multi_source(c: &mut Criterion) {
    let graph = figure5_workload(2_000, 8, 20_000, 0x3155);
    let actives = graph.active_nodes();

    let mut group = c.benchmark_group("multi_source");
    group.sample_size(10);

    for count in SOURCE_COUNTS {
        let step = (actives.len() / count).max(1);
        let sources: Vec<TemporalNode> =
            actives.iter().copied().step_by(step).take(count).collect();

        // --- Work counters. ------------------------------------------------
        let loop_view = CountingView::new(&graph);
        let per_source = multi_source_bfs(&loop_view, &sources);
        assert!(per_source.iter().all(|r| r.is_ok()));
        let loop_work = loop_view.counters();

        let shared_view = CountingView::new(&graph);
        let shared = multi_source_shared(&shared_view, &sources).unwrap();
        let shared_work = shared_view.counters();

        // The shared frontier visits each temporal node once overall, the
        // loop once per source that reaches it.
        assert!(
            shared_work.total() <= loop_work.total(),
            "shared frontier must not do more work than the per-source loop"
        );
        println!(
            "multi_source/k{}: node expansions — per-source loop: {}, shared frontier: {} \
             ({:.2}x less work), {} temporal nodes reached",
            sources.len(),
            loop_work.total(),
            shared_work.total(),
            loop_work.total() as f64 / shared_work.total() as f64,
            shared.num_reached(),
        );

        // --- Wall clock. ---------------------------------------------------
        group.bench_with_input(
            BenchmarkId::new("per_source_loop", count),
            &sources,
            |b, sources| {
                b.iter(|| {
                    let maps = multi_source_bfs(&graph, sources);
                    std::hint::black_box(maps.len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("shared_frontier", count),
            &sources,
            |b, sources| {
                b.iter(|| {
                    let map = multi_source_shared(&graph, sources).unwrap();
                    std::hint::black_box(map.num_reached())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("shared_frontier_par", count),
            &sources,
            |b, sources| {
                b.iter(|| {
                    let map = par_multi_source_shared(&graph, sources).unwrap();
                    std::hint::black_box(map.num_reached())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("builder_shared", count),
            &sources,
            |b, sources| {
                b.iter(|| {
                    let result = Search::from_sources(sources.iter().copied())
                        .strategy(Strategy::SharedFrontier)
                        .run(&graph)
                        .unwrap();
                    std::hint::black_box(result.num_reached())
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, multi_source);
criterion_main!(benches);
