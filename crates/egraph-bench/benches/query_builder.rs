//! QB — overhead and strategy dispatch of the unified `Search` builder.
//!
//! The builder is a thin layer over the engines: a `Search` run must cost the
//! same as calling the corresponding free function directly, and the three
//! strategies must be selectable without changing the query text. This bench
//! pins the builder overhead (direct `bfs` vs `Search::run`) and the windowed
//! path (view composition + coordinate remapping).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egraph_bench::alg_comparison_workload;
use egraph_core::bfs::bfs;
use egraph_query::{Search, Strategy};

fn query_builder(c: &mut Criterion) {
    let (graph, root) = alg_comparison_workload(400, 0x9B1D);

    let mut group = c.benchmark_group("query_builder");
    group.sample_size(10);

    group.bench_function("direct_bfs", |b| {
        b.iter(|| std::hint::black_box(bfs(&graph, root).unwrap().num_reached()))
    });

    for (label, strategy) in [
        ("search_serial", Strategy::Serial),
        ("search_parallel", Strategy::Parallel),
        ("search_algebraic", Strategy::Algebraic),
    ] {
        group.bench_with_input(BenchmarkId::new(label, 400), &strategy, |b, &strategy| {
            b.iter(|| {
                let result = Search::from(root).strategy(strategy).run(&graph).unwrap();
                std::hint::black_box(result.num_reached())
            })
        });
    }

    group.bench_function("search_windowed_suffix", |b| {
        b.iter(|| {
            let result = Search::from(root)
                .window(root.time.0..)
                .run(&graph)
                .unwrap();
            std::hint::black_box(result.num_reached())
        })
    });

    group.bench_function("search_backward", |b| {
        b.iter(|| {
            let result = Search::from(root).backward().run(&graph).unwrap();
            std::hint::black_box(result.num_reached())
        })
    });

    group.finish();
}

criterion_group!(benches, query_builder);
criterion_main!(benches);
