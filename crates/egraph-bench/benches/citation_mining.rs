//! SEC5 — the citation-network application: influence sets, influencer sets,
//! communities and the whole-network influence ranking on a synthetic
//! citation corpus.
//!
//! The paper describes this application qualitatively; the benchmark pins
//! down the cost of each mining primitive so the library's users know what a
//! per-author query versus a whole-corpus ranking costs.

use criterion::{criterion_group, criterion_main, Criterion};
use egraph_bench::citation_workload;
use egraph_citation::community::community_of;
use egraph_citation::influence::{influence_set, influencer_set};
use egraph_citation::model::CitationNetwork;
use egraph_citation::rank::{rank_by_influence, top_influencers};
use egraph_gen::citation::synthetic_citation_corpus;

fn citation_mining(c: &mut Criterion) {
    let corpus = synthetic_citation_corpus(&citation_workload());
    let network = CitationNetwork::from_corpus(&corpus);

    // Pick the most-cited author, so the queries do real work.
    let counts = network.citation_counts();
    let star = counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .map(|(a, _)| egraph_core::ids::NodeId(a as u32))
        .expect("corpus is non-empty");
    let epoch = network.active_epochs(star)[0];

    let mut group = c.benchmark_group("citation_mining");
    group.sample_size(10);

    group.bench_function("influence_set_T", |b| {
        b.iter(|| std::hint::black_box(influence_set(&network, star, epoch).unwrap().len()))
    });

    group.bench_function("influencer_set_T_inverse", |b| {
        let late_epoch = *network.active_epochs(star).last().unwrap();
        b.iter(|| std::hint::black_box(influencer_set(&network, star, late_epoch).unwrap().len()))
    });

    group.bench_function("community_of_author", |b| {
        b.iter(|| std::hint::black_box(community_of(&network, star, epoch).unwrap().len()))
    });

    group.bench_function("rank_all_authors_parallel", |b| {
        b.iter(|| std::hint::black_box(rank_by_influence(&network).len()))
    });

    group.bench_function("top_10_influencers", |b| {
        b.iter(|| std::hint::black_box(top_influencers(&network, 10).len()))
    });

    group.bench_function("network_construction", |b| {
        b.iter(|| std::hint::black_box(CitationNetwork::from_corpus(&corpus).num_citations()))
    });

    group.finish();
}

criterion_group!(benches, citation_mining);
criterion_main!(benches);
