//! FVH — the dedicated earliest-arrival sweep vs the hop-BFS derivation.
//!
//! `SearchResult::earliest_arrival` on a hop payload derives foremost times
//! from the full `O(|E| + |V|)` temporal-node expansion of Algorithm 1 —
//! causal edges included. `Strategy::Foremost` answers the same arrival-only
//! query with the `O(|Ẽ| + N·n)` time-ordered sweep, which never enumerates
//! causal edges or re-checks activeness. Wall clock varies with the host and
//! pool size and would under-report the asymptotic gap, so this bench
//! also reports *node-expansion counters* from `CountingView` and asserts the
//! sweep does strictly less graph work than the hop-BFS derivation on every
//! workload size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egraph_bench::first_active_node;
use egraph_core::bfs::bfs;
use egraph_core::foremost::earliest_arrival;
use egraph_core::ids::NodeId;
use egraph_core::instrument::CountingView;
use egraph_gen::random::figure5_workload;
use egraph_query::{Search, Strategy};

/// (nodes, snapshots, edges) per sweep step.
const SIZES: [(usize, usize, usize); 3] =
    [(500, 8, 4_000), (1_500, 10, 15_000), (4_000, 12, 48_000)];

fn foremost_vs_hops(c: &mut Criterion) {
    let mut group = c.benchmark_group("foremost_vs_hops");
    group.sample_size(10);

    for (num_nodes, num_timestamps, num_edges) in SIZES {
        let graph = figure5_workload(num_nodes, num_timestamps, num_edges, 0xF03E);
        let root = first_active_node(&graph);

        // --- Work counters: the acceptance check of this bench. -----------
        let hop_view = CountingView::new(&graph);
        let hop_map = bfs(&hop_view, root).unwrap();
        // The derivation step itself reads only the finished map.
        let derived = hop_map.earliest_reach_times();
        let hop_work = hop_view.counters();

        let sweep_view = CountingView::new(&graph);
        let swept = earliest_arrival(&sweep_view, root);
        let sweep_work = sweep_view.counters();

        // Same answers...
        for &(v, t) in &derived {
            assert_eq!(swept.arrival(v), Some(t), "node {v:?}");
        }
        assert_eq!(derived.len(), swept.num_reachable());
        // ...for strictly less graph work.
        assert!(
            sweep_work.total() < hop_work.total(),
            "sweep must do strictly less work: sweep {} vs hop {}",
            sweep_work.total(),
            hop_work.total()
        );
        println!(
            "foremost_vs_hops/n{num_nodes}xt{num_timestamps}: node expansions \
             (calls + delivered) — hop-BFS derivation: {} + {} = {}, foremost sweep: \
             {} + {} = {} ({:.2}x less work)",
            hop_work.expansions(),
            hop_work.neighbors_delivered,
            hop_work.total(),
            sweep_work.expansions(),
            sweep_work.neighbors_delivered,
            sweep_work.total(),
            hop_work.total() as f64 / sweep_work.total() as f64,
        );

        // --- Wall clock, for completeness. --------------------------------
        group.bench_with_input(
            BenchmarkId::new("hop_bfs_derive", num_nodes),
            &num_nodes,
            |b, _| {
                b.iter(|| {
                    let result = Search::from(root).run(&graph).unwrap();
                    std::hint::black_box(result.earliest_arrival(NodeId(0)))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("foremost_sweep", num_nodes),
            &num_nodes,
            |b, _| {
                b.iter(|| {
                    let result = Search::from(root)
                        .strategy(Strategy::Foremost)
                        .run(&graph)
                        .unwrap();
                    std::hint::black_box(result.arrival(NodeId(0)))
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, foremost_vs_hops);
criterion_main!(benches);
