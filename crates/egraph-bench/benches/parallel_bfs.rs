//! ABL-B — serial Algorithm 1 versus the frontier-parallel variant on the
//! **real** thread pool, plus the multi-source patterns.
//!
//! Until PR 5 the in-tree rayon shim ran sequentially and every number here
//! was a placeholder. This bench now makes (and checks) the honest claims:
//!
//! 1. **Correctness is schedule-independent.** The parallel engine's
//!    `DistanceMap` is asserted bit-for-bit identical to serial BFS at every
//!    measured pool size, and its `CountingView` work counters are asserted
//!    *equal* to the serial engine's — parallelism changes who expands a
//!    frontier node, never how much graph work is done.
//! 2. **Wall-clock speedup is real — when the hardware has cores.** On a
//!    host with ≥ 2 available cores the bench *asserts* ≥ 1.5× speedup over
//!    serial BFS at some measured pool size on the large-frontier workload.
//!    On a single-core host (this repo's build container pins 1 CPU) no
//!    speedup is physically possible; the bench then records the measured
//!    ratios without asserting, and says so in the committed
//!    `BENCH_parallel.json` (`speedup_asserted: false`).
//! 3. **The threshold is tuned, not folklore.** A sweep over
//!    `parallel_threshold` values on the same workload is recorded in the
//!    JSON so the default (256) is backed by a documented tuning run.
//!
//! Traversals run on the PR 4 `CsrAdjacency` layout — contiguous per-
//! snapshot pools — which is what makes chunked parallel expansion hit
//! sequential memory.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egraph_bench::parallel_bfs_workload;
use egraph_core::csr::CsrAdjacency;
use egraph_core::graph::EvolvingGraph;
use egraph_core::instrument::CountingView;
use egraph_query::{Search, Strategy};
use rayon::ThreadPoolBuilder;

/// Pool sizes measured (1 = inline execution, the serial baseline of the
/// schedule dimension).
const POOL_SIZES: [usize; 3] = [1, 2, 4];
/// Thresholds swept for the tuning record.
const THRESHOLDS: [usize; 4] = [64, 256, 1024, 4096];
/// Assertion bar for multi-core hosts.
const REQUIRED_SPEEDUP: f64 = 1.5;

struct ScaleReport {
    scale: usize,
    temporal_nodes: usize,
    static_edges: usize,
    serial_ns: f64,
    /// `(pool_threads, parallel_ns, speedup_vs_serial)`.
    pools: Vec<(usize, f64, f64)>,
    /// `(threshold, parallel_ns)` at the widest measured pool.
    thresholds: Vec<(usize, f64)>,
    work_counters: u64,
}

/// Minimum wall-clock over `samples` timed runs of `f` (minimum, not mean:
/// scheduler preemption only ever adds time, so the minimum is the most
/// noise-robust estimator for the speedup assertion on shared CI runners).
fn min_time_ns<T>(samples: usize, reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(f());
        }
        best = best.min(start.elapsed().as_nanos() as f64 / reps as f64);
    }
    best
}

fn parallel_bfs_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_bfs");
    group.sample_size(10);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut reports: Vec<ScaleReport> = Vec::new();

    for &scale in &[1usize, 2] {
        let (nested, root) = parallel_bfs_workload(scale, 0xB0B + scale as u64);
        let graph = CsrAdjacency::from_graph(&nested);
        let temporal_nodes = graph.num_nodes() * graph.num_timestamps();

        let serial_query = Search::from(root);
        let parallel_query = Search::from(root).strategy(Strategy::Parallel);

        // --- 1. Correctness: identical maps and identical graph work. -----
        let serial_result = serial_query.run(&graph).unwrap();
        {
            let serial_view = CountingView::new(&graph);
            serial_query.run(&serial_view).unwrap();
            let serial_work = serial_view.counters().total();

            let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
            let parallel_view = CountingView::new(&graph);
            let parallel_result = pool.install(|| parallel_query.run(&parallel_view)).unwrap();
            let parallel_work = parallel_view.counters().total();

            assert_eq!(
                serial_result.distance_map().as_flat_slice(),
                parallel_result.distance_map().as_flat_slice(),
                "scale {scale}: parallel distances must equal serial"
            );
            assert_eq!(
                serial_work, parallel_work,
                "scale {scale}: parallel expansion must do identical graph work"
            );

            // --- and the wall-clock trajectory. ---------------------------
            let serial_ns = min_time_ns(5, 3, || serial_query.run(&graph).unwrap().num_reached());
            let pools: Vec<(usize, f64, f64)> = POOL_SIZES
                .iter()
                .map(|&threads| {
                    let pool = ThreadPoolBuilder::new()
                        .num_threads(threads)
                        .build()
                        .unwrap();
                    let ns = min_time_ns(5, 3, || {
                        pool.install(|| parallel_query.run(&graph).unwrap().num_reached())
                    });
                    (threads, ns, serial_ns / ns)
                })
                .collect();

            let widest = ThreadPoolBuilder::new()
                .num_threads(*POOL_SIZES.last().unwrap())
                .build()
                .unwrap();
            let thresholds: Vec<(usize, f64)> = THRESHOLDS
                .iter()
                .map(|&threshold| {
                    let query = Search::from(root)
                        .strategy(Strategy::Parallel)
                        .parallel_threshold(threshold);
                    let ns = min_time_ns(5, 3, || {
                        widest.install(|| query.run(&graph).unwrap().num_reached())
                    });
                    (threshold, ns)
                })
                .collect();

            println!(
                "parallel_bfs/scale{scale}: serial {:.2} ms; pools {}; thresholds {}",
                serial_ns / 1e6,
                pools
                    .iter()
                    .map(|&(t, ns, s)| format!("{t}thr={:.2}ms({s:.2}x)", ns / 1e6))
                    .collect::<Vec<_>>()
                    .join(" "),
                thresholds
                    .iter()
                    .map(|&(th, ns)| format!("{th}={:.2}ms", ns / 1e6))
                    .collect::<Vec<_>>()
                    .join(" "),
            );

            reports.push(ScaleReport {
                scale,
                temporal_nodes,
                static_edges: graph.num_static_edges(),
                serial_ns,
                pools,
                thresholds,
                work_counters: serial_work,
            });
        }

        // Criterion entries for the wall-clock trajectory (ambient pool).
        group.bench_with_input(BenchmarkId::new("serial", scale), &scale, |b, _| {
            b.iter(|| {
                let result = serial_query.run(&graph).unwrap();
                std::hint::black_box(result.num_reached())
            })
        });
        group.bench_with_input(
            BenchmarkId::new("parallel_frontier", scale),
            &scale,
            |b, _| {
                b.iter(|| {
                    let result = parallel_query.run(&graph).unwrap();
                    std::hint::black_box(result.num_reached())
                })
            },
        );

        // Multi-source: 32 roots, each a full BFS, distributed over the pool.
        let roots: Vec<_> = graph.active_nodes().into_iter().take(32).collect();
        group.bench_with_input(
            BenchmarkId::new("multi_source_32", scale),
            &scale,
            |b, _| {
                b.iter(|| {
                    let result = Search::from_sources(roots.iter().copied())
                        .strategy(Strategy::Parallel)
                        .run(&graph)
                        .unwrap();
                    std::hint::black_box(result.num_sources())
                })
            },
        );
    }
    group.finish();

    // --- 2. The honest speedup claim. ------------------------------------
    let speedup_asserted = cores >= 2;
    let best_speedup = reports
        .iter()
        .flat_map(|r| r.pools.iter().filter(|&&(t, _, _)| t >= 2))
        .map(|&(_, _, s)| s)
        .fold(0.0f64, f64::max);
    if speedup_asserted {
        assert!(
            best_speedup >= REQUIRED_SPEEDUP,
            "with {cores} cores available, the parallel frontier must reach \
             {REQUIRED_SPEEDUP}x over serial BFS at some pool size on the large-frontier \
             workload; best measured {best_speedup:.2}x"
        );
    } else {
        println!(
            "parallel_bfs: single-core host ({cores} core available) — recording ratios \
             (best {best_speedup:.2}x) without asserting the multi-core speedup claim"
        );
    }

    write_json_summary(&reports, cores, speedup_asserted, best_speedup);
}

fn write_json_summary(
    reports: &[ScaleReport],
    cores: usize,
    speedup_asserted: bool,
    best_speedup: f64,
) {
    let mut rows = String::new();
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        let pools = r
            .pools
            .iter()
            .map(|&(t, ns, s)| {
                format!("{{\"threads\": {t}, \"bfs_ns\": {ns:.0}, \"speedup_vs_serial\": {s:.2}}}")
            })
            .collect::<Vec<_>>()
            .join(", ");
        let thresholds = r
            .thresholds
            .iter()
            .map(|&(th, ns)| format!("{{\"threshold\": {th}, \"bfs_ns\": {ns:.0}}}"))
            .collect::<Vec<_>>()
            .join(", ");
        rows.push_str(&format!(
            "    {{\"scale\": {}, \"temporal_nodes\": {}, \"static_edges\": {}, \
             \"serial_bfs_ns\": {:.0}, \"work_counters\": {}, \"pools\": [{pools}], \
             \"threshold_sweep\": [{thresholds}]}}",
            r.scale, r.temporal_nodes, r.static_edges, r.serial_ns, r.work_counters,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"parallel_bfs\",\n  \"available_parallelism\": {cores},\n  \
         \"speedup_asserted\": {speedup_asserted},\n  \"required_speedup\": {REQUIRED_SPEEDUP},\n  \
         \"best_speedup_measured\": {best_speedup:.2},\n  \
         \"notes\": \"serial = Strategy::Serial on CsrAdjacency; pools = Strategy::Parallel \
         under an explicit ThreadPoolBuilder of N threads (1 = inline); work_counters are \
         CountingView totals, asserted identical between serial and parallel; distances \
         asserted bit-for-bit identical; on hosts with >= 2 cores the bench asserts \
         best speedup >= required_speedup, on single-core hosts it records ratios only \
         (no speedup is physically possible there); threshold_sweep documents the \
         parallel_threshold tuning run at the widest pool\",\n  \"scales\": [\n{rows}\n  ]\n}}\n"
    );
    let path = "BENCH_parallel.json";
    std::fs::write(path, &json).expect("write bench summary");
    println!("wrote {path}");
}

criterion_group!(benches, parallel_bfs_bench);
criterion_main!(benches);
