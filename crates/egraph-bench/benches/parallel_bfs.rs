//! ABL-B — serial Algorithm 1 versus the rayon frontier-parallel variant and
//! the multi-source (one BFS per root, roots in parallel) pattern.
//!
//! The paper runs single-core; this ablation quantifies what the level-
//! synchronous structure of Algorithm 1 buys on a multicore host. Wide,
//! shallow random graphs favour the parallel frontier; the multi-source
//! pattern is the citation-mining access pattern of Section V. All queries go
//! through the unified `Search` builder so the ablation also covers the
//! dispatch overhead of the query layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egraph_bench::parallel_bfs_workload;
use egraph_core::graph::EvolvingGraph;
use egraph_query::{Search, Strategy};

fn parallel_bfs_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_bfs");
    group.sample_size(10);

    for &scale in &[1usize, 2] {
        let (graph, root) = parallel_bfs_workload(scale, 0xB0B + scale as u64);

        group.bench_with_input(BenchmarkId::new("serial", scale), &scale, |b, _| {
            b.iter(|| {
                let result = Search::from(root).run(&graph).unwrap();
                std::hint::black_box(result.num_reached())
            })
        });

        group.bench_with_input(
            BenchmarkId::new("parallel_frontier", scale),
            &scale,
            |b, _| {
                b.iter(|| {
                    let result = Search::from(root)
                        .strategy(Strategy::Parallel)
                        .run(&graph)
                        .unwrap();
                    std::hint::black_box(result.num_reached())
                })
            },
        );

        // Multi-source: 32 roots, each a full BFS, distributed over the pool.
        let roots: Vec<_> = graph.active_nodes().into_iter().take(32).collect();
        group.bench_with_input(
            BenchmarkId::new("multi_source_32", scale),
            &scale,
            |b, _| {
                b.iter(|| {
                    let result = Search::from_sources(roots.iter().copied())
                        .run(&graph)
                        .unwrap();
                    std::hint::black_box(result.num_sources())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, parallel_bfs_bench);
criterion_main!(benches);
