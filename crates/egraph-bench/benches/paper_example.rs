//! FIG1-3 / FIG4 — micro-benchmarks on the paper's worked example: the
//! Figure 1 graph, its BFS traces, its temporal-path enumeration, the
//! Theorem 1 equivalent static graph and the Section III-C block matrices.
//!
//! These are not performance claims from the paper; they exist so the worked
//! example stays cheap (regressions in constant factors on tiny graphs are
//! caught here) and so `cargo bench` exercises every code path the figures
//! rely on.

use criterion::{criterion_group, criterion_main, Criterion};
use egraph_core::bfs::{bfs, bfs_with_parents};
use egraph_core::examples::paper_figure1;
use egraph_core::ids::TemporalNode;
use egraph_core::paths::enumerate_paths;
use egraph_core::static_equiv::EquivalentStaticGraph;
use egraph_matrix::block::BlockAdjacency;
use egraph_matrix::path_count::total_path_count;

fn paper_example(c: &mut Criterion) {
    let g = paper_figure1();
    let root_t1 = TemporalNode::from_raw(0, 0);
    let root_t2 = TemporalNode::from_raw(0, 1);
    let target = TemporalNode::from_raw(2, 2);

    let mut group = c.benchmark_group("paper_example");

    group.bench_function("fig3_bfs_from_1_t2", |b| {
        b.iter(|| std::hint::black_box(bfs(&g, root_t2).unwrap().num_reached()))
    });

    group.bench_function("fig2_bfs_with_parents_from_1_t1", |b| {
        b.iter(|| {
            let map = bfs_with_parents(&g, root_t1).unwrap();
            std::hint::black_box(map.path_to(target).unwrap().len())
        })
    });

    group.bench_function("fig2_enumerate_temporal_paths", |b| {
        b.iter(|| std::hint::black_box(enumerate_paths(&g, root_t1, target, 4).len()))
    });

    group.bench_function("fig4_equivalent_static_graph_build", |b| {
        b.iter(|| std::hint::black_box(EquivalentStaticGraph::build(&g).num_edges()))
    });

    group.bench_function("fig4_block_matrix_build_and_dense_an", |b| {
        b.iter(|| {
            let blocks = BlockAdjacency::from_graph(&g);
            let (an, labels) = blocks.to_dense_an();
            std::hint::black_box((an.count_nonzeros(), labels.len()))
        })
    });

    group.bench_function("fig4_matrix_path_count", |b| {
        b.iter(|| std::hint::black_box(total_path_count(&g, root_t1, target)))
    });

    group.finish();
}

criterion_group!(benches, paper_example);
criterion_main!(benches);
