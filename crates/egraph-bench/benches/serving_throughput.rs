//! SERVE — the zero-copy serve path: cache-hit cost, concurrent-reader
//! scaling, and the CSR-flattened BFS hot path.
//!
//! Three claims of the serving layer are pinned here:
//!
//! 1. **Cache hits are `O(1)`, independent of graph size.** A hit is an
//!    `Arc` clone of the cached materialisation — verified structurally
//!    (`Arc::ptr_eq` across hits: zero-copy, no re-materialisation) and by
//!    cost: per-hit latency must stay far below the cost of deep-cloning
//!    the result (what every hit paid before the `Arc` return), and must
//!    stay flat while the history grows 8 → 32 snapshots (the deep clone
//!    grows linearly with it).
//! 2. **Readers scale.** `QueryCache::execute(&self, ...)` takes shard
//!    *read* locks on the hit path; aggregate hit throughput with several
//!    threads on one shared cache is recorded per history length.
//! 3. **The CSR layout does no more graph work than the nested layout.**
//!    `CountingView` counters for a full BFS must be identical on
//!    `CsrAdjacency` and `AdjacencyListGraph` (same traversal, different
//!    memory layout) — asserted — and the wall-clock ratio is recorded.
//! 4. **Hits stay cheap while the pool is busy (mixed workload).** With the
//!    rayon shim executing on a real thread pool (PR 5), a storm thread
//!    drives continuous cache *misses* whose `Strategy::Parallel` traversals
//!    run on the pool, while the hit thread keeps serving the standing
//!    query. Hits never take a write lock and never touch the graph, so on
//!    a host with ≥ 2 cores their latency must stay within a small factor
//!    of the solo measurement — asserted there, recorded (not asserted) on
//!    the single-core build container where timeslicing inflates every
//!    thread's wall clock.
//!
//! Results land in a machine-readable `BENCH_serving.json` (committed, like
//! `BENCH_incremental.json`) so the serve-path trajectory is visible per PR.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egraph_bench::first_active_node;
use egraph_core::adjacency::AdjacencyListGraph;
use egraph_core::bfs::bfs;
use egraph_core::graph::EvolvingGraph;
use egraph_core::ids::NodeId;
use egraph_core::instrument::CountingView;
use egraph_query::Search;
use egraph_stream::{LiveGraph, QueryCache};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const NUM_NODES: usize = 1_200;
const EDGES_PER_SNAPSHOT: usize = 3_000;
const HISTORIES: [usize; 3] = [8, 16, 32];
const HIT_REPS: usize = 20_000;
const READER_THREADS: [usize; 3] = [1, 2, 4];

struct SizeReport {
    history: usize,
    hit_ns: f64,
    deep_clone_ns: f64,
    nested_bfs_ns: f64,
    csr_bfs_ns: f64,
    bfs_work: u64,
    reader_throughput: Vec<(usize, f64)>,
    /// `(hit_ns under concurrent pool recomputes, recomputes completed)` —
    /// measured for the largest history only.
    mixed: Option<(f64, u64)>,
}

fn random_edges(history: usize, seed: u64) -> Vec<Vec<(u32, u32)>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..history)
        .map(|_| {
            let mut batch = Vec::with_capacity(EDGES_PER_SNAPSHOT);
            while batch.len() < EDGES_PER_SNAPSHOT {
                let u = rng.gen_range(0..NUM_NODES) as u32;
                let v = rng.gen_range(0..NUM_NODES) as u32;
                if u != v {
                    batch.push((u, v));
                }
            }
            batch
        })
        .collect()
}

fn build_live(batches: &[Vec<(u32, u32)>]) -> LiveGraph {
    let mut live = LiveGraph::directed(NUM_NODES);
    for (label, batch) in batches.iter().enumerate() {
        for &(u, v) in batch {
            live.insert(NodeId(u), NodeId(v)).unwrap();
        }
        live.seal_snapshot(label as i64).unwrap();
    }
    live
}

fn build_nested(batches: &[Vec<(u32, u32)>]) -> AdjacencyListGraph {
    let mut g = AdjacencyListGraph::directed_with_unit_times(NUM_NODES, batches.len());
    for (t, batch) in batches.iter().enumerate() {
        for &(u, v) in batch {
            g.add_edge(
                NodeId(u),
                NodeId(v),
                egraph_core::ids::TimeIndex::from_index(t),
            )
            .unwrap();
        }
    }
    g
}

/// Mean nanoseconds per call of `f` over `reps` calls.
fn time_per_call<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() as f64 / reps as f64
}

fn serving_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_throughput");
    group.sample_size(10);

    let mut reports: Vec<SizeReport> = Vec::new();

    for history in HISTORIES {
        let batches = random_edges(history, 0x5E21E + history as u64);
        let live = build_live(&batches);
        let nested = build_nested(&batches);
        let root = first_active_node(live.graph());
        let cache = QueryCache::new();
        let query = Search::from(root);
        let baseline = cache.execute(&live, &query).unwrap();

        // --- 1. Hit cost: zero-copy, O(1), flat across histories. ---------
        let hit_ns = time_per_call(HIT_REPS, || {
            let served = cache.execute(&live, &query).unwrap();
            assert!(
                Arc::ptr_eq(&served, &baseline),
                "a hit must serve the shared materialisation, not a copy"
            );
            served
        });
        // What every hit cost before the Arc return: a deep result clone.
        // Enough reps to ride out scheduler noise — this runs in CI, and a
        // wall-clock assertion that can fail on a preempted runner is worse
        // than none (observed margin is ~8–26x against the 2x asserted).
        let deep_clone_ns = time_per_call(2_000, || (*baseline).clone());
        assert!(
            hit_ns * 2.0 < deep_clone_ns,
            "history {history}: an Arc hit ({hit_ns:.0} ns) must be far cheaper than \
             the deep clone it replaced ({deep_clone_ns:.0} ns)"
        );

        // --- 2. Concurrent readers on one shared cache. -------------------
        let reader_throughput: Vec<(usize, f64)> = READER_THREADS
            .iter()
            .map(|&threads| {
                let per_thread = HIT_REPS / threads;
                let start = Instant::now();
                std::thread::scope(|scope| {
                    for _ in 0..threads {
                        let (live, cache, query) = (&live, &cache, &query);
                        scope.spawn(move || {
                            for _ in 0..per_thread {
                                std::hint::black_box(cache.execute(live, query).unwrap());
                            }
                        });
                    }
                });
                let secs = start.elapsed().as_secs_f64();
                (threads, (per_thread * threads) as f64 / secs)
            })
            .collect();

        // --- 3. CSR vs nested: identical graph work, faster wall clock. ---
        let nested_view = CountingView::new(&nested);
        let nested_map = bfs(&nested_view, root).unwrap();
        let nested_work = nested_view.counters().total();

        let csr = live.graph();
        let csr_view = CountingView::new(csr);
        let csr_map = bfs(&csr_view, root).unwrap();
        let csr_work = csr_view.counters().total();

        assert_eq!(
            csr_map.as_flat_slice(),
            nested_map.as_flat_slice(),
            "history {history}: CSR and nested layouts must give identical distances"
        );
        assert!(
            csr_work <= nested_work,
            "history {history}: the CSR layout must do no more graph work \
             ({csr_work}) than the nested layout ({nested_work})"
        );

        let bfs_reps = 20;
        let nested_bfs_ns = time_per_call(bfs_reps, || bfs(&nested, root).unwrap().num_reached());
        let csr_bfs_ns = time_per_call(bfs_reps, || bfs(csr, root).unwrap().num_reached());

        // --- 4. Mixed workload: hits while the pool runs recomputes. ------
        // A storm cache with a tiny LRU bound cycles more backward-Parallel
        // queries than it can hold, so every execution is a genuine miss
        // whose frontier-parallel traversal lands on the thread pool; the
        // hit thread keeps serving the standing query from the main cache
        // the whole time. Largest history only (the most traversal work).
        let mixed = (history == *HISTORIES.last().unwrap()).then(|| {
            use egraph_query::Strategy;
            use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
            let storm_cache = QueryCache::with_capacity(8);
            let storm_roots: Vec<_> = live
                .graph()
                .active_nodes()
                .into_iter()
                .step_by(37)
                .take(64)
                .collect();
            let stop = AtomicBool::new(false);
            let recomputes = AtomicU64::new(0);
            let hit_ns_mixed = std::thread::scope(|scope| {
                scope.spawn(|| {
                    let mut i = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let query = Search::from(storm_roots[i % storm_roots.len()])
                            .backward()
                            .strategy(Strategy::Parallel)
                            .parallel_threshold(64);
                        std::hint::black_box(storm_cache.execute(&live, &query).unwrap());
                        recomputes.fetch_add(1, Ordering::Relaxed);
                        i += 1;
                    }
                });
                // 10x the solo reps so the measurement window spans many
                // full pool traversals rather than a sliver of one.
                let ns = time_per_call(HIT_REPS * 10, || {
                    let served = cache.execute(&live, &query).unwrap();
                    debug_assert!(Arc::ptr_eq(&served, &baseline));
                    served
                });
                stop.store(true, Ordering::Relaxed);
                ns
            });
            (hit_ns_mixed, recomputes.load(Ordering::Relaxed))
        });
        if let Some((mixed_ns, storms)) = mixed {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            println!(
                "serving_throughput/h{history}: mixed hits {mixed_ns:.0} ns \
                 (solo {hit_ns:.0} ns) alongside {storms} pool recomputes \
                 ({cores} cores available)"
            );
            assert!(storms > 0, "the storm thread must complete recomputes");
            if cores >= 2 {
                // The flatness claim is only physical with a core to spare:
                // hits take no write lock and no graph work, so concurrent
                // traversal load must not move them more than noise.
                assert!(
                    mixed_ns < hit_ns * 6.0 + 1_000.0,
                    "hit latency must stay flat under pool recomputes: \
                     solo {hit_ns:.0} ns vs mixed {mixed_ns:.0} ns"
                );
            }
        }

        println!(
            "serving_throughput/h{history}: hit {hit_ns:.0} ns vs deep clone \
             {deep_clone_ns:.0} ns ({:.1}x); bfs csr {csr_bfs_ns:.0} ns vs nested \
             {nested_bfs_ns:.0} ns ({:.2}x), work {csr_work} (parity); readers {:?}",
            deep_clone_ns / hit_ns,
            nested_bfs_ns / csr_bfs_ns,
            reader_throughput
                .iter()
                .map(|&(t, hps)| format!("{t}thr={:.1}M/s", hps / 1e6))
                .collect::<Vec<_>>(),
        );
        reports.push(SizeReport {
            history,
            hit_ns,
            deep_clone_ns,
            nested_bfs_ns,
            csr_bfs_ns,
            bfs_work: csr_work,
            reader_throughput,
            mixed,
        });

        // Criterion entries for the wall-clock trajectory.
        group.bench_with_input(BenchmarkId::new("cache_hit", history), &history, |b, _| {
            b.iter(|| std::hint::black_box(cache.execute(&live, &query).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("bfs_csr", history), &history, |b, _| {
            b.iter(|| std::hint::black_box(bfs(csr, root).unwrap().num_reached()))
        });
        group.bench_with_input(BenchmarkId::new("bfs_nested", history), &history, |b, _| {
            b.iter(|| std::hint::black_box(bfs(&nested, root).unwrap().num_reached()))
        });
    }

    group.finish();

    // The flatness claim: while the deep clone grows with the history, the
    // hit must not. Generous slack absorbs timer noise on busy CI hosts.
    let first = &reports[0];
    let last = &reports[reports.len() - 1];
    assert!(
        last.hit_ns < first.hit_ns * 4.0 + 2_000.0,
        "hit cost must stay flat as the history grows 8 -> 32 snapshots: \
         {:.0} ns -> {:.0} ns",
        first.hit_ns,
        last.hit_ns
    );
    // The clone's payload grows 4x (8 -> 32 snapshots); 1.5x leaves head
    // room for allocator amortisation and CI noise while still proving the
    // flatness comparison is non-vacuous.
    assert!(
        last.deep_clone_ns > first.deep_clone_ns * 1.5,
        "sanity: the deep clone a hit used to pay must grow with the history \
         ({:.0} ns -> {:.0} ns), otherwise the flatness assertion is vacuous",
        first.deep_clone_ns,
        last.deep_clone_ns
    );

    write_json_summary(&reports);
}

fn write_json_summary(reports: &[SizeReport]) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows = String::new();
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        let readers = r
            .reader_throughput
            .iter()
            .map(|&(t, hps)| format!("{{\"threads\": {t}, \"hits_per_sec\": {hps:.0}}}"))
            .collect::<Vec<_>>()
            .join(", ");
        let mixed = match r.mixed {
            Some((mixed_ns, storms)) => {
                format!(", \"mixed_hit_ns\": {mixed_ns:.0}, \"mixed_pool_recomputes\": {storms}")
            }
            None => String::new(),
        };
        rows.push_str(&format!(
            "    {{\"history_snapshots\": {}, \"hit_ns\": {:.0}, \"deep_clone_ns\": {:.0}, \
             \"hit_vs_clone_speedup\": {:.1}, \"bfs_nested_ns\": {:.0}, \"bfs_csr_ns\": {:.0}, \
             \"csr_speedup\": {:.2}, \"bfs_work_counters\": {}, \"readers\": [{readers}]{mixed}}}",
            r.history,
            r.hit_ns,
            r.deep_clone_ns,
            r.deep_clone_ns / r.hit_ns,
            r.nested_bfs_ns,
            r.csr_bfs_ns,
            r.nested_bfs_ns / r.csr_bfs_ns,
            r.bfs_work,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"serving_throughput\",\n  \"num_nodes\": {NUM_NODES},\n  \
         \"edges_per_snapshot\": {EDGES_PER_SNAPSHOT},\n  \
         \"available_parallelism\": {cores},\n  \
         \"notes\": \"hit = QueryCache hit (Arc clone); deep_clone = SearchResult deep copy \
         (the pre-Arc per-hit cost); bfs work counters are CountingView totals and are \
         asserted identical across layouts; mixed_hit_ns = hit latency while a storm thread \
         drives continuous Strategy::Parallel recomputes on the thread pool (flatness \
         asserted only on hosts with >= 2 cores; on a single core timeslicing inflates it \
         and the number is recorded unasserted)\",\n  \"sizes\": [\n{rows}\n  ]\n}}\n"
    );
    let path = "BENCH_serving.json";
    std::fs::write(path, &json).expect("write bench summary");
    println!("wrote {path}");
}

criterion_group!(benches, serving_throughput);
criterion_main!(benches);
