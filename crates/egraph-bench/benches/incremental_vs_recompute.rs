//! INC — incremental re-search versus recomputation on a live graph.
//!
//! The `egraph-stream` subsystem claims that after sealing one new snapshot,
//! extending a cached forward search costs work proportional to the *delta*
//! (the new snapshot's edges and touched nodes), while recomputing costs
//! work proportional to the *whole history*. Wall clock alone would
//! under-report the gap on small workloads, so this bench measures graph
//! work with `CountingView` counters, **asserts** the asymptotic claim —
//! extension work must stay flat as the history grows while recompute work
//! grows with it — and emits a machine-readable `BENCH_incremental.json`
//! summary (work counters + speedups per history length) for the perf
//! trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egraph_bench::first_active_node;
use egraph_core::bfs::{backward_bfs, bfs, multi_source_shared};
use egraph_core::foremost::earliest_arrival;
use egraph_core::ids::{TemporalNode, TimeIndex};
use egraph_core::instrument::CountingView;
use egraph_core::resume::{ResumableBfs, ResumableForemost, ResumableShared, StableCoreResettle};
use egraph_core::window::TimeWindowView;
use egraph_query::Search;
use egraph_stream::{EdgeEvent, LiveGraph, QueryCache};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Node universe and per-snapshot edge budget are fixed; only the history
/// length varies, so any growth in the "extend" series would falsify the
/// delta-proportionality claim.
const NUM_NODES: usize = 1_500;
const EDGES_PER_SNAPSHOT: usize = 4_000;
const HISTORIES: [usize; 3] = [8, 16, 32];

struct SizeReport {
    history: usize,
    hop_extend_work: u64,
    hop_recompute_work: u64,
    foremost_extend_work: u64,
    foremost_recompute_work: u64,
}

/// Work counters for the three matrix rows this repo closed last: the
/// shared-frontier extension, the bounded-window re-dimension and the
/// effective-reversal stable-core resettle, each against the from-scratch
/// run the cache would otherwise pay.
struct MatrixReport {
    history: usize,
    shared_extend_work: u64,
    shared_recompute_work: u64,
    redimension_work: u64,
    windowed_recompute_work: u64,
    resettle_work: u64,
    backward_recompute_work: u64,
}

fn build_live(history: usize, seed: u64) -> LiveGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut live = LiveGraph::directed(NUM_NODES);
    for t in 0..history {
        seal_random_snapshot(&mut rng, &mut live, t as i64);
    }
    live
}

fn seal_random_snapshot(rng: &mut SmallRng, live: &mut LiveGraph, label: i64) {
    let mut added = 0usize;
    while added < EDGES_PER_SNAPSHOT {
        let u = rng.gen_range(0..NUM_NODES) as u32;
        let v = rng.gen_range(0..NUM_NODES) as u32;
        if u == v {
            continue;
        }
        live.apply(EdgeEvent::insert(u, v)).unwrap();
        added += 1;
    }
    live.seal_snapshot(label).unwrap();
}

fn incremental_vs_recompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_vs_recompute");
    group.sample_size(10);

    let mut reports: Vec<SizeReport> = Vec::new();
    let mut matrix_reports: Vec<MatrixReport> = Vec::new();

    for history in HISTORIES {
        // History with `history` sealed snapshots, then one sealed delta.
        let mut live = build_live(history, 0x1ACE + history as u64);
        let root = first_active_node(live.graph());
        let mut hop_state = ResumableBfs::start(live.graph(), root).unwrap();
        let mut foremost_state = ResumableForemost::start(live.graph(), root);

        // The matrix-row prefixes, captured before the delta seals: a
        // two-source shared frontier, the full-prefix map a bounded window
        // would have cached, and a backward map rooted in the *last* prefix
        // snapshot (the shape an effective reversal retains).
        let first_touched = live.touched_at(root.time);
        let sources = [
            root,
            TemporalNode::new(first_touched[first_touched.len() / 2], root.time),
        ];
        let mut shared_state = ResumableShared::start(live.graph(), &sources).unwrap();
        let prefix_map = bfs(live.graph(), root).unwrap();
        let back_root = TemporalNode::new(
            *live
                .touched_at(TimeIndex::from_index(history - 1))
                .first()
                .unwrap(),
            TimeIndex::from_index(history - 1),
        );
        let back_map = backward_bfs(live.graph(), back_root).unwrap();
        let mut resettle_core = StableCoreResettle::from_reached_times(
            NUM_NODES,
            history,
            back_map.reached().into_iter().map(|(tn, _)| tn),
        );

        let mut rng = SmallRng::seed_from_u64(0xDE17A + history as u64);
        seal_random_snapshot(&mut rng, &mut live, history as i64);
        let t_new = egraph_core::ids::TimeIndex::from_index(history);
        let touched = live.touched_at(t_new).to_vec();

        // --- Work counters: the acceptance check of this bench. -----------
        let extend_view = CountingView::new(live.graph());
        hop_state.extend_snapshot(&extend_view, &touched).unwrap();
        let hop_extend_work = extend_view.counters().total();

        let recompute_view = CountingView::new(live.graph());
        let scratch = bfs(&recompute_view, root).unwrap();
        let hop_recompute_work = recompute_view.counters().total();

        assert_eq!(
            hop_state.to_distance_map().as_flat_slice(),
            scratch.as_flat_slice(),
            "extension must equal recomputation (history {history})"
        );
        assert!(
            hop_extend_work * 4 < hop_recompute_work,
            "history {history}: extension ({hop_extend_work}) must do far less graph \
             work than recomputation ({hop_recompute_work})"
        );

        let extend_view = CountingView::new(live.graph());
        foremost_state
            .extend_snapshot(&extend_view, &touched)
            .unwrap();
        let foremost_extend_work = extend_view.counters().total();

        let recompute_view = CountingView::new(live.graph());
        let swept = earliest_arrival(&recompute_view, root);
        let foremost_recompute_work = recompute_view.counters().total();

        assert_eq!(
            foremost_state.to_result().arrivals(),
            swept.arrivals(),
            "foremost extension must equal recomputation (history {history})"
        );
        assert!(
            foremost_extend_work * 4 < foremost_recompute_work,
            "history {history}: foremost extension ({foremost_extend_work}) vs \
             recomputation ({foremost_recompute_work})"
        );

        // --- The three rows the invalidation matrix closed last. ----------
        // Shared frontier: extension settles the delta from the retained
        // packed frontier; recompute re-runs the multi-source search.
        let extend_view = CountingView::new(live.graph());
        shared_state
            .extend_snapshot(&extend_view, &touched)
            .unwrap();
        let shared_extend_work = extend_view.counters().total();

        let recompute_view = CountingView::new(live.graph());
        let shared_scratch = multi_source_shared(&recompute_view, &sources).unwrap();
        let shared_recompute_work = recompute_view.counters().total();

        assert_eq!(
            shared_state.to_map().as_flat_slice(),
            shared_scratch.as_flat_slice(),
            "shared extension must equal recomputation (history {history})"
        );
        assert!(
            shared_extend_work * 4 < shared_recompute_work,
            "history {history}: shared extension ({shared_extend_work}) vs \
             recomputation ({shared_recompute_work})"
        );

        // Bounded window: the repair is a pure re-dimension — zero graph
        // work by construction — against re-running the windowed search.
        let redimensioned = prefix_map.redimensioned(NUM_NODES, history + 1);
        let redimension_work = 0u64;

        let recompute_view = CountingView::new(live.graph());
        let windowed = TimeWindowView::new(
            &recompute_view,
            TimeIndex(0),
            TimeIndex::from_index(history - 1),
        )
        .unwrap();
        let windowed_scratch = bfs(&windowed, root).unwrap();
        let windowed_recompute_work = recompute_view.counters().total();

        assert_eq!(
            redimensioned.as_flat_slice()[..NUM_NODES * history],
            *windowed_scratch.as_flat_slice(),
            "re-dimensioned prefix must equal the windowed recomputation \
             (history {history})"
        );
        assert!(
            redimensioned
                .as_flat_slice()
                .iter()
                .skip(NUM_NODES * history)
                .all(|&d| d == u32::MAX),
            "the appended row of a re-dimensioned bounded result is unreached"
        );

        // Effective reversal: the stable-core fringe scan touches no graph
        // edges at all; recompute re-runs the backward search over the
        // whole history.
        let resettle_view = CountingView::new(live.graph());
        let fringe = resettle_core
            .extend_snapshot(&resettle_view, &touched)
            .unwrap();
        let resettle_work = resettle_view.counters().total();
        assert!(
            fringe.is_empty(),
            "append-only growth never reaches into a backward search's past"
        );
        assert_eq!(
            resettle_work, 0,
            "the fringe scan must perform zero graph traversal"
        );

        let recompute_view = CountingView::new(live.graph());
        let back_scratch = backward_bfs(&recompute_view, back_root).unwrap();
        let backward_recompute_work = recompute_view.counters().total();

        assert_eq!(
            back_map
                .redimensioned(NUM_NODES, history + 1)
                .as_flat_slice(),
            back_scratch.as_flat_slice(),
            "resettled backward result must equal recomputation (history {history})"
        );

        matrix_reports.push(MatrixReport {
            history,
            shared_extend_work,
            shared_recompute_work,
            redimension_work,
            windowed_recompute_work,
            resettle_work,
            backward_recompute_work,
        });

        println!(
            "incremental_vs_recompute/h{history}: hop extend {hop_extend_work} vs \
             recompute {hop_recompute_work} ({:.1}x), foremost extend \
             {foremost_extend_work} vs recompute {foremost_recompute_work} ({:.1}x)",
            hop_recompute_work as f64 / hop_extend_work as f64,
            foremost_recompute_work as f64 / foremost_extend_work as f64,
        );
        reports.push(SizeReport {
            history,
            hop_extend_work,
            hop_recompute_work,
            foremost_extend_work,
            foremost_recompute_work,
        });

        // --- Wall clock: extend-after-seal vs full recompute. -------------
        group.bench_with_input(
            BenchmarkId::new("extend_one_snapshot", history),
            &history,
            |b, _| {
                b.iter_batched(
                    || prefix_state(live.graph(), root, history),
                    |mut state| {
                        state.extend_snapshot(live.graph(), &touched).unwrap();
                        std::hint::black_box(state.covered_timestamps())
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("recompute_full", history),
            &history,
            |b, _| b.iter(|| std::hint::black_box(bfs(live.graph(), root).unwrap().num_reached())),
        );
        group.bench_with_input(
            BenchmarkId::new("extend_shared_one_snapshot", history),
            &history,
            |b, _| {
                b.iter_batched(
                    || shared_prefix_state(live.graph(), &sources, history),
                    |mut state| {
                        state.extend_snapshot(live.graph(), &touched).unwrap();
                        std::hint::black_box(state.covered_timestamps())
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("recompute_shared_full", history),
            &history,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(
                        multi_source_shared(live.graph(), &sources)
                            .unwrap()
                            .reached()
                            .len(),
                    )
                })
            },
        );

        // --- The full subsystem path: cached query across a seal. ---------
        let warm_cache = QueryCache::new();
        let query = Search::from(root);
        warm_cache.execute(&live, &query).unwrap();
        group.bench_with_input(
            BenchmarkId::new("cache_hit_after_extension", history),
            &history,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(warm_cache.execute(&live, &query).unwrap().num_reached())
                })
            },
        );
    }

    group.finish();
    write_json_summary(&reports);
    write_matrix_json(&matrix_reports);
}

/// Builds a state covering only the first `prefix` snapshots (the pre-delta
/// coverage) — bench setup only, cost excluded from the measurement.
fn prefix_state(
    graph: &egraph_core::csr::CsrAdjacency,
    root: egraph_core::ids::TemporalNode,
    prefix: usize,
) -> ResumableBfs {
    let windowed = egraph_core::window::TimeWindowView::new(
        graph,
        egraph_core::ids::TimeIndex(0),
        egraph_core::ids::TimeIndex::from_index(prefix - 1),
    )
    .unwrap();
    ResumableBfs::start(&windowed, root).unwrap()
}

/// Builds a shared-frontier state covering only the first `prefix`
/// snapshots — bench setup only, cost excluded from the measurement.
fn shared_prefix_state(
    graph: &egraph_core::csr::CsrAdjacency,
    sources: &[TemporalNode],
    prefix: usize,
) -> ResumableShared {
    let windowed =
        TimeWindowView::new(graph, TimeIndex(0), TimeIndex::from_index(prefix - 1)).unwrap();
    ResumableShared::start(&windowed, sources).unwrap()
}

fn write_json_summary(reports: &[SizeReport]) {
    let mut rows = String::new();
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"history_snapshots\": {}, \"delta_edges\": {}, \
             \"hop_extend_work\": {}, \"hop_recompute_work\": {}, \"hop_speedup\": {:.2}, \
             \"foremost_extend_work\": {}, \"foremost_recompute_work\": {}, \
             \"foremost_speedup\": {:.2}}}",
            r.history,
            EDGES_PER_SNAPSHOT,
            r.hop_extend_work,
            r.hop_recompute_work,
            r.hop_recompute_work as f64 / r.hop_extend_work as f64,
            r.foremost_extend_work,
            r.foremost_recompute_work,
            r.foremost_recompute_work as f64 / r.foremost_extend_work as f64,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"incremental_vs_recompute\",\n  \"num_nodes\": {NUM_NODES},\n  \
         \"work_metric\": \"CountingView total (enumeration calls + delivered neighbors)\",\n  \
         \"sizes\": [\n{rows}\n  ]\n}}\n"
    );
    let path = "BENCH_incremental.json";
    std::fs::write(path, &json).expect("write bench summary");
    println!("wrote {path}");

    // The asymptotic shape itself: extension work stays flat across a 4x
    // history growth while recompute work must grow.
    let first = &reports[0];
    let last = &reports[reports.len() - 1];
    assert!(
        last.hop_extend_work <= first.hop_extend_work * 2,
        "extension work must stay flat as history grows: {} -> {}",
        first.hop_extend_work,
        last.hop_extend_work
    );
    assert!(
        last.hop_recompute_work >= first.hop_recompute_work * 2,
        "recompute work must grow with history: {} -> {}",
        first.hop_recompute_work,
        last.hop_recompute_work
    );
}

fn write_matrix_json(reports: &[MatrixReport]) {
    let mut rows = String::new();
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"history_snapshots\": {}, \"delta_edges\": {}, \
             \"shared_extend_work\": {}, \"shared_recompute_work\": {}, \
             \"shared_speedup\": {:.2}, \
             \"redimension_work\": {}, \"windowed_recompute_work\": {}, \
             \"resettle_work\": {}, \"backward_recompute_work\": {}}}",
            r.history,
            EDGES_PER_SNAPSHOT,
            r.shared_extend_work,
            r.shared_recompute_work,
            r.shared_recompute_work as f64 / r.shared_extend_work.max(1) as f64,
            r.redimension_work,
            r.windowed_recompute_work,
            r.resettle_work,
            r.backward_recompute_work,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"incremental_matrix\",\n  \"num_nodes\": {NUM_NODES},\n  \
         \"work_metric\": \"CountingView total (enumeration calls + delivered neighbors)\",\n  \
         \"rows\": [\"shared_frontier_extend\", \"bounded_window_redimension\", \
         \"effective_reversal_resettle\"],\n  \
         \"sizes\": [\n{rows}\n  ]\n}}\n"
    );
    let path = "BENCH_incremental_matrix.json";
    std::fs::write(path, &json).expect("write matrix bench summary");
    println!("wrote {path}");

    // The asymptotic shape per row: repair work flat (or zero) across a 4x
    // history growth while every from-scratch twin must grow.
    let first = &reports[0];
    let last = &reports[reports.len() - 1];
    assert!(
        last.shared_extend_work <= first.shared_extend_work * 2,
        "shared extension work must stay flat as history grows: {} -> {}",
        first.shared_extend_work,
        last.shared_extend_work
    );
    assert!(
        last.shared_recompute_work >= first.shared_recompute_work * 2,
        "shared recompute work must grow with history: {} -> {}",
        first.shared_recompute_work,
        last.shared_recompute_work
    );
    assert!(
        reports
            .iter()
            .all(|r| r.redimension_work == 0 && r.resettle_work == 0),
        "re-dimension and resettle repairs never traverse the graph"
    );
    assert!(
        last.windowed_recompute_work >= first.windowed_recompute_work * 2,
        "windowed recompute work must grow with history: {} -> {}",
        first.windowed_recompute_work,
        last.windowed_recompute_work
    );
    assert!(
        last.backward_recompute_work > first.backward_recompute_work,
        "backward recompute work must grow with history: {} -> {}",
        first.backward_recompute_work,
        last.backward_recompute_work
    );
}

criterion_group!(benches, incremental_vs_recompute);
criterion_main!(benches);
