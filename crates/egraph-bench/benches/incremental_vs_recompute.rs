//! INC — incremental re-search versus recomputation on a live graph.
//!
//! The `egraph-stream` subsystem claims that after sealing one new snapshot,
//! extending a cached forward search costs work proportional to the *delta*
//! (the new snapshot's edges and touched nodes), while recomputing costs
//! work proportional to the *whole history*. Wall clock alone would
//! under-report the gap on small workloads, so this bench measures graph
//! work with `CountingView` counters, **asserts** the asymptotic claim —
//! extension work must stay flat as the history grows while recompute work
//! grows with it — and emits a machine-readable `BENCH_incremental.json`
//! summary (work counters + speedups per history length) for the perf
//! trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egraph_bench::first_active_node;
use egraph_core::bfs::bfs;
use egraph_core::foremost::earliest_arrival;
use egraph_core::instrument::CountingView;
use egraph_core::resume::{ResumableBfs, ResumableForemost};
use egraph_query::Search;
use egraph_stream::{EdgeEvent, LiveGraph, QueryCache};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Node universe and per-snapshot edge budget are fixed; only the history
/// length varies, so any growth in the "extend" series would falsify the
/// delta-proportionality claim.
const NUM_NODES: usize = 1_500;
const EDGES_PER_SNAPSHOT: usize = 4_000;
const HISTORIES: [usize; 3] = [8, 16, 32];

struct SizeReport {
    history: usize,
    hop_extend_work: u64,
    hop_recompute_work: u64,
    foremost_extend_work: u64,
    foremost_recompute_work: u64,
}

fn build_live(history: usize, seed: u64) -> LiveGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut live = LiveGraph::directed(NUM_NODES);
    for t in 0..history {
        seal_random_snapshot(&mut rng, &mut live, t as i64);
    }
    live
}

fn seal_random_snapshot(rng: &mut SmallRng, live: &mut LiveGraph, label: i64) {
    let mut added = 0usize;
    while added < EDGES_PER_SNAPSHOT {
        let u = rng.gen_range(0..NUM_NODES) as u32;
        let v = rng.gen_range(0..NUM_NODES) as u32;
        if u == v {
            continue;
        }
        live.apply(EdgeEvent::insert(u, v)).unwrap();
        added += 1;
    }
    live.seal_snapshot(label).unwrap();
}

fn incremental_vs_recompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_vs_recompute");
    group.sample_size(10);

    let mut reports: Vec<SizeReport> = Vec::new();

    for history in HISTORIES {
        // History with `history` sealed snapshots, then one sealed delta.
        let mut live = build_live(history, 0x1ACE + history as u64);
        let root = first_active_node(live.graph());
        let mut hop_state = ResumableBfs::start(live.graph(), root).unwrap();
        let mut foremost_state = ResumableForemost::start(live.graph(), root);

        let mut rng = SmallRng::seed_from_u64(0xDE17A + history as u64);
        seal_random_snapshot(&mut rng, &mut live, history as i64);
        let t_new = egraph_core::ids::TimeIndex::from_index(history);
        let touched = live.touched_at(t_new).to_vec();

        // --- Work counters: the acceptance check of this bench. -----------
        let extend_view = CountingView::new(live.graph());
        hop_state.extend_snapshot(&extend_view, &touched).unwrap();
        let hop_extend_work = extend_view.counters().total();

        let recompute_view = CountingView::new(live.graph());
        let scratch = bfs(&recompute_view, root).unwrap();
        let hop_recompute_work = recompute_view.counters().total();

        assert_eq!(
            hop_state.to_distance_map().as_flat_slice(),
            scratch.as_flat_slice(),
            "extension must equal recomputation (history {history})"
        );
        assert!(
            hop_extend_work * 4 < hop_recompute_work,
            "history {history}: extension ({hop_extend_work}) must do far less graph \
             work than recomputation ({hop_recompute_work})"
        );

        let extend_view = CountingView::new(live.graph());
        foremost_state
            .extend_snapshot(&extend_view, &touched)
            .unwrap();
        let foremost_extend_work = extend_view.counters().total();

        let recompute_view = CountingView::new(live.graph());
        let swept = earliest_arrival(&recompute_view, root);
        let foremost_recompute_work = recompute_view.counters().total();

        assert_eq!(
            foremost_state.to_result().arrivals(),
            swept.arrivals(),
            "foremost extension must equal recomputation (history {history})"
        );
        assert!(
            foremost_extend_work * 4 < foremost_recompute_work,
            "history {history}: foremost extension ({foremost_extend_work}) vs \
             recomputation ({foremost_recompute_work})"
        );

        println!(
            "incremental_vs_recompute/h{history}: hop extend {hop_extend_work} vs \
             recompute {hop_recompute_work} ({:.1}x), foremost extend \
             {foremost_extend_work} vs recompute {foremost_recompute_work} ({:.1}x)",
            hop_recompute_work as f64 / hop_extend_work as f64,
            foremost_recompute_work as f64 / foremost_extend_work as f64,
        );
        reports.push(SizeReport {
            history,
            hop_extend_work,
            hop_recompute_work,
            foremost_extend_work,
            foremost_recompute_work,
        });

        // --- Wall clock: extend-after-seal vs full recompute. -------------
        group.bench_with_input(
            BenchmarkId::new("extend_one_snapshot", history),
            &history,
            |b, _| {
                b.iter_batched(
                    || prefix_state(live.graph(), root, history),
                    |mut state| {
                        state.extend_snapshot(live.graph(), &touched).unwrap();
                        std::hint::black_box(state.covered_timestamps())
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("recompute_full", history),
            &history,
            |b, _| b.iter(|| std::hint::black_box(bfs(live.graph(), root).unwrap().num_reached())),
        );

        // --- The full subsystem path: cached query across a seal. ---------
        let warm_cache = QueryCache::new();
        let query = Search::from(root);
        warm_cache.execute(&live, &query).unwrap();
        group.bench_with_input(
            BenchmarkId::new("cache_hit_after_extension", history),
            &history,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(warm_cache.execute(&live, &query).unwrap().num_reached())
                })
            },
        );
    }

    group.finish();
    write_json_summary(&reports);
}

/// Builds a state covering only the first `prefix` snapshots (the pre-delta
/// coverage) — bench setup only, cost excluded from the measurement.
fn prefix_state(
    graph: &egraph_core::csr::CsrAdjacency,
    root: egraph_core::ids::TemporalNode,
    prefix: usize,
) -> ResumableBfs {
    let windowed = egraph_core::window::TimeWindowView::new(
        graph,
        egraph_core::ids::TimeIndex(0),
        egraph_core::ids::TimeIndex::from_index(prefix - 1),
    )
    .unwrap();
    ResumableBfs::start(&windowed, root).unwrap()
}

fn write_json_summary(reports: &[SizeReport]) {
    let mut rows = String::new();
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"history_snapshots\": {}, \"delta_edges\": {}, \
             \"hop_extend_work\": {}, \"hop_recompute_work\": {}, \"hop_speedup\": {:.2}, \
             \"foremost_extend_work\": {}, \"foremost_recompute_work\": {}, \
             \"foremost_speedup\": {:.2}}}",
            r.history,
            EDGES_PER_SNAPSHOT,
            r.hop_extend_work,
            r.hop_recompute_work,
            r.hop_recompute_work as f64 / r.hop_extend_work as f64,
            r.foremost_extend_work,
            r.foremost_recompute_work,
            r.foremost_recompute_work as f64 / r.foremost_extend_work as f64,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"incremental_vs_recompute\",\n  \"num_nodes\": {NUM_NODES},\n  \
         \"work_metric\": \"CountingView total (enumeration calls + delivered neighbors)\",\n  \
         \"sizes\": [\n{rows}\n  ]\n}}\n"
    );
    let path = "BENCH_incremental.json";
    std::fs::write(path, &json).expect("write bench summary");
    println!("wrote {path}");

    // The asymptotic shape itself: extension work stays flat across a 4x
    // history growth while recompute work must grow.
    let first = &reports[0];
    let last = &reports[reports.len() - 1];
    assert!(
        last.hop_extend_work <= first.hop_extend_work * 2,
        "extension work must stay flat as history grows: {} -> {}",
        first.hop_extend_work,
        last.hop_extend_work
    );
    assert!(
        last.hop_recompute_work >= first.hop_recompute_work * 2,
        "recompute work must grow with history: {} -> {}",
        first.hop_recompute_work,
        last.hop_recompute_work
    );
}

criterion_group!(benches, incremental_vs_recompute);
criterion_main!(benches);
