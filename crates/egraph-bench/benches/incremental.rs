//! ABL-C — incremental edge insertion versus rebuilding from scratch.
//!
//! The Figure 5 experiment grows a single evolving graph by repeatedly adding
//! random static edges; the evolving-graph representation is supposed to make
//! that growth cheap. This ablation measures (a) applying one batch of edges
//! to an existing graph versus rebuilding the whole graph from every batch so
//! far, and (b) re-running BFS after a batch, which is the full
//! "update-then-query" cycle of the experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egraph_bench::first_active_node;
use egraph_core::bfs::bfs;
use egraph_core::graph::EvolvingGraph;
use egraph_gen::stream::{apply_batch, rebuild_from_batches, EdgeStream};

fn incremental(c: &mut Criterion) {
    let num_nodes = 5_000usize;
    let num_timestamps = 10usize;
    let batch_size = 20_000usize;
    let num_batches = 5usize;

    // Pre-generate the batches so both strategies replay identical data.
    let mut stream = EdgeStream::new(num_nodes, num_timestamps, batch_size, 0xABC);
    let batches: Vec<Vec<(u32, u32, u32)>> =
        (0..num_batches).map(|_| stream.next_batch()).collect();

    let mut group = c.benchmark_group("incremental_updates");
    group.sample_size(10);

    for k in 1..=num_batches {
        // Strategy A: the graph already holds k-1 batches; apply the k-th.
        group.bench_with_input(BenchmarkId::new("apply_one_batch", k), &k, |b, &k| {
            b.iter_batched(
                || {
                    let mut g =
                        EdgeStream::new(num_nodes, num_timestamps, batch_size, 0).empty_graph();
                    for batch in &batches[..k - 1] {
                        apply_batch(&mut g, batch);
                    }
                    g
                },
                |mut g| {
                    apply_batch(&mut g, &batches[k - 1]);
                    std::hint::black_box(g.num_static_edges())
                },
                criterion::BatchSize::LargeInput,
            )
        });

        // Strategy B: rebuild everything from scratch out of k batches.
        group.bench_with_input(BenchmarkId::new("rebuild_from_scratch", k), &k, |b, &k| {
            b.iter(|| {
                let g = rebuild_from_batches(num_nodes, num_timestamps, &batches[..k]);
                std::hint::black_box(g.num_static_edges())
            })
        });
    }

    // The full update-then-query cycle after all batches.
    let full = rebuild_from_batches(num_nodes, num_timestamps, &batches);
    let root = first_active_node(&full);
    group.bench_function("bfs_after_updates", |b| {
        b.iter(|| std::hint::black_box(bfs(&full, root).unwrap().num_reached()))
    });

    group.finish();
}

criterion_group!(benches, incremental);
criterion_main!(benches);
