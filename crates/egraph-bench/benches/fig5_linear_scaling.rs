//! FIG5 — the paper's Figure 5: run time of Algorithm 1 versus the number of
//! static edges `|Ẽ|` on uniform random evolving graphs, expected to be
//! linear (Theorem 2).
//!
//! Paper parameters: 10⁵ active nodes, 10 time stamps, |Ẽ| from ~1×10⁸ to
//! ~5×10⁸, single core of a Xeon E7-8850 with 1 TB RAM. The reproduction
//! keeps the shape (fixed nodes and snapshots, the same relative edge-count
//! steps) at a scale that completes in seconds; the quantity under test is
//! the *linearity* of the series, not the absolute times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use egraph_bench::{figure5_sweep, Figure5Config};
use egraph_core::bfs::bfs;

fn fig5_linear_scaling(c: &mut Criterion) {
    let config = Figure5Config::default();
    let sweep = figure5_sweep(&config);

    let mut group = c.benchmark_group("fig5_linear_scaling");
    group.sample_size(10);
    for (edges, graph, root) in &sweep {
        group.throughput(Throughput::Elements(*edges as u64));
        group.bench_with_input(
            BenchmarkId::new("alg1_bfs", edges),
            &(graph, root),
            |b, (graph, root)| {
                b.iter(|| {
                    let map = bfs(*graph, **root).expect("root is active");
                    std::hint::black_box(map.num_reached())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig5_linear_scaling);
criterion_main!(benches);
