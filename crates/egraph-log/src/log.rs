//! [`EventLog`]: the durable, segmented, append-only event log.
//!
//! One directory holds one log:
//!
//! ```text
//! <dir>/manifest.bin        the log's birth certificate (Init record)
//! <dir>/seg-0000000000.seg  sealed segment 0
//! <dir>/seg-0000000001.seg  sealed segment 1
//! ...
//! ```
//!
//! Writes follow the seal boundary of the live graph exactly:
//! [`EventLog::append`] only *buffers* an event record in memory, and
//! [`EventLog::seal`] writes the whole segment — header, every buffered
//! record, the terminating `Seal` — in one shot, then `fsync`s the file
//! *and* the directory before returning. Durability is therefore
//! all-or-nothing per sealed snapshot: a crash can only ever lose the open
//! (never-acknowledged) snapshot, leaving at worst one torn file at the
//! tail, which [`EventLog::open`] truncates away.
//!
//! [`EventLog::open`] is the crash-recovery path: it validates the whole
//! segment chain (contiguous sequence numbers from 0, every record CRC),
//! drops a torn final segment, and **fails loudly** on anything else — a
//! CRC mismatch in sealed history, a sequence gap, a record after a seal.
//! Recovery never hands back a silently corrupt event stream.
//!
//! ## Failpoints
//!
//! Every point where the filesystem can betray this contract is a named
//! [`egraph_fault`] site, so the chaos suite can script ENOSPC, torn
//! writes and fsync failures deterministically (all no-ops in release):
//!
//! | site | failure it injects |
//! |------|--------------------|
//! | `log.manifest.write` | manifest write fails (or tears partway) |
//! | `log.manifest.fsync` | manifest fsync fails after a complete write |
//! | `log.seal.write` | segment write fails or tears (crash residue) |
//! | `log.seal.fsync` | segment fsync fails after a complete write |
//! | `log.dir.fsync` | directory fsync fails (file name not durable) |
//! | `log.segment.read` | re-reading a sealed segment for shipping fails |
//! | `log.compact.delete` | deleting a checkpoint-covered segment fails |
//!
//! (The checkpoint files that make compaction legal have their own sites —
//! see [`crate::checkpoint`].)

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use egraph_io::binary::{decode_record, encode_record, BinaryError, LogRecord};

use crate::segment::{decode_segment, encode_segment, SealedSegment, SegmentError};

/// First bytes of the manifest file.
pub const MANIFEST_MAGIC: [u8; 4] = *b"EGLM";

/// File name of the log manifest inside its directory.
pub const MANIFEST_FILE: &str = "manifest.bin";

/// Why a log could not be created, opened, or written.
#[derive(Debug)]
pub enum LogError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file (or directory) the operation touched.
        path: PathBuf,
        /// The error the OS reported.
        source: io::Error,
    },
    /// On-disk state that fsync-ordered writes can never produce: CRC
    /// mismatches in sealed history, sequence gaps, bad magic. Recovery
    /// refuses it loudly rather than replaying a corrupt stream.
    Corrupt {
        /// The offending file (or directory).
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// The manifest — the log's birth certificate — is torn or corrupt.
    /// Unlike a torn segment tail there is no crash that legitimately
    /// produces this (the manifest is written once, fsynced, before any
    /// seal), and without a readable `Init` record nothing about the log
    /// can be trusted, so it gets its own loud, file-naming error instead
    /// of being folded into generic corruption.
    Manifest {
        /// The manifest file.
        path: PathBuf,
        /// What was wrong with it.
        detail: String,
    },
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::Io { path, source } => write!(f, "log io at {}: {source}", path.display()),
            LogError::Corrupt { path, detail } => {
                write!(f, "log corrupt at {}: {detail}", path.display())
            }
            LogError::Manifest { path, detail } => {
                write!(f, "log manifest unusable at {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for LogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LogError::Io { source, .. } => Some(source),
            LogError::Corrupt { .. } | LogError::Manifest { .. } => None,
        }
    }
}

/// A [`LogError`] result.
pub type Result<T> = std::result::Result<T, LogError>;

pub(crate) fn io_err<T>(path: &Path, source: io::Error) -> Result<T> {
    Err(LogError::Io {
        path: path.to_path_buf(),
        source,
    })
}

pub(crate) fn corrupt<T>(path: &Path, detail: impl Into<String>) -> Result<T> {
    Err(LogError::Corrupt {
        path: path.to_path_buf(),
        detail: detail.into(),
    })
}

/// What [`EventLog::seal`] durably wrote: the new segment's sequence number
/// and its exact on-disk bytes — ready to ship to followers without
/// re-reading the file.
#[derive(Clone, Debug)]
pub struct Sealed {
    /// The sealed segment's sequence number.
    pub seq: u64,
    /// The segment's complete encoded bytes (what `/log/tail` ships).
    pub bytes: Vec<u8>,
}

/// What [`EventLog::open`] recovered.
#[derive(Debug)]
pub struct RecoveredLog {
    /// The log, positioned to continue appending after the last durable
    /// segment.
    pub log: EventLog,
    /// Every durably sealed segment still on disk, in sequence order — the
    /// replay input. After compaction this starts at `first_seq`, not 0;
    /// whether the missing prefix is legal is the caller's call (it is iff
    /// a valid checkpoint covers it).
    pub segments: Vec<SealedSegment>,
    /// Whether a torn (partially written, never acknowledged) final
    /// segment file was found and truncated away.
    pub dropped_torn_tail: bool,
    /// Sequence number of the oldest segment still on disk (equals the next
    /// sequence number when no segments remain).
    pub first_seq: u64,
}

/// A durable segmented event log rooted at one directory. See the
/// [module docs](self) for the on-disk layout and crash contract.
#[derive(Debug)]
pub struct EventLog {
    dir: PathBuf,
    init: LogRecord,
    first_seq: u64,
    next_seq: u64,
    pending: Vec<LogRecord>,
}

impl EventLog {
    /// Creates a fresh log at `dir` (created if missing) for a graph of
    /// `num_nodes` nodes, writing and fsyncing the manifest.
    ///
    /// # Errors
    /// [`LogError::Io`] with `ErrorKind::AlreadyExists` if `dir` already
    /// holds a manifest.
    pub fn create(dir: impl AsRef<Path>, num_nodes: u64, directed: bool) -> Result<EventLog> {
        let dir = dir.as_ref();
        if let Err(source) = fs::create_dir_all(dir) {
            return io_err(dir, source);
        }
        let manifest_path = dir.join(MANIFEST_FILE);
        if manifest_path.exists() {
            return io_err(
                &manifest_path,
                io::Error::new(io::ErrorKind::AlreadyExists, "log manifest already exists"),
            );
        }
        let init = LogRecord::Init {
            num_nodes,
            directed,
        };
        let mut bytes = Vec::with_capacity(24);
        bytes.extend_from_slice(&MANIFEST_MAGIC);
        bytes.push(crate::segment::FORMAT_VERSION);
        encode_record(&init, &mut bytes);
        write_durable(
            &manifest_path,
            &bytes,
            "log.manifest.write",
            "log.manifest.fsync",
        )?;
        sync_dir(dir)?;
        Ok(EventLog {
            dir: dir.to_path_buf(),
            init,
            first_seq: 0,
            next_seq: 0,
            pending: Vec::new(),
        })
    }

    /// Opens an existing log, validating the whole segment chain and
    /// truncating a torn tail (see the [module docs](self)).
    ///
    /// The chain must be contiguous but — since compaction deletes
    /// checkpoint-covered prefixes — need not start at 0; the first present
    /// sequence is reported as [`RecoveredLog::first_seq`] and the caller
    /// decides whether the missing prefix is covered. A hole *inside* the
    /// chain is still corruption. When every segment was compacted away the
    /// sequence counter resumes from the newest checkpoint file's name, so
    /// fresh seals never reuse a covered sequence number.
    pub fn open(dir: impl AsRef<Path>) -> Result<RecoveredLog> {
        let dir = dir.as_ref();
        let manifest_path = dir.join(MANIFEST_FILE);
        let init = read_manifest(&manifest_path)?;

        // Collect `seg-<seq>.seg` files; anything else in the directory is
        // ignored (the manifest, editor droppings, ...).
        let entries = match fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(source) => return io_err(dir, source),
        };
        let mut seqs: Vec<(u64, PathBuf)> = Vec::new();
        for entry in entries {
            let entry = match entry {
                Ok(entry) => entry,
                Err(source) => return io_err(dir, source),
            };
            let path = entry.path();
            if let Some(seq) = parse_segment_file_name(&path) {
                seqs.push((seq, path));
            }
        }
        seqs.sort_unstable_by_key(|&(seq, _)| seq);

        let mut segments = Vec::with_capacity(seqs.len());
        let mut dropped_torn_tail = false;
        let last_index = seqs.len().wrapping_sub(1);
        let first_seq = seqs.first().map_or(0, |&(seq, _)| seq);
        for (i, (seq, path)) in seqs.iter().enumerate() {
            let expected = first_seq + i as u64;
            if *seq != expected {
                return corrupt(
                    dir,
                    format!("segment sequence gap: expected seq {expected}, found {seq}"),
                );
            }
            let bytes = match fs::read(path) {
                Ok(bytes) => bytes,
                Err(source) => return io_err(path, source),
            };
            match decode_segment(&bytes) {
                Ok(segment) => {
                    if segment.seq != *seq {
                        return corrupt(
                            path,
                            format!("file named seq {seq} but header says {}", segment.seq),
                        );
                    }
                    segments.push(segment);
                }
                // A torn *final* segment is the expected crash residue: the
                // write of an unacknowledged seal never completed. Truncate
                // it away. Torn anywhere else, or corrupt anywhere at all,
                // is state fsync ordering cannot produce — fail loudly.
                Err(SegmentError::Torn { .. }) if i == last_index => {
                    if let Err(source) = fs::remove_file(path) {
                        return io_err(path, source);
                    }
                    sync_dir(dir)?;
                    dropped_torn_tail = true;
                }
                Err(err) => return corrupt(path, err.to_string()),
            }
        }

        // The sequence resumes after the last surviving segment — or, when
        // compaction deleted every segment a checkpoint covers, after the
        // newest checkpoint's coverage (its file name records the last
        // sequence it absorbed). Without this, a fully compacted log would
        // hand out already-covered sequence numbers to fresh seals.
        let mut next_seq = first_seq + segments.len() as u64;
        for seq in crate::checkpoint::list_checkpoints(dir)? {
            next_seq = next_seq.max(seq + 1);
        }
        let first_seq = if segments.is_empty() {
            next_seq
        } else {
            first_seq
        };
        Ok(RecoveredLog {
            log: EventLog {
                dir: dir.to_path_buf(),
                init,
                first_seq,
                next_seq,
                pending: Vec::new(),
            },
            segments,
            dropped_torn_tail,
            first_seq,
        })
    }

    /// Opens the log at `dir` if its manifest exists, otherwise creates a
    /// fresh one. On open, the existing manifest's `Init` wins — the
    /// arguments are only used for creation.
    pub fn open_or_create(
        dir: impl AsRef<Path>,
        num_nodes: u64,
        directed: bool,
    ) -> Result<RecoveredLog> {
        let dir = dir.as_ref();
        if dir.join(MANIFEST_FILE).exists() {
            Self::open(dir)
        } else {
            Ok(RecoveredLog {
                log: Self::create(dir, num_nodes, directed)?,
                segments: Vec::new(),
                dropped_torn_tail: false,
                first_seq: 0,
            })
        }
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The `Init` record from the manifest: `(num_nodes, directed)`.
    pub fn init(&self) -> (u64, bool) {
        match self.init {
            LogRecord::Init {
                num_nodes,
                directed,
            } => (num_nodes, directed),
            _ => unreachable!("manifest decoding only accepts Init"),
        }
    }

    /// Number of durably sealed segments (also the next sequence number).
    pub fn segments_sealed(&self) -> u64 {
        self.next_seq
    }

    /// Sequence number of the oldest segment still on disk. Equals
    /// [`EventLog::segments_sealed`] when compaction has deleted every
    /// segment (nothing is left to replay or ship).
    pub fn first_seq(&self) -> u64 {
        self.first_seq
    }

    /// Deletes every segment with `seq <= through`, oldest first, fsyncing
    /// the directory afterwards. The caller must only compact sequences a
    /// durably installed checkpoint covers — this method just deletes.
    ///
    /// Returns how many segment files were removed. Deletion proceeds in
    /// ascending sequence order so a failure partway (site
    /// `log.compact.delete`) leaves the surviving chain contiguous — a
    /// half-compacted log reopens fine.
    pub fn compact_through(&mut self, through: u64) -> Result<u64> {
        let mut removed = 0u64;
        let stop = self.next_seq.min(through.saturating_add(1));
        let mut seq = self.first_seq;
        while seq < stop {
            let path = segment_path(&self.dir, seq);
            if egraph_fault::fired("log.compact.delete").is_some() {
                if removed > 0 {
                    sync_dir(&self.dir)?;
                }
                return io_err(
                    &path,
                    egraph_fault::injected_io_error("log.compact.delete", "compaction delete"),
                );
            }
            match fs::remove_file(&path) {
                Ok(()) => removed += 1,
                // Already gone (e.g. a crashed earlier compaction got this
                // far): the goal state, not an error.
                Err(source) if source.kind() == io::ErrorKind::NotFound => {}
                Err(source) => {
                    if removed > 0 {
                        sync_dir(&self.dir)?;
                    }
                    return io_err(&path, source);
                }
            }
            seq += 1;
            self.first_seq = seq;
        }
        if removed > 0 {
            sync_dir(&self.dir)?;
        }
        Ok(removed)
    }

    /// Total on-disk size of the surviving segment files plus the manifest
    /// — the `/stats` disk-accounting number.
    pub fn segments_bytes(&self) -> u64 {
        let mut total = file_len(&self.dir.join(MANIFEST_FILE));
        for seq in self.first_seq..self.next_seq {
            total += file_len(&segment_path(&self.dir, seq));
        }
        total
    }

    /// Number of event records buffered for the open (unsealed) segment.
    pub fn num_pending(&self) -> usize {
        self.pending.len()
    }

    /// Buffers one event record for the open segment. Nothing touches disk
    /// until [`EventLog::seal`].
    ///
    /// # Panics
    /// If handed a `Seal` or `Init` record — those are the log's own
    /// framing, not events.
    pub fn append(&mut self, record: LogRecord) {
        assert!(
            !matches!(record, LogRecord::Seal { .. } | LogRecord::Init { .. }),
            "append takes event records; seal/init are written by the log itself"
        );
        self.pending.push(record);
    }

    /// Durably seals the open segment under `label`: encodes header +
    /// buffered events + `Seal` record, writes the segment file, fsyncs it
    /// and the directory, and only then clears the buffer and advances the
    /// sequence. Returns the sequence number and the exact bytes written —
    /// the unit `/log/tail` ships to followers.
    ///
    /// On error nothing is advanced; the caller may retry, and a partial
    /// file left behind is exactly the torn tail [`EventLog::open`]
    /// truncates.
    pub fn seal(&mut self, label: i64) -> Result<Sealed> {
        let seq = self.next_seq;
        let bytes = encode_segment(seq, &self.pending, label);
        let path = segment_path(&self.dir, seq);
        write_durable(&path, &bytes, "log.seal.write", "log.seal.fsync")?;
        sync_dir(&self.dir)?;
        self.pending.clear();
        self.next_seq += 1;
        Ok(Sealed { seq, bytes })
    }

    /// Reads the exact on-disk bytes of sealed segment `seq` (for shipping
    /// to a follower that is catching up).
    pub fn segment_bytes(&self, seq: u64) -> Result<Vec<u8>> {
        let path = segment_path(&self.dir, seq);
        if egraph_fault::fired("log.segment.read").is_some() {
            return io_err(
                &path,
                egraph_fault::injected_io_error("log.segment.read", "segment read error"),
            );
        }
        match fs::read(&path) {
            Ok(bytes) => Ok(bytes),
            Err(source) => io_err(&path, source),
        }
    }
}

/// The file a segment with sequence number `seq` lives in.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:010}.seg"))
}

/// Size of the file at `path`, 0 if it does not exist.
pub(crate) fn file_len(path: &Path) -> u64 {
    fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// Parses `seg-<seq>.seg` file names; anything else returns `None`.
fn parse_segment_file_name(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("seg-")?.strip_suffix(".seg")?;
    if digits.len() != 10 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Reads and validates the manifest, returning its `Init` record. Any torn
/// or corrupt manifest is [`LogError::Manifest`], naming the file — no
/// crash legitimately produces one, so there is no quiet fallback.
fn read_manifest(path: &Path) -> Result<LogRecord> {
    let manifest = |detail: String| -> Result<LogRecord> {
        Err(LogError::Manifest {
            path: path.to_path_buf(),
            detail,
        })
    };
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(source) => return io_err(path, source),
    };
    if bytes.len() < 5 || bytes[..4] != MANIFEST_MAGIC {
        return manifest("bad manifest magic".into());
    }
    if bytes[4] != crate::segment::FORMAT_VERSION {
        return manifest(format!("unsupported format version {}", bytes[4]));
    }
    let (record, consumed) = match decode_record(&bytes[5..]) {
        Ok(decoded) => decoded,
        Err(BinaryError::Truncated) => return manifest("manifest truncated".into()),
        Err(err) => return manifest(err.to_string()),
    };
    if 5 + consumed != bytes.len() {
        return manifest("trailing bytes after the init record".into());
    }
    match record {
        init @ LogRecord::Init { .. } => Ok(init),
        other => manifest(format!("manifest holds {other:?}, not Init")),
    }
}

/// Writes `bytes` to a fresh file at `path` and fsyncs it. `write_site`
/// and `fsync_site` are the failpoint names for the two failure classes:
/// a scripted *partial* at `write_site` leaves exactly the torn file a
/// crash mid-write would (and `File::create` truncates, so a retry
/// overwrites it cleanly); an *error* at `fsync_site` fails after the
/// bytes are fully written — the durability ack is lost but the file on
/// disk is complete and valid.
pub(crate) fn write_durable(
    path: &Path,
    bytes: &[u8],
    write_site: &str,
    fsync_site: &str,
) -> Result<()> {
    let result = (|| {
        let mut file = File::create(path)?;
        match egraph_fault::fired(write_site) {
            Some(egraph_fault::Fired::Partial(percent)) => {
                let keep = bytes.len() * usize::from(percent) / 100;
                file.write_all(&bytes[..keep])?;
                let _ = file.sync_all();
                return Err(egraph_fault::injected_io_error(write_site, "torn write"));
            }
            Some(egraph_fault::Fired::Error) => {
                return Err(egraph_fault::injected_io_error(write_site, "write error"));
            }
            None => {}
        }
        file.write_all(bytes)?;
        if egraph_fault::fired(fsync_site).is_some() {
            let _ = file.sync_all();
            return Err(egraph_fault::injected_io_error(fsync_site, "fsync error"));
        }
        file.sync_all()
    })();
    match result {
        Ok(()) => Ok(()),
        Err(source) => io_err(path, source),
    }
}

/// Fsyncs a directory so a freshly created (or removed) file name is
/// durable — on Linux, file creation is only durable once the parent
/// directory has been synced.
pub(crate) fn sync_dir(dir: &Path) -> Result<()> {
    if egraph_fault::fired("log.dir.fsync").is_some() {
        return io_err(
            dir,
            egraph_fault::injected_io_error("log.dir.fsync", "directory fsync error"),
        );
    }
    let result = File::open(dir).and_then(|handle| handle.sync_all());
    match result {
        Ok(()) => Ok(()),
        // Some filesystems refuse directory fsync; the file fsync already
        // happened, which is the best available on such hosts.
        Err(source) if source.kind() == io::ErrorKind::InvalidInput => Ok(()),
        Err(source) => io_err(dir, source),
    }
}

/// Reads and validates the manifest of the log at `dir` without opening
/// the log, returning `(num_nodes, directed)`.
pub fn read_log_init(dir: impl AsRef<Path>) -> Result<(u64, bool)> {
    match read_manifest(&dir.as_ref().join(MANIFEST_FILE))? {
        LogRecord::Init {
            num_nodes,
            directed,
        } => Ok((num_nodes, directed)),
        _ => unreachable!("read_manifest only returns Init"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique, self-cleaning temp directory (no tempfile crate in the
    /// offline build environment).
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("egraph-log-{tag}-{}-{n}", std::process::id()));
            let _ = fs::remove_dir_all(&path);
            TempDir(path)
        }
        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn insert(src: u32, dst: u32) -> LogRecord {
        LogRecord::Insert { src, dst }
    }

    #[test]
    fn create_seal_reopen_replays_everything() {
        let dir = TempDir::new("roundtrip");
        let mut log = EventLog::create(dir.path(), 5, true).unwrap();
        log.append(insert(0, 1));
        log.append(insert(1, 2));
        let sealed = log.seal(10).unwrap();
        assert_eq!(sealed.seq, 0);
        log.append(LogRecord::GrowNodes { num_nodes: 9 });
        log.append(insert(7, 8));
        log.seal(20).unwrap();
        assert_eq!(log.segments_sealed(), 2);
        drop(log);

        let recovered = EventLog::open(dir.path()).unwrap();
        assert!(!recovered.dropped_torn_tail);
        assert_eq!(recovered.log.init(), (5, true));
        assert_eq!(recovered.log.segments_sealed(), 2);
        assert_eq!(recovered.segments.len(), 2);
        assert_eq!(recovered.segments[0].label, 10);
        assert_eq!(
            recovered.segments[0].events,
            vec![insert(0, 1), insert(1, 2)]
        );
        assert_eq!(recovered.segments[1].seq, 1);
        assert_eq!(
            recovered.segments[1].events,
            vec![LogRecord::GrowNodes { num_nodes: 9 }, insert(7, 8)]
        );

        // The reopened log continues the sequence.
        let mut log = recovered.log;
        log.append(insert(2, 3));
        assert_eq!(log.seal(30).unwrap().seq, 2);
    }

    #[test]
    fn pending_events_are_not_durable_until_sealed() {
        let dir = TempDir::new("pending");
        let mut log = EventLog::create(dir.path(), 3, true).unwrap();
        log.append(insert(0, 1));
        log.seal(1).unwrap();
        log.append(insert(1, 2)); // never sealed
        assert_eq!(log.num_pending(), 1);
        drop(log);

        let recovered = EventLog::open(dir.path()).unwrap();
        assert_eq!(recovered.segments.len(), 1);
        assert_eq!(recovered.log.num_pending(), 0);
    }

    #[test]
    fn a_torn_tail_is_truncated_and_the_seq_is_reused() {
        let dir = TempDir::new("torn");
        let mut log = EventLog::create(dir.path(), 4, false).unwrap();
        log.append(insert(0, 1));
        log.seal(1).unwrap();
        log.append(insert(1, 2));
        log.append(insert(2, 3));
        log.seal(2).unwrap();

        // Tear the final segment mid-record.
        let tail = segment_path(dir.path(), 1);
        let full = fs::read(&tail).unwrap();
        fs::write(&tail, &full[..full.len() - 3]).unwrap();

        let recovered = EventLog::open(dir.path()).unwrap();
        assert!(recovered.dropped_torn_tail);
        assert_eq!(recovered.segments.len(), 1);
        assert_eq!(recovered.log.segments_sealed(), 1);
        assert!(!tail.exists(), "the torn file is gone");

        // Sealing again rewrites seq 1 cleanly.
        let mut log = recovered.log;
        log.append(insert(1, 2));
        assert_eq!(log.seal(2).unwrap().seq, 1);
        let reopened = EventLog::open(dir.path()).unwrap();
        assert_eq!(reopened.segments.len(), 2);
    }

    #[test]
    fn corruption_in_sealed_history_fails_loudly() {
        let dir = TempDir::new("corrupt");
        let mut log = EventLog::create(dir.path(), 4, true).unwrap();
        for label in 0..3 {
            log.append(insert(0, 1));
            log.seal(label).unwrap();
        }
        // Flip a byte in the *middle* segment: not a torn tail, must error.
        let mid = segment_path(dir.path(), 1);
        let mut bytes = fs::read(&mid).unwrap();
        let at = bytes.len() - 6;
        bytes[at] ^= 0x10;
        fs::write(&mid, &bytes).unwrap();
        assert!(matches!(
            EventLog::open(dir.path()),
            Err(LogError::Corrupt { .. })
        ));
    }

    #[test]
    fn sequence_gaps_fail_loudly() {
        let dir = TempDir::new("gap");
        let mut log = EventLog::create(dir.path(), 4, true).unwrap();
        for label in 0..3 {
            log.append(insert(0, 1));
            log.seal(label).unwrap();
        }
        fs::remove_file(segment_path(dir.path(), 1)).unwrap();
        assert!(matches!(
            EventLog::open(dir.path()),
            Err(LogError::Corrupt { .. })
        ));
    }

    #[test]
    fn create_refuses_an_existing_log_and_open_or_create_adopts_it() {
        let dir = TempDir::new("exists");
        let mut log = EventLog::create(dir.path(), 7, true).unwrap();
        log.seal(0).unwrap();
        assert!(matches!(
            EventLog::create(dir.path(), 7, true),
            Err(LogError::Io { .. })
        ));
        // open_or_create keeps the existing manifest even when handed
        // different parameters.
        let recovered = EventLog::open_or_create(dir.path(), 999, false).unwrap();
        assert_eq!(recovered.log.init(), (7, true));
        assert_eq!(recovered.segments.len(), 1);
    }

    #[test]
    fn segment_bytes_ships_exactly_what_was_sealed() {
        let dir = TempDir::new("ship");
        let mut log = EventLog::create(dir.path(), 4, true).unwrap();
        log.append(insert(0, 1));
        let sealed = log.seal(5).unwrap();
        assert_eq!(log.segment_bytes(0).unwrap(), sealed.bytes);
        let decoded = decode_segment(&sealed.bytes).unwrap();
        assert_eq!(decoded.label, 5);
        assert_eq!(decoded.events, vec![insert(0, 1)]);
    }

    #[test]
    fn a_torn_or_corrupt_manifest_fails_with_a_dedicated_error_naming_the_file() {
        type Damage<'a> = &'a dyn Fn(&mut Vec<u8>);
        let corruptions: [Damage; 4] = [
            &|bytes| bytes.truncate(3),                  // torn inside the magic
            &|bytes| bytes.truncate(bytes.len() - 2),    // torn inside the record
            &|bytes| bytes[0] = b'X',                    // wrong magic
            &|bytes| *bytes.last_mut().unwrap() ^= 0x08, // CRC flip
        ];
        for (i, damage) in corruptions.iter().enumerate() {
            let dir = TempDir::new("manifest");
            EventLog::create(dir.path(), 4, true).unwrap();
            let manifest = dir.path().join(MANIFEST_FILE);
            let mut bytes = fs::read(&manifest).unwrap();
            damage(&mut bytes);
            fs::write(&manifest, &bytes).unwrap();
            let err = EventLog::open(dir.path()).unwrap_err();
            assert!(
                matches!(err, LogError::Manifest { .. }),
                "damage {i} must be LogError::Manifest, got {err:?}"
            );
            let message = err.to_string();
            assert!(
                message.contains(MANIFEST_FILE),
                "damage {i}: the error must name the manifest file: {message}"
            );
            // read_log_init takes the same loud path.
            assert!(matches!(
                read_log_init(dir.path()),
                Err(LogError::Manifest { .. })
            ));
        }
    }

    #[test]
    fn compaction_deletes_a_covered_prefix_and_reopen_accepts_the_suffix() {
        let dir = TempDir::new("compact");
        let mut log = EventLog::create(dir.path(), 4, true).unwrap();
        for label in 0..4 {
            log.append(insert(0, 1));
            log.seal(label).unwrap();
        }
        assert_eq!(log.first_seq(), 0);
        assert_eq!(log.compact_through(1).unwrap(), 2);
        assert_eq!(log.first_seq(), 2);
        assert!(!segment_path(dir.path(), 0).exists());
        assert!(!segment_path(dir.path(), 1).exists());
        // Compacting the same range again is a no-op, not an error.
        assert_eq!(log.compact_through(1).unwrap(), 0);
        drop(log);

        let recovered = EventLog::open(dir.path()).unwrap();
        assert_eq!(recovered.first_seq, 2);
        assert_eq!(recovered.log.first_seq(), 2);
        assert_eq!(recovered.log.segments_sealed(), 4);
        assert_eq!(recovered.segments.len(), 2);
        assert_eq!(recovered.segments[0].seq, 2);

        // A hole *inside* the surviving chain is still corruption: with
        // segments {2, 3} on disk, removing 3 and adding 4 leaves {2, 4}.
        fs::write(
            segment_path(dir.path(), 4),
            encode_segment(4, &[insert(0, 1)], 99),
        )
        .unwrap();
        fs::remove_file(segment_path(dir.path(), 3)).unwrap();
        assert!(matches!(
            EventLog::open(dir.path()),
            Err(LogError::Corrupt { .. })
        ));
    }

    #[test]
    fn a_fully_compacted_log_resumes_its_sequence_from_the_checkpoint_name() {
        let dir = TempDir::new("resume");
        let mut log = EventLog::create(dir.path(), 4, true).unwrap();
        for label in 0..3 {
            log.append(insert(0, 1));
            log.seal(label).unwrap();
        }
        crate::checkpoint::write_checkpoint(dir.path(), 2, b"covers 0..=2").unwrap();
        assert_eq!(log.compact_through(2).unwrap(), 3);
        drop(log);

        let recovered = EventLog::open(dir.path()).unwrap();
        assert!(recovered.segments.is_empty());
        assert_eq!(recovered.first_seq, 3);
        // The next seal must not reuse a covered sequence number.
        let mut log = recovered.log;
        log.append(insert(1, 2));
        assert_eq!(log.seal(10).unwrap().seq, 3);
    }

    #[test]
    fn segments_bytes_tracks_the_surviving_files() {
        let dir = TempDir::new("bytes");
        let mut log = EventLog::create(dir.path(), 4, true).unwrap();
        let manifest_len = fs::metadata(dir.path().join(MANIFEST_FILE)).unwrap().len();
        assert_eq!(log.segments_bytes(), manifest_len);
        log.append(insert(0, 1));
        let sealed = log.seal(0).unwrap();
        assert_eq!(
            log.segments_bytes(),
            manifest_len + sealed.bytes.len() as u64
        );
        log.compact_through(0).unwrap();
        assert_eq!(log.segments_bytes(), manifest_len);
    }

    #[test]
    fn an_open_log_with_no_segments_is_empty_not_an_error() {
        let dir = TempDir::new("empty");
        EventLog::create(dir.path(), 2, false).unwrap();
        let recovered = EventLog::open(dir.path()).unwrap();
        assert_eq!(recovered.log.segments_sealed(), 0);
        assert!(recovered.segments.is_empty());
        assert_eq!(read_log_init(dir.path()).unwrap(), (2, false));
    }
}
