//! [`EventLog`]: the durable, segmented, append-only event log.
//!
//! One directory holds one log:
//!
//! ```text
//! <dir>/manifest.bin        the log's birth certificate (Init record)
//! <dir>/seg-0000000000.seg  sealed segment 0
//! <dir>/seg-0000000001.seg  sealed segment 1
//! ...
//! ```
//!
//! Writes follow the seal boundary of the live graph exactly:
//! [`EventLog::append`] only *buffers* an event record in memory, and
//! [`EventLog::seal`] writes the whole segment — header, every buffered
//! record, the terminating `Seal` — in one shot, then `fsync`s the file
//! *and* the directory before returning. Durability is therefore
//! all-or-nothing per sealed snapshot: a crash can only ever lose the open
//! (never-acknowledged) snapshot, leaving at worst one torn file at the
//! tail, which [`EventLog::open`] truncates away.
//!
//! [`EventLog::open`] is the crash-recovery path: it validates the whole
//! segment chain (contiguous sequence numbers from 0, every record CRC),
//! drops a torn final segment, and **fails loudly** on anything else — a
//! CRC mismatch in sealed history, a sequence gap, a record after a seal.
//! Recovery never hands back a silently corrupt event stream.
//!
//! ## Failpoints
//!
//! Every point where the filesystem can betray this contract is a named
//! [`egraph_fault`] site, so the chaos suite can script ENOSPC, torn
//! writes and fsync failures deterministically (all no-ops in release):
//!
//! | site | failure it injects |
//! |------|--------------------|
//! | `log.manifest.write` | manifest write fails (or tears partway) |
//! | `log.manifest.fsync` | manifest fsync fails after a complete write |
//! | `log.seal.write` | segment write fails or tears (crash residue) |
//! | `log.seal.fsync` | segment fsync fails after a complete write |
//! | `log.dir.fsync` | directory fsync fails (file name not durable) |
//! | `log.segment.read` | re-reading a sealed segment for shipping fails |

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use egraph_io::binary::{decode_record, encode_record, BinaryError, LogRecord};

use crate::segment::{decode_segment, encode_segment, SealedSegment, SegmentError};

/// First bytes of the manifest file.
pub const MANIFEST_MAGIC: [u8; 4] = *b"EGLM";

/// File name of the log manifest inside its directory.
pub const MANIFEST_FILE: &str = "manifest.bin";

/// Why a log could not be created, opened, or written.
#[derive(Debug)]
pub enum LogError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file (or directory) the operation touched.
        path: PathBuf,
        /// The error the OS reported.
        source: io::Error,
    },
    /// On-disk state that fsync-ordered writes can never produce: CRC
    /// mismatches in sealed history, sequence gaps, bad magic. Recovery
    /// refuses it loudly rather than replaying a corrupt stream.
    Corrupt {
        /// The offending file (or directory).
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::Io { path, source } => write!(f, "log io at {}: {source}", path.display()),
            LogError::Corrupt { path, detail } => {
                write!(f, "log corrupt at {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for LogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LogError::Io { source, .. } => Some(source),
            LogError::Corrupt { .. } => None,
        }
    }
}

/// A [`LogError`] result.
pub type Result<T> = std::result::Result<T, LogError>;

fn io_err<T>(path: &Path, source: io::Error) -> Result<T> {
    Err(LogError::Io {
        path: path.to_path_buf(),
        source,
    })
}

fn corrupt<T>(path: &Path, detail: impl Into<String>) -> Result<T> {
    Err(LogError::Corrupt {
        path: path.to_path_buf(),
        detail: detail.into(),
    })
}

/// What [`EventLog::seal`] durably wrote: the new segment's sequence number
/// and its exact on-disk bytes — ready to ship to followers without
/// re-reading the file.
#[derive(Clone, Debug)]
pub struct Sealed {
    /// The sealed segment's sequence number.
    pub seq: u64,
    /// The segment's complete encoded bytes (what `/log/tail` ships).
    pub bytes: Vec<u8>,
}

/// What [`EventLog::open`] recovered.
#[derive(Debug)]
pub struct RecoveredLog {
    /// The log, positioned to continue appending after the last durable
    /// segment.
    pub log: EventLog,
    /// Every durably sealed segment, in sequence order — the replay input.
    pub segments: Vec<SealedSegment>,
    /// Whether a torn (partially written, never acknowledged) final
    /// segment file was found and truncated away.
    pub dropped_torn_tail: bool,
}

/// A durable segmented event log rooted at one directory. See the
/// [module docs](self) for the on-disk layout and crash contract.
#[derive(Debug)]
pub struct EventLog {
    dir: PathBuf,
    init: LogRecord,
    next_seq: u64,
    pending: Vec<LogRecord>,
}

impl EventLog {
    /// Creates a fresh log at `dir` (created if missing) for a graph of
    /// `num_nodes` nodes, writing and fsyncing the manifest.
    ///
    /// # Errors
    /// [`LogError::Io`] with `ErrorKind::AlreadyExists` if `dir` already
    /// holds a manifest.
    pub fn create(dir: impl AsRef<Path>, num_nodes: u64, directed: bool) -> Result<EventLog> {
        let dir = dir.as_ref();
        if let Err(source) = fs::create_dir_all(dir) {
            return io_err(dir, source);
        }
        let manifest_path = dir.join(MANIFEST_FILE);
        if manifest_path.exists() {
            return io_err(
                &manifest_path,
                io::Error::new(io::ErrorKind::AlreadyExists, "log manifest already exists"),
            );
        }
        let init = LogRecord::Init {
            num_nodes,
            directed,
        };
        let mut bytes = Vec::with_capacity(24);
        bytes.extend_from_slice(&MANIFEST_MAGIC);
        bytes.push(crate::segment::FORMAT_VERSION);
        encode_record(&init, &mut bytes);
        write_durable(
            &manifest_path,
            &bytes,
            "log.manifest.write",
            "log.manifest.fsync",
        )?;
        sync_dir(dir)?;
        Ok(EventLog {
            dir: dir.to_path_buf(),
            init,
            next_seq: 0,
            pending: Vec::new(),
        })
    }

    /// Opens an existing log, validating the whole segment chain and
    /// truncating a torn tail (see the [module docs](self)).
    pub fn open(dir: impl AsRef<Path>) -> Result<RecoveredLog> {
        let dir = dir.as_ref();
        let manifest_path = dir.join(MANIFEST_FILE);
        let init = read_manifest(&manifest_path)?;

        // Collect `seg-<seq>.seg` files; anything else in the directory is
        // ignored (the manifest, editor droppings, ...).
        let entries = match fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(source) => return io_err(dir, source),
        };
        let mut seqs: Vec<(u64, PathBuf)> = Vec::new();
        for entry in entries {
            let entry = match entry {
                Ok(entry) => entry,
                Err(source) => return io_err(dir, source),
            };
            let path = entry.path();
            if let Some(seq) = parse_segment_file_name(&path) {
                seqs.push((seq, path));
            }
        }
        seqs.sort_unstable_by_key(|&(seq, _)| seq);

        let mut segments = Vec::with_capacity(seqs.len());
        let mut dropped_torn_tail = false;
        let last_index = seqs.len().wrapping_sub(1);
        for (i, (seq, path)) in seqs.iter().enumerate() {
            if *seq != i as u64 {
                return corrupt(
                    dir,
                    format!("segment sequence gap: expected seq {i}, found {seq}"),
                );
            }
            let bytes = match fs::read(path) {
                Ok(bytes) => bytes,
                Err(source) => return io_err(path, source),
            };
            match decode_segment(&bytes) {
                Ok(segment) => {
                    if segment.seq != *seq {
                        return corrupt(
                            path,
                            format!("file named seq {seq} but header says {}", segment.seq),
                        );
                    }
                    segments.push(segment);
                }
                // A torn *final* segment is the expected crash residue: the
                // write of an unacknowledged seal never completed. Truncate
                // it away. Torn anywhere else, or corrupt anywhere at all,
                // is state fsync ordering cannot produce — fail loudly.
                Err(SegmentError::Torn { .. }) if i == last_index => {
                    if let Err(source) = fs::remove_file(path) {
                        return io_err(path, source);
                    }
                    sync_dir(dir)?;
                    dropped_torn_tail = true;
                }
                Err(err) => return corrupt(path, err.to_string()),
            }
        }

        let next_seq = segments.len() as u64;
        Ok(RecoveredLog {
            log: EventLog {
                dir: dir.to_path_buf(),
                init,
                next_seq,
                pending: Vec::new(),
            },
            segments,
            dropped_torn_tail,
        })
    }

    /// Opens the log at `dir` if its manifest exists, otherwise creates a
    /// fresh one. On open, the existing manifest's `Init` wins — the
    /// arguments are only used for creation.
    pub fn open_or_create(
        dir: impl AsRef<Path>,
        num_nodes: u64,
        directed: bool,
    ) -> Result<RecoveredLog> {
        let dir = dir.as_ref();
        if dir.join(MANIFEST_FILE).exists() {
            Self::open(dir)
        } else {
            Ok(RecoveredLog {
                log: Self::create(dir, num_nodes, directed)?,
                segments: Vec::new(),
                dropped_torn_tail: false,
            })
        }
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The `Init` record from the manifest: `(num_nodes, directed)`.
    pub fn init(&self) -> (u64, bool) {
        match self.init {
            LogRecord::Init {
                num_nodes,
                directed,
            } => (num_nodes, directed),
            _ => unreachable!("manifest decoding only accepts Init"),
        }
    }

    /// Number of durably sealed segments (also the next sequence number).
    pub fn segments_sealed(&self) -> u64 {
        self.next_seq
    }

    /// Number of event records buffered for the open (unsealed) segment.
    pub fn num_pending(&self) -> usize {
        self.pending.len()
    }

    /// Buffers one event record for the open segment. Nothing touches disk
    /// until [`EventLog::seal`].
    ///
    /// # Panics
    /// If handed a `Seal` or `Init` record — those are the log's own
    /// framing, not events.
    pub fn append(&mut self, record: LogRecord) {
        assert!(
            !matches!(record, LogRecord::Seal { .. } | LogRecord::Init { .. }),
            "append takes event records; seal/init are written by the log itself"
        );
        self.pending.push(record);
    }

    /// Durably seals the open segment under `label`: encodes header +
    /// buffered events + `Seal` record, writes the segment file, fsyncs it
    /// and the directory, and only then clears the buffer and advances the
    /// sequence. Returns the sequence number and the exact bytes written —
    /// the unit `/log/tail` ships to followers.
    ///
    /// On error nothing is advanced; the caller may retry, and a partial
    /// file left behind is exactly the torn tail [`EventLog::open`]
    /// truncates.
    pub fn seal(&mut self, label: i64) -> Result<Sealed> {
        let seq = self.next_seq;
        let bytes = encode_segment(seq, &self.pending, label);
        let path = segment_path(&self.dir, seq);
        write_durable(&path, &bytes, "log.seal.write", "log.seal.fsync")?;
        sync_dir(&self.dir)?;
        self.pending.clear();
        self.next_seq += 1;
        Ok(Sealed { seq, bytes })
    }

    /// Reads the exact on-disk bytes of sealed segment `seq` (for shipping
    /// to a follower that is catching up).
    pub fn segment_bytes(&self, seq: u64) -> Result<Vec<u8>> {
        let path = segment_path(&self.dir, seq);
        if egraph_fault::fired("log.segment.read").is_some() {
            return io_err(
                &path,
                egraph_fault::injected_io_error("log.segment.read", "segment read error"),
            );
        }
        match fs::read(&path) {
            Ok(bytes) => Ok(bytes),
            Err(source) => io_err(&path, source),
        }
    }
}

/// The file a segment with sequence number `seq` lives in.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:010}.seg"))
}

/// Parses `seg-<seq>.seg` file names; anything else returns `None`.
fn parse_segment_file_name(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("seg-")?.strip_suffix(".seg")?;
    if digits.len() != 10 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Reads and validates the manifest, returning its `Init` record.
fn read_manifest(path: &Path) -> Result<LogRecord> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(source) => return io_err(path, source),
    };
    if bytes.len() < 5 || bytes[..4] != MANIFEST_MAGIC {
        return corrupt(path, "bad manifest magic");
    }
    if bytes[4] != crate::segment::FORMAT_VERSION {
        return corrupt(path, format!("unsupported format version {}", bytes[4]));
    }
    let (record, consumed) = match decode_record(&bytes[5..]) {
        Ok(decoded) => decoded,
        Err(BinaryError::Truncated) => return corrupt(path, "manifest truncated"),
        Err(err) => return corrupt(path, err.to_string()),
    };
    if 5 + consumed != bytes.len() {
        return corrupt(path, "trailing bytes after the init record");
    }
    match record {
        init @ LogRecord::Init { .. } => Ok(init),
        other => corrupt(path, format!("manifest holds {other:?}, not Init")),
    }
}

/// Writes `bytes` to a fresh file at `path` and fsyncs it. `write_site`
/// and `fsync_site` are the failpoint names for the two failure classes:
/// a scripted *partial* at `write_site` leaves exactly the torn file a
/// crash mid-write would (and `File::create` truncates, so a retry
/// overwrites it cleanly); an *error* at `fsync_site` fails after the
/// bytes are fully written — the durability ack is lost but the file on
/// disk is complete and valid.
fn write_durable(path: &Path, bytes: &[u8], write_site: &str, fsync_site: &str) -> Result<()> {
    let result = (|| {
        let mut file = File::create(path)?;
        match egraph_fault::fired(write_site) {
            Some(egraph_fault::Fired::Partial(percent)) => {
                let keep = bytes.len() * usize::from(percent) / 100;
                file.write_all(&bytes[..keep])?;
                let _ = file.sync_all();
                return Err(egraph_fault::injected_io_error(write_site, "torn write"));
            }
            Some(egraph_fault::Fired::Error) => {
                return Err(egraph_fault::injected_io_error(write_site, "write error"));
            }
            None => {}
        }
        file.write_all(bytes)?;
        if egraph_fault::fired(fsync_site).is_some() {
            let _ = file.sync_all();
            return Err(egraph_fault::injected_io_error(fsync_site, "fsync error"));
        }
        file.sync_all()
    })();
    match result {
        Ok(()) => Ok(()),
        Err(source) => io_err(path, source),
    }
}

/// Fsyncs a directory so a freshly created (or removed) file name is
/// durable — on Linux, file creation is only durable once the parent
/// directory has been synced.
fn sync_dir(dir: &Path) -> Result<()> {
    if egraph_fault::fired("log.dir.fsync").is_some() {
        return io_err(
            dir,
            egraph_fault::injected_io_error("log.dir.fsync", "directory fsync error"),
        );
    }
    let result = File::open(dir).and_then(|handle| handle.sync_all());
    match result {
        Ok(()) => Ok(()),
        // Some filesystems refuse directory fsync; the file fsync already
        // happened, which is the best available on such hosts.
        Err(source) if source.kind() == io::ErrorKind::InvalidInput => Ok(()),
        Err(source) => io_err(dir, source),
    }
}

/// Reads and validates the manifest of the log at `dir` without opening
/// the log, returning `(num_nodes, directed)`.
pub fn read_log_init(dir: impl AsRef<Path>) -> Result<(u64, bool)> {
    match read_manifest(&dir.as_ref().join(MANIFEST_FILE))? {
        LogRecord::Init {
            num_nodes,
            directed,
        } => Ok((num_nodes, directed)),
        _ => unreachable!("read_manifest only returns Init"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique, self-cleaning temp directory (no tempfile crate in the
    /// offline build environment).
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("egraph-log-{tag}-{}-{n}", std::process::id()));
            let _ = fs::remove_dir_all(&path);
            TempDir(path)
        }
        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn insert(src: u32, dst: u32) -> LogRecord {
        LogRecord::Insert { src, dst }
    }

    #[test]
    fn create_seal_reopen_replays_everything() {
        let dir = TempDir::new("roundtrip");
        let mut log = EventLog::create(dir.path(), 5, true).unwrap();
        log.append(insert(0, 1));
        log.append(insert(1, 2));
        let sealed = log.seal(10).unwrap();
        assert_eq!(sealed.seq, 0);
        log.append(LogRecord::GrowNodes { num_nodes: 9 });
        log.append(insert(7, 8));
        log.seal(20).unwrap();
        assert_eq!(log.segments_sealed(), 2);
        drop(log);

        let recovered = EventLog::open(dir.path()).unwrap();
        assert!(!recovered.dropped_torn_tail);
        assert_eq!(recovered.log.init(), (5, true));
        assert_eq!(recovered.log.segments_sealed(), 2);
        assert_eq!(recovered.segments.len(), 2);
        assert_eq!(recovered.segments[0].label, 10);
        assert_eq!(
            recovered.segments[0].events,
            vec![insert(0, 1), insert(1, 2)]
        );
        assert_eq!(recovered.segments[1].seq, 1);
        assert_eq!(
            recovered.segments[1].events,
            vec![LogRecord::GrowNodes { num_nodes: 9 }, insert(7, 8)]
        );

        // The reopened log continues the sequence.
        let mut log = recovered.log;
        log.append(insert(2, 3));
        assert_eq!(log.seal(30).unwrap().seq, 2);
    }

    #[test]
    fn pending_events_are_not_durable_until_sealed() {
        let dir = TempDir::new("pending");
        let mut log = EventLog::create(dir.path(), 3, true).unwrap();
        log.append(insert(0, 1));
        log.seal(1).unwrap();
        log.append(insert(1, 2)); // never sealed
        assert_eq!(log.num_pending(), 1);
        drop(log);

        let recovered = EventLog::open(dir.path()).unwrap();
        assert_eq!(recovered.segments.len(), 1);
        assert_eq!(recovered.log.num_pending(), 0);
    }

    #[test]
    fn a_torn_tail_is_truncated_and_the_seq_is_reused() {
        let dir = TempDir::new("torn");
        let mut log = EventLog::create(dir.path(), 4, false).unwrap();
        log.append(insert(0, 1));
        log.seal(1).unwrap();
        log.append(insert(1, 2));
        log.append(insert(2, 3));
        log.seal(2).unwrap();

        // Tear the final segment mid-record.
        let tail = segment_path(dir.path(), 1);
        let full = fs::read(&tail).unwrap();
        fs::write(&tail, &full[..full.len() - 3]).unwrap();

        let recovered = EventLog::open(dir.path()).unwrap();
        assert!(recovered.dropped_torn_tail);
        assert_eq!(recovered.segments.len(), 1);
        assert_eq!(recovered.log.segments_sealed(), 1);
        assert!(!tail.exists(), "the torn file is gone");

        // Sealing again rewrites seq 1 cleanly.
        let mut log = recovered.log;
        log.append(insert(1, 2));
        assert_eq!(log.seal(2).unwrap().seq, 1);
        let reopened = EventLog::open(dir.path()).unwrap();
        assert_eq!(reopened.segments.len(), 2);
    }

    #[test]
    fn corruption_in_sealed_history_fails_loudly() {
        let dir = TempDir::new("corrupt");
        let mut log = EventLog::create(dir.path(), 4, true).unwrap();
        for label in 0..3 {
            log.append(insert(0, 1));
            log.seal(label).unwrap();
        }
        // Flip a byte in the *middle* segment: not a torn tail, must error.
        let mid = segment_path(dir.path(), 1);
        let mut bytes = fs::read(&mid).unwrap();
        let at = bytes.len() - 6;
        bytes[at] ^= 0x10;
        fs::write(&mid, &bytes).unwrap();
        assert!(matches!(
            EventLog::open(dir.path()),
            Err(LogError::Corrupt { .. })
        ));
    }

    #[test]
    fn sequence_gaps_fail_loudly() {
        let dir = TempDir::new("gap");
        let mut log = EventLog::create(dir.path(), 4, true).unwrap();
        for label in 0..3 {
            log.append(insert(0, 1));
            log.seal(label).unwrap();
        }
        fs::remove_file(segment_path(dir.path(), 1)).unwrap();
        assert!(matches!(
            EventLog::open(dir.path()),
            Err(LogError::Corrupt { .. })
        ));
    }

    #[test]
    fn create_refuses_an_existing_log_and_open_or_create_adopts_it() {
        let dir = TempDir::new("exists");
        let mut log = EventLog::create(dir.path(), 7, true).unwrap();
        log.seal(0).unwrap();
        assert!(matches!(
            EventLog::create(dir.path(), 7, true),
            Err(LogError::Io { .. })
        ));
        // open_or_create keeps the existing manifest even when handed
        // different parameters.
        let recovered = EventLog::open_or_create(dir.path(), 999, false).unwrap();
        assert_eq!(recovered.log.init(), (7, true));
        assert_eq!(recovered.segments.len(), 1);
    }

    #[test]
    fn segment_bytes_ships_exactly_what_was_sealed() {
        let dir = TempDir::new("ship");
        let mut log = EventLog::create(dir.path(), 4, true).unwrap();
        log.append(insert(0, 1));
        let sealed = log.seal(5).unwrap();
        assert_eq!(log.segment_bytes(0).unwrap(), sealed.bytes);
        let decoded = decode_segment(&sealed.bytes).unwrap();
        assert_eq!(decoded.label, 5);
        assert_eq!(decoded.events, vec![insert(0, 1)]);
    }

    #[test]
    fn an_open_log_with_no_segments_is_empty_not_an_error() {
        let dir = TempDir::new("empty");
        EventLog::create(dir.path(), 2, false).unwrap();
        let recovered = EventLog::open(dir.path()).unwrap();
        assert_eq!(recovered.log.segments_sealed(), 0);
        assert!(recovered.segments.is_empty());
        assert_eq!(read_log_init(dir.path()).unwrap(), (2, false));
    }
}
