//! Checkpoint files: atomically installed snapshots of sealed graph state.
//!
//! A checkpoint absorbs a prefix of the segment chain so recovery can skip
//! replaying it: `checkpoint-<seq>.bin` holds the payload a caller built
//! (for graphs, the `egraph-io` checkpoint codec's CSR columns + version)
//! covering every segment with sequence number `<= seq`. Its layout mirrors
//! the segment format:
//!
//! ```text
//! checkpoint := magic "EGCP" ++ format_version u8 ++ last_seq u64 LE
//!               ++ varint(payload_len) ++ payload ++ crc32(payload) u32 LE
//! ```
//!
//! Installation is atomic against crashes at *every* byte offset: the bytes
//! are written and fsynced to `checkpoint-<seq>.tmp`, then renamed into
//! place, then the directory is fsynced. A crash before the rename leaves a
//! `.tmp` file that readers ignore; a crash after it leaves a complete,
//! valid checkpoint. There is no window in which the installed name holds
//! torn bytes, which is what makes it safe for compaction to delete the
//! covered segments — strictly *after* the rename + directory fsync.
//!
//! Reading is paranoid in the other direction: magic, version, length and
//! CRC are all validated, and the file name's sequence number must match
//! the header's. A checkpoint that fails any check is reported (never
//! silently used); the recovery layer falls back to an older checkpoint or
//! to full replay.
//!
//! ## Failpoints
//!
//! | site | failure it injects |
//! |------|--------------------|
//! | `ckpt.write` | temp-file write fails (or tears partway) |
//! | `ckpt.fsync` | temp-file fsync fails after a complete write |
//! | `ckpt.rename` | crash window between fsync and rename |
//! | `ckpt.read` | reading a checkpoint back fails |

use std::fs;
use std::path::{Path, PathBuf};

use egraph_io::binary::{crc32, read_varint, write_varint};

use crate::log::{corrupt, file_len, io_err, sync_dir, write_durable, Result};
use crate::segment::FORMAT_VERSION;

/// First bytes of every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"EGCP";

/// Fixed header size: magic + version byte + `u64` last covered sequence.
pub const CHECKPOINT_HEADER_BYTES: usize = 4 + 1 + 8;

/// The file a checkpoint covering segments `..= last_seq` lives in.
pub fn checkpoint_path(dir: &Path, last_seq: u64) -> PathBuf {
    dir.join(format!("checkpoint-{last_seq:010}.bin"))
}

/// The temp file a checkpoint is staged in before its atomic rename.
fn checkpoint_tmp_path(dir: &Path, last_seq: u64) -> PathBuf {
    dir.join(format!("checkpoint-{last_seq:010}.tmp"))
}

/// Parses `checkpoint-<seq>.bin` file names; anything else (including the
/// `.tmp` staging residue a crash can leave) returns `None`.
fn parse_checkpoint_file_name(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("checkpoint-")?.strip_suffix(".bin")?;
    if digits.len() != 10 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Lists the last-covered sequence numbers of every *installed* checkpoint
/// in `dir`, ascending. Installed means renamed into place — staging
/// `.tmp` files are invisible here. Validity is not checked; that happens
/// per file at read time.
pub fn list_checkpoints(dir: &Path) -> Result<Vec<u64>> {
    let mut seqs = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(source) => return io_err(dir, source),
    };
    for entry in entries {
        let entry = match entry {
            Ok(entry) => entry,
            Err(source) => return io_err(dir, source),
        };
        if let Some(seq) = parse_checkpoint_file_name(&entry.path()) {
            seqs.push(seq);
        }
    }
    seqs.sort_unstable();
    Ok(seqs)
}

/// Encodes a complete checkpoint file: header, CRC-framed payload.
pub fn encode_checkpoint_file(last_seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(CHECKPOINT_HEADER_BYTES + payload.len() + 16);
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.push(FORMAT_VERSION);
    out.extend_from_slice(&last_seq.to_le_bytes());
    write_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Decodes and validates checkpoint file bytes, returning the last covered
/// sequence number and the payload. Used both on the recovery path (via
/// [`read_checkpoint`]) and by followers on bytes fetched over
/// `GET /checkpoint/latest`.
///
/// # Errors
/// A description of the first failed check. Torn and corrupt files are not
/// distinguished — either way the checkpoint is unusable and the caller
/// falls back.
pub fn decode_checkpoint_file(bytes: &[u8]) -> std::result::Result<(u64, Vec<u8>), String> {
    if bytes.len() < CHECKPOINT_HEADER_BYTES {
        return Err(format!(
            "{} bytes is shorter than the {CHECKPOINT_HEADER_BYTES}-byte header",
            bytes.len()
        ));
    }
    if bytes[..4] != CHECKPOINT_MAGIC {
        return Err("bad magic".into());
    }
    if bytes[4] != FORMAT_VERSION {
        return Err(format!("unsupported format version {}", bytes[4]));
    }
    let last_seq = u64::from_le_bytes(bytes[5..13].try_into().expect("8 header bytes"));
    let (len, used) = read_varint(&bytes[CHECKPOINT_HEADER_BYTES..])
        .map_err(|err| format!("payload length: {err}"))?;
    let payload_at = CHECKPOINT_HEADER_BYTES + used;
    let Ok(len) = usize::try_from(len) else {
        return Err(format!("payload length {len} exceeds usize"));
    };
    let expected = payload_at
        .checked_add(len)
        .and_then(|n| n.checked_add(4))
        .ok_or_else(|| format!("payload length {len} overflows"))?;
    if bytes.len() < expected {
        return Err(format!(
            "payload truncated: {} bytes present, {expected} framed",
            bytes.len()
        ));
    }
    if bytes.len() > expected {
        return Err(format!("{} trailing bytes", bytes.len() - expected));
    }
    let payload = &bytes[payload_at..payload_at + len];
    let stored = u32::from_le_bytes(bytes[expected - 4..].try_into().expect("4 crc bytes"));
    let computed = crc32(payload);
    if stored != computed {
        return Err(format!(
            "payload crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
        ));
    }
    Ok((last_seq, payload.to_vec()))
}

/// Durably installs a checkpoint covering segments `..= last_seq`:
/// write + fsync the staging `.tmp` (sites `ckpt.write` / `ckpt.fsync`),
/// rename it into place (site `ckpt.rename` models a crash in the window
/// between the two), fsync the directory. Returns the installed file's
/// size in bytes.
///
/// On any failure the installed name is untouched — either the old
/// checkpoint (if one existed) or nothing; the staging file may remain as
/// inert residue that readers ignore and the next install overwrites.
pub fn write_checkpoint(dir: &Path, last_seq: u64, payload: &[u8]) -> Result<u64> {
    let bytes = encode_checkpoint_file(last_seq, payload);
    let tmp = checkpoint_tmp_path(dir, last_seq);
    write_durable(&tmp, &bytes, "ckpt.write", "ckpt.fsync")?;
    let path = checkpoint_path(dir, last_seq);
    if egraph_fault::fired("ckpt.rename").is_some() {
        return io_err(
            &path,
            egraph_fault::injected_io_error("ckpt.rename", "checkpoint rename"),
        );
    }
    if let Err(source) = fs::rename(&tmp, &path) {
        return io_err(&path, source);
    }
    sync_dir(dir)?;
    Ok(bytes.len() as u64)
}

/// Reads and validates the checkpoint covering `..= last_seq` (site
/// `ckpt.read`), returning its payload. The header's sequence must match
/// the file name's.
///
/// # Errors
/// [`LogError::Io`](crate::log::LogError::Io) if the file cannot be read,
/// [`LogError::Corrupt`](crate::log::LogError::Corrupt) if any validation
/// fails — the caller treats both as "this candidate is unusable, fall
/// back".
pub fn read_checkpoint(dir: &Path, last_seq: u64) -> Result<Vec<u8>> {
    let path = checkpoint_path(dir, last_seq);
    if egraph_fault::fired("ckpt.read").is_some() {
        return io_err(
            &path,
            egraph_fault::injected_io_error("ckpt.read", "checkpoint read"),
        );
    }
    let bytes = match fs::read(&path) {
        Ok(bytes) => bytes,
        Err(source) => return io_err(&path, source),
    };
    let (stored_seq, payload) = match decode_checkpoint_file(&bytes) {
        Ok(decoded) => decoded,
        Err(detail) => return corrupt(&path, detail),
    };
    if stored_seq != last_seq {
        return corrupt(
            &path,
            format!("file named seq {last_seq} but header says {stored_seq}"),
        );
    }
    Ok(payload)
}

/// Deletes superseded checkpoints, keeping the newest `retain`, and sweeps
/// any staging `.tmp` residue older than the newest installed checkpoint.
/// Returns the retained checkpoints' last-covered sequences (ascending) —
/// the oldest of which bounds what segment compaction may delete.
///
/// Deletion failures are not fatal (an extra old checkpoint costs disk,
/// not correctness); the directory is fsynced when anything was removed.
pub fn retain_checkpoints(dir: &Path, retain: usize) -> Result<Vec<u64>> {
    let seqs = list_checkpoints(dir)?;
    let retain = retain.max(1);
    let cut = seqs.len().saturating_sub(retain);
    let mut removed = false;
    for &seq in &seqs[..cut] {
        if fs::remove_file(checkpoint_path(dir, seq)).is_ok() {
            removed = true;
        }
    }
    if let Some(&newest) = seqs.last() {
        for seq in list_checkpoint_tmps(dir) {
            if seq < newest && fs::remove_file(checkpoint_tmp_path(dir, seq)).is_ok() {
                removed = true;
            }
        }
    }
    if removed {
        sync_dir(dir)?;
    }
    Ok(seqs[cut..].to_vec())
}

/// Lists the sequences of staging `.tmp` checkpoint files (crash residue).
fn list_checkpoint_tmps(dir: &Path) -> Vec<u64> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut seqs = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(digits) = name
            .strip_prefix("checkpoint-")
            .and_then(|rest| rest.strip_suffix(".tmp"))
        {
            if digits.len() == 10 && digits.bytes().all(|b| b.is_ascii_digit()) {
                if let Ok(seq) = digits.parse() {
                    seqs.push(seq);
                }
            }
        }
    }
    seqs
}

/// Total on-disk size of every installed checkpoint in `dir` — the
/// `/stats` disk-accounting number. Staging residue is excluded (it is
/// invisible to recovery too).
pub fn checkpoints_bytes(dir: &Path) -> u64 {
    list_checkpoints(dir)
        .map(|seqs| {
            seqs.iter()
                .map(|&seq| file_len(&checkpoint_path(dir, seq)))
                .sum()
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogError;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("egraph-ckpt-{tag}-{}-{n}", std::process::id()));
            let _ = fs::remove_dir_all(&path);
            fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn write_read_round_trips_and_lists() {
        let dir = TempDir::new("roundtrip");
        let written = write_checkpoint(dir.path(), 3, b"hello graph").unwrap();
        assert_eq!(written, file_len(&checkpoint_path(dir.path(), 3)));
        write_checkpoint(dir.path(), 7, b"newer graph").unwrap();
        assert_eq!(list_checkpoints(dir.path()).unwrap(), vec![3, 7]);
        assert_eq!(read_checkpoint(dir.path(), 3).unwrap(), b"hello graph");
        assert_eq!(read_checkpoint(dir.path(), 7).unwrap(), b"newer graph");
        assert_eq!(
            checkpoints_bytes(dir.path()),
            file_len(&checkpoint_path(dir.path(), 3)) + file_len(&checkpoint_path(dir.path(), 7))
        );
    }

    #[test]
    fn every_truncation_and_every_bit_flip_is_rejected() {
        let bytes = encode_checkpoint_file(5, b"payload bytes here");
        assert_eq!(decode_checkpoint_file(&bytes).unwrap().0, 5);
        for cut in 0..bytes.len() {
            assert!(
                decode_checkpoint_file(&bytes[..cut]).is_err(),
                "cut at {cut} must be rejected"
            );
        }
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x01;
            // The only byte a flip may survive in is the sequence number
            // (it is not CRC-covered; the *name* cross-check in
            // read_checkpoint catches it).
            if let Ok((seq, payload)) = decode_checkpoint_file(&flipped) {
                assert_ne!(seq, 5, "flipping byte {i} must change something");
                assert_eq!(payload, b"payload bytes here");
                assert!((5..13).contains(&i));
            }
        }
        let mut extended = bytes.clone();
        extended.push(9);
        assert!(decode_checkpoint_file(&extended).is_err());
    }

    #[test]
    fn a_name_header_seq_mismatch_is_corrupt() {
        let dir = TempDir::new("mismatch");
        let bytes = encode_checkpoint_file(9, b"x");
        fs::write(checkpoint_path(dir.path(), 2), bytes).unwrap();
        assert!(matches!(
            read_checkpoint(dir.path(), 2),
            Err(LogError::Corrupt { .. })
        ));
    }

    #[test]
    fn staging_residue_is_invisible_and_swept() {
        let dir = TempDir::new("residue");
        // A crash mid-write leaves a torn .tmp; a crash pre-rename leaves a
        // complete one. Neither is listed.
        fs::write(checkpoint_tmp_path(dir.path(), 1), b"torn").unwrap();
        fs::write(
            checkpoint_tmp_path(dir.path(), 2),
            encode_checkpoint_file(2, b"complete"),
        )
        .unwrap();
        assert!(list_checkpoints(dir.path()).unwrap().is_empty());

        write_checkpoint(dir.path(), 4, b"real").unwrap();
        let kept = retain_checkpoints(dir.path(), 2).unwrap();
        assert_eq!(kept, vec![4]);
        assert!(!checkpoint_tmp_path(dir.path(), 1).exists());
        assert!(!checkpoint_tmp_path(dir.path(), 2).exists());
    }

    #[test]
    fn retain_keeps_the_newest_n() {
        let dir = TempDir::new("retain");
        for seq in [1u64, 4, 9, 12] {
            write_checkpoint(dir.path(), seq, b"p").unwrap();
        }
        assert_eq!(retain_checkpoints(dir.path(), 2).unwrap(), vec![9, 12]);
        assert_eq!(list_checkpoints(dir.path()).unwrap(), vec![9, 12]);
        // retain 0 is clamped to 1: the newest checkpoint always survives.
        assert_eq!(retain_checkpoints(dir.path(), 0).unwrap(), vec![12]);
    }
}
