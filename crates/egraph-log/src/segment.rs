//! The sealed-segment format: one file per sealed snapshot.
//!
//! A segment is the unit of durability *and* of replication — the same
//! bytes that are fsynced to disk on seal are shipped verbatim to followers
//! over `/log/tail`. Its layout:
//!
//! ```text
//! segment := magic "EGSG" ++ format_version u8 ++ seq u64 LE
//!            ++ frame(event_record)*
//!            ++ frame(Seal { label })
//! ```
//!
//! where `frame` is the CRC-framed record encoding of
//! [`egraph_io::binary`]. A segment is **valid** only if it parses to
//! exactly this shape: header, zero or more event records, one terminating
//! [`LogRecord::Seal`], nothing after it. Everything else is either a torn
//! tail ([`SegmentError::Torn`] — what a crash mid-write leaves) or
//! corruption ([`SegmentError::Corrupt`] — which recovery refuses loudly).

use egraph_io::binary::{decode_record, encode_record, BinaryError, LogRecord};

/// First bytes of every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"EGSG";

/// Current on-disk format version.
pub const FORMAT_VERSION: u8 = 1;

/// Fixed header size: magic + version byte + `u64` sequence number.
pub const SEGMENT_HEADER_BYTES: usize = 4 + 1 + 8;

/// A fully decoded, validated sealed segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedSegment {
    /// The segment's position in the log (0-based; also its file name).
    pub seq: u64,
    /// The sealed snapshot's exact time label.
    pub label: i64,
    /// The snapshot's event records, in append order (no `Seal`, no
    /// `Init`).
    pub events: Vec<LogRecord>,
}

/// Why segment bytes failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    /// The bytes stop before the segment's seal record does — a torn
    /// write. Expected at the log's tail after a crash; recovery truncates
    /// it away.
    Torn {
        /// Byte length of the torn input.
        len: usize,
    },
    /// The bytes are wrong, not merely short: bad magic, CRC mismatch, a
    /// record after the seal, a misplaced record kind. Never expected;
    /// recovery fails loudly.
    Corrupt(String),
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Torn { len } => {
                write!(f, "segment torn: {len} bytes end before the seal record")
            }
            SegmentError::Corrupt(detail) => write!(f, "segment corrupt: {detail}"),
        }
    }
}

impl std::error::Error for SegmentError {}

/// Encodes a complete segment: header, `events` in order, terminated by a
/// `Seal { label }` record. The returned buffer is exactly what goes to
/// disk and over the replication wire.
pub fn encode_segment(seq: u64, events: &[LogRecord], label: i64) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEGMENT_HEADER_BYTES + 10 * (events.len() + 1));
    out.extend_from_slice(&SEGMENT_MAGIC);
    out.push(FORMAT_VERSION);
    out.extend_from_slice(&seq.to_le_bytes());
    for event in events {
        debug_assert!(
            !matches!(event, LogRecord::Seal { .. } | LogRecord::Init { .. }),
            "only event records belong inside a segment body"
        );
        encode_record(event, &mut out);
    }
    encode_record(&LogRecord::Seal { label }, &mut out);
    out
}

/// Decodes and validates one complete segment.
///
/// # Errors
/// [`SegmentError::Torn`] when `bytes` is a (possibly empty) strict prefix
/// of a valid segment — i.e. everything present parses, but the seal
/// record hasn't arrived; [`SegmentError::Corrupt`] for anything
/// structurally wrong (magic, version, CRC, record after seal, `Init` or
/// nested `Seal` in the body).
pub fn decode_segment(bytes: &[u8]) -> Result<SealedSegment, SegmentError> {
    if bytes.len() < SEGMENT_HEADER_BYTES {
        // Short headers are torn only if they are a prefix of a valid
        // header; wrong bytes are corruption even when short.
        let expected: &[u8] = &SEGMENT_MAGIC;
        let have = bytes.len().min(4);
        if bytes[..have] != expected[..have] {
            return Err(SegmentError::Corrupt("bad magic".into()));
        }
        if bytes.len() >= 5 && bytes[4] != FORMAT_VERSION {
            return Err(SegmentError::Corrupt(format!(
                "unsupported format version {}",
                bytes[4]
            )));
        }
        return Err(SegmentError::Torn { len: bytes.len() });
    }
    if bytes[..4] != SEGMENT_MAGIC {
        return Err(SegmentError::Corrupt("bad magic".into()));
    }
    if bytes[4] != FORMAT_VERSION {
        return Err(SegmentError::Corrupt(format!(
            "unsupported format version {}",
            bytes[4]
        )));
    }
    let seq = u64::from_le_bytes(bytes[5..13].try_into().expect("8 header bytes"));

    let mut events = Vec::new();
    let mut offset = SEGMENT_HEADER_BYTES;
    loop {
        if offset == bytes.len() {
            // Records exhausted without a seal: a torn tail.
            return Err(SegmentError::Torn { len: bytes.len() });
        }
        let (record, frame_len) = match decode_record(&bytes[offset..]) {
            Ok(decoded) => decoded,
            Err(BinaryError::Truncated) => return Err(SegmentError::Torn { len: bytes.len() }),
            Err(BinaryError::Corrupt(detail)) => {
                return Err(SegmentError::Corrupt(format!(
                    "at offset {offset}: {detail}"
                )))
            }
        };
        offset += frame_len;
        match record {
            LogRecord::Seal { label } => {
                if offset != bytes.len() {
                    return Err(SegmentError::Corrupt(format!(
                        "{} bytes after the seal record",
                        bytes.len() - offset
                    )));
                }
                return Ok(SealedSegment { seq, label, events });
            }
            LogRecord::Init { .. } => {
                return Err(SegmentError::Corrupt(
                    "init record inside a segment body".into(),
                ))
            }
            event => events.push(event),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<LogRecord> {
        vec![
            LogRecord::GrowNodes { num_nodes: 6 },
            LogRecord::Insert { src: 0, dst: 1 },
            LogRecord::InsertUnique { src: 1, dst: 2 },
            LogRecord::Insert { src: 2, dst: 5 },
        ]
    }

    #[test]
    fn segments_round_trip() {
        for (seq, label, events) in [
            (0, 0i64, sample_events()),
            (7, -1_000_000_007, sample_events()),
            (u64::MAX, i64::MIN, Vec::new()), // empty seal is legal
        ] {
            let bytes = encode_segment(seq, &events, label);
            let decoded = decode_segment(&bytes).unwrap();
            assert_eq!(decoded, SealedSegment { seq, label, events });
        }
    }

    #[test]
    fn every_truncation_is_torn_and_every_extension_is_corrupt() {
        let bytes = encode_segment(3, &sample_events(), 42);
        for cut in 0..bytes.len() {
            assert!(
                matches!(
                    decode_segment(&bytes[..cut]),
                    Err(SegmentError::Torn { .. })
                ),
                "cut at {cut} must be torn"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(
            decode_segment(&extended),
            Err(SegmentError::Corrupt(_))
        ));
    }

    #[test]
    fn bad_magic_version_and_body_records_are_corrupt() {
        let good = encode_segment(0, &sample_events(), 1);

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            decode_segment(&bad_magic),
            Err(SegmentError::Corrupt(_))
        ));
        // Bad magic stays corrupt even truncated to one byte.
        assert!(matches!(
            decode_segment(&bad_magic[..1]),
            Err(SegmentError::Corrupt(_))
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(matches!(
            decode_segment(&bad_version),
            Err(SegmentError::Corrupt(_))
        ));

        // A CRC flip mid-body.
        let mut flipped = good.clone();
        let mid = SEGMENT_HEADER_BYTES + 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            decode_segment(&flipped),
            Err(SegmentError::Corrupt(_)) | Err(SegmentError::Torn { .. })
        ));

        // An Init record in the body.
        let mut with_init = Vec::new();
        with_init.extend_from_slice(&SEGMENT_MAGIC);
        with_init.push(FORMAT_VERSION);
        with_init.extend_from_slice(&0u64.to_le_bytes());
        egraph_io::binary::encode_record(
            &LogRecord::Init {
                num_nodes: 3,
                directed: true,
            },
            &mut with_init,
        );
        egraph_io::binary::encode_record(&LogRecord::Seal { label: 0 }, &mut with_init);
        assert!(matches!(
            decode_segment(&with_init),
            Err(SegmentError::Corrupt(_))
        ));
    }
}
