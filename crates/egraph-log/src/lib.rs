//! # egraph-log
//!
//! Durable segmented event log for evolving graphs — the storage engine
//! underneath `egraph-stream`'s crash recovery and `egraph-serve`'s
//! follower replication.
//!
//! The design follows the snapshot discipline of the search layer: the
//! *seal* is the durability boundary. Events appended between seals are
//! buffered in memory; [`log::EventLog::seal`] writes them as one
//! self-contained segment file (CRC-framed records, terminated by a `Seal`
//! record carrying the snapshot label) and fsyncs both the file and the
//! directory before returning. One sealed snapshot ↔ one segment file,
//! so:
//!
//! * **recovery** is a replay of the sealed segment chain (a torn final
//!   segment — the only residue a crash can leave — is truncated away;
//!   anything else fails loudly, never silently corrupting the graph);
//! * **replication** ships the exact sealed bytes to followers, who decode
//!   and apply them with the same [`segment::decode_segment`] the recovery
//!   path uses;
//! * **checkpoints** ([`checkpoint`]) bound both: an atomically installed
//!   `checkpoint-<seq>.bin` absorbs the segment prefix `..= seq`, so
//!   recovery replays only the suffix and compaction
//!   ([`log::EventLog::compact_through`]) may delete the covered files.
//!
//! This crate is graph-agnostic on purpose: it stores and retrieves
//! [`egraph_io::binary::LogRecord`]s and knows nothing about `LiveGraph`.
//! The mapping between events and records lives in `egraph-stream`'s
//! `durable` module, keeping the dependency arrow pointing one way.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod log;
pub mod segment;

pub use checkpoint::{
    checkpoint_path, checkpoints_bytes, decode_checkpoint_file, encode_checkpoint_file,
    list_checkpoints, read_checkpoint, retain_checkpoints, write_checkpoint,
};
pub use log::{read_log_init, EventLog, LogError, RecoveredLog, Sealed};
pub use segment::{decode_segment, encode_segment, SealedSegment, SegmentError};
