//! Single-flight admission: concurrent requests for the same descriptor
//! coalesce onto one computation.
//!
//! The cache already guarantees that sibling computations of the same
//! descriptor are *correct* (one install wins, everyone shares the winning
//! `Arc`) — but each sibling still pays the full traversal. Under a burst of
//! identical cold queries that is N traversals for one answer. This module
//! makes admission explicit: the first request for a descriptor becomes the
//! **leader** and computes; every request arriving while the leader is in
//! flight **parks its connection** in the leader's slot and consumes no
//! execution resources at all. When the leader finishes it serves its own
//! connection and every parked one from the same serialized bytes.
//!
//! Parking the *connection* rather than blocking the handling thread is the
//! load-bearing choice: request handlers run as detached jobs on the shared
//! rayon pool, and a pool worker blocked on a condvar is a worker the
//! leader might need for its own frontier-parallel traversal. A parked
//! follower returns its worker to the pool immediately, so a burst of 10k
//! identical requests holds 10k sockets but exactly one thread.
//!
//! The slot map is keyed by the builder's canonical [`QueryDescriptor`], so
//! two requests coalesce exactly when the cache would consider them the
//! same query — the admission layer and the cache can never disagree about
//! identity.

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use egraph_query::QueryDescriptor;

/// One in-flight computation: the connections waiting on it, and a latch
/// the leader can watch (test hook) as they arrive.
#[derive(Debug, Default)]
struct Slot {
    waiters: Mutex<Vec<TcpStream>>,
    arrived: Condvar,
}

/// The admission table: descriptor → in-flight slot.
#[derive(Debug, Default)]
pub struct SingleFlight {
    slots: Mutex<HashMap<QueryDescriptor, Arc<Slot>>>,
}

/// The outcome of [`SingleFlight::admit`].
pub enum Admission<'a> {
    /// This request leads: compute, then call [`LeaderGuard::finish`] and
    /// answer every returned connection. The request's own stream is handed
    /// back untouched.
    Leader(TcpStream, LeaderGuard<'a>),
    /// The connection was parked in an existing flight; the leader now owns
    /// responding to it. The calling handler is done.
    Parked,
}

/// Proof of leadership for one descriptor. Dropping the guard without
/// calling [`LeaderGuard::finish`] (a panicking engine, say) closes the
/// flight and answers parked connections with a `500`, so followers are
/// never stranded and the next request for the descriptor starts fresh.
pub struct LeaderGuard<'a> {
    flight: &'a SingleFlight,
    descriptor: QueryDescriptor,
    slot: Arc<Slot>,
    finished: bool,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl SingleFlight {
    /// An empty admission table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits one request for `descriptor` carrying `stream`.
    ///
    /// If a flight for the descriptor is already open, the stream is parked
    /// in it ([`Admission::Parked`]); otherwise a flight opens and the
    /// caller leads. A stream is parked only while its slot is still in the
    /// table (both locks are taken in table → slot order, and
    /// [`LeaderGuard::finish`] drains under the same ordering), so a parked
    /// connection can never miss its leader's answer.
    pub fn admit<'a>(&'a self, descriptor: &QueryDescriptor, stream: TcpStream) -> Admission<'a> {
        let mut slots = lock(&self.slots);
        if let Some(slot) = slots.get(descriptor) {
            let slot = Arc::clone(slot);
            lock(&slot.waiters).push(stream);
            drop(slots);
            slot.arrived.notify_all();
            return Admission::Parked;
        }
        let slot = Arc::new(Slot::default());
        slots.insert(descriptor.clone(), Arc::clone(&slot));
        Admission::Leader(
            stream,
            LeaderGuard {
                flight: self,
                descriptor: descriptor.clone(),
                slot,
                finished: false,
            },
        )
    }

    /// Number of open flights (tests / stats).
    pub fn open_flights(&self) -> usize {
        lock(&self.slots).len()
    }

    fn close(&self, descriptor: &QueryDescriptor, slot: &Slot) -> Vec<TcpStream> {
        // Hold the table lock across the drain: `admit` parks streams while
        // holding it, so nothing can slip into the slot between its removal
        // from the table and the drain.
        let mut slots = lock(&self.slots);
        slots.remove(descriptor);
        let drained = std::mem::take(&mut *lock(&slot.waiters));
        drop(slots);
        drained
    }
}

impl LeaderGuard<'_> {
    /// Blocks until at least `count` connections are parked in this flight.
    ///
    /// A determinism hook for tests (via
    /// [`ServerConfig::hold_leader_until_waiters`](crate::ServerConfig)):
    /// holding the leader until every racing request has parked makes
    /// "16 concurrent requests → 1 computation + 15 coalesced" assertable
    /// rather than probabilistic. Never used in production serving.
    /// The wait is bounded (30 s): if the environment cannot deliver the
    /// expected concurrency — a thread pool too small to run the racing
    /// requests, say — the leader proceeds and the test fails on its
    /// counts instead of hanging the suite.
    pub fn wait_for_waiters(&self, count: usize) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let mut waiters = lock(&self.slot.waiters);
        while waiters.len() < count {
            let now = std::time::Instant::now();
            if now >= deadline {
                return;
            }
            let (guard, _) = self
                .slot
                .arrived
                .wait_timeout(waiters, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            waiters = guard;
        }
    }

    /// Closes the flight and returns every parked connection. New requests
    /// for the descriptor admitted after this point start a fresh flight —
    /// important, because the graph may have moved and their answer with it.
    pub fn finish(mut self) -> Vec<TcpStream> {
        self.finished = true;
        self.flight.close(&self.descriptor, &self.slot)
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        // The leader died without publishing: answer parked connections
        // with a 500 so they are not stranded until their socket times out.
        let stranded = self.flight.close(&self.descriptor, &self.slot);
        let body = crate::http::error_body("the computation leading this request failed");
        for mut stream in stranded {
            let _ = crate::http::write_response(&mut stream, 500, &body);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::ids::TemporalNode;
    use egraph_query::Search;
    use std::io::BufReader;
    use std::net::TcpListener;

    fn descriptor(node: u32) -> QueryDescriptor {
        Search::from(TemporalNode::from_raw(node, 0)).descriptor()
    }

    /// A connected socket pair via a throwaway loopback listener.
    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn first_request_leads_and_later_ones_park() {
        let flight = SingleFlight::new();
        let (_c1, s1) = socket_pair();
        let (_c2, s2) = socket_pair();
        let (_c3, s3) = socket_pair();

        let Admission::Leader(_own, guard) = flight.admit(&descriptor(0), s1) else {
            panic!("first request must lead");
        };
        assert!(matches!(
            flight.admit(&descriptor(0), s2),
            Admission::Parked
        ));
        assert!(matches!(
            flight.admit(&descriptor(0), s3),
            Admission::Parked
        ));
        assert_eq!(flight.open_flights(), 1);

        let parked = guard.finish();
        assert_eq!(parked.len(), 2);
        assert_eq!(flight.open_flights(), 0);
    }

    #[test]
    fn distinct_descriptors_fly_independently() {
        let flight = SingleFlight::new();
        let (_c1, s1) = socket_pair();
        let (_c2, s2) = socket_pair();
        let a = flight.admit(&descriptor(0), s1);
        let b = flight.admit(&descriptor(1), s2);
        assert!(matches!(a, Admission::Leader(..)));
        assert!(matches!(b, Admission::Leader(..)));
        assert_eq!(flight.open_flights(), 2);
    }

    #[test]
    fn after_finish_the_next_request_leads_a_fresh_flight() {
        let flight = SingleFlight::new();
        let (_c1, s1) = socket_pair();
        let (_c2, s2) = socket_pair();
        let Admission::Leader(_own, guard) = flight.admit(&descriptor(0), s1) else {
            panic!("must lead");
        };
        guard.finish();
        assert!(matches!(
            flight.admit(&descriptor(0), s2),
            Admission::Leader(..)
        ));
    }

    #[test]
    fn a_dropped_leader_answers_parked_connections_with_500() {
        let flight = SingleFlight::new();
        let (_c1, s1) = socket_pair();
        let (client, s2) = socket_pair();
        let Admission::Leader(_own, guard) = flight.admit(&descriptor(0), s1) else {
            panic!("must lead");
        };
        assert!(matches!(
            flight.admit(&descriptor(0), s2),
            Admission::Parked
        ));
        drop(guard); // leader dies without finish()

        let response = crate::http::read_response(&mut BufReader::new(client)).unwrap();
        assert_eq!(response.status, 500);
        assert!(response.body.contains("failed"));
        assert_eq!(flight.open_flights(), 0);
    }

    #[test]
    fn wait_for_waiters_latches_on_arrivals() {
        let flight = SingleFlight::new();
        let (_c1, s1) = socket_pair();
        let Admission::Leader(_own, guard) = flight.admit(&descriptor(0), s1) else {
            panic!("must lead");
        };
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for _ in 0..3 {
                    let (_c, s) = socket_pair();
                    assert!(matches!(flight.admit(&descriptor(0), s), Admission::Parked));
                }
            });
            guard.wait_for_waiters(3);
        });
        assert_eq!(guard.finish().len(), 3);
    }
}
