//! The `egraph-serve` binary: run the evolving-graph HTTP server from the
//! command line, in any of its three roles.
//!
//! ```text
//! egraph-serve [--nodes N] [--undirected] [--port P]            # in-memory
//! egraph-serve --data-dir DIR [--nodes N] [--undirected] ...    # durable leader
//! egraph-serve --follow HOST:PORT [--port P]                    # follower replica
//! ```
//!
//! `--data-dir` boots from the event log in `DIR` if one exists (replaying
//! every sealed segment) and creates a fresh log otherwise; `--nodes` and
//! `--undirected` only apply on creation. `--follow` tails the given
//! leader and serves reads from the replica.

use std::net::SocketAddr;
use std::time::Duration;

use egraph_serve::{Server, ServerConfig};
use egraph_stream::{DurableGraph, LiveGraph};

struct Args {
    data_dir: Option<String>,
    follow: Option<SocketAddr>,
    nodes: usize,
    undirected: bool,
    port: Option<u16>,
}

const USAGE: &str = "usage: egraph-serve [--data-dir DIR | --follow HOST:PORT] \
                     [--nodes N] [--undirected] [--port P]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        data_dir: None,
        follow: None,
        nodes: 16,
        undirected: false,
        port: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |what: &str| argv.next().ok_or(format!("{flag} needs a {what}"));
        match flag.as_str() {
            "--data-dir" => args.data_dir = Some(value("directory")?),
            "--follow" => {
                let addr = value("leader address")?;
                args.follow = Some(
                    addr.parse()
                        .map_err(|_| format!("unparseable leader address {addr:?}"))?,
                );
            }
            "--nodes" => {
                let n = value("count")?;
                args.nodes = n
                    .parse()
                    .map_err(|_| format!("unparseable --nodes {n:?}"))?;
            }
            "--undirected" => args.undirected = true,
            "--port" => {
                let p = value("port")?;
                args.port = Some(p.parse().map_err(|_| format!("unparseable --port {p:?}"))?);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.data_dir.is_some() && args.follow.is_some() {
        return Err("--data-dir and --follow are mutually exclusive".into());
    }
    Ok(args)
}

fn run(args: Args) -> Result<Server, String> {
    let config = ServerConfig {
        bind: args
            .port
            .map(|port| SocketAddr::from(([127, 0, 0, 1], port))),
        ..ServerConfig::default()
    };
    if let Some(leader) = args.follow {
        return Server::start_follower(leader, config).map_err(|e| e.to_string());
    }
    if let Some(dir) = args.data_dir {
        let recovered = DurableGraph::open_or_create(&dir, args.nodes, !args.undirected)
            .map_err(|e| e.to_string())?;
        eprintln!(
            "egraph-serve: data dir {dir}: {} segment(s) replayed{}",
            recovered.segments_replayed,
            if recovered.dropped_torn_tail {
                ", torn tail truncated"
            } else {
                ""
            }
        );
        return Server::start_durable(recovered, config).map_err(|e| e.to_string());
    }
    let live = if args.undirected {
        LiveGraph::undirected(args.nodes)
    } else {
        LiveGraph::directed(args.nodes)
    };
    Server::start(live, config).map_err(|e| e.to_string())
}

fn main() {
    let server = match parse_args().and_then(run) {
        Ok(server) => server,
        Err(message) => {
            eprintln!("egraph-serve: {message}");
            std::process::exit(2);
        }
    };
    println!("egraph-serve: listening on http://{}", server.addr());
    // Serve until killed; the accept loop lives on its own thread.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
