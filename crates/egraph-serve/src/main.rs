//! The `egraph-serve` binary: run the evolving-graph HTTP server from the
//! command line, in any of its three roles.
//!
//! ```text
//! egraph-serve [--nodes N] [--undirected] [--port P]            # in-memory
//! egraph-serve --data-dir DIR [--nodes N] [--undirected] ...    # durable leader
//! egraph-serve --follow HOST:PORT [--port P]                    # follower replica
//! ```
//!
//! `--data-dir` boots from the event log in `DIR` if one exists (replaying
//! every sealed segment) and creates a fresh log otherwise; `--nodes` and
//! `--undirected` only apply on creation. `--follow` tails the given
//! leader and serves reads from the replica.

use std::net::SocketAddr;
use std::time::Duration;

use egraph_serve::{Server, ServerConfig};
use egraph_stream::{DurableGraph, LiveGraph};

struct Args {
    data_dir: Option<String>,
    follow: Option<SocketAddr>,
    nodes: usize,
    undirected: bool,
    port: Option<u16>,
    max_inflight: Option<usize>,
    retry_after: Option<u64>,
    forward_attempts: Option<u32>,
    forward_backoff_ms: Option<u64>,
    checkpoint_every: Option<u64>,
    retain_checkpoints: Option<usize>,
}

const USAGE: &str = "usage: egraph-serve [--data-dir DIR | --follow HOST:PORT] \
                     [--nodes N] [--undirected] [--port P] \
                     [--max-inflight N] [--retry-after SECS] \
                     [--forward-attempts N] [--forward-backoff-ms MS] \
                     [--checkpoint-every N] [--retain-checkpoints N]";

const HELP: &str = "\
Serve evolving-graph search over HTTP, in one of three roles.

Roles (mutually exclusive):
  --data-dir DIR        durable leader: write-ahead log every event into
                        DIR, replaying an existing log on boot
  --follow HOST:PORT    follower replica: tail the leader's sealed-segment
                        stream, serve reads locally, forward writes
  (neither)             plain in-memory server; events die with the process

Graph creation (ignored when an existing log is replayed):
  --nodes N             initial node-universe size        [default: 16]
  --undirected          build an undirected graph         [default: directed]

Serving:
  --port P              listen on 127.0.0.1:P             [default: ephemeral]
  --max-inflight N      admission bound: shed connections with 503 +
                        Retry-After once N handlers are running
                                                          [default: 256]
  --retry-after SECS    Retry-After value stamped on shed responses
                                                          [default: 1]

Follower write-forwarding:
  --forward-attempts N  attempts (first included) to reach the leader
                        before answering 503              [default: 4]
  --forward-backoff-ms MS
                        base backoff between attempts (doubles, jittered);
                        also the tail reconnect pause     [default: 50]

Checkpointing (durable leader only):
  --checkpoint-every N  install a checkpoint of the sealed graph every N
                        seals and compact covered segments; 0 disables
                                                          [default: 0]
  --retain-checkpoints N
                        installed checkpoints kept on disk; must be >= 1
                                                          [default: 2]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        data_dir: None,
        follow: None,
        nodes: 16,
        undirected: false,
        port: None,
        max_inflight: None,
        retry_after: None,
        forward_attempts: None,
        forward_backoff_ms: None,
        checkpoint_every: None,
        retain_checkpoints: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |what: &str| argv.next().ok_or(format!("{flag} needs a {what}"));
        fn parsed<T: std::str::FromStr>(flag: &str, raw: String) -> Result<T, String> {
            raw.parse()
                .map_err(|_| format!("unparseable {flag} {raw:?}"))
        }
        match flag.as_str() {
            "--data-dir" => args.data_dir = Some(value("directory")?),
            "--follow" => {
                let addr = value("leader address")?;
                args.follow = Some(
                    addr.parse()
                        .map_err(|_| format!("unparseable leader address {addr:?}"))?,
                );
            }
            "--nodes" => args.nodes = parsed(&flag, value("count")?)?,
            "--undirected" => args.undirected = true,
            "--port" => args.port = Some(parsed(&flag, value("port")?)?),
            "--max-inflight" => args.max_inflight = Some(parsed(&flag, value("count")?)?),
            "--retry-after" => args.retry_after = Some(parsed(&flag, value("seconds")?)?),
            "--forward-attempts" => args.forward_attempts = Some(parsed(&flag, value("count")?)?),
            "--forward-backoff-ms" => {
                args.forward_backoff_ms = Some(parsed(&flag, value("milliseconds")?)?)
            }
            "--checkpoint-every" => args.checkpoint_every = Some(parsed(&flag, value("count")?)?),
            "--retain-checkpoints" => {
                args.retain_checkpoints = Some(parsed(&flag, value("count")?)?)
            }
            "--help" | "-h" => {
                println!("{USAGE}\n\n{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.data_dir.is_some() && args.follow.is_some() {
        return Err("--data-dir and --follow are mutually exclusive".into());
    }
    Ok(args)
}

fn run(args: Args) -> Result<Server, String> {
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        bind: args
            .port
            .map(|port| SocketAddr::from(([127, 0, 0, 1], port))),
        max_inflight: args.max_inflight.unwrap_or(defaults.max_inflight),
        retry_after_secs: args.retry_after.unwrap_or(defaults.retry_after_secs),
        forward_attempts: args.forward_attempts.unwrap_or(defaults.forward_attempts),
        forward_backoff: args
            .forward_backoff_ms
            .map(Duration::from_millis)
            .unwrap_or(defaults.forward_backoff),
        checkpoint_every: args.checkpoint_every.unwrap_or(defaults.checkpoint_every),
        retain_checkpoints: args
            .retain_checkpoints
            .unwrap_or(defaults.retain_checkpoints),
        ..defaults
    };
    config.validate()?;
    if let Some(leader) = args.follow {
        return Server::start_follower(leader, config).map_err(|e| e.to_string());
    }
    if let Some(dir) = args.data_dir {
        let recovered = DurableGraph::open_or_create(&dir, args.nodes, !args.undirected)
            .map_err(|e| e.to_string())?;
        let from_checkpoint = match recovered.checkpoint_seq {
            Some(seq) => format!("checkpoint {seq} + "),
            None => String::new(),
        };
        eprintln!(
            "egraph-serve: data dir {dir}: recovered from {from_checkpoint}{} segment(s) \
             ({} event(s) replayed){}",
            recovered.segments_replayed,
            recovered.recovery_replayed_events,
            if recovered.dropped_torn_tail {
                ", torn tail truncated"
            } else {
                ""
            }
        );
        return Server::start_durable(recovered, config).map_err(|e| e.to_string());
    }
    let live = if args.undirected {
        LiveGraph::undirected(args.nodes)
    } else {
        LiveGraph::directed(args.nodes)
    };
    Server::start(live, config).map_err(|e| e.to_string())
}

fn main() {
    // Operator fault scripting: EGRAPH_FAILPOINTS arms failpoint sites in
    // debug builds (release parses and validates the spec but every site
    // stays a no-op). A malformed spec is a refusal to start, not a
    // silently un-simulated fault.
    match egraph_fault::script_from_env() {
        Ok(0) => {}
        Ok(n) => eprintln!("egraph-serve: {n} failpoint site(s) scripted via EGRAPH_FAILPOINTS"),
        Err(message) => {
            eprintln!("egraph-serve: bad EGRAPH_FAILPOINTS: {message}");
            std::process::exit(2);
        }
    }
    let server = match parse_args().and_then(run) {
        Ok(server) => server,
        Err(message) => {
            eprintln!("egraph-serve: {message}");
            std::process::exit(2);
        }
    };
    println!("egraph-serve: listening on http://{}", server.addr());
    // Serve until killed; the accept loop lives on its own thread.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
