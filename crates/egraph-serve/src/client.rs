//! A minimal blocking client for the serving dialect.
//!
//! Exists so tests, benches and examples exercise the server over real
//! sockets with the same wire format a `curl` user would see — not through
//! in-process shortcuts that would let the HTTP layer rot untested.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use egraph_query::codec::descriptor_to_json;
use egraph_query::QueryDescriptor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::http::{self, Response};

/// How [`Client::post_with_retry`] paces itself when the server sheds load
/// (`503`) or the transport fails. Backoff is exponential with
/// deterministic jitter (seeded, so tests replay exactly); a `Retry-After`
/// header from the server overrides the computed backoff for that round.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts, the first included. `1` means no retries.
    pub attempts: u32,
    /// Base backoff before the first retry; doubles each round.
    pub backoff: Duration,
    /// Ceiling on the (pre-jitter) backoff.
    pub max_backoff: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            seed: 0x5EED_0FF5,
        }
    }
}

/// A client bound to one server address. Cheap to clone; each request opens
/// its own connection (the dialect is one request per connection).
#[derive(Clone, Debug)]
pub struct Client {
    addr: SocketAddr,
    timeout: Option<Duration>,
}

impl Client {
    /// A client for the server at `addr` with a 10-second I/O timeout.
    pub fn new(addr: SocketAddr) -> Self {
        Client {
            addr,
            timeout: Some(Duration::from_secs(10)),
        }
    }

    /// Overrides the per-connection I/O timeout (`None` disables).
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    fn connect(&self) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(self.timeout)?;
        stream.set_write_timeout(self.timeout)?;
        Ok(stream)
    }

    fn send_request(&self, method: &str, path: &str, body: &str) -> std::io::Result<TcpStream> {
        let mut stream = self.connect()?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.addr,
            body.len(),
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        Ok(stream)
    }

    /// Sends one request and reads the complete response.
    pub fn request(&self, method: &str, path: &str, body: &str) -> std::io::Result<Response> {
        let stream = self.send_request(method, path, body)?;
        http::read_response(&mut BufReader::new(stream))
    }

    /// `POST path` with a JSON body.
    pub fn post(&self, path: &str, body: &str) -> std::io::Result<Response> {
        self.request("POST", path, body)
    }

    /// `POST path`, retrying on `503` responses and transport failures
    /// under `policy`. A `503` carrying `Retry-After: h` sleeps a jittered
    /// `1.0–1.5 × h` seconds; otherwise the sleep is a jittered
    /// `0.5–1.0 ×` of the exponential backoff. Returns the first non-`503`
    /// response together with how many retries it took; when every attempt
    /// sheds, the final `503` is returned (the caller sees the server's
    /// answer, not a synthesized error), and when every attempt fails at
    /// the transport, the last error is.
    pub fn post_with_retry(
        &self,
        path: &str,
        body: &str,
        policy: &RetryPolicy,
    ) -> std::io::Result<(Response, u32)> {
        assert!(policy.attempts >= 1, "a retry policy needs >= 1 attempt");
        let mut rng = SmallRng::seed_from_u64(policy.seed);
        let mut backoff = policy.backoff;
        let mut retries = 0u32;
        loop {
            let outcome = self.post(path, body);
            let retryable = match &outcome {
                Ok(response) => response.status == 503,
                Err(_) => true,
            };
            if !retryable || retries + 1 >= policy.attempts {
                return outcome.map(|response| (response, retries));
            }
            let sleep = match &outcome {
                Ok(response) => match response.retry_after {
                    Some(secs) => Duration::from_secs(secs).mul_f64(rng.gen_range(1.0f64..1.5)),
                    None => backoff.mul_f64(rng.gen_range(0.5f64..1.0)),
                },
                Err(_) => backoff.mul_f64(rng.gen_range(0.5f64..1.0)),
            };
            if !sleep.is_zero() {
                std::thread::sleep(sleep);
            }
            backoff = (backoff * 2).min(policy.max_backoff);
            retries += 1;
        }
    }

    /// `GET path`.
    pub fn get(&self, path: &str) -> std::io::Result<Response> {
        self.request("GET", path, "")
    }

    /// `POST /query` with `descriptor`, encoded through the canonical codec.
    pub fn query(&self, descriptor: &QueryDescriptor) -> std::io::Result<Response> {
        self.post("/query", &descriptor_to_json(descriptor))
    }

    /// `POST /subscribe` with `descriptor`. On a `200` the returned
    /// [`Subscription`] yields the initial frame first, then one frame per
    /// snapshot the server seals; a non-`200` is returned as `Err` with the
    /// server's error body in the message.
    pub fn subscribe(&self, descriptor: &QueryDescriptor) -> std::io::Result<Subscription> {
        let stream = self.send_request("POST", "/subscribe", &descriptor_to_json(descriptor))?;
        let mut reader = BufReader::new(stream);
        let head = http::read_response_head(&mut reader)?;
        if head.status != 200 {
            let body = match head.framing {
                http::BodyFraming::Sized(n) => {
                    let mut raw = vec![0u8; n];
                    std::io::Read::read_exact(&mut reader, &mut raw)?;
                    String::from_utf8_lossy(&raw).into_owned()
                }
                http::BodyFraming::Chunked => String::new(),
            };
            return Err(std::io::Error::other(format!(
                "subscribe rejected with {}: {body}",
                head.status
            )));
        }
        if !matches!(head.framing, http::BodyFraming::Chunked) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "subscription responses must be chunked",
            ));
        }
        Ok(Subscription { reader })
    }

    /// `GET /log/tail?from=<from>` against a durable leader. Returns the
    /// stream's init frame (the graph's birth parameters plus the leader's
    /// current seal count) and a [`LogTail`] yielding one sealed segment
    /// at a time — first the catch-up backlog from `from`, then live
    /// pushes as the leader seals. This is the whole replication wire:
    /// [`crate::Server::start_follower`] is built on it, and external
    /// tools can use it to mirror a log.
    pub fn tail_log(&self, from: u64) -> std::io::Result<(TailInit, LogTail)> {
        let path = format!("/log/tail?from={from}");
        let stream = self.send_request("GET", &path, "")?;
        let mut reader = BufReader::new(stream);
        let head = http::read_response_head(&mut reader)?;
        if head.status != 200 {
            let body = match head.framing {
                http::BodyFraming::Sized(n) => {
                    let mut raw = vec![0u8; n];
                    std::io::Read::read_exact(&mut reader, &mut raw)?;
                    String::from_utf8_lossy(&raw).into_owned()
                }
                http::BodyFraming::Chunked => String::new(),
            };
            return Err(std::io::Error::other(format!(
                "tail rejected with {}: {body}",
                head.status
            )));
        }
        if !matches!(head.framing, http::BodyFraming::Chunked) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "tail responses must be chunked",
            ));
        }
        let init_frame = http::read_chunk(&mut reader)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "tail stream closed before its init frame",
            )
        })?;
        let init = parse_tail_init(init_frame.trim())?;
        Ok((init, LogTail { reader }))
    }

    /// `GET /checkpoint/latest` against a durable leader: the newest
    /// installed checkpoint, already unframed and CRC-checked. Returns the
    /// checkpoint's sequence number (the last log segment it absorbs) and
    /// its payload bytes — decode with [`egraph_io::decode_checkpoint`].
    /// `Ok(None)` means the leader has no checkpoint yet; bootstrap by
    /// tailing from 0 instead.
    pub fn fetch_checkpoint(&self) -> std::io::Result<Option<(u64, Vec<u8>)>> {
        let stream = self.send_request("GET", "/checkpoint/latest", "")?;
        let mut reader = BufReader::new(stream);
        let head = http::read_response_head(&mut reader)?;
        let raw = match head.framing {
            http::BodyFraming::Sized(n) => {
                let mut raw = vec![0u8; n];
                std::io::Read::read_exact(&mut reader, &mut raw)?;
                raw
            }
            http::BodyFraming::Chunked => {
                return Err(invalid("checkpoint responses must be sized".into()))
            }
        };
        match head.status {
            200 => {}
            404 => return Ok(None),
            status => {
                return Err(std::io::Error::other(format!(
                    "checkpoint fetch rejected with {status}: {}",
                    String::from_utf8_lossy(&raw)
                )))
            }
        }
        let (last_seq, payload) = egraph_log::decode_checkpoint_file(&raw).map_err(invalid)?;
        Ok(Some((last_seq, payload)))
    }
}

/// The first frame of a tail stream: how to construct the follower's graph
/// and how far the leader's log currently reaches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TailInit {
    /// The leader graph's initial node-universe size (growth events are in
    /// the segments themselves).
    pub num_nodes: usize,
    /// Whether the leader's graph is directed.
    pub directed: bool,
    /// The leader's sealed-segment count when the stream opened.
    pub latest: u64,
}

/// One sealed segment received off a tail stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TailSegment {
    /// The segment's sequence number.
    pub seq: u64,
    /// The leader's sealed-segment count when this segment was shipped —
    /// `latest - (seq + 1)` is the follower's lag after applying it.
    pub latest: u64,
    /// The segment's exact bytes, as sealed on the leader's disk; decode
    /// with [`egraph_log::decode_segment`].
    pub bytes: Vec<u8>,
}

fn invalid(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

fn parse_tail_init(frame: &str) -> std::io::Result<TailInit> {
    let value = egraph_io::parse_value(frame).map_err(|e| invalid(e.to_string()))?;
    let object = value
        .as_object("tail init frame")
        .map_err(|e| invalid(e.to_string()))?;
    let init = object
        .get("init")
        .and_then(|v| v.as_object("init"))
        .map_err(|e| invalid(e.to_string()))?;
    Ok(TailInit {
        num_nodes: init
            .get("num_nodes")
            .and_then(|v| v.as_usize("num_nodes"))
            .map_err(|e| invalid(e.to_string()))?,
        directed: init
            .get("directed")
            .and_then(|v| v.as_bool("directed"))
            .map_err(|e| invalid(e.to_string()))?,
        latest: object
            .get("latest")
            .and_then(|v| v.as_usize("latest"))
            .map_err(|e| invalid(e.to_string()))? as u64,
    })
}

/// A replication stream: yields sealed segments as the leader ships them.
pub struct LogTail {
    reader: BufReader<TcpStream>,
}

impl LogTail {
    /// Blocks for the next segment. `Ok(None)` means the leader closed the
    /// stream (shutdown); `Err` a transport failure, read timeout, or a
    /// malformed frame.
    pub fn next_segment(&mut self) -> std::io::Result<Option<TailSegment>> {
        let Some(header) = http::read_chunk(&mut self.reader)? else {
            return Ok(None);
        };
        let value = egraph_io::parse_value(header.trim()).map_err(|e| invalid(e.to_string()))?;
        let object = value
            .as_object("tail segment header")
            .map_err(|e| invalid(e.to_string()))?;
        let seq = object
            .get("seq")
            .and_then(|v| v.as_usize("seq"))
            .map_err(|e| invalid(e.to_string()))? as u64;
        let len = object
            .get("len")
            .and_then(|v| v.as_usize("len"))
            .map_err(|e| invalid(e.to_string()))?;
        let latest = object
            .get("latest")
            .and_then(|v| v.as_usize("latest"))
            .map_err(|e| invalid(e.to_string()))? as u64;
        let bytes = http::read_chunk_bytes(&mut self.reader)?.ok_or_else(|| {
            invalid("tail stream ended between a segment header and its bytes".into())
        })?;
        if bytes.len() != len {
            return Err(invalid(format!(
                "segment header declared {len} bytes but the chunk carries {}",
                bytes.len()
            )));
        }
        Ok(Some(TailSegment { seq, latest, bytes }))
    }

    /// Overrides the read timeout on the underlying stream (`None` lets
    /// the tail block indefinitely between seals).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// A second handle to the underlying socket — `shutdown` on it wakes a
    /// read blocked in [`LogTail::next_segment`] (how a follower stops its
    /// tail thread).
    pub fn try_clone_stream(&self) -> std::io::Result<TcpStream> {
        self.reader.get_ref().try_clone()
    }
}

/// A standing-query stream: reads push frames as the server seals
/// snapshots. Dropping it closes the connection, which the server notices
/// at its next push and unregisters the subscription.
pub struct Subscription {
    reader: BufReader<TcpStream>,
}

impl Subscription {
    /// Blocks for the next frame. `Ok(None)` means the server closed the
    /// stream (shutdown); `Err` a transport failure or read timeout.
    pub fn next_frame(&mut self) -> std::io::Result<Option<String>> {
        match http::read_chunk(&mut self.reader)? {
            Some(payload) => Ok(Some(payload.trim_end_matches('\n').to_string())),
            None => Ok(None),
        }
    }
}
