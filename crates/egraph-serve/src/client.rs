//! A minimal blocking client for the serving dialect.
//!
//! Exists so tests, benches and examples exercise the server over real
//! sockets with the same wire format a `curl` user would see — not through
//! in-process shortcuts that would let the HTTP layer rot untested.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use egraph_query::codec::descriptor_to_json;
use egraph_query::QueryDescriptor;

use crate::http::{self, Response};

/// A client bound to one server address. Cheap to clone; each request opens
/// its own connection (the dialect is one request per connection).
#[derive(Clone, Debug)]
pub struct Client {
    addr: SocketAddr,
    timeout: Option<Duration>,
}

impl Client {
    /// A client for the server at `addr` with a 10-second I/O timeout.
    pub fn new(addr: SocketAddr) -> Self {
        Client {
            addr,
            timeout: Some(Duration::from_secs(10)),
        }
    }

    /// Overrides the per-connection I/O timeout (`None` disables).
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    fn connect(&self) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(self.timeout)?;
        stream.set_write_timeout(self.timeout)?;
        Ok(stream)
    }

    fn send_request(&self, method: &str, path: &str, body: &str) -> std::io::Result<TcpStream> {
        let mut stream = self.connect()?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.addr,
            body.len(),
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        Ok(stream)
    }

    /// Sends one request and reads the complete response.
    pub fn request(&self, method: &str, path: &str, body: &str) -> std::io::Result<Response> {
        let stream = self.send_request(method, path, body)?;
        http::read_response(&mut BufReader::new(stream))
    }

    /// `POST path` with a JSON body.
    pub fn post(&self, path: &str, body: &str) -> std::io::Result<Response> {
        self.request("POST", path, body)
    }

    /// `GET path`.
    pub fn get(&self, path: &str) -> std::io::Result<Response> {
        self.request("GET", path, "")
    }

    /// `POST /query` with `descriptor`, encoded through the canonical codec.
    pub fn query(&self, descriptor: &QueryDescriptor) -> std::io::Result<Response> {
        self.post("/query", &descriptor_to_json(descriptor))
    }

    /// `POST /subscribe` with `descriptor`. On a `200` the returned
    /// [`Subscription`] yields the initial frame first, then one frame per
    /// snapshot the server seals; a non-`200` is returned as `Err` with the
    /// server's error body in the message.
    pub fn subscribe(&self, descriptor: &QueryDescriptor) -> std::io::Result<Subscription> {
        let stream = self.send_request("POST", "/subscribe", &descriptor_to_json(descriptor))?;
        let mut reader = BufReader::new(stream);
        let (status, framing) = http::read_response_head(&mut reader)?;
        if status != 200 {
            let body = match framing {
                http::BodyFraming::Sized(n) => {
                    let mut raw = vec![0u8; n];
                    std::io::Read::read_exact(&mut reader, &mut raw)?;
                    String::from_utf8_lossy(&raw).into_owned()
                }
                http::BodyFraming::Chunked => String::new(),
            };
            return Err(std::io::Error::other(format!(
                "subscribe rejected with {status}: {body}"
            )));
        }
        if !matches!(framing, http::BodyFraming::Chunked) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "subscription responses must be chunked",
            ));
        }
        Ok(Subscription { reader })
    }
}

/// A standing-query stream: reads push frames as the server seals
/// snapshots. Dropping it closes the connection, which the server notices
/// at its next push and unregisters the subscription.
pub struct Subscription {
    reader: BufReader<TcpStream>,
}

impl Subscription {
    /// Blocks for the next frame. `Ok(None)` means the server closed the
    /// stream (shutdown); `Err` a transport failure or read timeout.
    pub fn next_frame(&mut self) -> std::io::Result<Option<String>> {
        match http::read_chunk(&mut self.reader)? {
            Some(payload) => Ok(Some(payload.trim_end_matches('\n').to_string())),
            None => Ok(None),
        }
    }
}
