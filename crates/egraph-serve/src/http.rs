//! A deliberately small HTTP/1.1 codec over blocking sockets.
//!
//! The build environment has no registry access, so rather than pulling in a
//! server framework this module implements exactly the slice of HTTP/1.1 the
//! serving layer speaks: one request per connection (`Connection: close` on
//! every response), `Content-Length` bodies on requests, and either
//! `Content-Length` or `Transfer-Encoding: chunked` on responses — chunked
//! is what keeps a subscription connection open while the server pushes one
//! frame per sealed snapshot.
//!
//! Both sides of the dialect live here (request parsing + response writing
//! for the server, response parsing + chunk reading for [`crate::Client`]),
//! so the two cannot drift apart.

use std::io::{self, BufRead, Write};

/// Upper bound on the request line plus headers. Requests are tiny JSON
/// documents; anything past this is hostile or broken.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request: method, path, and the (possibly empty) UTF-8 body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// The request method, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// The request target, e.g. `/query`.
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
}

/// Why a request could not be read. The server maps each variant to a
/// status code without killing the accept loop.
#[derive(Debug)]
pub enum RequestError {
    /// The connection failed or closed before a full request arrived; there
    /// is nobody to answer, so the handler just drops the socket.
    Io(io::Error),
    /// The request was syntactically broken — answered with `400` and a
    /// structured JSON error body.
    Malformed(String),
    /// The declared body exceeds the server's bound — answered with `413`
    /// *without reading the body*, so an oversized request costs the server
    /// only its header bytes.
    BodyTooLarge {
        /// What the request declared.
        declared: usize,
        /// The server's configured bound.
        limit: usize,
    },
}

impl From<io::Error> for RequestError {
    fn from(err: io::Error) -> Self {
        RequestError::Io(err)
    }
}

/// Reads one request (head + body) from `reader`, enforcing
/// [`MAX_HEAD_BYTES`] and the caller's `max_body` bound.
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> Result<Request, RequestError> {
    let request_line = read_head_line(reader, &mut 0)?;
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("request line has no path".into()))?
        .to_string();
    match parts.next() {
        Some(version) if version.starts_with("HTTP/1.") => {}
        Some(other) => {
            return Err(RequestError::Malformed(format!(
                "unsupported protocol version {other:?}"
            )))
        }
        None => {
            return Err(RequestError::Malformed(
                "request line has no version".into(),
            ))
        }
    }

    let mut content_length: Option<usize> = None;
    let mut head_bytes = request_line.len();
    loop {
        let line = read_head_line(reader, &mut head_bytes)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Malformed(format!(
                "header line without a colon: {line:?}"
            )));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let parsed: usize = value.parse().map_err(|_| {
                    RequestError::Malformed(format!("unparseable content-length {value:?}"))
                })?;
                if content_length.replace(parsed).is_some() {
                    return Err(RequestError::Malformed(
                        "duplicate content-length header".into(),
                    ));
                }
            }
            // Chunked *requests* are not part of the dialect; rejecting the
            // header beats silently misreading the framing.
            "transfer-encoding" => {
                return Err(RequestError::Malformed(
                    "chunked request bodies are not supported".into(),
                ))
            }
            _ => {}
        }
    }

    let declared = content_length.unwrap_or(0);
    if declared > max_body {
        return Err(RequestError::BodyTooLarge {
            declared,
            limit: max_body,
        });
    }
    let mut raw = vec![0u8; declared];
    reader.read_exact(&mut raw)?;
    let body = String::from_utf8(raw)
        .map_err(|_| RequestError::Malformed("request body is not UTF-8".into()))?;
    Ok(Request { method, path, body })
}

/// Reads one CRLF-terminated head line, charging it against
/// [`MAX_HEAD_BYTES`]. A bare `\n` terminator is tolerated (curl always
/// sends `\r\n`; hand-rolled test clients may not).
fn read_head_line<R: BufRead>(
    reader: &mut R,
    head_bytes: &mut usize,
) -> Result<String, RequestError> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 || !line.ends_with('\n') {
        // Zero bytes, or bytes with no terminator before EOF: the peer
        // closed mid-request; there is no request to answer.
        return Err(RequestError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-request",
        )));
    }
    *head_bytes += n;
    if *head_bytes > MAX_HEAD_BYTES {
        return Err(RequestError::Malformed(format!(
            "request head exceeds {MAX_HEAD_BYTES} bytes"
        )));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Human-readable reason phrase for the status codes the server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        410 => "Gone",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete `Connection: close` response with a JSON body.
pub fn write_response(stream: &mut impl Write, status: u16, body: &str) -> io::Result<()> {
    write_response_with_retry_after(stream, status, body, None)
}

/// Like [`write_response`], optionally adding a `Retry-After: <secs>`
/// header — how a load-shedding `503` tells clients when to come back.
pub fn write_response_with_retry_after(
    stream: &mut impl Write,
    status: u16,
    body: &str,
    retry_after: Option<u64>,
) -> io::Result<()> {
    let retry_header = match retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{retry_header}Connection: close\r\n\r\n",
        status_reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes a complete `Connection: close` response carrying raw bytes
/// (`application/octet-stream`) — how `GET /checkpoint/latest` ships a
/// checkpoint file verbatim, CRC framing included.
pub fn write_response_bytes(stream: &mut impl Write, status: u16, body: &[u8]) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/octet-stream\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Starts a streaming (chunked) `200` response; the body follows as
/// [`write_chunk`] calls, terminated by [`write_final_chunk`].
pub fn write_chunked_head(stream: &mut impl Write) -> io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
    )?;
    stream.flush()
}

/// Writes one chunk carrying `payload` plus a trailing newline (the newline
/// gives subscribers line-delimited frames regardless of chunk boundaries).
pub fn write_chunk(stream: &mut impl Write, payload: &str) -> io::Result<()> {
    write!(stream, "{:x}\r\n", payload.len() + 1)?;
    stream.write_all(payload.as_bytes())?;
    stream.write_all(b"\n\r\n")?;
    stream.flush()
}

/// Writes one chunk carrying raw bytes, with no trailing newline — the
/// framing the replication stream uses to ship sealed segment files
/// verbatim (segments are binary; a text terminator would corrupt them).
pub fn write_chunk_bytes(stream: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    write!(stream, "{:x}\r\n", payload.len())?;
    stream.write_all(payload)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminates a chunked response.
pub fn write_final_chunk(stream: &mut impl Write) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// A client-side view of a response: status code and the full body.
/// Chunked responses are read frame-by-frame instead, via [`read_chunk`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// The response body.
    pub body: String,
    /// The `Retry-After` header's value in seconds, if the server sent one
    /// (a load-shedding `503` does).
    pub retry_after: Option<u64>,
}

/// What a response head declared about its body framing.
pub enum BodyFraming {
    /// `Content-Length: n`.
    Sized(usize),
    /// `Transfer-Encoding: chunked` — read frames with [`read_chunk`].
    Chunked,
}

/// A parsed response head: the status, how the body is framed, and the
/// retry hint (if any) before the body has been read.
pub struct ResponseHead {
    /// The status code.
    pub status: u16,
    /// How the body is framed.
    pub framing: BodyFraming,
    /// The `Retry-After` header's value in seconds, if present.
    pub retry_after: Option<u64>,
}

/// Reads a response head, returning the status and how the body is framed.
pub fn read_response_head<R: BufRead>(reader: &mut R) -> io::Result<ResponseHead> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let status_line = read_head_line(reader, &mut 0).map_err(request_error_to_io)?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("unparseable status line {status_line:?}")))?;
    let mut framing = BodyFraming::Sized(0);
    let mut retry_after = None;
    loop {
        let line = read_head_line(reader, &mut 0).map_err(request_error_to_io)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        match name.trim().to_ascii_lowercase().as_str() {
            "content-length" => {
                let n = value
                    .trim()
                    .parse()
                    .map_err(|_| bad(format!("unparseable content-length {value:?}")))?;
                framing = BodyFraming::Sized(n);
            }
            "transfer-encoding" if value.trim().eq_ignore_ascii_case("chunked") => {
                framing = BodyFraming::Chunked;
            }
            // Only the delta-seconds form is part of the dialect (the
            // HTTP-date form never is emitted by this server).
            "retry-after" => retry_after = value.trim().parse().ok(),
            _ => {}
        }
    }
    Ok(ResponseHead {
        status,
        framing,
        retry_after,
    })
}

/// Reads a complete non-chunked response.
pub fn read_response<R: BufRead>(reader: &mut R) -> io::Result<Response> {
    let head = read_response_head(reader)?;
    let body = match head.framing {
        BodyFraming::Sized(n) => {
            let mut raw = vec![0u8; n];
            reader.read_exact(&mut raw)?;
            String::from_utf8(raw)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not UTF-8"))?
        }
        BodyFraming::Chunked => {
            let mut body = String::new();
            while let Some(chunk) = read_chunk(reader)? {
                body.push_str(&chunk);
            }
            body
        }
    };
    Ok(Response {
        status: head.status,
        body,
        retry_after: head.retry_after,
    })
}

/// Reads one chunk of a chunked response; `None` means the final chunk
/// arrived and the stream is done.
pub fn read_chunk<R: BufRead>(reader: &mut R) -> io::Result<Option<String>> {
    match read_chunk_bytes(reader)? {
        Some(raw) => {
            let payload = String::from_utf8(raw)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "chunk is not UTF-8"))?;
            Ok(Some(payload))
        }
        None => Ok(None),
    }
}

/// Reads one chunk as raw bytes (no UTF-8 requirement) — the counterpart
/// of [`write_chunk_bytes`], used for segment payloads on the replication
/// stream. `None` means the final chunk arrived.
pub fn read_chunk_bytes<R: BufRead>(reader: &mut R) -> io::Result<Option<Vec<u8>>> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let size_line = read_head_line(reader, &mut 0).map_err(request_error_to_io)?;
    let size = usize::from_str_radix(size_line.trim(), 16)
        .map_err(|_| bad(format!("unparseable chunk size {size_line:?}")))?;
    if size == 0 {
        // Trailer section: skip to the blank line.
        loop {
            let line = read_head_line(reader, &mut 0).map_err(request_error_to_io)?;
            if line.is_empty() {
                break;
            }
        }
        return Ok(None);
    }
    let mut raw = vec![0u8; size];
    reader.read_exact(&mut raw)?;
    let mut crlf = [0u8; 2];
    reader.read_exact(&mut crlf)?;
    if &crlf != b"\r\n" {
        return Err(bad("chunk not CRLF-terminated".into()));
    }
    Ok(Some(raw))
}

fn request_error_to_io(err: RequestError) -> io::Error {
    match err {
        RequestError::Io(err) => err,
        RequestError::Malformed(msg) => io::Error::new(io::ErrorKind::InvalidData, msg),
        RequestError::BodyTooLarge { declared, limit } => io::Error::new(
            io::ErrorKind::InvalidData,
            format!("body of {declared} bytes exceeds {limit}"),
        ),
    }
}

/// Serializes `message` as the server's structured JSON error body.
pub fn error_body(message: &str) -> String {
    let mut out = String::with_capacity(message.len() + 12);
    out.push_str("{\"error\": ");
    egraph_io::write_json_string(&mut out, message);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str, max_body: usize) -> Result<Request, RequestError> {
        read_request(&mut BufReader::new(raw.as_bytes()), max_body)
    }

    #[test]
    fn parses_a_post_with_a_body() {
        let raw = "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        let req = parse(raw, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.body, "{\"a\":1}");
    }

    #[test]
    fn parses_a_bodyless_get_with_bare_newlines() {
        let req = parse("GET /stats HTTP/1.1\nHost: x\n\n", 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats");
        assert_eq!(req.body, "");
    }

    #[test]
    fn oversized_declared_bodies_are_rejected_before_reading_them() {
        // Only the head is present: the rejection must come from the
        // declaration alone, not from draining a body we refuse to read.
        let raw = "POST /query HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        match parse(raw, 1024) {
            Err(RequestError::BodyTooLarge { declared, limit }) => {
                assert_eq!((declared, limit), (999_999, 1024));
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn malformed_heads_are_malformed_not_io() {
        for raw in [
            "POST\r\n\r\n",
            "POST /query\r\n\r\n",
            "POST /query SPDY/3\r\n\r\n",
            "POST /query HTTP/1.1\r\nContent-Length: seven\r\n\r\n",
            "POST /query HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 1\r\n\r\nz",
            "POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            "POST /query HTTP/1.1\r\nno colon here\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw, 1024), Err(RequestError::Malformed(_))),
                "{raw:?} must be Malformed"
            );
        }
    }

    #[test]
    fn truncated_requests_are_io_errors() {
        for raw in [
            "",
            "POST /query HT",
            "POST /query HTTP/1.1\r\nContent-Length: 9\r\n\r\n{}",
        ] {
            assert!(
                matches!(parse(raw, 1024), Err(RequestError::Io(_))),
                "{raw:?} must be Io"
            );
        }
    }

    #[test]
    fn response_round_trips() {
        let mut wire = Vec::new();
        write_response(&mut wire, 422, "{\"error\": \"nope\"}").unwrap();
        let response = read_response(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(response.status, 422);
        assert_eq!(response.body, "{\"error\": \"nope\"}");
        assert_eq!(response.retry_after, None);
    }

    #[test]
    fn retry_after_round_trips_on_a_shed_response() {
        let mut wire = Vec::new();
        write_response_with_retry_after(&mut wire, 503, "{\"error\": \"overloaded\"}", Some(2))
            .unwrap();
        let response = read_response(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(response.status, 503);
        assert_eq!(response.retry_after, Some(2));
        assert_eq!(response.body, "{\"error\": \"overloaded\"}");
    }

    #[test]
    fn chunked_frames_round_trip_in_order() {
        let mut wire = Vec::new();
        write_chunked_head(&mut wire).unwrap();
        write_chunk(&mut wire, "{\"seq\":0}").unwrap();
        write_chunk(&mut wire, "{\"seq\":1}").unwrap();
        write_final_chunk(&mut wire).unwrap();

        let mut reader = BufReader::new(wire.as_slice());
        let head = read_response_head(&mut reader).unwrap();
        assert_eq!(head.status, 200);
        assert!(matches!(head.framing, BodyFraming::Chunked));
        assert_eq!(read_chunk(&mut reader).unwrap().unwrap(), "{\"seq\":0}\n");
        assert_eq!(read_chunk(&mut reader).unwrap().unwrap(), "{\"seq\":1}\n");
        assert_eq!(read_chunk(&mut reader).unwrap(), None);
    }

    #[test]
    fn binary_chunks_round_trip_untouched_between_text_frames() {
        // The replication stream interleaves JSON header chunks with raw
        // binary segment chunks; both framings must coexist on one stream.
        let segment: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        let mut wire = Vec::new();
        write_chunked_head(&mut wire).unwrap();
        write_chunk(&mut wire, "{\"seq\": 0}").unwrap();
        write_chunk_bytes(&mut wire, &segment).unwrap();
        write_final_chunk(&mut wire).unwrap();

        let mut reader = BufReader::new(wire.as_slice());
        let head = read_response_head(&mut reader).unwrap();
        assert_eq!(head.status, 200);
        assert_eq!(read_chunk(&mut reader).unwrap().unwrap(), "{\"seq\": 0}\n");
        assert_eq!(read_chunk_bytes(&mut reader).unwrap().unwrap(), segment);
        assert_eq!(read_chunk_bytes(&mut reader).unwrap(), None);
    }

    #[test]
    fn binary_responses_round_trip_every_byte() {
        let body: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        let mut wire = Vec::new();
        write_response_bytes(&mut wire, 200, &body).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        let head = read_response_head(&mut reader).unwrap();
        assert_eq!(head.status, 200);
        match head.framing {
            BodyFraming::Sized(n) => {
                let mut raw = vec![0u8; n];
                std::io::Read::read_exact(&mut reader, &mut raw).unwrap();
                assert_eq!(raw, body);
            }
            BodyFraming::Chunked => panic!("binary responses are sized, not chunked"),
        }
    }

    #[test]
    fn error_bodies_escape_their_message() {
        assert_eq!(
            error_body("bad \"window\"\n"),
            "{\"error\": \"bad \\\"window\\\"\\n\"}"
        );
    }
}
