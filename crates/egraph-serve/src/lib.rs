//! # egraph-serve
//!
//! A real network serving layer for evolving-graph search: a hand-rolled
//! HTTP/1.1 server over `std::net`, speaking the workspace's serde-free
//! JSON dialect, with **single-flight admission** in front of the
//! [`QueryCache`](egraph_stream::QueryCache) and **standing-query push**
//! driven by snapshot seals.
//!
//! The build environment has no registry access, so there is no framework
//! underneath — the HTTP codec ([`http`]), admission layer
//! ([`singleflight`]) and server loop are plain `std` + the workspace's
//! in-tree rayon shim, which also executes every request handler as a
//! detached pool job.
//!
//! ## Quickstart
//!
//! ```
//! use egraph_core::ids::{NodeId, TemporalNode};
//! use egraph_query::Search;
//! use egraph_serve::{Client, Server, ServerConfig};
//! use egraph_stream::LiveGraph;
//!
//! // A graph with one sealed snapshot...
//! let mut live = LiveGraph::directed(4);
//! live.insert(NodeId(0), NodeId(1)).unwrap();
//! live.seal_snapshot(0).unwrap();
//!
//! // ...served over a loopback socket.
//! let server = Server::start(live, ServerConfig::default()).unwrap();
//! let client = Client::new(server.addr());
//!
//! // Query over the wire: the body is the builder's canonical descriptor.
//! let descriptor = Search::from(TemporalNode::from_raw(0, 0)).descriptor();
//! let response = client.query(&descriptor).unwrap();
//! assert_eq!(response.status, 200);
//! assert!(response.body.contains("\"kind\":\"hops\""));
//!
//! // Push new data and seal; subscribers (none here) would get a frame.
//! let response = client
//!     .post("/ingest", r#"{"events": [[1, 2]], "seal": 1}"#)
//!     .unwrap();
//! assert_eq!(response.status, 200);
//! assert!(response.body.contains("\"num_sealed\": 2"));
//! ```
//!
//! The same dialect works from `curl`:
//!
//! ```text
//! curl -s localhost:PORT/query -d '{"sources": [[0, 0]]}'
//! curl -s localhost:PORT/ingest -d '{"events": [[1, 2]], "seal": 7}'
//! curl -sN localhost:PORT/subscribe -d '{"sources": [[0, 0]]}'   # streams frames
//! curl -s localhost:PORT/stats
//! ```
//!
//! ## The three serving tiers
//!
//! 1. **Peek** — a current cache entry is served off a shard read lock;
//!    hot standing queries cost an `Arc` bump and one serialization.
//! 2. **Single-flight** — concurrent requests for the same (canonical)
//!    descriptor coalesce: one leader computes, every follower *parks its
//!    connection* — not a thread — and is answered by the leader from the
//!    same bytes. A burst of N identical cold queries does one traversal,
//!    counted as 1 miss + (N−1) [`coalesced`](egraph_stream::CacheStats).
//! 3. **Compute** — through the cache, so repairs follow the invalidation
//!    matrix (extend where the descriptor allows, recompute otherwise) and
//!    the next burst starts at tier 1.
//!
//! ## Standing queries
//!
//! `POST /subscribe` holds the connection open (chunked transfer encoding)
//! and pushes a frame per sealed snapshot: `{"seq", "version", "label",
//! "segments_sealed", "segments_replayed", "follower_lag_seals",
//! "outcome", "result"}`. Frames are generated through the same cache as
//! `/query`, so a subscription to an extendable query is advanced
//! incrementally, not recomputed. Seal→broadcast sections are serialized —
//! every subscriber sees every seal, in order, exactly once.
//!
//! ## Durability & replication
//!
//! [`Server::start_durable`] write-ahead logs every ingested event into an
//! `egraph-log` segment directory and fsyncs each seal before
//! acknowledging it; after a crash or restart,
//! [`DurableGraph::open`](egraph_stream::DurableGraph::open) (or the
//! `--data-dir` flag of the `egraph-serve` binary) replays the log and the
//! server resumes byte-identically. [`Server::start_follower`] tails a
//! leader's sealed-segment stream over `GET /log/tail` (see
//! [`Client::tail_log`]) and serves reads and subscriptions from its own
//! replica and cache — delta-sync read scaling on the same wire format the
//! disk uses. A follower *forwards* `/ingest` to its leader with bounded
//! retries, so clients may write to any server in the group.
//!
//! ## Overload & fault tolerance
//!
//! Admission is bounded ([`ServerConfig::max_inflight`]): past the bound,
//! connections are shed with `503` + `Retry-After` straight from the
//! accept thread, and [`Client::post_with_retry`] honors the hint with
//! jittered backoff ([`RetryPolicy`]). The whole write/replication path is
//! instrumented with `egraph-fault` failpoints (zero-cost in release
//! builds); the workspace's chaos suite (`tests/chaos.rs`) scripts them to
//! prove the durability contract under injected fsync failures, torn
//! writes, crashes and overload.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod http;
pub mod server;
pub mod singleflight;

pub use client::{Client, LogTail, RetryPolicy, Subscription, TailInit, TailSegment};
pub use http::Response;
pub use server::{Server, ServerConfig, ServerStats};

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::client::{Client, LogTail, RetryPolicy, Subscription, TailInit, TailSegment};
    pub use crate::http::Response;
    pub use crate::server::{Server, ServerConfig, ServerStats};
}
