//! The server: accept loop, routing, request handlers, graceful shutdown.
//!
//! One dedicated thread owns `accept()`; every accepted connection becomes a
//! detached job on the shared rayon pool (`rayon::spawn`), so request
//! handling, cache repairs and frontier-parallel traversals all draw from
//! the same thread budget instead of spawning unbounded per-connection
//! threads. A handler blocked on slow client I/O is bounded by the
//! per-connection socket timeouts ([`ServerConfig::io_timeout`]).
//!
//! ## Routes
//!
//! | route | body | answer |
//! |---|---|---|
//! | `POST /query` | a [`QueryDescriptor`] JSON document | the `SearchResult` JSON document |
//! | `POST /subscribe` | a descriptor | chunked stream: one frame now, one per sealed snapshot |
//! | `POST /ingest` | `{"grow_nodes": n?, "events": [[u,v],...], "seal": label?}` | `{"version", "num_sealed", "sealed_index"}` |
//! | `GET /stats` | — | cache + server counters |
//! | `GET /health` | — | `{"ok": true, ...}` |
//!
//! Malformed bodies get structured `400`s (`{"error": ...}`), oversized
//! bodies `413`, semantically failing queries (root outside the sealed
//! range, say) `422` — all without disturbing the accept loop.
//!
//! ## Admission and the serve path
//!
//! `/query` serves in three tiers, cheapest first:
//!
//! 1. [`QueryCache::peek`] — a current entry is served straight off the
//!    shard read lock; hot standing queries never touch admission.
//! 2. Single-flight ([`crate::singleflight`]) — the first cold request
//!    leads and computes through [`QueryCache::execute_traced`]; identical
//!    requests arriving meanwhile park their connections and are answered
//!    by the leader from the same serialized bytes (counted as
//!    [`CacheStats::coalesced`]).
//! 3. The computation itself — which still lands in the cache, so the
//!    *next* burst starts at tier 1.
//!
//! ## Writes and push
//!
//! `/ingest` takes the graph's write lock for the mutation only, then (if
//! the request sealed a snapshot) re-executes every standing subscription
//! through the cache — extendable queries advance incrementally per the
//! cache's invalidation matrix — and pushes one frame per subscriber.
//! `seal_lock` serializes ingest→broadcast sections and subscription
//! registration, so every subscriber sees every seal exactly once, in
//! order, with no gap between its initial frame and the first push.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::Duration;

use egraph_query::codec::{descriptor_from_json, search_result_to_json};
use egraph_query::QueryDescriptor;
use egraph_stream::{CacheOutcome, CacheStats, EdgeEvent, LiveGraph, QueryCache};

use crate::http::{self, Request, RequestError};
use crate::singleflight::{Admission, SingleFlight};

/// Tunables for [`Server::start`]. `Default` is production-shaped; tests
/// tighten limits and set the determinism hook.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Largest accepted request body; bigger declarations get `413` without
    /// the body ever being read.
    pub max_body_bytes: usize,
    /// Per-connection socket read/write timeout — a stalled or vanished
    /// client cannot pin a handler forever. `None` disables.
    pub io_timeout: Option<Duration>,
    /// Test-only determinism hook: a `/query` leader blocks until this many
    /// requests have parked behind it before computing, making coalescing
    /// counts exact instead of race-dependent. Must be `None` in production.
    pub hold_leader_until_waiters: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_body_bytes: 1 << 20,
            io_timeout: Some(Duration::from_secs(10)),
            hold_leader_until_waiters: None,
        }
    }
}

/// Server-side request counters (the cache keeps its own in
/// [`CacheStats`]). Exposed at `GET /stats` and via [`Server::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests that parsed to a valid head (any route, any outcome).
    pub requests: u64,
    /// Requests answered `4xx`.
    pub bad_requests: u64,
    /// Subscriptions accepted over the server's lifetime.
    pub subscriptions_opened: u64,
    /// Frames pushed to subscribers (initial frames included).
    pub frames_pushed: u64,
}

/// One standing query: the held-open connection, what it asked for, and
/// the next frame sequence number.
struct Subscriber {
    stream: TcpStream,
    descriptor: QueryDescriptor,
    seq: u64,
}

/// Everything handlers share.
struct Shared {
    live: RwLock<LiveGraph>,
    cache: QueryCache,
    flight: SingleFlight,
    subscribers: Mutex<Vec<Subscriber>>,
    /// Serializes ingest+broadcast sections and subscription registration:
    /// frames reach every subscriber in seal order with no duplicates or
    /// gaps.
    seal_lock: Mutex<()>,
    config: ServerConfig,
    shutting_down: AtomicBool,
    /// Open-connection count + condvar for drain-on-shutdown.
    in_flight: Mutex<usize>,
    drained: Condvar,
    requests: AtomicU64,
    bad_requests: AtomicU64,
    subscriptions_opened: AtomicU64,
    frames_pushed: AtomicU64,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Decrements the in-flight connection count when a handler finishes —
/// including by panic, so shutdown's drain can never wedge on a crashed
/// handler.
struct ConnectionGuard {
    shared: Arc<Shared>,
}

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        let mut count = lock(&self.shared.in_flight);
        *count = count.saturating_sub(1);
        if *count == 0 {
            self.shared.drained.notify_all();
        }
    }
}

/// A running HTTP server over one [`LiveGraph`].
///
/// Dropping the server shuts it down gracefully: the listener closes, open
/// requests drain (bounded by the I/O timeout), and subscription streams
/// are terminated with a final chunk.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds an ephemeral loopback port and starts serving `live`.
    pub fn start(live: LiveGraph, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            live: RwLock::new(live),
            cache: QueryCache::new(),
            flight: SingleFlight::new(),
            subscribers: Mutex::new(Vec::new()),
            seal_lock: Mutex::new(()),
            config,
            shutting_down: AtomicBool::new(false),
            in_flight: Mutex::new(0),
            drained: Condvar::new(),
            requests: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            subscriptions_opened: AtomicU64::new(0),
            frames_pushed: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("egraph-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (`127.0.0.1:port`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The cache's counters — what `/stats` reports under `"cache"`.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// The server's own counters — what `/stats` reports under `"server"`.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            requests: self.shared.requests.load(Ordering::Relaxed),
            bad_requests: self.shared.bad_requests.load(Ordering::Relaxed),
            subscriptions_opened: self.shared.subscriptions_opened.load(Ordering::Relaxed),
            frames_pushed: self.shared.frames_pushed.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests
    /// (bounded), close every subscription with a final chunk. Idempotent;
    /// also run by `Drop`.
    pub fn shutdown(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // `accept()` blocks until a connection arrives; poke it awake so
        // the thread observes the flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Drain: every accepted connection decrements `in_flight` when its
        // handler finishes (panic included). The bound keeps a wedged
        // client from holding shutdown hostage beyond its socket timeout.
        let drain_bound = self
            .shared
            .config
            .io_timeout
            .map(|t| t * 3)
            .unwrap_or(Duration::from_secs(30));
        let mut in_flight = lock(&self.shared.in_flight);
        while *in_flight > 0 {
            let (guard, timeout) = self
                .shared
                .drained
                .wait_timeout(in_flight, drain_bound)
                .unwrap_or_else(PoisonError::into_inner);
            in_flight = guard;
            if timeout.timed_out() {
                break;
            }
        }
        drop(in_flight);
        for subscriber in lock(&self.shared.subscribers).drain(..) {
            let mut stream = subscriber.stream;
            let _ = http::write_final_chunk(&mut stream);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        *lock(&shared.in_flight) += 1;
        let job_shared = Arc::clone(&shared);
        rayon::spawn(move || {
            let guard = ConnectionGuard {
                shared: Arc::clone(&job_shared),
            };
            handle_connection(&job_shared, stream);
            drop(guard);
        });
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(shared.config.io_timeout);
    let _ = stream.set_write_timeout(shared.config.io_timeout);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    let request = match http::read_request(&mut reader, shared.config.max_body_bytes) {
        Ok(request) => request,
        Err(RequestError::Io(_)) => return, // nobody left to answer
        Err(RequestError::Malformed(message)) => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(&mut stream, 400, &http::error_body(&message));
            return;
        }
        Err(RequestError::BodyTooLarge { declared, limit }) => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            let message =
                format!("request body of {declared} bytes exceeds the {limit}-byte bound");
            let _ = http::write_response(&mut stream, 413, &http::error_body(&message));
            return;
        }
    };
    // `reader` holds the read half; requests are one-shot, so only the
    // write half travels further (into single-flight or a subscription).
    drop(reader);
    shared.requests.fetch_add(1, Ordering::Relaxed);

    if shared.shutting_down.load(Ordering::SeqCst) {
        let _ = http::write_response(
            &mut stream,
            503,
            &http::error_body("the server is shutting down"),
        );
        return;
    }

    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/query") => handle_query(shared, stream, &request),
        ("POST", "/subscribe") => handle_subscribe(shared, stream, &request),
        ("POST", "/ingest") => handle_ingest(shared, stream, &request),
        ("GET", "/stats") => {
            let body = stats_body(shared);
            let _ = http::write_response(&mut stream, 200, &body);
        }
        ("GET", "/health") => {
            let (version, num_sealed) = {
                let live = read_live(shared);
                (live.version(), live.num_sealed())
            };
            let body =
                format!("{{\"ok\": true, \"version\": {version}, \"num_sealed\": {num_sealed}}}");
            let _ = http::write_response(&mut stream, 200, &body);
        }
        (_, "/query" | "/subscribe" | "/ingest" | "/stats" | "/health") => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            let message = format!("method {} not allowed here", request.method);
            let _ = http::write_response(&mut stream, 405, &http::error_body(&message));
        }
        (_, path) => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            let message = format!("no route {path}");
            let _ = http::write_response(&mut stream, 404, &http::error_body(&message));
        }
    }
}

fn read_live(shared: &Shared) -> std::sync::RwLockReadGuard<'_, LiveGraph> {
    shared.live.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_live(shared: &Shared) -> std::sync::RwLockWriteGuard<'_, LiveGraph> {
    shared.live.write().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// POST /query
// ---------------------------------------------------------------------------

fn handle_query(shared: &Arc<Shared>, mut stream: TcpStream, request: &Request) {
    let descriptor = match descriptor_from_json(&request.body) {
        Ok(descriptor) => descriptor,
        Err(err) => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(&mut stream, 400, &http::error_body(&err.to_string()));
            return;
        }
    };
    let search = descriptor.to_search();

    // Tier 1: a current entry serves straight off the shard read lock —
    // the hot path for standing queries, bypassing admission entirely.
    let peeked = {
        let live = read_live(shared);
        shared.cache.peek(&live, &search)
    };
    if let Some(result) = peeked {
        let _ = http::write_response(&mut stream, 200, &search_result_to_json(&result));
        return;
    }

    // Tier 2: single-flight. Parked connections are answered by the
    // leader; this handler is done with them either way.
    let Admission::Leader(own, leader) = shared.flight.admit(&descriptor, stream) else {
        return;
    };
    let mut own = own;
    if let Some(count) = shared.config.hold_leader_until_waiters {
        leader.wait_for_waiters(count);
    }

    // Tier 3: compute through the cache, under the graph's read lock (the
    // graph cannot move mid-computation; concurrent `/query`s share the
    // read side, only `/ingest` writes).
    let computed = {
        let live = read_live(shared);
        shared.cache.execute_traced(&live, &search)
    };
    let waiters = leader.finish();
    match computed {
        Ok((result, _outcome)) => {
            // Serialized once; leader and every coalesced follower receive
            // byte-identical responses from this one buffer.
            let body = search_result_to_json(&result);
            let _ = http::write_response(&mut own, 200, &body);
            for mut waiter in waiters {
                shared.cache.note_coalesced();
                let _ = http::write_response(&mut waiter, 200, &body);
            }
        }
        Err(err) => {
            // A semantically failing query (e.g. root outside the sealed
            // range): 422, shared by everyone who coalesced onto it. The
            // cache never stores errors, so nothing is counted — the same
            // request can heal as the graph grows.
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            let body = http::error_body(&err.to_string());
            let _ = http::write_response(&mut own, 422, &body);
            for mut waiter in waiters {
                let _ = http::write_response(&mut waiter, 422, &body);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// POST /subscribe
// ---------------------------------------------------------------------------

fn handle_subscribe(shared: &Arc<Shared>, mut stream: TcpStream, request: &Request) {
    let descriptor = match descriptor_from_json(&request.body) {
        Ok(descriptor) => descriptor,
        Err(err) => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(&mut stream, 400, &http::error_body(&err.to_string()));
            return;
        }
    };
    let search = descriptor.to_search();

    // Registration happens under `seal_lock`, so the initial frame and the
    // subscription list entry are atomic with respect to `/ingest`'s
    // seal+broadcast section: no seal can fall between them (which would
    // either skip a frame or double-send one).
    let _ordering = lock(&shared.seal_lock);
    let initial = {
        let live = read_live(shared);
        shared
            .cache
            .execute_traced(&live, &search)
            .map(|(result, outcome)| (result, outcome, live.version()))
    };
    match initial {
        Err(err) => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(&mut stream, 422, &http::error_body(&err.to_string()));
        }
        Ok((result, outcome, version)) => {
            let frame = frame_body(0, version, None, outcome_name(outcome), Ok(&result));
            if http::write_chunked_head(&mut stream).is_err()
                || http::write_chunk(&mut stream, &frame).is_err()
            {
                return; // client vanished before the stream opened
            }
            shared.frames_pushed.fetch_add(1, Ordering::Relaxed);
            shared.subscriptions_opened.fetch_add(1, Ordering::Relaxed);
            lock(&shared.subscribers).push(Subscriber {
                stream,
                descriptor,
                seq: 1,
            });
        }
    }
}

/// One push frame. `result` is `Err(message)` when the standing query
/// failed at this version (the stream stays open — it may heal).
fn frame_body(
    seq: u64,
    version: u64,
    label: Option<i64>,
    outcome: &str,
    result: Result<&egraph_query::SearchResult, &str>,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"seq\": {seq}, \"version\": {version}"));
    if let Some(label) = label {
        out.push_str(&format!(", \"label\": {label}"));
    }
    out.push_str(", \"outcome\": ");
    egraph_io::write_json_string(&mut out, outcome);
    match result {
        Ok(result) => {
            out.push_str(", \"result\": ");
            out.push_str(&search_result_to_json(result));
        }
        Err(message) => {
            out.push_str(", \"error\": ");
            egraph_io::write_json_string(&mut out, message);
        }
    }
    out.push('}');
    out
}

fn outcome_name(outcome: CacheOutcome) -> &'static str {
    match outcome {
        CacheOutcome::Miss => "miss",
        CacheOutcome::Hit => "hit",
        CacheOutcome::Extended => "extended",
        CacheOutcome::Redimensioned => "redimensioned",
        CacheOutcome::Resettled => "resettled",
        CacheOutcome::Recomputed => "recomputed",
    }
}

// ---------------------------------------------------------------------------
// POST /ingest
// ---------------------------------------------------------------------------

/// The parsed shape of an ingest body.
struct IngestRequest {
    grow_nodes: Option<usize>,
    events: Vec<(u32, u32)>,
    seal: Option<i64>,
}

fn parse_ingest(body: &str) -> Result<IngestRequest, String> {
    let value = egraph_io::parse_value(body).map_err(|e| e.to_string())?;
    let object = value
        .as_object("ingest request")
        .map_err(|e| e.to_string())?;
    let grow_nodes = match object.get_opt("grow_nodes") {
        Some(v) => Some(v.as_usize("grow_nodes").map_err(|e| e.to_string())?),
        None => None,
    };
    let events = match object.get_opt("events") {
        Some(value) => {
            let entries = value.as_array("events").map_err(|e| e.to_string())?;
            let mut events = Vec::with_capacity(entries.len());
            for entry in entries {
                let pair = entry.as_array("events entry").map_err(|e| e.to_string())?;
                if pair.len() != 2 {
                    return Err(format!(
                        "an events entry must be a [src, dst] pair, got {} elements",
                        pair.len()
                    ));
                }
                events.push((
                    pair[0].as_u32("event src").map_err(|e| e.to_string())?,
                    pair[1].as_u32("event dst").map_err(|e| e.to_string())?,
                ));
            }
            events
        }
        None => Vec::new(),
    };
    let seal = match object.get_opt("seal") {
        Some(v) => Some(v.as_i64("seal label").map_err(|e| e.to_string())?),
        None => None,
    };
    if grow_nodes.is_none() && events.is_empty() && seal.is_none() {
        return Err("an ingest request must grow nodes, insert events, or seal".into());
    }
    Ok(IngestRequest {
        grow_nodes,
        events,
        seal,
    })
}

fn handle_ingest(shared: &Arc<Shared>, mut stream: TcpStream, request: &Request) {
    let ingest = match parse_ingest(&request.body) {
        Ok(ingest) => ingest,
        Err(message) => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(&mut stream, 400, &http::error_body(&message));
            return;
        }
    };

    // The whole mutate→broadcast section is serialized: frames reach
    // subscribers in seal order, and subscription registration cannot
    // interleave into the middle of it.
    let _ordering = lock(&shared.seal_lock);
    let applied: Result<(u64, usize, Option<usize>), egraph_core::error::GraphError> = {
        let mut live = write_live(shared);
        (|| {
            if let Some(num_nodes) = ingest.grow_nodes {
                live.apply(EdgeEvent::grow_nodes(num_nodes))?;
            }
            for &(src, dst) in &ingest.events {
                live.insert(src, dst)?;
            }
            let sealed_index = match ingest.seal {
                Some(label) => Some(live.seal_snapshot(label)?.index()),
                None => None,
            };
            Ok((live.version(), live.num_sealed(), sealed_index))
        })()
    };

    match applied {
        Err(err) => {
            // Rejected events never become visible to queries — only sealed
            // snapshots are searched, and a failing request reaches no seal
            // — but events applied before the failure stay pending, so a
            // corrected retry continues from them rather than replaying.
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(&mut stream, 422, &http::error_body(&err.to_string()));
        }
        Ok((version, num_sealed, sealed_index)) => {
            if sealed_index.is_some() {
                broadcast_frames(shared, ingest.seal.expect("sealed implies a label"));
            }
            let sealed_json = match sealed_index {
                Some(index) => index.to_string(),
                None => "null".to_string(),
            };
            let body = format!(
                "{{\"version\": {version}, \"num_sealed\": {num_sealed}, \"sealed_index\": {sealed_json}}}"
            );
            let _ = http::write_response(&mut stream, 200, &body);
        }
    }
}

/// Re-executes every standing subscription at the current version and
/// pushes one frame each; subscribers whose sockets are gone are dropped.
/// Runs under `seal_lock`, after the write lock has been released — pushes
/// overlap new `/query` reads, never block them.
fn broadcast_frames(shared: &Arc<Shared>, label: i64) {
    let live = read_live(shared);
    let version = live.version();
    let mut subscribers = lock(&shared.subscribers);
    let mut frames_pushed = 0u64;
    subscribers.retain_mut(|subscriber| {
        let search = subscriber.descriptor.to_search();
        let frame = match shared.cache.execute_traced(&live, &search) {
            Ok((result, outcome)) => frame_body(
                subscriber.seq,
                version,
                Some(label),
                outcome_name(outcome),
                Ok(&result),
            ),
            Err(err) => frame_body(
                subscriber.seq,
                version,
                Some(label),
                "error",
                Err(&err.to_string()),
            ),
        };
        subscriber.seq += 1;
        let delivered = http::write_chunk(&mut subscriber.stream, &frame).is_ok();
        if delivered {
            frames_pushed += 1;
        }
        delivered
    });
    shared
        .frames_pushed
        .fetch_add(frames_pushed, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// GET /stats
// ---------------------------------------------------------------------------

fn stats_body(shared: &Arc<Shared>) -> String {
    let cache = shared.cache.stats();
    let (version, num_sealed, num_nodes) = {
        let live = read_live(shared);
        (live.version(), live.num_sealed(), live.graph().num_nodes())
    };
    let subscribers = lock(&shared.subscribers).len();
    format!(
        "{{\"cache\": {{\"hits\": {}, \"extensions\": {}, \"extended_shared\": {}, \
         \"redimensioned\": {}, \"stable_core_resettled\": {}, \"recomputes\": {}, \
         \"misses\": {}, \"evictions\": {}, \"coalesced\": {}, \"requests\": {}, \
         \"hit_rate\": {:.6}}}, \
         \"server\": {{\"requests\": {}, \"bad_requests\": {}, \"subscribers\": {subscribers}, \
         \"subscriptions_opened\": {}, \"frames_pushed\": {}}}, \
         \"graph\": {{\"version\": {version}, \"num_sealed\": {num_sealed}, \"num_nodes\": {num_nodes}}}}}",
        cache.hits,
        cache.extensions,
        cache.extended_shared,
        cache.redimensioned,
        cache.stable_core_resettled,
        cache.recomputes,
        cache.misses,
        cache.evictions,
        cache.coalesced,
        cache.requests(),
        cache.hit_rate(),
        shared.requests.load(Ordering::Relaxed),
        shared.bad_requests.load(Ordering::Relaxed),
        shared.subscriptions_opened.load(Ordering::Relaxed),
        shared.frames_pushed.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_bodies_parse_and_reject_cleanly() {
        let ok = parse_ingest(r#"{"events": [[0, 1], [1, 2]], "seal": 7}"#).unwrap();
        assert_eq!(ok.events, vec![(0, 1), (1, 2)]);
        assert_eq!(ok.seal, Some(7));
        assert_eq!(ok.grow_nodes, None);

        let grow = parse_ingest(r#"{"grow_nodes": 12}"#).unwrap();
        assert_eq!(grow.grow_nodes, Some(12));
        assert!(grow.events.is_empty());

        for bad in [
            "",
            "[]",
            "{}",
            r#"{"events": [[0]]}"#,
            r#"{"events": [[0, 1, 2]]}"#,
            r#"{"events": [["a", "b"]]}"#,
            r#"{"seal": "tomorrow"}"#,
            r#"{"grow_nodes": -4}"#,
        ] {
            assert!(parse_ingest(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn frames_carry_sequence_version_label_and_outcome() {
        let frame = frame_body(3, 9, Some(41), "extended", Err("window moved"));
        assert_eq!(
            frame,
            "{\"seq\": 3, \"version\": 9, \"label\": 41, \"outcome\": \"extended\", \
             \"error\": \"window moved\"}"
        );
        let initial = frame_body(0, 1, None, "miss", Err("x"));
        assert!(!initial.contains("label"));
    }
}
