//! The server: accept loop, routing, request handlers, graceful shutdown.
//!
//! One dedicated thread owns `accept()`; every accepted connection becomes a
//! detached job on the shared rayon pool (`rayon::spawn`), so request
//! handling, cache repairs and frontier-parallel traversals all draw from
//! the same thread budget instead of spawning unbounded per-connection
//! threads. A handler blocked on slow client I/O is bounded by the
//! per-connection socket timeouts ([`ServerConfig::io_timeout`]).
//!
//! ## Routes
//!
//! | route | body | answer |
//! |---|---|---|
//! | `POST /query` | a [`QueryDescriptor`] JSON document | the `SearchResult` JSON document |
//! | `POST /subscribe` | a descriptor | chunked stream: one frame now, one per sealed snapshot |
//! | `POST /ingest` | `{"grow_nodes": n?, "events": [[u,v],...], "seal": label?}` | `{"version", "num_sealed", "sealed_index"}` |
//! | `GET /stats` | — | cache + server + log counters |
//! | `GET /health` | — | `{"ok": true, ...}` |
//! | `GET /log/tail?from=seq` | — | chunked stream: init frame, then per sealed segment a JSON header + the raw segment bytes |
//! | `GET /checkpoint/latest` | — | the newest installed checkpoint file, byte-for-byte (`404` when none exists) |
//!
//! Malformed bodies get structured `400`s (`{"error": ...}`), oversized
//! bodies `413`, semantically failing queries (root outside the sealed
//! range, say) `422` — all without disturbing the accept loop.
//!
//! ## Admission and the serve path
//!
//! `/query` serves in three tiers, cheapest first:
//!
//! 1. [`QueryCache::peek`] — a current entry is served straight off the
//!    shard read lock; hot standing queries never touch admission.
//! 2. Single-flight ([`crate::singleflight`]) — the first cold request
//!    leads and computes through [`QueryCache::execute_traced`]; identical
//!    requests arriving meanwhile park their connections and are answered
//!    by the leader from the same serialized bytes (counted as
//!    [`CacheStats::coalesced`]).
//! 3. The computation itself — which still lands in the cache, so the
//!    *next* burst starts at tier 1.
//!
//! ## Writes and push
//!
//! `/ingest` takes the graph's write lock for the mutation only, then (if
//! the request sealed a snapshot) re-executes every standing subscription
//! through the cache — extendable queries advance incrementally per the
//! cache's invalidation matrix — and pushes one frame per subscriber.
//! `seal_lock` serializes ingest→broadcast sections and subscription
//! registration, so every subscriber sees every seal exactly once, in
//! order, with no gap between its initial frame and the first push.
//!
//! ## Durability and replication
//!
//! [`Server::start_durable`] pairs the graph with an `egraph-log`
//! [`EventLog`]: `/ingest` mirrors every accepted event into the log, and a
//! sealing request follows write-ahead order — validate the label, fsync
//! the segment ([`EventLog::seal`]), *then* publish the snapshot to
//! searches and acknowledge. The fsync happens outside the graph's write
//! lock (`seal_lock` already serializes writers), so readers never wait on
//! the disk. A crash can only lose events whose seal was never
//! acknowledged; [`egraph_stream::DurableGraph::open`] replays the rest.
//!
//! With [`ServerConfig::checkpoint_every`] set, every N-th seal also
//! serializes the sealed CSR state into an atomically installed
//! `checkpoint-<seq>.bin`, prunes checkpoints beyond
//! [`ServerConfig::retain_checkpoints`], and compacts the segment files
//! the oldest surviving checkpoint covers — recovery then replays only the
//! bounded suffix sealed after the newest valid checkpoint
//! (`recovery_replayed_events` in `/stats` is the proof). A checkpoint
//! failure is logged and skipped: the seal it rode on is already durable.
//!
//! [`Server::start_follower`] runs the read-scaling side: it opens
//! `GET /log/tail?from=version` against a leader, rebuilds its own
//! [`LiveGraph`] from the init frame, and applies each sealed segment the
//! leader ships — through the *same* [`egraph_stream::replay_segment`]
//! crash recovery uses — then re-broadcasts to its own subscribers from
//! its own [`QueryCache`], inheriting the full incremental-repair matrix
//! per tailed seal. A follower *forwards* `/ingest` to its leader with
//! bounded jittered retries (relaying the leader's exact answer), so a
//! client can write to any server in the group; reads and subscriptions
//! are served locally. `follower_lag_seals` in `/stats` (and on every push
//! frame) reports how far behind the leader's latest known seal this
//! server is; the tail thread reconnects with backoff until shutdown.
//! Bootstrap is checkpoint-first (`GET /checkpoint/latest` restores the
//! leader's sealed CSR state directly, then only the suffix is tailed),
//! and a follower whose resume point the leader compacted away (`410` on
//! tail, or a sequence gap) re-bootstraps from the leader's checkpoint
//! instead of halting.
//!
//! ## Overload
//!
//! Admission is bounded: when [`ServerConfig::max_inflight`] handlers are
//! already running, the accept thread sheds the connection with `503` +
//! `Retry-After` *before* reading the request — pool workers may all be
//! pinned by slow cold computations, which is exactly the condition being
//! defended against, so the shed path cannot depend on them. Parked
//! connections (subscribers, tailers, coalesced single-flight waiters)
//! hold no handler and do not count against the bound. Shed requests are
//! counted as `requests_shed` in `/stats`;
//! [`crate::client::Client::post_with_retry`] is the client side of the
//! contract, honoring `Retry-After` with jittered backoff.
//!
//! ## Failpoints
//!
//! The serving path declares [`egraph_fault`] sites (no-ops in release
//! builds): `serve.query.compute` (delay a cold computation — how the
//! chaos suite manufactures overload deterministically) and
//! `serve.ingest.forward` (fail a follower's forward before it reaches
//! the leader). The layers below add their own sites (`log.*`,
//! `durable.publish`, and the checkpoint lifecycle's `ckpt.write`,
//! `ckpt.fsync`, `ckpt.rename`, `ckpt.read`, `log.compact.delete`).

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::Duration;

use egraph_core::csr::CsrAdjacency;
use egraph_io::checkpoint::{decode_checkpoint, encode_checkpoint};
use egraph_log::{decode_segment, EventLog, Sealed};
use egraph_query::codec::{descriptor_from_json, search_result_to_json};
use egraph_query::QueryDescriptor;
use egraph_stream::durable::{event_to_record, replay_segment, RecoveredGraph};
use egraph_stream::{CacheOutcome, CacheStats, EdgeEvent, LiveGraph, QueryCache};

use crate::client::{Client, LogTail, TailInit};
use crate::http::{self, Request, RequestError};
use crate::singleflight::{Admission, SingleFlight};

/// Tunables for [`Server::start`]. `Default` is production-shaped; tests
/// tighten limits and set the determinism hook.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Largest accepted request body; bigger declarations get `413` without
    /// the body ever being read.
    pub max_body_bytes: usize,
    /// Per-connection socket read/write timeout — a stalled or vanished
    /// client cannot pin a handler forever. `None` disables.
    pub io_timeout: Option<Duration>,
    /// Test-only determinism hook: a `/query` leader blocks until this many
    /// requests have parked behind it before computing, making coalescing
    /// counts exact instead of race-dependent. Must be `None` in production.
    pub hold_leader_until_waiters: Option<usize>,
    /// Address to bind; `None` binds an ephemeral loopback port (the right
    /// choice for tests and examples — the `egraph-serve` binary sets it).
    pub bind: Option<SocketAddr>,
    /// Admission bound: connections accepted while this many handlers are
    /// already running are shed with `503` + `Retry-After`. Parked
    /// connections (subscribers, tailers, coalesced waiters) don't count.
    pub max_inflight: usize,
    /// The `Retry-After` value (seconds) stamped on shed responses. `0` is
    /// legal — "immediately" — and what latency-sensitive tests use.
    pub retry_after_secs: u64,
    /// On a follower: total attempts (first included) when forwarding an
    /// `/ingest` to the leader before giving up with `503`.
    pub forward_attempts: u32,
    /// Base backoff between forward attempts (doubles, jittered), and the
    /// follower tail thread's pause between reconnect attempts.
    pub forward_backoff: Duration,
    /// On a durable leader: write a checkpoint (and compact covered
    /// segments) every this many seals. `0` disables checkpointing.
    pub checkpoint_every: u64,
    /// How many installed checkpoints to keep on disk; must be at least 1
    /// (the newest checkpoint is what covers the compacted prefix).
    pub retain_checkpoints: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_body_bytes: 1 << 20,
            io_timeout: Some(Duration::from_secs(10)),
            hold_leader_until_waiters: None,
            bind: None,
            max_inflight: 256,
            retry_after_secs: 1,
            forward_attempts: 4,
            forward_backoff: Duration::from_millis(50),
            checkpoint_every: 0,
            retain_checkpoints: 2,
        }
    }
}

impl ServerConfig {
    /// Rejects configurations that cannot serve: a zero admission bound
    /// would shed every request, and zero forward attempts would make a
    /// follower's `/ingest` unconditionally fail.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_inflight == 0 {
            return Err("max_inflight must be >= 1 (0 would shed every request)".into());
        }
        if self.forward_attempts == 0 {
            return Err("forward_attempts must be >= 1".into());
        }
        if self.max_body_bytes == 0 {
            return Err("max_body_bytes must be >= 1".into());
        }
        if self.retain_checkpoints == 0 {
            return Err(
                "retain_checkpoints must be >= 1 (compaction may only delete segments \
                 a surviving checkpoint covers)"
                    .into(),
            );
        }
        Ok(())
    }
}

/// Server-side request counters (the cache keeps its own in
/// [`CacheStats`]). Exposed at `GET /stats` and via [`Server::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests that parsed to a valid head (any route, any outcome).
    pub requests: u64,
    /// Requests answered `4xx`.
    pub bad_requests: u64,
    /// Subscriptions accepted over the server's lifetime.
    pub subscriptions_opened: u64,
    /// Frames pushed to subscribers (initial frames included).
    pub frames_pushed: u64,
    /// Segments durably sealed (fsynced) by this server's event log —
    /// includes segments recovered from disk at boot. Zero without a log.
    pub segments_sealed: u64,
    /// Segments replayed into the live graph: at boot from the local log,
    /// or (on a follower) tailed from the leader.
    pub segments_replayed: u64,
    /// On a follower: the leader's latest known seal count minus this
    /// server's applied count — `0` when fully converged. Always `0` on a
    /// leader or standalone server.
    pub follower_lag_seals: u64,
    /// Connections shed by bounded admission (`503` + `Retry-After`
    /// before the request was read).
    pub requests_shed: u64,
    /// Segment reads that failed while serving a `/log/tail` catch-up —
    /// each one silently dropped a tailer before this counter existed, so
    /// a non-zero value here is how an operator sees replication flapping.
    pub tail_read_errors: u64,
    /// On a follower: `/ingest` requests successfully forwarded to the
    /// leader (whatever status the leader answered).
    pub ingest_forwarded: u64,
    /// On a follower: `/ingest` forwards that exhausted their retry budget
    /// without reaching the leader (answered `503` locally).
    pub forward_failures: u64,
    /// Checkpoints durably installed by this server (policy-driven, at
    /// seal time). Zero without a log or with `checkpoint_every: 0`.
    pub checkpoints_written: u64,
    /// Segment files deleted by compaction after their covering checkpoint
    /// was installed.
    pub segments_compacted: u64,
    /// Events replayed from segment files when this server's graph was
    /// recovered at boot — the bounded-replay proof: with checkpointing
    /// enabled this stays at most `checkpoint_every` seals' worth of
    /// events, however long the log's history grows.
    pub recovery_replayed_events: u64,
    /// Bytes currently on disk in manifest + segment files (gauge).
    pub segments_bytes: u64,
    /// Bytes currently on disk in installed checkpoint files (gauge).
    pub checkpoint_bytes: u64,
}

/// One standing query: the held-open connection, what it asked for, and
/// the next frame sequence number.
struct Subscriber {
    stream: TcpStream,
    descriptor: QueryDescriptor,
    seq: u64,
}

/// Handle to a follower's upstream connection, kept so shutdown can
/// unblock the tail thread's read.
struct FollowerCtl {
    leader: SocketAddr,
    /// The currently open tail stream (replaced across reconnects);
    /// shutdown calls `shutdown(Both)` on it to wake the blocked read.
    tail_stream: Mutex<Option<TcpStream>>,
}

/// Everything handlers share.
struct Shared {
    live: RwLock<LiveGraph>,
    cache: QueryCache,
    flight: SingleFlight,
    subscribers: Mutex<Vec<Subscriber>>,
    /// Serializes ingest+broadcast sections and subscription registration:
    /// frames reach every subscriber in seal order with no duplicates or
    /// gaps.
    seal_lock: Mutex<()>,
    /// The write-ahead log (durable leader mode only). Locked *inside* the
    /// graph's write lock when mirroring events, and on its own for the
    /// fsync on seal — which deliberately happens while no graph lock is
    /// held, so readers never wait on the disk.
    log: Option<Mutex<EventLog>>,
    /// Followers currently tailing this server's log; each gets every
    /// sealed segment pushed as a JSON header chunk + a raw bytes chunk.
    tailers: Mutex<Vec<TcpStream>>,
    /// Present on a follower: where to tail from, and the open stream.
    follower: Option<FollowerCtl>,
    config: ServerConfig,
    shutting_down: AtomicBool,
    /// Open-connection count + condvar for drain-on-shutdown.
    in_flight: Mutex<usize>,
    drained: Condvar,
    requests: AtomicU64,
    bad_requests: AtomicU64,
    subscriptions_opened: AtomicU64,
    frames_pushed: AtomicU64,
    segments_sealed: AtomicU64,
    segments_replayed: AtomicU64,
    follower_lag_seals: AtomicU64,
    requests_shed: AtomicU64,
    tail_read_errors: AtomicU64,
    ingest_forwarded: AtomicU64,
    forward_failures: AtomicU64,
    checkpoints_written: AtomicU64,
    segments_compacted: AtomicU64,
    recovery_replayed_events: AtomicU64,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Decrements the in-flight connection count when a handler finishes —
/// including by panic, so shutdown's drain can never wedge on a crashed
/// handler.
struct ConnectionGuard {
    shared: Arc<Shared>,
}

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        let mut count = lock(&self.shared.in_flight);
        *count = count.saturating_sub(1);
        if *count == 0 {
            self.shared.drained.notify_all();
        }
    }
}

/// A running HTTP server over one [`LiveGraph`].
///
/// Dropping the server shuts it down gracefully: the listener closes, open
/// requests drain (bounded by the I/O timeout), and subscription streams
/// are terminated with a final chunk.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    tail_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving `live` with no durability: a plain
    /// in-memory server (events die with the process).
    pub fn start(live: LiveGraph, config: ServerConfig) -> std::io::Result<Server> {
        Self::start_inner(live, config, None, None, 0)
    }

    /// Starts a **durable leader** over a recovered (or freshly created)
    /// [`egraph_stream::DurableGraph`]: `/ingest` write-ahead logs every
    /// event, seals are fsynced before they are acknowledged, and
    /// followers may tail `GET /log/tail`.
    ///
    /// ```no_run
    /// # use egraph_serve::{Server, ServerConfig};
    /// # use egraph_stream::DurableGraph;
    /// let recovered = DurableGraph::open_or_create("data", 100, true).unwrap();
    /// let server = Server::start_durable(recovered, ServerConfig::default()).unwrap();
    /// # drop(server);
    /// ```
    pub fn start_durable(
        recovered: RecoveredGraph,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let segments_replayed = recovered.segments_replayed;
        let recovery_replayed_events = recovered.recovery_replayed_events;
        let (live, log) = recovered.graph.into_parts();
        let server = Self::start_inner(live, config, Some(log), None, segments_replayed)?;
        server
            .shared
            .recovery_replayed_events
            .store(recovery_replayed_events, Ordering::Relaxed);
        Ok(server)
    }

    /// Starts a **follower** replicating from the durable leader at
    /// `leader`: tails its segment stream, rebuilds a local [`LiveGraph`],
    /// and serves `/query`, `/subscribe`, `/stats` and `/health` from its
    /// own cache. `/ingest` is refused with `403` — writes go to the
    /// leader. The connection to the leader is established (and its init
    /// frame read) before this returns; segment catch-up and live tailing
    /// continue on a background thread that reconnects with backoff until
    /// shutdown.
    ///
    /// Bootstrap is checkpoint-first: the follower fetches
    /// `GET /checkpoint/latest`, restores the leader's sealed CSR state
    /// directly when one exists, and tails only the segment suffix sealed
    /// after it. A leader without checkpoints (or an unusable one) is
    /// tailed from segment 0 as before.
    pub fn start_follower(leader: SocketAddr, config: ServerConfig) -> std::io::Result<Server> {
        // Bootstrap synchronously so a bad leader address fails here, not
        // silently on a background thread.
        let client = Client::new(leader).with_timeout(config.io_timeout);
        let bootstrapped = match client.fetch_checkpoint() {
            Ok(Some((last_seq, payload))) => live_from_checkpoint(last_seq, &payload).ok(),
            // No checkpoint (404) or an unreachable/odd answer: tail from 0
            // — a dead leader fails loudly on the tail_log below.
            Ok(None) | Err(_) => None,
        };
        let from = bootstrapped.as_ref().map_or(0, LiveGraph::version);
        let (init, tail) = client.tail_log(from)?;
        let fresh = |init: &TailInit| {
            if init.directed {
                LiveGraph::directed(init.num_nodes)
            } else {
                LiveGraph::undirected(init.num_nodes)
            }
        };
        let (live, init, tail) = match bootstrapped {
            Some(live) if live.graph().is_directed() == init.directed => (live, init, tail),
            Some(_) => {
                // The checkpoint contradicts the leader's init frame:
                // distrust it and re-tail the full log from 0.
                drop(tail);
                let (init, tail) = client.tail_log(0)?;
                (fresh(&init), init, tail)
            }
            None => (fresh(&init), init, tail),
        };
        let lag = init.latest.saturating_sub(live.version());
        let ctl = FollowerCtl {
            leader,
            tail_stream: Mutex::new(None),
        };
        let mut server = Self::start_inner(live, config, None, Some(ctl), 0)?;
        server
            .shared
            .follower_lag_seals
            .store(lag, Ordering::Relaxed);
        let tail_shared = Arc::clone(&server.shared);
        server.tail_thread = Some(
            std::thread::Builder::new()
                .name("egraph-serve-tail".into())
                .spawn(move || follower_tail_loop(tail_shared, Some((init, tail))))?,
        );
        Ok(server)
    }

    fn start_inner(
        live: LiveGraph,
        config: ServerConfig,
        log: Option<EventLog>,
        follower: Option<FollowerCtl>,
        segments_replayed: u64,
    ) -> std::io::Result<Server> {
        config
            .validate()
            .map_err(|message| std::io::Error::new(std::io::ErrorKind::InvalidInput, message))?;
        let listener = match config.bind {
            Some(addr) => TcpListener::bind(addr)?,
            None => TcpListener::bind(("127.0.0.1", 0))?,
        };
        let addr = listener.local_addr()?;
        let segments_sealed = log.as_ref().map_or(0, EventLog::segments_sealed);
        let shared = Arc::new(Shared {
            live: RwLock::new(live),
            cache: QueryCache::new(),
            flight: SingleFlight::new(),
            subscribers: Mutex::new(Vec::new()),
            seal_lock: Mutex::new(()),
            log: log.map(Mutex::new),
            tailers: Mutex::new(Vec::new()),
            follower,
            config,
            shutting_down: AtomicBool::new(false),
            in_flight: Mutex::new(0),
            drained: Condvar::new(),
            requests: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            subscriptions_opened: AtomicU64::new(0),
            frames_pushed: AtomicU64::new(0),
            segments_sealed: AtomicU64::new(segments_sealed),
            segments_replayed: AtomicU64::new(segments_replayed),
            follower_lag_seals: AtomicU64::new(0),
            requests_shed: AtomicU64::new(0),
            tail_read_errors: AtomicU64::new(0),
            ingest_forwarded: AtomicU64::new(0),
            forward_failures: AtomicU64::new(0),
            checkpoints_written: AtomicU64::new(0),
            segments_compacted: AtomicU64::new(0),
            recovery_replayed_events: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("egraph-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            tail_thread: None,
        })
    }

    /// The bound address (`127.0.0.1:port`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The cache's counters — what `/stats` reports under `"cache"`.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// The server's own counters — what `/stats` reports under `"server"`
    /// and `"log"`.
    pub fn stats(&self) -> ServerStats {
        let (segments_bytes, checkpoint_bytes) = disk_bytes(&self.shared);
        ServerStats {
            requests: self.shared.requests.load(Ordering::Relaxed),
            bad_requests: self.shared.bad_requests.load(Ordering::Relaxed),
            subscriptions_opened: self.shared.subscriptions_opened.load(Ordering::Relaxed),
            frames_pushed: self.shared.frames_pushed.load(Ordering::Relaxed),
            segments_sealed: self.shared.segments_sealed.load(Ordering::Relaxed),
            segments_replayed: self.shared.segments_replayed.load(Ordering::Relaxed),
            follower_lag_seals: self.shared.follower_lag_seals.load(Ordering::Relaxed),
            requests_shed: self.shared.requests_shed.load(Ordering::Relaxed),
            tail_read_errors: self.shared.tail_read_errors.load(Ordering::Relaxed),
            ingest_forwarded: self.shared.ingest_forwarded.load(Ordering::Relaxed),
            forward_failures: self.shared.forward_failures.load(Ordering::Relaxed),
            checkpoints_written: self.shared.checkpoints_written.load(Ordering::Relaxed),
            segments_compacted: self.shared.segments_compacted.load(Ordering::Relaxed),
            recovery_replayed_events: self.shared.recovery_replayed_events.load(Ordering::Relaxed),
            segments_bytes,
            checkpoint_bytes,
        }
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests
    /// (bounded), close every subscription with a final chunk. Idempotent;
    /// also run by `Drop`.
    pub fn shutdown(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // `accept()` blocks until a connection arrives; poke it awake so
        // the thread observes the flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // A follower's tail thread blocks reading the leader; shut the
        // stream down to wake it, then join.
        if let Some(ctl) = self.shared.follower.as_ref() {
            if let Some(stream) = lock(&ctl.tail_stream).take() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
        if let Some(handle) = self.tail_thread.take() {
            let _ = handle.join();
        }
        // Drain: every accepted connection decrements `in_flight` when its
        // handler finishes (panic included). The bound keeps a wedged
        // client from holding shutdown hostage beyond its socket timeout.
        let drain_bound = self
            .shared
            .config
            .io_timeout
            .map(|t| t * 3)
            .unwrap_or(Duration::from_secs(30));
        let mut in_flight = lock(&self.shared.in_flight);
        while *in_flight > 0 {
            let (guard, timeout) = self
                .shared
                .drained
                .wait_timeout(in_flight, drain_bound)
                .unwrap_or_else(PoisonError::into_inner);
            in_flight = guard;
            if timeout.timed_out() {
                break;
            }
        }
        drop(in_flight);
        for subscriber in lock(&self.shared.subscribers).drain(..) {
            let mut stream = subscriber.stream;
            let _ = http::write_final_chunk(&mut stream);
        }
        for mut tailer in lock(&self.shared.tailers).drain(..) {
            let _ = http::write_final_chunk(&mut tailer);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Bounded admission, decided here on the accept thread: if every
        // pool worker is pinned by a slow handler, a shed must not need
        // one. The 503 goes out before the request is even read — an
        // overloaded server spends only a head-sized socket write per
        // refusal. The count is reserved under the lock so a burst cannot
        // overshoot the bound between check and increment.
        let admitted = {
            let mut count = lock(&shared.in_flight);
            if *count >= shared.config.max_inflight {
                false
            } else {
                *count += 1;
                true
            }
        };
        if !admitted {
            shared.requests_shed.fetch_add(1, Ordering::Relaxed);
            shed_connection(&shared, stream);
            continue;
        }
        let job_shared = Arc::clone(&shared);
        rayon::spawn(move || {
            let guard = ConnectionGuard {
                shared: Arc::clone(&job_shared),
            };
            handle_connection(&job_shared, stream);
            drop(guard);
        });
    }
}

/// Refuses one connection with `503` + `Retry-After`, without reading the
/// request. Closing with unread request bytes in the receive buffer would
/// RST the connection and could destroy the response before the client
/// reads it, so the refusal half-closes and briefly drains instead — the
/// client sees the 503 and a clean FIN. The drain is tightly bounded (it
/// runs on the accept thread): a cooperating client reads the response and
/// closes within a round trip; a stalled one costs at most the short
/// timeout.
fn shed_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_write_timeout(shared.config.io_timeout);
    let _ = http::write_response_with_retry_after(
        &mut stream,
        503,
        &http::error_body("server overloaded; retry after the indicated delay"),
        Some(shared.config.retry_after_secs),
    );
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut scratch = [0u8; 4096];
    while let Ok(n) = std::io::Read::read(&mut stream, &mut scratch) {
        if n == 0 {
            break;
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(shared.config.io_timeout);
    let _ = stream.set_write_timeout(shared.config.io_timeout);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    let request = match http::read_request(&mut reader, shared.config.max_body_bytes) {
        Ok(request) => request,
        Err(RequestError::Io(_)) => return, // nobody left to answer
        Err(RequestError::Malformed(message)) => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(&mut stream, 400, &http::error_body(&message));
            return;
        }
        Err(RequestError::BodyTooLarge { declared, limit }) => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            let message =
                format!("request body of {declared} bytes exceeds the {limit}-byte bound");
            let _ = http::write_response(&mut stream, 413, &http::error_body(&message));
            return;
        }
    };
    // `reader` holds the read half; requests are one-shot, so only the
    // write half travels further (into single-flight or a subscription).
    drop(reader);
    shared.requests.fetch_add(1, Ordering::Relaxed);

    if shared.shutting_down.load(Ordering::SeqCst) {
        let _ = http::write_response(
            &mut stream,
            503,
            &http::error_body("the server is shutting down"),
        );
        return;
    }

    // The request target may carry a query string (`/log/tail?from=3`);
    // routing happens on the bare path.
    let (path, query) = match request.path.split_once('?') {
        Some((path, query)) => (path, Some(query)),
        None => (request.path.as_str(), None),
    };
    match (request.method.as_str(), path) {
        ("POST", "/query") => handle_query(shared, stream, &request),
        ("POST", "/subscribe") => handle_subscribe(shared, stream, &request),
        ("POST", "/ingest") => handle_ingest(shared, stream, &request),
        ("GET", "/log/tail") => handle_tail(shared, stream, query),
        ("GET", "/checkpoint/latest") => handle_checkpoint_latest(shared, stream),
        ("GET", "/stats") => {
            let body = stats_body(shared);
            let _ = http::write_response(&mut stream, 200, &body);
        }
        ("GET", "/health") => {
            let (version, num_sealed) = {
                let live = read_live(shared);
                (live.version(), live.num_sealed())
            };
            let body =
                format!("{{\"ok\": true, \"version\": {version}, \"num_sealed\": {num_sealed}}}");
            let _ = http::write_response(&mut stream, 200, &body);
        }
        (
            _,
            "/query" | "/subscribe" | "/ingest" | "/stats" | "/health" | "/log/tail"
            | "/checkpoint/latest",
        ) => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            let message = format!("method {} not allowed here", request.method);
            let _ = http::write_response(&mut stream, 405, &http::error_body(&message));
        }
        (_, path) => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            let message = format!("no route {path}");
            let _ = http::write_response(&mut stream, 404, &http::error_body(&message));
        }
    }
}

fn read_live(shared: &Shared) -> std::sync::RwLockReadGuard<'_, LiveGraph> {
    shared.live.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_live(shared: &Shared) -> std::sync::RwLockWriteGuard<'_, LiveGraph> {
    shared.live.write().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// POST /query
// ---------------------------------------------------------------------------

fn handle_query(shared: &Arc<Shared>, mut stream: TcpStream, request: &Request) {
    let descriptor = match descriptor_from_json(&request.body) {
        Ok(descriptor) => descriptor,
        Err(err) => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(&mut stream, 400, &http::error_body(&err.to_string()));
            return;
        }
    };
    let search = descriptor.to_search();

    // Tier 1: a current entry serves straight off the shard read lock —
    // the hot path for standing queries, bypassing admission entirely.
    let peeked = {
        let live = read_live(shared);
        shared.cache.peek(&live, &search)
    };
    if let Some(result) = peeked {
        let _ = http::write_response(&mut stream, 200, &search_result_to_json(&result));
        return;
    }

    // Tier 2: single-flight. Parked connections are answered by the
    // leader; this handler is done with them either way.
    let Admission::Leader(own, leader) = shared.flight.admit(&descriptor, stream) else {
        return;
    };
    let mut own = own;
    if let Some(count) = shared.config.hold_leader_until_waiters {
        leader.wait_for_waiters(count);
    }

    // Failpoint: a scripted delay here stretches the cold computation,
    // which is how the chaos suite pins pool workers to manufacture
    // overload deterministically.
    let _ = egraph_fault::fired("serve.query.compute");

    // Tier 3: compute through the cache, under the graph's read lock (the
    // graph cannot move mid-computation; concurrent `/query`s share the
    // read side, only `/ingest` writes).
    let computed = {
        let live = read_live(shared);
        shared.cache.execute_traced(&live, &search)
    };
    let waiters = leader.finish();
    match computed {
        Ok((result, _outcome)) => {
            // Serialized once; leader and every coalesced follower receive
            // byte-identical responses from this one buffer.
            let body = search_result_to_json(&result);
            let _ = http::write_response(&mut own, 200, &body);
            for mut waiter in waiters {
                shared.cache.note_coalesced();
                let _ = http::write_response(&mut waiter, 200, &body);
            }
        }
        Err(err) => {
            // A semantically failing query (e.g. root outside the sealed
            // range): 422, shared by everyone who coalesced onto it. The
            // cache never stores errors, so nothing is counted — the same
            // request can heal as the graph grows.
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            let body = http::error_body(&err.to_string());
            let _ = http::write_response(&mut own, 422, &body);
            for mut waiter in waiters {
                let _ = http::write_response(&mut waiter, 422, &body);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// POST /subscribe
// ---------------------------------------------------------------------------

fn handle_subscribe(shared: &Arc<Shared>, mut stream: TcpStream, request: &Request) {
    let descriptor = match descriptor_from_json(&request.body) {
        Ok(descriptor) => descriptor,
        Err(err) => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(&mut stream, 400, &http::error_body(&err.to_string()));
            return;
        }
    };
    let search = descriptor.to_search();

    // Registration happens under `seal_lock`, so the initial frame and the
    // subscription list entry are atomic with respect to `/ingest`'s
    // seal+broadcast section: no seal can fall between them (which would
    // either skip a frame or double-send one).
    let _ordering = lock(&shared.seal_lock);
    let initial = {
        let live = read_live(shared);
        shared
            .cache
            .execute_traced(&live, &search)
            .map(|(result, outcome)| (result, outcome, live.version()))
    };
    match initial {
        Err(err) => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(&mut stream, 422, &http::error_body(&err.to_string()));
        }
        Ok((result, outcome, version)) => {
            let frame = frame_body(
                0,
                version,
                None,
                outcome_name(outcome),
                log_labels(shared),
                Ok(&result),
            );
            if http::write_chunked_head(&mut stream).is_err()
                || http::write_chunk(&mut stream, &frame).is_err()
            {
                return; // client vanished before the stream opened
            }
            shared.frames_pushed.fetch_add(1, Ordering::Relaxed);
            shared.subscriptions_opened.fetch_add(1, Ordering::Relaxed);
            lock(&shared.subscribers).push(Subscriber {
                stream,
                descriptor,
                seq: 1,
            });
        }
    }
}

/// The durability/replication counters stamped onto every push frame and
/// the `/stats` `"log"` section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct LogLabels {
    segments_sealed: u64,
    segments_replayed: u64,
    follower_lag_seals: u64,
}

fn log_labels(shared: &Shared) -> LogLabels {
    LogLabels {
        segments_sealed: shared.segments_sealed.load(Ordering::Relaxed),
        segments_replayed: shared.segments_replayed.load(Ordering::Relaxed),
        follower_lag_seals: shared.follower_lag_seals.load(Ordering::Relaxed),
    }
}

/// One push frame. `result` is `Err(message)` when the standing query
/// failed at this version (the stream stays open — it may heal).
fn frame_body(
    seq: u64,
    version: u64,
    label: Option<i64>,
    outcome: &str,
    log: LogLabels,
    result: Result<&egraph_query::SearchResult, &str>,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"seq\": {seq}, \"version\": {version}"));
    if let Some(label) = label {
        out.push_str(&format!(", \"label\": {label}"));
    }
    out.push_str(&format!(
        ", \"segments_sealed\": {}, \"segments_replayed\": {}, \"follower_lag_seals\": {}",
        log.segments_sealed, log.segments_replayed, log.follower_lag_seals
    ));
    out.push_str(", \"outcome\": ");
    egraph_io::write_json_string(&mut out, outcome);
    match result {
        Ok(result) => {
            out.push_str(", \"result\": ");
            out.push_str(&search_result_to_json(result));
        }
        Err(message) => {
            out.push_str(", \"error\": ");
            egraph_io::write_json_string(&mut out, message);
        }
    }
    out.push('}');
    out
}

fn outcome_name(outcome: CacheOutcome) -> &'static str {
    match outcome {
        CacheOutcome::Miss => "miss",
        CacheOutcome::Hit => "hit",
        CacheOutcome::Extended => "extended",
        CacheOutcome::Redimensioned => "redimensioned",
        CacheOutcome::Resettled => "resettled",
        CacheOutcome::Recomputed => "recomputed",
    }
}

// ---------------------------------------------------------------------------
// POST /ingest
// ---------------------------------------------------------------------------

/// The parsed shape of an ingest body.
struct IngestRequest {
    grow_nodes: Option<usize>,
    events: Vec<(u32, u32)>,
    seal: Option<i64>,
}

fn parse_ingest(body: &str) -> Result<IngestRequest, String> {
    let value = egraph_io::parse_value(body).map_err(|e| e.to_string())?;
    let object = value
        .as_object("ingest request")
        .map_err(|e| e.to_string())?;
    let grow_nodes = match object.get_opt("grow_nodes") {
        Some(v) => Some(v.as_usize("grow_nodes").map_err(|e| e.to_string())?),
        None => None,
    };
    let events = match object.get_opt("events") {
        Some(value) => {
            let entries = value.as_array("events").map_err(|e| e.to_string())?;
            let mut events = Vec::with_capacity(entries.len());
            for entry in entries {
                let pair = entry.as_array("events entry").map_err(|e| e.to_string())?;
                if pair.len() != 2 {
                    return Err(format!(
                        "an events entry must be a [src, dst] pair, got {} elements",
                        pair.len()
                    ));
                }
                events.push((
                    pair[0].as_u32("event src").map_err(|e| e.to_string())?,
                    pair[1].as_u32("event dst").map_err(|e| e.to_string())?,
                ));
            }
            events
        }
        None => Vec::new(),
    };
    let seal = match object.get_opt("seal") {
        Some(v) => Some(v.as_i64("seal label").map_err(|e| e.to_string())?),
        None => None,
    };
    if grow_nodes.is_none() && events.is_empty() && seal.is_none() {
        return Err("an ingest request must grow nodes, insert events, or seal".into());
    }
    Ok(IngestRequest {
        grow_nodes,
        events,
        seal,
    })
}

fn handle_ingest(shared: &Arc<Shared>, mut stream: TcpStream, request: &Request) {
    if let Some(ctl) = shared.follower.as_ref() {
        forward_ingest(shared, stream, request, ctl.leader);
        return;
    }
    let ingest = match parse_ingest(&request.body) {
        Ok(ingest) => ingest,
        Err(message) => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(&mut stream, 400, &http::error_body(&message));
            return;
        }
    };

    // The whole mutate→log→broadcast section is serialized: frames reach
    // subscribers in seal order, and subscription registration cannot
    // interleave into the middle of it.
    let _ordering = lock(&shared.seal_lock);

    // Phase 1 — apply events under the write lock, mirroring each accepted
    // one into the log's open-segment buffer (a rejected event is never
    // logged), and validate the seal label *without* sealing.
    let applied: Result<(), egraph_core::error::GraphError> = {
        let mut live = write_live(shared);
        let mut log = shared.log.as_ref().map(lock);
        (|| {
            let mut apply = |live: &mut LiveGraph, event: EdgeEvent| {
                live.apply(event)?;
                if let Some(log) = log.as_mut() {
                    log.append(event_to_record(&event));
                }
                Ok::<(), egraph_core::error::GraphError>(())
            };
            if let Some(num_nodes) = ingest.grow_nodes {
                apply(&mut live, EdgeEvent::grow_nodes(num_nodes))?;
            }
            for &(src, dst) in &ingest.events {
                apply(&mut live, EdgeEvent::insert(src, dst))?;
            }
            if let Some(label) = ingest.seal {
                // `can_seal` is the only way a seal can fail; checking it
                // here means the fsync below commits a label the graph is
                // guaranteed to accept.
                if !live.can_seal(label) {
                    return Err(egraph_core::error::GraphError::UnsortedTimestamps {
                        position: live.num_sealed(),
                    });
                }
            }
            Ok(())
        })()
    };
    if let Err(err) = applied {
        // Rejected events never become visible to queries — only sealed
        // snapshots are searched, and a failing request reaches no seal —
        // but events applied before the failure stay pending (in graph and
        // log alike), so a corrected retry continues from them.
        shared.bad_requests.fetch_add(1, Ordering::Relaxed);
        let _ = http::write_response(&mut stream, 422, &http::error_body(&err.to_string()));
        return;
    }

    // Phase 2 — write-ahead: fsync the segment before the snapshot becomes
    // visible or the request is acknowledged. No graph lock is held here,
    // so readers proceed while the disk syncs; `seal_lock` keeps other
    // writers out.
    let mut sealed: Option<Sealed> = None;
    if let (Some(label), Some(log)) = (ingest.seal, shared.log.as_ref()) {
        match lock(log).seal(label) {
            Ok(segment) => sealed = Some(segment),
            Err(err) => {
                // Durability failed: nothing was published and the seal is
                // not acknowledged. Events stay pending on both sides for
                // a retry once the disk recovers.
                let message = format!("failed to persist the seal: {err}");
                let _ = http::write_response(&mut stream, 500, &http::error_body(&message));
                return;
            }
        }
    }

    // Phase 3 — publish and acknowledge.
    let (version, num_sealed, sealed_index) = {
        let mut live = write_live(shared);
        let sealed_index = ingest.seal.map(|label| {
            live.seal_snapshot(label)
                .expect("label was validated before the segment was fsynced")
                .index()
        });
        (live.version(), live.num_sealed(), sealed_index)
    };
    if sealed_index.is_some() {
        let label = ingest.seal.expect("sealed implies a label");
        if let Some(segment) = sealed.as_ref() {
            shared.segments_sealed.fetch_add(1, Ordering::Relaxed);
            push_segment_to_tailers(shared, segment);
        }
        broadcast_frames(shared, label);
        maybe_checkpoint(shared, version);
    }
    let sealed_json = match sealed_index {
        Some(index) => index.to_string(),
        None => "null".to_string(),
    };
    let body = format!(
        "{{\"version\": {version}, \"num_sealed\": {num_sealed}, \"sealed_index\": {sealed_json}}}"
    );
    let _ = http::write_response(&mut stream, 200, &body);
}

/// Write-forwarding: a follower proxies `/ingest` to its leader with
/// bounded jittered retries and relays the leader's exact status and body
/// — from a client's point of view, writes work against any server in the
/// group. The forward happens *before* any local lock: the write becomes
/// visible here only when the leader's segment arrives on the tail stream,
/// exactly like every other replicated write. When the retry budget is
/// exhausted (leader down longer than the backoff window) the client gets
/// `503` + `Retry-After` and may retry against the recovering leader
/// through us again.
fn forward_ingest(
    shared: &Arc<Shared>,
    mut stream: TcpStream,
    request: &Request,
    leader: SocketAddr,
) {
    let unavailable = |stream: &mut TcpStream, shared: &Arc<Shared>, detail: &str| {
        shared.forward_failures.fetch_add(1, Ordering::Relaxed);
        let message = format!("could not forward the write to the leader: {detail}");
        let _ = http::write_response_with_retry_after(
            stream,
            503,
            &http::error_body(&message),
            Some(shared.config.retry_after_secs),
        );
    };
    if egraph_fault::fired("serve.ingest.forward").is_some() {
        unavailable(&mut stream, shared, "injected forward failure");
        return;
    }
    let client = Client::new(leader).with_timeout(shared.config.io_timeout);
    let policy = crate::client::RetryPolicy {
        attempts: shared.config.forward_attempts,
        backoff: shared.config.forward_backoff,
        ..crate::client::RetryPolicy::default()
    };
    match client.post_with_retry("/ingest", &request.body, &policy) {
        Ok((response, _retries)) => {
            shared.ingest_forwarded.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response_with_retry_after(
                &mut stream,
                response.status,
                &response.body,
                response.retry_after,
            );
        }
        Err(err) => unavailable(&mut stream, shared, &err.to_string()),
    }
}

/// Re-executes every standing subscription at the current version and
/// pushes one frame each; subscribers whose sockets are gone are dropped.
/// Runs under `seal_lock`, after the write lock has been released — pushes
/// overlap new `/query` reads, never block them.
fn broadcast_frames(shared: &Arc<Shared>, label: i64) {
    let live = read_live(shared);
    let version = live.version();
    let labels = log_labels(shared);
    let mut subscribers = lock(&shared.subscribers);
    let mut frames_pushed = 0u64;
    subscribers.retain_mut(|subscriber| {
        let search = subscriber.descriptor.to_search();
        let frame = match shared.cache.execute_traced(&live, &search) {
            Ok((result, outcome)) => frame_body(
                subscriber.seq,
                version,
                Some(label),
                outcome_name(outcome),
                labels,
                Ok(&result),
            ),
            Err(err) => frame_body(
                subscriber.seq,
                version,
                Some(label),
                "error",
                labels,
                Err(&err.to_string()),
            ),
        };
        subscriber.seq += 1;
        let delivered = http::write_chunk(&mut subscriber.stream, &frame).is_ok();
        if delivered {
            frames_pushed += 1;
        }
        delivered
    });
    shared
        .frames_pushed
        .fetch_add(frames_pushed, Ordering::Relaxed);
}

/// Policy-driven checkpointing, run under `seal_lock` right after a seal
/// was published and broadcast. Serializes the sealed CSR state, installs
/// it atomically as `checkpoint-<seq>.bin`, prunes checkpoints beyond the
/// retention bound, and compacts every segment the oldest *surviving*
/// checkpoint covers. Failure is logged, never surfaced to the ingesting
/// client — the seal itself is already fsynced and acknowledged; a
/// checkpoint only bounds how much of the log future recoveries replay.
fn maybe_checkpoint(shared: &Arc<Shared>, version: u64) {
    let every = shared.config.checkpoint_every;
    if every == 0 || version == 0 || !version.is_multiple_of(every) {
        return;
    }
    let Some(log) = shared.log.as_ref() else {
        return;
    };
    let last_seq = version - 1;
    let payload = {
        let live = read_live(shared);
        encode_checkpoint(&live.graph().to_parts(), version)
    };
    let result: Result<u64, egraph_log::LogError> = (|| {
        let mut log = lock(log);
        egraph_log::write_checkpoint(log.dir(), last_seq, &payload)?;
        let retained = egraph_log::retain_checkpoints(log.dir(), shared.config.retain_checkpoints)?;
        // Deletion strictly follows the covering checkpoint's install:
        // only segments the oldest checkpoint still on disk covers go.
        let oldest = retained.first().copied().unwrap_or(last_seq);
        log.compact_through(oldest)
    })();
    match result {
        Ok(deleted) => {
            shared.checkpoints_written.fetch_add(1, Ordering::Relaxed);
            shared
                .segments_compacted
                .fetch_add(deleted, Ordering::Relaxed);
        }
        Err(err) => eprintln!(
            "egraph-serve: checkpoint at version {version} failed \
             (the seal itself is already durable): {err}"
        ),
    }
}

// ---------------------------------------------------------------------------
// GET /log/tail — replication: serving the segment stream
// ---------------------------------------------------------------------------

/// Parses the `from=<seq>` parameter of a tail request (default `0`).
fn parse_tail_from(query: Option<&str>) -> Result<u64, String> {
    let Some(query) = query else { return Ok(0) };
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        if key == "from" {
            return value
                .parse()
                .map_err(|_| format!("unparseable from={value:?}"));
        }
    }
    Ok(0)
}

/// Writes one sealed segment onto a tail stream: a JSON header chunk
/// (`seq`, byte length, and the log's latest seal count so followers can
/// report their lag), then the segment's exact bytes as a binary chunk.
fn write_segment_chunks(
    stream: &mut TcpStream,
    seq: u64,
    latest: u64,
    bytes: &[u8],
) -> std::io::Result<()> {
    let header = format!(
        "{{\"seq\": {seq}, \"len\": {}, \"latest\": {latest}}}",
        bytes.len()
    );
    http::write_chunk(stream, &header)?;
    http::write_chunk_bytes(stream, bytes)
}

/// `GET /log/tail?from=seq`: streams every sealed segment from `from`
/// onward, then parks the connection to receive future seals as they
/// happen. Only a durable leader (a server with a log) can be tailed.
fn handle_tail(shared: &Arc<Shared>, mut stream: TcpStream, query: Option<&str>) {
    let Some(log) = shared.log.as_ref() else {
        shared.bad_requests.fetch_add(1, Ordering::Relaxed);
        let _ = http::write_response(
            &mut stream,
            403,
            &http::error_body("this server has no durable log to tail (start it durable)"),
        );
        return;
    };
    let from = match parse_tail_from(query) {
        Ok(from) => from,
        Err(message) => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(&mut stream, 400, &http::error_body(&message));
            return;
        }
    };
    let (num_nodes, directed, mut latest, first_seq) = {
        let log = lock(log);
        let (num_nodes, directed) = log.init();
        (num_nodes, directed, log.segments_sealed(), log.first_seq())
    };
    if from > latest {
        shared.bad_requests.fetch_add(1, Ordering::Relaxed);
        let message = format!("from={from} is beyond the log's {latest} sealed segments");
        let _ = http::write_response(&mut stream, 400, &http::error_body(&message));
        return;
    }
    if from < first_seq {
        // Compaction deleted the requested prefix. The covering state
        // lives in a checkpoint now, so point the tailer there instead of
        // streaming a hole.
        shared.bad_requests.fetch_add(1, Ordering::Relaxed);
        let message = format!(
            "from={from} was compacted away (the log now starts at segment {first_seq}); \
             bootstrap from GET /checkpoint/latest and tail the suffix"
        );
        let _ = http::write_response(&mut stream, 410, &http::error_body(&message));
        return;
    }
    let init_frame = format!(
        "{{\"init\": {{\"num_nodes\": {num_nodes}, \"directed\": {directed}}}, \"latest\": {latest}}}"
    );
    if http::write_chunked_head(&mut stream).is_err()
        || http::write_chunk(&mut stream, &init_frame).is_err()
    {
        return;
    }
    let mut next = from;
    loop {
        // Catch up from disk without blocking ingest for the whole sweep:
        // the log lock is taken per segment, never across the socket write.
        while next < latest {
            let bytes = match lock(log).segment_bytes(next) {
                Ok(bytes) => bytes,
                Err(err) => {
                    // Disk trouble: drop the tailer (it reconnects from its
                    // own version) — but *count* it, so an operator watching
                    // `/stats` can see replication flapping instead of
                    // wondering why followers keep falling behind.
                    shared.tail_read_errors.fetch_add(1, Ordering::Relaxed);
                    eprintln!("egraph-serve: tail segment read failed: {err}");
                    return;
                }
            };
            if write_segment_chunks(&mut stream, next, latest, &bytes).is_err() {
                return;
            }
            next += 1;
        }
        // Caught up to what we saw — register under `seal_lock` so no seal
        // can slip between the last shipped segment and registration. If
        // one landed while we were streaming, go around again.
        let _ordering = lock(&shared.seal_lock);
        let now = lock(log).segments_sealed();
        if now > next {
            latest = now;
            continue;
        }
        lock(&shared.tailers).push(stream);
        return;
    }
}

/// `GET /checkpoint/latest`: serves the newest installed checkpoint file
/// byte-for-byte (the full `EGCP` container, CRC included), so a
/// bootstrapping follower verifies exactly what local recovery would.
/// `404` when no checkpoint has been installed yet; only a durable leader
/// has checkpoints to serve.
fn handle_checkpoint_latest(shared: &Arc<Shared>, mut stream: TcpStream) {
    let Some(log) = shared.log.as_ref() else {
        shared.bad_requests.fetch_add(1, Ordering::Relaxed);
        let _ = http::write_response(
            &mut stream,
            403,
            &http::error_body("this server has no durable log (and so no checkpoints)"),
        );
        return;
    };
    // Hold the log lock across list+read: a concurrent checkpoint's
    // retention sweep also runs under it, so the file picked here cannot
    // be deleted between the listing and the read.
    let log = lock(log);
    let newest = match egraph_log::list_checkpoints(log.dir()) {
        Ok(seqs) => seqs.last().copied(),
        Err(err) => {
            let message = format!("could not list checkpoints: {err}");
            let _ = http::write_response(&mut stream, 500, &http::error_body(&message));
            return;
        }
    };
    let Some(seq) = newest else {
        shared.bad_requests.fetch_add(1, Ordering::Relaxed);
        let _ = http::write_response(
            &mut stream,
            404,
            &http::error_body("no checkpoint has been installed yet"),
        );
        return;
    };
    match std::fs::read(egraph_log::checkpoint_path(log.dir(), seq)) {
        Ok(bytes) => {
            drop(log); // a slow client must not pin the log
            let _ = http::write_response_bytes(&mut stream, 200, &bytes);
        }
        Err(err) => {
            let message = format!("could not read checkpoint {seq}: {err}");
            let _ = http::write_response(&mut stream, 500, &http::error_body(&message));
        }
    }
}

/// Pushes one freshly sealed segment to every parked tailer (runs under
/// `seal_lock`, right after the seal was published). Tailers whose sockets
/// are gone are dropped; they reconnect from their own version.
fn push_segment_to_tailers(shared: &Arc<Shared>, sealed: &Sealed) {
    let latest = shared.segments_sealed.load(Ordering::Relaxed);
    let mut tailers = lock(&shared.tailers);
    tailers.retain_mut(|stream| {
        write_segment_chunks(stream, sealed.seq, latest, &sealed.bytes).is_ok()
    });
}

// ---------------------------------------------------------------------------
// Follower: tailing a leader's segment stream
// ---------------------------------------------------------------------------

/// Rebuilds a [`LiveGraph`] from a fetched checkpoint payload: decodes the
/// CSR parts, cross-checks the pinned version against the checkpoint's
/// sequence number (a checkpoint named `last_seq` covers segments
/// `0..=last_seq`, so it must pin version `last_seq + 1`), and adopts the
/// version stamp so later tailed segments line up.
fn live_from_checkpoint(last_seq: u64, payload: &[u8]) -> Result<LiveGraph, String> {
    let (parts, version) = decode_checkpoint(payload).map_err(|err| err.to_string())?;
    if version != last_seq + 1 {
        return Err(format!(
            "checkpoint {last_seq} pins version {version}, expected {}",
            last_seq + 1
        ));
    }
    let graph = CsrAdjacency::from_parts(parts)?;
    Ok(LiveGraph::from_csr_at_version(graph, version))
}

/// Re-bootstraps a follower whose tail position the leader has compacted
/// away: fetches the leader's newest checkpoint and adopts it when it is
/// strictly ahead of the local graph. Returns `false` (the caller halts)
/// when no usable checkpoint moves us forward — without forward progress
/// this would spin against the same gap forever.
fn try_rebootstrap(shared: &Arc<Shared>, ctl: &FollowerCtl) -> bool {
    let client = Client::new(ctl.leader).with_timeout(shared.config.io_timeout);
    let Ok(Some((last_seq, payload))) = client.fetch_checkpoint() else {
        return false;
    };
    let Ok(live) = live_from_checkpoint(last_seq, &payload) else {
        return false;
    };
    let version = live.version();
    // Same ordering discipline as a tailed segment: the swap serializes
    // against ingest/broadcast sections and subscription registration.
    let _ordering = lock(&shared.seal_lock);
    {
        let mut current = write_live(shared);
        if version <= current.version() {
            return false;
        }
        // The fresh graph carries a fresh graph id, so every cached entry
        // re-validates (and recomputes) rather than extending across the
        // jump.
        *current = live;
    }
    eprintln!(
        "egraph-serve follower: tail position compacted on the leader; \
         re-bootstrapped from its checkpoint at version {version}"
    );
    true
}

/// Applies one tailed segment to the follower's graph and re-broadcasts to
/// its subscribers. Returns `Err` on corruption or a sequence gap — state
/// the leader's fsync-ordered stream can never produce, so replication
/// stops loudly rather than serving a wrong graph.
fn apply_tailed_segment(
    shared: &Arc<Shared>,
    segment: &crate::client::TailSegment,
) -> Result<(), String> {
    let decoded = decode_segment(&segment.bytes).map_err(|err| err.to_string())?;
    let label = decoded.label;
    // The same ordering discipline as `/ingest`: the whole apply→broadcast
    // section is serialized against subscription registration.
    let _ordering = lock(&shared.seal_lock);
    let version = {
        let mut live = write_live(shared);
        let version = live.version();
        if decoded.seq < version {
            // Already applied (a reconnect re-shipped it); skip silently.
            return Ok(());
        }
        if decoded.seq > version {
            return Err(format!(
                "segment gap: leader shipped seq {} but this follower is at {version}",
                decoded.seq
            ));
        }
        replay_segment(&mut live, &decoded).map_err(|err| err.to_string())?;
        live.version()
    };
    shared.segments_replayed.fetch_add(1, Ordering::Relaxed);
    shared
        .follower_lag_seals
        .store(segment.latest.saturating_sub(version), Ordering::Relaxed);
    broadcast_frames(shared, label);
    Ok(())
}

/// The follower's tail thread: consumes segments from the already-open
/// bootstrap stream, and reconnects (from the current version) with
/// backoff whenever the leader goes away — until shutdown.
fn follower_tail_loop(shared: Arc<Shared>, first: Option<(TailInit, LogTail)>) {
    let ctl = shared
        .follower
        .as_ref()
        .expect("the tail loop only runs on a follower");
    let mut session = first;
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let (init, mut tail) = match session.take() {
            Some(open) => open,
            None => {
                let from = read_live(&shared).version();
                let client = Client::new(ctl.leader).with_timeout(shared.config.io_timeout);
                match client.tail_log(from) {
                    Ok(open) => open,
                    Err(err) if err.to_string().contains("rejected with 410") => {
                        // Our resume point was compacted on the leader; the
                        // only way forward is its checkpoint.
                        if try_rebootstrap(&shared, ctl) {
                            continue;
                        }
                        eprintln!(
                            "egraph-serve follower: replication halted: resume point \
                             compacted on the leader and no usable checkpoint: {err}"
                        );
                        return;
                    }
                    Err(_) => {
                        std::thread::sleep(shared.config.forward_backoff);
                        continue;
                    }
                }
            }
        };
        // Park the stream where shutdown can reach it, then re-check the
        // flag so a shutdown racing the store cannot leave us blocked.
        if let Ok(clone) = tail.try_clone_stream() {
            *lock(&ctl.tail_stream) = Some(clone);
        }
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        // Pushes arrive at seal pace, which can be far apart: the tail
        // read must be allowed to block indefinitely.
        let _ = tail.set_read_timeout(None);
        let version = read_live(&shared).version();
        shared
            .follower_lag_seals
            .store(init.latest.saturating_sub(version), Ordering::Relaxed);
        // Leader closing or a transport failure ends this inner loop and
        // reconnects from wherever we got to.
        while let Ok(Some(segment)) = tail.next_segment() {
            if let Err(message) = apply_tailed_segment(&shared, &segment) {
                // A sequence gap can be legitimate: the leader may have
                // compacted past our resume point, and its checkpoint can
                // legally jump the graph forward. Anything else — or a
                // failed bootstrap — halts loudly rather than serving a
                // possibly-wrong graph.
                if try_rebootstrap(&shared, ctl) {
                    break; // reconnect from the bootstrapped version
                }
                eprintln!("egraph-serve follower: replication halted: {message}");
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// GET /stats
// ---------------------------------------------------------------------------

/// Disk gauges for `/stats` and [`Server::stats`]: bytes currently held by
/// manifest + segment files, and by installed checkpoint files. `(0, 0)`
/// on a server without a log.
fn disk_bytes(shared: &Shared) -> (u64, u64) {
    match shared.log.as_ref() {
        Some(log) => {
            let log = lock(log);
            (
                log.segments_bytes(),
                egraph_log::checkpoints_bytes(log.dir()),
            )
        }
        None => (0, 0),
    }
}

fn stats_body(shared: &Arc<Shared>) -> String {
    let cache = shared.cache.stats();
    let (version, num_sealed, num_nodes) = {
        let live = read_live(shared);
        (live.version(), live.num_sealed(), live.graph().num_nodes())
    };
    let subscribers = lock(&shared.subscribers).len();
    let labels = log_labels(shared);
    let (segments_bytes, checkpoint_bytes) = disk_bytes(shared);
    format!(
        "{{\"cache\": {{\"hits\": {}, \"extensions\": {}, \"extended_shared\": {}, \
         \"redimensioned\": {}, \"stable_core_resettled\": {}, \"recomputes\": {}, \
         \"misses\": {}, \"evictions\": {}, \"coalesced\": {}, \"requests\": {}, \
         \"hit_rate\": {:.6}}}, \
         \"server\": {{\"requests\": {}, \"bad_requests\": {}, \"subscribers\": {subscribers}, \
         \"subscriptions_opened\": {}, \"frames_pushed\": {}, \"requests_shed\": {}, \
         \"tail_read_errors\": {}, \"ingest_forwarded\": {}, \"forward_failures\": {}}}, \
         \"log\": {{\"segments_sealed\": {}, \"segments_replayed\": {}, \
         \"follower_lag_seals\": {}, \"segments_bytes\": {segments_bytes}, \
         \"checkpoint_bytes\": {checkpoint_bytes}, \"segments_compacted\": {}, \
         \"checkpoints_written\": {}, \"recovery_replayed_events\": {}}}, \
         \"graph\": {{\"version\": {version}, \"num_sealed\": {num_sealed}, \"num_nodes\": {num_nodes}}}}}",
        cache.hits,
        cache.extensions,
        cache.extended_shared,
        cache.redimensioned,
        cache.stable_core_resettled,
        cache.recomputes,
        cache.misses,
        cache.evictions,
        cache.coalesced,
        cache.requests(),
        cache.hit_rate(),
        shared.requests.load(Ordering::Relaxed),
        shared.bad_requests.load(Ordering::Relaxed),
        shared.subscriptions_opened.load(Ordering::Relaxed),
        shared.frames_pushed.load(Ordering::Relaxed),
        shared.requests_shed.load(Ordering::Relaxed),
        shared.tail_read_errors.load(Ordering::Relaxed),
        shared.ingest_forwarded.load(Ordering::Relaxed),
        shared.forward_failures.load(Ordering::Relaxed),
        labels.segments_sealed,
        labels.segments_replayed,
        labels.follower_lag_seals,
        shared.segments_compacted.load(Ordering::Relaxed),
        shared.checkpoints_written.load(Ordering::Relaxed),
        shared.recovery_replayed_events.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_bodies_parse_and_reject_cleanly() {
        let ok = parse_ingest(r#"{"events": [[0, 1], [1, 2]], "seal": 7}"#).unwrap();
        assert_eq!(ok.events, vec![(0, 1), (1, 2)]);
        assert_eq!(ok.seal, Some(7));
        assert_eq!(ok.grow_nodes, None);

        let grow = parse_ingest(r#"{"grow_nodes": 12}"#).unwrap();
        assert_eq!(grow.grow_nodes, Some(12));
        assert!(grow.events.is_empty());

        for bad in [
            "",
            "[]",
            "{}",
            r#"{"events": [[0]]}"#,
            r#"{"events": [[0, 1, 2]]}"#,
            r#"{"events": [["a", "b"]]}"#,
            r#"{"seal": "tomorrow"}"#,
            r#"{"grow_nodes": -4}"#,
        ] {
            assert!(parse_ingest(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn frames_carry_sequence_version_label_log_counters_and_outcome() {
        let labels = LogLabels {
            segments_sealed: 4,
            segments_replayed: 2,
            follower_lag_seals: 1,
        };
        let frame = frame_body(3, 9, Some(41), "extended", labels, Err("window moved"));
        assert_eq!(
            frame,
            "{\"seq\": 3, \"version\": 9, \"label\": 41, \"segments_sealed\": 4, \
             \"segments_replayed\": 2, \"follower_lag_seals\": 1, \
             \"outcome\": \"extended\", \"error\": \"window moved\"}"
        );
        let initial = frame_body(0, 1, None, "miss", labels, Err("x"));
        assert!(!initial.contains("\"label\""));
    }

    #[test]
    fn tail_from_parameters_parse_and_reject() {
        assert_eq!(parse_tail_from(None).unwrap(), 0);
        assert_eq!(parse_tail_from(Some("")).unwrap(), 0);
        assert_eq!(parse_tail_from(Some("from=7")).unwrap(), 7);
        assert_eq!(parse_tail_from(Some("x=1&from=3")).unwrap(), 3);
        assert!(parse_tail_from(Some("from=minus")).is_err());
        assert!(parse_tail_from(Some("from=-1")).is_err());
    }
}
