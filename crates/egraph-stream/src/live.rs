//! [`LiveGraph`]: an evolving graph that is still evolving.
//!
//! The rest of the workspace searches graphs that were built up front; a
//! `LiveGraph` is the production shape — a CSR-flattened serve graph
//! ([`CsrAdjacency`]) grown through an append-only event API:
//!
//! * [`LiveGraph::apply`] buffers an [`EdgeEvent`] into the *open* snapshot,
//! * [`LiveGraph::seal_snapshot`] publishes the open snapshot under a
//!   strictly later time label, making it visible to every search.
//!
//! Searches (and the [`EvolvingGraph`] view this type implements) only ever
//! see **sealed** data, so a half-ingested batch can never leak into a
//! result. Every seal bumps a monotonically increasing [`version`] stamp —
//! the invalidation token the [`QueryCache`](crate::QueryCache) keys on —
//! and records which nodes the snapshot *touched* (its active set), which is
//! exactly the delta the incremental re-search extension needs.
//!
//! Sealing is also what lets the serve graph be CSR-flat in the first
//! place: a sealed snapshot's neighbor lists never change again, so each
//! seal appends one contiguous region to the flat neighbor pool
//! ([`CsrAdjacency::append_snapshot`]) instead of scattering per-node `Vec`s
//! across the heap. Every traversal a query layer runs against
//! [`LiveGraph::graph`] — BFS, parallel BFS, the foremost sweep, the
//! resumable extensions — walks that contiguous layout.
//!
//! [`version`]: LiveGraph::version

use std::collections::HashSet;

use egraph_core::csr::CsrAdjacency;
use egraph_core::error::{GraphError, Result};
use egraph_core::graph::EvolvingGraph;
use egraph_core::ids::{NodeId, TimeIndex, Timestamp};

use crate::event::EdgeEvent;

/// An append-only live evolving graph with an open-snapshot event buffer.
#[derive(Debug)]
pub struct LiveGraph {
    graph: CsrAdjacency,
    /// Process-unique instance identity (see [`LiveGraph::graph_id`]).
    graph_id: u64,
    /// Bumped on every successful [`LiveGraph::seal_snapshot`].
    version: u64,
    /// `touched[t]` = sorted, deduplicated nodes active at sealed snapshot
    /// `t` — the per-snapshot delta handed to the resumable engines.
    touched: Vec<Vec<NodeId>>,
    /// Events buffered for the open snapshot.
    pending: Vec<EdgeEvent>,
    /// Node-universe size after the open snapshot's `GrowNodes` events.
    pending_nodes: usize,
}

/// A clone is a *new* live graph that may diverge from the original, so it
/// gets a fresh [`LiveGraph::graph_id`] — a cache bound to the original will
/// not serve (or corrupt itself with) the clone's history.
impl Clone for LiveGraph {
    fn clone(&self) -> Self {
        LiveGraph {
            graph: self.graph.clone(),
            graph_id: next_graph_id(),
            version: self.version,
            touched: self.touched.clone(),
            pending: self.pending.clone(),
            pending_nodes: self.pending_nodes,
        }
    }
}

/// Process-wide counter behind [`LiveGraph::graph_id`].
fn next_graph_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl LiveGraph {
    /// Creates a live graph over `num_nodes` nodes with no sealed snapshot
    /// yet. Directed unless [`LiveGraph::undirected`] is used.
    pub fn directed(num_nodes: usize) -> Self {
        Self::from_csr(CsrAdjacency::new(num_nodes, true))
    }

    /// Creates an undirected live graph with no sealed snapshot yet.
    pub fn undirected(num_nodes: usize) -> Self {
        Self::from_csr(CsrAdjacency::new(num_nodes, false))
    }

    /// Adopts an existing graph as the sealed history (version 0),
    /// flattening it into the CSR serve layout and deriving the
    /// per-snapshot touched sets from its activeness index. Subsequent
    /// events append to it.
    pub fn from_graph<G: EvolvingGraph>(graph: &G) -> Self {
        Self::from_csr(CsrAdjacency::from_graph(graph))
    }

    /// Adopts an already-flattened graph as the sealed history (version 0).
    pub fn from_csr(graph: CsrAdjacency) -> Self {
        let touched = (0..graph.num_timestamps())
            .map(|t| {
                graph
                    .active_at(TimeIndex::from_index(t))
                    .into_iter()
                    .map(|tn| tn.node)
                    .collect()
            })
            .collect();
        let pending_nodes = graph.num_nodes();
        LiveGraph {
            graph,
            graph_id: next_graph_id(),
            version: 0,
            touched,
            pending: Vec::new(),
            pending_nodes,
        }
    }

    /// Adopts a graph restored from a checkpoint: like
    /// [`LiveGraph::from_csr`], but pins the version stamp the graph was
    /// serialized at instead of 0, so cached descriptors keyed on the
    /// monotone version re-validate exactly as they would have against the
    /// original instance's history.
    pub fn from_csr_at_version(graph: CsrAdjacency, version: u64) -> Self {
        let mut live = Self::from_csr(graph);
        live.version = version;
        live
    }

    /// A process-unique identity for this live graph *instance*. Two
    /// `LiveGraph`s never share an id — clones included, since a clone may
    /// diverge while keeping the same [`LiveGraph::version`]. The
    /// [`QueryCache`](crate::QueryCache) binds entries to this id so one
    /// graph's results can never answer (or be corrupted by) another's.
    pub fn graph_id(&self) -> u64 {
        self.graph_id
    }

    /// The sealed serve graph — the CSR-flattened layout every search runs
    /// against. The open snapshot's buffered events are *not* part of it.
    pub fn graph(&self) -> &CsrAdjacency {
        &self.graph
    }

    /// Monotonically increasing version stamp: the number of seals applied
    /// to this graph (adopting an existing history counts as version 0).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of sealed snapshots.
    pub fn num_sealed(&self) -> usize {
        self.graph.num_timestamps()
    }

    /// Number of events buffered in the open snapshot.
    pub fn num_pending(&self) -> usize {
        self.pending.len()
    }

    /// The sorted node set sealed snapshot `t` touched (its active nodes).
    ///
    /// # Panics
    /// Panics if `t` is not a sealed snapshot.
    pub fn touched_at(&self, t: TimeIndex) -> &[NodeId] {
        &self.touched[t.index()]
    }

    /// Buffers one event into the open snapshot.
    ///
    /// Validation happens here — against the universe the open snapshot will
    /// have, i.e. including earlier buffered `GrowNodes` events — so a bad
    /// event is rejected immediately instead of poisoning a later seal.
    ///
    /// # Errors
    /// [`GraphError::SelfLoop`] (reported at the open snapshot's index) and
    /// [`GraphError::NodeOutOfRange`] exactly as a direct edge insertion
    /// would report them.
    pub fn apply(&mut self, event: EdgeEvent) -> Result<()> {
        match event {
            EdgeEvent::Insert { src, dst } | EdgeEvent::InsertUnique { src, dst } => {
                if src == dst {
                    return Err(GraphError::SelfLoop {
                        node: src,
                        time: TimeIndex::from_index(self.num_sealed()),
                    });
                }
                for v in [src, dst] {
                    if v.index() >= self.pending_nodes {
                        return Err(GraphError::NodeOutOfRange {
                            node: v,
                            num_nodes: self.pending_nodes,
                        });
                    }
                }
            }
            EdgeEvent::GrowNodes { num_nodes } => {
                self.pending_nodes = self.pending_nodes.max(num_nodes);
            }
        }
        self.pending.push(event);
        Ok(())
    }

    /// Seals the open snapshot under time label `label`, publishing every
    /// buffered event at once: grows the node universe, appends the
    /// snapshot's neighbor lists to the CSR pools in one contiguous region,
    /// records the touched set and bumps [`LiveGraph::version`]. Sealing
    /// with no buffered edges publishes an empty snapshot (every node
    /// inactive there), which is legal.
    ///
    /// Returns the new snapshot's index.
    ///
    /// # Errors
    /// [`GraphError::UnsortedTimestamps`] if `label` is not strictly later
    /// than the last sealed label; the buffer is left untouched so the
    /// caller can retry with a corrected label.
    pub fn seal_snapshot(&mut self, label: Timestamp) -> Result<TimeIndex> {
        // The label rule is `append_snapshot`'s, but it must be re-checked
        // here *before* the universe grows: a rejected seal has to be
        // atomic (buffer, universe and graph untouched), and growth cannot
        // come after the append because the buffered edges may reference
        // grown nodes.
        if !self.can_seal(label) {
            return Err(GraphError::UnsortedTimestamps {
                position: self.num_sealed(),
            });
        }

        // Materialise the snapshot's edge list (the buffer stays intact
        // until the append succeeds), honouring `InsertUnique` exactly like
        // the incremental path did: deduplication is per (src, dst) pair
        // within the snapshot, symmetric for undirected graphs, and also
        // sees edges inserted by earlier plain `Insert`s.
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        // The dedup set is only worth maintaining when something will read
        // it — pure-Insert batches (the common streaming shape) skip the
        // per-edge hashing entirely.
        let any_unique = self
            .pending
            .iter()
            .any(|e| matches!(e, EdgeEvent::InsertUnique { .. }));
        let mut seen: HashSet<(NodeId, NodeId)> = HashSet::new();
        let directed = self.graph.is_directed();
        for event in &self.pending {
            let (src, dst, unique) = match *event {
                EdgeEvent::Insert { src, dst } => (src, dst, false),
                EdgeEvent::InsertUnique { src, dst } => (src, dst, true),
                EdgeEvent::GrowNodes { .. } => continue,
            };
            if unique && seen.contains(&(src, dst)) {
                continue;
            }
            if any_unique {
                seen.insert((src, dst));
                if !directed {
                    seen.insert((dst, src));
                }
            }
            edges.push((src, dst));
        }

        self.graph.grow_nodes(self.pending_nodes);
        let t = self.graph.append_snapshot(label, &edges)?;
        self.pending.clear();

        let mut touched: Vec<NodeId> = edges.iter().flat_map(|&(u, v)| [u, v]).collect();
        touched.sort_unstable();
        touched.dedup();
        self.touched.push(touched);
        self.version += 1;
        Ok(t)
    }

    /// Whether [`LiveGraph::seal_snapshot`] would accept `label` — i.e. it
    /// is strictly later than the last sealed label. This is the *only*
    /// way a seal can fail, so durable callers use it to validate a label
    /// *before* committing the seal to their write-ahead log.
    pub fn can_seal(&self, label: Timestamp) -> bool {
        match self.graph.last_timestamp() {
            None => true,
            Some(last) => label > last,
        }
    }

    /// Convenience: buffers a plain edge insert (see [`LiveGraph::apply`]).
    pub fn insert(&mut self, src: impl Into<NodeId>, dst: impl Into<NodeId>) -> Result<()> {
        self.apply(EdgeEvent::insert(src, dst))
    }
}

/// Searches routed at a `LiveGraph` see exactly the sealed history.
impl EvolvingGraph for LiveGraph {
    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }
    fn num_timestamps(&self) -> usize {
        self.graph.num_timestamps()
    }
    fn timestamp(&self, t: TimeIndex) -> Timestamp {
        EvolvingGraph::timestamp(&self.graph, t)
    }
    fn is_directed(&self) -> bool {
        self.graph.is_directed()
    }
    fn num_static_edges(&self) -> usize {
        self.graph.num_static_edges()
    }
    fn for_each_static_out(&self, v: NodeId, t: TimeIndex, f: &mut dyn FnMut(NodeId)) {
        self.graph.for_each_static_out(v, t, f)
    }
    fn for_each_static_in(&self, v: NodeId, t: TimeIndex, f: &mut dyn FnMut(NodeId)) {
        self.graph.for_each_static_in(v, t, f)
    }
    fn for_each_active_time(&self, v: NodeId, f: &mut dyn FnMut(TimeIndex)) {
        self.graph.for_each_active_time(v, f)
    }
    fn is_active(&self, v: NodeId, t: TimeIndex) -> bool {
        self.graph.is_active(v, t)
    }
    fn time_index_of(&self, timestamp: Timestamp) -> Option<TimeIndex> {
        EvolvingGraph::time_index_of(&self.graph, timestamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_stay_invisible_until_sealed() {
        let mut live = LiveGraph::directed(3);
        live.insert(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(live.num_sealed(), 0);
        assert_eq!(live.num_pending(), 1);
        assert_eq!(live.graph().num_static_edges(), 0);

        let t = live.seal_snapshot(10).unwrap();
        assert_eq!(t, TimeIndex(0));
        assert_eq!(live.num_pending(), 0);
        assert_eq!(live.graph().num_static_edges(), 1);
        assert_eq!(live.version(), 1);
        assert_eq!(live.touched_at(t), &[NodeId(0), NodeId(1)]);
    }

    #[test]
    fn apply_validates_against_the_pending_universe() {
        let mut live = LiveGraph::directed(2);
        assert!(matches!(
            live.insert(NodeId(0), NodeId(5)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            live.insert(NodeId(1), NodeId(1)),
            Err(GraphError::SelfLoop { .. })
        ));
        // Growing inside the open snapshot legalises the edge immediately.
        live.apply(EdgeEvent::grow_nodes(6)).unwrap();
        live.insert(NodeId(0), NodeId(5)).unwrap();
        let t = live.seal_snapshot(0).unwrap();
        assert_eq!(live.graph().num_nodes(), 6);
        assert!(live.graph().has_static_edge(NodeId(0), NodeId(5), t));
    }

    #[test]
    fn seal_rejects_non_monotonic_labels_and_keeps_the_buffer() {
        let mut live = LiveGraph::directed(3);
        live.seal_snapshot(5).unwrap();
        live.insert(NodeId(0), NodeId(1)).unwrap();
        assert!(matches!(
            live.seal_snapshot(5),
            Err(GraphError::UnsortedTimestamps { .. })
        ));
        // Buffer intact: retry with a later label succeeds.
        assert_eq!(live.num_pending(), 1);
        let t = live.seal_snapshot(6).unwrap();
        assert!(live.graph().has_static_edge(NodeId(0), NodeId(1), t));
        assert_eq!(live.version(), 2);
    }

    #[test]
    fn insert_unique_deduplicates_within_the_open_snapshot() {
        let mut live = LiveGraph::directed(3);
        live.apply(EdgeEvent::insert_unique(NodeId(0), NodeId(1)))
            .unwrap();
        live.apply(EdgeEvent::insert_unique(NodeId(0), NodeId(1)))
            .unwrap();
        live.seal_snapshot(0).unwrap();
        assert_eq!(live.graph().num_static_edges(), 1);
    }

    #[test]
    fn insert_unique_sees_plain_inserts_and_undirected_symmetry() {
        let mut live = LiveGraph::directed(3);
        live.apply(EdgeEvent::insert(NodeId(0), NodeId(1))).unwrap();
        live.apply(EdgeEvent::insert_unique(NodeId(0), NodeId(1)))
            .unwrap();
        // The reversed pair is a different directed edge.
        live.apply(EdgeEvent::insert_unique(NodeId(1), NodeId(0)))
            .unwrap();
        live.seal_snapshot(0).unwrap();
        assert_eq!(live.graph().num_static_edges(), 2);

        let mut live = LiveGraph::undirected(3);
        live.apply(EdgeEvent::insert(NodeId(0), NodeId(1))).unwrap();
        // Undirected: (1, 0) is the same edge and must be deduplicated.
        live.apply(EdgeEvent::insert_unique(NodeId(1), NodeId(0)))
            .unwrap();
        live.seal_snapshot(0).unwrap();
        assert_eq!(live.graph().num_static_edges(), 1);
        assert_eq!(
            live.graph().out_slice(NodeId(1), TimeIndex(0)),
            &[NodeId(0)]
        );
    }

    #[test]
    fn empty_seals_publish_inactive_snapshots() {
        let mut live = LiveGraph::directed(2);
        let t = live.seal_snapshot(1).unwrap();
        assert_eq!(live.num_sealed(), 1);
        assert!(live.touched_at(t).is_empty());
        assert!(!live.graph().is_active(NodeId(0), t));
    }

    #[test]
    fn from_graph_derives_touched_sets() {
        let g = egraph_core::examples::paper_figure1();
        let live = LiveGraph::from_graph(&g);
        assert_eq!(live.version(), 0);
        assert_eq!(live.touched_at(TimeIndex(0)), &[NodeId(0), NodeId(1)]);
        assert_eq!(live.touched_at(TimeIndex(1)), &[NodeId(0), NodeId(2)]);
        assert_eq!(live.touched_at(TimeIndex(2)), &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn the_evolving_graph_view_matches_the_sealed_graph() {
        let mut live = LiveGraph::directed(3);
        live.insert(NodeId(0), NodeId(1)).unwrap();
        live.seal_snapshot(0).unwrap();
        live.insert(NodeId(1), NodeId(2)).unwrap();
        // Buffered, unsealed: the trait view must not see it.
        assert_eq!(live.num_timestamps(), 1);
        assert_eq!(live.num_static_edges(), 1);
        assert_eq!(
            live.static_out_neighbors(NodeId(0), TimeIndex(0)),
            vec![NodeId(1)]
        );
        live.seal_snapshot(1).unwrap();
        assert_eq!(live.num_timestamps(), 2);
        assert_eq!(live.num_static_edges(), 2);
    }

    #[test]
    fn the_serve_graph_matches_the_nested_builder_layout() {
        // Drive the same event stream into a LiveGraph and a nested
        // AdjacencyListGraph; the sealed serve graph must agree on every
        // primitive the engines use.
        use egraph_core::adjacency::AdjacencyListGraph;
        let mut live = LiveGraph::directed(4);
        let mut nested = AdjacencyListGraph::directed(4, Vec::new()).unwrap();
        for (label, batch) in [
            vec![(0u32, 1u32), (1, 2), (0, 1)],
            vec![(2, 3)],
            vec![(3, 0), (1, 3)],
        ]
        .into_iter()
        .enumerate()
        {
            let t = nested.push_timestamp(label as i64).unwrap();
            for (u, v) in batch {
                live.insert(NodeId(u), NodeId(v)).unwrap();
                nested.add_edge(NodeId(u), NodeId(v), t).unwrap();
            }
            live.seal_snapshot(label as i64).unwrap();
        }
        let csr = live.graph();
        assert_eq!(csr.num_static_edges(), nested.num_static_edges());
        for v in (0..4).map(NodeId::from_index) {
            assert_eq!(csr.active_slice(v), nested.active_slice(v));
            for t in (0..3).map(TimeIndex::from_index) {
                assert_eq!(csr.out_slice(v, t), nested.out_slice(v, t));
                assert_eq!(csr.in_slice(v, t), nested.in_slice(v, t));
            }
        }
    }
}
