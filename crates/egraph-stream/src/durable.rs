//! Durability for [`LiveGraph`]: write-ahead logging and crash recovery.
//!
//! This module is the bridge between the in-memory event model
//! ([`EdgeEvent`]) and the graph-agnostic storage engine (`egraph-log`):
//! it owns the `EdgeEvent` ↔ [`LogRecord`] mapping, the segment replay
//! used by both recovery and follower replication, and [`DurableGraph`] —
//! a `LiveGraph` paired with an [`EventLog`] so every applied event is
//! mirrored into the log and every seal is fsynced *before* it is
//! acknowledged.
//!
//! The write-ahead ordering on seal is:
//!
//! 1. validate the label with [`LiveGraph::can_seal`] (the only way a seal
//!    can fail, checked before anything is committed);
//! 2. [`EventLog::seal`] — encode, write, fsync; the durability point;
//! 3. [`LiveGraph::seal_snapshot`] — publish to searches; cannot fail
//!    after step 1.
//!
//! Events applied but not yet sealed live only in memory (both buffers);
//! a crash loses them, which is exactly the contract — the seal is the
//! acknowledgement boundary, and recovery restores the last sealed
//! snapshot bit-for-bit.
//!
//! Checkpoints bound how much of that log recovery must replay:
//! [`DurableGraph::write_checkpoint`] serializes the sealed CSR state and
//! version (via `egraph-io`'s checkpoint codec) into an atomically
//! installed `checkpoint-<seq>.bin`, after which covered segment files may
//! be compacted away. [`DurableGraph::open`] restores from the newest
//! valid checkpoint and replays only the segments sealed after it; any
//! invalid checkpoint falls back to an older one, and ultimately to full
//! replay — never silent corruption.

use std::path::Path;

use egraph_core::csr::CsrAdjacency;
use egraph_core::error::GraphError;
use egraph_core::ids::{NodeId, TimeIndex, Timestamp};
use egraph_io::binary::LogRecord;
use egraph_io::checkpoint::{decode_checkpoint, encode_checkpoint};
use egraph_log::{EventLog, LogError, SealedSegment};

use crate::event::EdgeEvent;
use crate::live::LiveGraph;

/// Why a durable-graph operation failed.
#[derive(Debug)]
pub enum DurableError {
    /// The graph layer rejected an event or a seal.
    Graph(GraphError),
    /// The log layer failed (I/O or on-disk corruption).
    Log(LogError),
    /// A replayed record could not be turned into an event (e.g. a node
    /// count beyond this platform's address space). Never produced by
    /// logs this process wrote.
    Replay(String),
    /// Checkpoint bookkeeping failed, or recovery found a compacted log
    /// whose missing prefix no valid checkpoint covers — the one corruption
    /// shape the fallback chain cannot repair, reported loudly instead of
    /// rebuilding a silently shorter history.
    Checkpoint(String),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Graph(err) => write!(f, "graph: {err}"),
            DurableError::Log(err) => write!(f, "log: {err}"),
            DurableError::Replay(detail) => write!(f, "replay: {detail}"),
            DurableError::Checkpoint(detail) => write!(f, "checkpoint: {detail}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Graph(err) => Some(err),
            DurableError::Log(err) => Some(err),
            DurableError::Replay(_) | DurableError::Checkpoint(_) => None,
        }
    }
}

impl From<GraphError> for DurableError {
    fn from(err: GraphError) -> Self {
        DurableError::Graph(err)
    }
}

impl From<LogError> for DurableError {
    fn from(err: LogError) -> Self {
        DurableError::Log(err)
    }
}

/// A [`DurableError`] result.
pub type Result<T> = std::result::Result<T, DurableError>;

/// The wire/log record for an event. Total: every event has a record.
pub fn event_to_record(event: &EdgeEvent) -> LogRecord {
    match *event {
        EdgeEvent::Insert { src, dst } => LogRecord::Insert {
            src: src.0,
            dst: dst.0,
        },
        EdgeEvent::InsertUnique { src, dst } => LogRecord::InsertUnique {
            src: src.0,
            dst: dst.0,
        },
        EdgeEvent::GrowNodes { num_nodes } => LogRecord::GrowNodes {
            num_nodes: num_nodes as u64,
        },
    }
}

/// The event a log record replays as.
///
/// # Errors
/// [`DurableError::Replay`] for `Init`/`Seal` (the log's own framing —
/// [`egraph_log::decode_segment`] never leaves them in a segment body) and
/// for a `GrowNodes` count that does not fit this platform's `usize`.
pub fn record_to_event(record: &LogRecord) -> Result<EdgeEvent> {
    match *record {
        LogRecord::Insert { src, dst } => Ok(EdgeEvent::insert(NodeId(src), NodeId(dst))),
        LogRecord::InsertUnique { src, dst } => {
            Ok(EdgeEvent::insert_unique(NodeId(src), NodeId(dst)))
        }
        LogRecord::GrowNodes { num_nodes } => match usize::try_from(num_nodes) {
            Ok(num_nodes) => Ok(EdgeEvent::grow_nodes(num_nodes)),
            Err(_) => Err(DurableError::Replay(format!(
                "grow_nodes({num_nodes}) exceeds this platform's usize"
            ))),
        },
        LogRecord::Seal { .. } | LogRecord::Init { .. } => Err(DurableError::Replay(format!(
            "{record:?} is log framing, not an event"
        ))),
    }
}

/// Applies one sealed segment to a live graph: every event, then the seal
/// under the segment's label. This is the single replay primitive shared
/// by crash recovery and follower replication, so a follower's graph is
/// built by exactly the code a restart uses.
pub fn replay_segment(live: &mut LiveGraph, segment: &SealedSegment) -> Result<TimeIndex> {
    for record in &segment.events {
        live.apply(record_to_event(record)?)?;
    }
    Ok(live.seal_snapshot(segment.label)?)
}

/// What [`DurableGraph::write_checkpoint`] durably installed.
#[derive(Clone, Debug)]
pub struct CheckpointReceipt {
    /// The checkpoint's sequence number: the last log segment it absorbs
    /// (= the checkpointed version − 1).
    pub last_seq: u64,
    /// The installed checkpoint file's size in bytes.
    pub bytes: u64,
    /// How many covered segment files compaction deleted afterwards.
    pub segments_compacted: u64,
}

/// What [`DurableGraph::seal_snapshot`] durably committed.
#[derive(Clone, Debug)]
pub struct SealReceipt {
    /// The sealed snapshot's time index in the graph.
    pub time: TimeIndex,
    /// The sealed segment's sequence number in the log.
    pub seq: u64,
    /// The segment's exact on-disk bytes (what replication ships).
    pub bytes: Vec<u8>,
    /// The checkpoint this seal triggered under the configured policy, if
    /// any. `None` when no checkpoint was due — or when one was due but
    /// failed: a checkpoint is a recovery optimisation, not part of the
    /// durability contract, so its failure never fails the already-fsynced
    /// seal.
    pub checkpoint: Option<CheckpointReceipt>,
}

/// What [`DurableGraph::open`] (and [`LiveGraph::recover`]) rebuilt.
#[derive(Debug)]
pub struct RecoveredGraph {
    /// The recovered graph, ready to keep appending.
    pub graph: DurableGraph,
    /// How many sealed segments were replayed from disk. Without a
    /// checkpoint this equals the restored [`LiveGraph::version`]; with one
    /// it counts only the suffix sealed after [`checkpoint_seq`].
    ///
    /// [`checkpoint_seq`]: RecoveredGraph::checkpoint_seq
    pub segments_replayed: u64,
    /// How many events (edge inserts and grows) those segments replayed —
    /// the bounded-replay metric: with checkpointing enabled this stays at
    /// most the events of `checkpoint_every` seals, however long the total
    /// history grows.
    pub recovery_replayed_events: u64,
    /// The checkpoint recovery restored state from (its `last_seq`), or
    /// `None` for a full replay from segment 0.
    pub checkpoint_seq: Option<u64>,
    /// Whether a torn final segment — the residue of a crash mid-seal —
    /// was found and truncated away.
    pub dropped_torn_tail: bool,
}

/// A [`LiveGraph`] whose event stream is write-ahead logged to an
/// [`EventLog`] so it survives a crash or restart. See the
/// [module docs](self) for the ordering contract.
#[derive(Debug)]
pub struct DurableGraph {
    live: LiveGraph,
    log: EventLog,
    /// Auto-checkpoint every this many seals (0 = never).
    checkpoint_every: u64,
    /// How many installed checkpoints to keep on disk (min 1).
    checkpoint_retain: usize,
}

impl DurableGraph {
    fn assemble(live: LiveGraph, log: EventLog) -> DurableGraph {
        DurableGraph {
            live,
            log,
            checkpoint_every: 0,
            checkpoint_retain: 2,
        }
    }

    /// Creates a fresh durable graph: a new [`EventLog`] at `dir` plus an
    /// empty [`LiveGraph`] over `num_nodes` nodes.
    pub fn create(dir: impl AsRef<Path>, num_nodes: usize, directed: bool) -> Result<DurableGraph> {
        let log = EventLog::create(dir, num_nodes as u64, directed)?;
        let live = if directed {
            LiveGraph::directed(num_nodes)
        } else {
            LiveGraph::undirected(num_nodes)
        };
        Ok(DurableGraph::assemble(live, log))
    }

    /// Opens the log at `dir` and rebuilds the live graph exactly as it
    /// stood at its last acknowledged seal (same CSR contents, same
    /// monotone version = seal count).
    ///
    /// Recovery is checkpoint-first with bounded replay: the newest *valid*
    /// checkpoint restores the sealed CSR state directly and only segments
    /// sealed after it are replayed. A corrupt, torn or inconsistent
    /// checkpoint falls back to the next older one, and ultimately to a
    /// full replay from segment 0 — never silent corruption. A torn final
    /// segment is truncated; corrupt segment history fails loudly, as does
    /// a compacted log whose missing prefix no valid checkpoint covers
    /// ([`DurableError::Checkpoint`]).
    pub fn open(dir: impl AsRef<Path>) -> Result<RecoveredGraph> {
        let dir = dir.as_ref();
        let recovered = EventLog::open(dir)?;
        let (num_nodes, directed) = recovered.log.init();
        let num_nodes = usize::try_from(num_nodes).map_err(|_| {
            DurableError::Replay(format!(
                "init num_nodes {num_nodes} exceeds this platform's usize"
            ))
        })?;

        // Newest installed checkpoint first; every failure mode (unreadable
        // file, bad CRC, version/name mismatch, shape mismatch with the
        // manifest, columns failing CSR re-validation, suffix segments
        // already compacted) falls back to the next older candidate.
        let mut checkpoints = egraph_log::list_checkpoints(dir)?;
        while let Some(last_seq) = checkpoints.pop() {
            if recovered.first_seq > last_seq + 1 {
                // Segments this checkpoint needs were compacted away — only
                // a *newer* checkpoint (already tried) could cover them.
                continue;
            }
            let Ok(live) = load_checkpoint(dir, last_seq, num_nodes, directed) else {
                continue;
            };
            let mut live = live;
            let mut segments_replayed = 0u64;
            let mut recovery_replayed_events = 0u64;
            for segment in &recovered.segments {
                if segment.seq <= last_seq {
                    continue;
                }
                recovery_replayed_events += segment.events.len() as u64;
                replay_segment(&mut live, segment)?;
                segments_replayed += 1;
            }
            return Ok(RecoveredGraph {
                graph: DurableGraph::assemble(live, recovered.log),
                segments_replayed,
                recovery_replayed_events,
                checkpoint_seq: Some(last_seq),
                dropped_torn_tail: recovered.dropped_torn_tail,
            });
        }

        // Full replay — only legal if the segment chain still starts at 0.
        if recovered.first_seq > 0 {
            return Err(DurableError::Checkpoint(format!(
                "log at {} starts at segment {} and no valid checkpoint covers \
                 segments 0..={}; refusing to rebuild a truncated history",
                dir.display(),
                recovered.first_seq,
                recovered.first_seq - 1,
            )));
        }
        let mut live = if directed {
            LiveGraph::directed(num_nodes)
        } else {
            LiveGraph::undirected(num_nodes)
        };
        let mut recovery_replayed_events = 0u64;
        for segment in &recovered.segments {
            recovery_replayed_events += segment.events.len() as u64;
            replay_segment(&mut live, segment)?;
        }
        Ok(RecoveredGraph {
            graph: DurableGraph::assemble(live, recovered.log),
            segments_replayed: recovered.segments.len() as u64,
            recovery_replayed_events,
            checkpoint_seq: None,
            dropped_torn_tail: recovered.dropped_torn_tail,
        })
    }

    /// [`DurableGraph::open`] if a log exists at `dir`, otherwise
    /// [`DurableGraph::create`] (reported as zero segments replayed).
    pub fn open_or_create(
        dir: impl AsRef<Path>,
        num_nodes: usize,
        directed: bool,
    ) -> Result<RecoveredGraph> {
        let dir = dir.as_ref();
        if dir.join(egraph_log::log::MANIFEST_FILE).exists() {
            Self::open(dir)
        } else {
            Ok(RecoveredGraph {
                graph: Self::create(dir, num_nodes, directed)?,
                segments_replayed: 0,
                recovery_replayed_events: 0,
                checkpoint_seq: None,
                dropped_torn_tail: false,
            })
        }
    }

    /// The live graph (read-only: all mutation goes through this wrapper
    /// so the log never falls behind the graph).
    pub fn live(&self) -> &LiveGraph {
        &self.live
    }

    /// The underlying event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Splits into the live graph and the log — for callers (like the
    /// HTTP server) that interleave their own locking between the two.
    /// The caller inherits the ordering contract in the [module docs](self).
    pub fn into_parts(self) -> (LiveGraph, EventLog) {
        (self.live, self.log)
    }

    /// Buffers one event into the open snapshot of both the graph and the
    /// log. Validation happens in the graph first, so a rejected event is
    /// never logged.
    pub fn apply(&mut self, event: EdgeEvent) -> Result<()> {
        self.live.apply(event)?;
        self.log.append(event_to_record(&event));
        Ok(())
    }

    /// Convenience: buffers a plain edge insert.
    pub fn insert(&mut self, src: impl Into<NodeId>, dst: impl Into<NodeId>) -> Result<()> {
        self.apply(EdgeEvent::insert(src, dst))
    }

    /// Durably seals the open snapshot: validates the label, fsyncs the
    /// segment to disk, *then* publishes it to searches. Once this
    /// returns, the snapshot survives any crash.
    ///
    /// When a checkpoint policy is set ([`set_checkpoint_policy`]) and the
    /// new version is a multiple of `every`, the seal also writes a
    /// checkpoint, prunes old ones and compacts covered segments. That
    /// bookkeeping is best-effort: the seal is already durable, so a
    /// checkpoint failure is reported as `checkpoint: None` on the receipt,
    /// never as a seal error.
    ///
    /// [`set_checkpoint_policy`]: DurableGraph::set_checkpoint_policy
    pub fn seal_snapshot(&mut self, label: Timestamp) -> Result<SealReceipt> {
        if !self.live.can_seal(label) {
            return Err(DurableError::Graph(GraphError::UnsortedTimestamps {
                position: self.live.num_sealed(),
            }));
        }
        let sealed = self.log.seal(label)?;
        // Failpoint between the durability point and the publish: a panic
        // scripted here models a crash *after* the fsync — recovery must
        // replay the sealed segment even though no ack was ever sent.
        let _ = egraph_fault::fired("durable.publish");
        let time = self
            .live
            .seal_snapshot(label)
            .expect("can_seal validated the label; publish after fsync cannot fail");
        let checkpoint = if self.checkpoint_every > 0
            && self.live.version().is_multiple_of(self.checkpoint_every)
        {
            self.write_checkpoint().ok()
        } else {
            None
        };
        Ok(SealReceipt {
            time,
            seq: sealed.seq,
            bytes: sealed.bytes,
            checkpoint,
        })
    }

    /// Sets the auto-checkpoint policy: every `every` seals (0 = never),
    /// keeping the newest `retain` checkpoints on disk (clamped to at
    /// least 1 so compaction can never orphan the log's missing prefix).
    pub fn set_checkpoint_policy(&mut self, every: u64, retain: usize) {
        self.checkpoint_every = every;
        self.checkpoint_retain = retain.max(1);
    }

    /// Checkpoints the sealed state right now: serializes the CSR columns
    /// and version, installs `checkpoint-<seq>.bin` atomically (temp →
    /// fsync → rename → dir fsync), prunes checkpoints beyond the retain
    /// count, then deletes the segment files the *oldest surviving*
    /// checkpoint absorbs — deletion strictly after the covering
    /// checkpoint's rename is durable.
    ///
    /// # Errors
    /// [`DurableError::Checkpoint`] if nothing is sealed yet (version 0);
    /// [`DurableError::Log`] for I/O failures at any step. A failure
    /// leaves the log recoverable: segments are only deleted after their
    /// covering checkpoint is installed.
    pub fn write_checkpoint(&mut self) -> Result<CheckpointReceipt> {
        let version = self.live.version();
        if version == 0 {
            return Err(DurableError::Checkpoint(
                "version 0 has no sealed history to checkpoint".to_string(),
            ));
        }
        let last_seq = version - 1;
        let payload = encode_checkpoint(&self.live.graph().to_parts(), version);
        let bytes = egraph_log::write_checkpoint(self.log.dir(), last_seq, &payload)?;
        let retained = egraph_log::retain_checkpoints(self.log.dir(), self.checkpoint_retain)?;
        let oldest = retained.first().copied().unwrap_or(last_seq);
        let segments_compacted = self.log.compact_through(oldest)?;
        Ok(CheckpointReceipt {
            last_seq,
            bytes,
            segments_compacted,
        })
    }
}

/// Restores a [`LiveGraph`] from one installed checkpoint, or says why it
/// cannot be trusted (the caller falls back to an older candidate).
fn load_checkpoint(
    dir: &Path,
    last_seq: u64,
    init_num_nodes: usize,
    directed: bool,
) -> std::result::Result<LiveGraph, String> {
    let payload = egraph_log::read_checkpoint(dir, last_seq).map_err(|err| err.to_string())?;
    let (parts, version) = decode_checkpoint(&payload).map_err(|err| err.to_string())?;
    if version != last_seq + 1 {
        return Err(format!(
            "checkpoint {last_seq} stores version {version}, expected {}",
            last_seq + 1
        ));
    }
    if parts.directed != directed {
        return Err(format!(
            "checkpoint {last_seq} directedness {} contradicts the manifest",
            parts.directed
        ));
    }
    if parts.num_nodes < init_num_nodes {
        return Err(format!(
            "checkpoint {last_seq} has {} nodes, fewer than the manifest's {init_num_nodes}",
            parts.num_nodes
        ));
    }
    let csr = CsrAdjacency::from_parts(parts)?;
    Ok(LiveGraph::from_csr_at_version(csr, version))
}

impl LiveGraph {
    /// Recovers a live graph from the event log at `dir`, rebuilding the
    /// CSR serve graph, the touched sets and the monotone version stamp
    /// exactly as they stood at the last acknowledged seal — from the
    /// newest valid checkpoint plus the segment suffix sealed after it,
    /// or by replaying every durably sealed segment in order when no
    /// checkpoint exists. Convenience alias for [`DurableGraph::open`];
    /// the returned [`RecoveredGraph`] keeps the log handle so ingest can
    /// continue where it left off.
    pub fn recover(dir: impl AsRef<Path>) -> Result<RecoveredGraph> {
        DurableGraph::open(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::graph::EvolvingGraph;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir()
                .join(format!("egraph-durable-{tag}-{}-{n}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            TempDir(path)
        }
        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn every_event_round_trips_through_its_record() {
        for event in [
            EdgeEvent::insert(NodeId(0), NodeId(u32::MAX)),
            EdgeEvent::insert_unique(NodeId(7), NodeId(3)),
            EdgeEvent::grow_nodes(0),
            EdgeEvent::grow_nodes(1 << 20),
        ] {
            let record = event_to_record(&event);
            assert_eq!(record_to_event(&record).unwrap(), event);
        }
        assert!(matches!(
            record_to_event(&LogRecord::Seal { label: 3 }),
            Err(DurableError::Replay(_))
        ));
        assert!(matches!(
            record_to_event(&LogRecord::Init {
                num_nodes: 1,
                directed: true
            }),
            Err(DurableError::Replay(_))
        ));
    }

    #[test]
    fn recovery_rebuilds_the_graph_at_its_last_seal() {
        let dir = TempDir::new("rebuild");
        {
            let mut durable = DurableGraph::create(dir.path(), 3, true).unwrap();
            durable.insert(NodeId(0), NodeId(1)).unwrap();
            let receipt = durable.seal_snapshot(10).unwrap();
            assert_eq!((receipt.time, receipt.seq), (TimeIndex(0), 0));
            durable.apply(EdgeEvent::grow_nodes(5)).unwrap();
            durable.insert(NodeId(1), NodeId(4)).unwrap();
            durable
                .apply(EdgeEvent::insert_unique(NodeId(1), NodeId(4)))
                .unwrap();
            durable.seal_snapshot(20).unwrap();
            // Applied but never sealed: must not survive.
            durable.insert(NodeId(2), NodeId(3)).unwrap();
        }
        let recovered = LiveGraph::recover(dir.path()).unwrap();
        assert_eq!(recovered.segments_replayed, 2);
        assert!(!recovered.dropped_torn_tail);
        let live = recovered.graph.live();
        assert_eq!(live.version(), 2);
        assert_eq!(live.num_pending(), 0);
        assert_eq!(live.num_nodes(), 5);
        assert_eq!(live.num_static_edges(), 2); // the InsertUnique deduped
        assert!(live
            .graph()
            .has_static_edge(NodeId(0), NodeId(1), TimeIndex(0)));
        assert!(live
            .graph()
            .has_static_edge(NodeId(1), NodeId(4), TimeIndex(1)));
        assert_eq!(EvolvingGraph::timestamp(live, TimeIndex(1)), 20);

        // Ingest continues where the log left off.
        let mut durable = recovered.graph;
        durable.insert(NodeId(2), NodeId(3)).unwrap();
        let receipt = durable.seal_snapshot(30).unwrap();
        assert_eq!((receipt.time, receipt.seq), (TimeIndex(2), 2));
    }

    #[test]
    fn a_rejected_seal_commits_nothing_durably() {
        let dir = TempDir::new("reject");
        let mut durable = DurableGraph::create(dir.path(), 3, true).unwrap();
        durable.seal_snapshot(5).unwrap();
        durable.insert(NodeId(0), NodeId(1)).unwrap();
        assert!(matches!(
            durable.seal_snapshot(5),
            Err(DurableError::Graph(GraphError::UnsortedTimestamps { .. }))
        ));
        // Neither the log nor the graph advanced; a later label succeeds.
        assert_eq!(durable.log().segments_sealed(), 1);
        durable.seal_snapshot(6).unwrap();
        let recovered = DurableGraph::open(dir.path()).unwrap();
        assert_eq!(recovered.segments_replayed, 2);
    }

    #[test]
    fn a_rejected_event_is_never_logged() {
        let dir = TempDir::new("badevent");
        let mut durable = DurableGraph::create(dir.path(), 2, true).unwrap();
        assert!(durable.insert(NodeId(0), NodeId(9)).is_err());
        assert!(durable.insert(NodeId(1), NodeId(1)).is_err());
        durable.insert(NodeId(0), NodeId(1)).unwrap();
        durable.seal_snapshot(0).unwrap();
        assert_eq!(durable.log().num_pending(), 0);
        let recovered = DurableGraph::open(dir.path()).unwrap();
        assert_eq!(recovered.graph.live().num_static_edges(), 1);
    }

    /// Seal `s`'s scripted event batch and label — the same deterministic
    /// stream for a durable graph and its never-restarted twin.
    fn scripted_batch(s: u64) -> (Vec<EdgeEvent>, Timestamp) {
        let src = NodeId((s % 4) as u32);
        let dst = NodeId(((s + 1) % 4) as u32);
        let events = vec![
            EdgeEvent::insert(src, dst),
            EdgeEvent::insert_unique(dst, src),
        ];
        (events, 10 * (s as i64 + 1))
    }

    #[test]
    fn checkpointed_recovery_replays_only_the_suffix() {
        let dir = TempDir::new("ckpt-suffix");
        let mut twin = LiveGraph::directed(4);
        {
            let mut durable = DurableGraph::create(dir.path(), 4, true).unwrap();
            durable.set_checkpoint_policy(2, 1);
            for s in 0..5 {
                let (events, label) = scripted_batch(s);
                for event in events {
                    durable.apply(event).unwrap();
                    twin.apply(event).unwrap();
                }
                let receipt = durable.seal_snapshot(label).unwrap();
                twin.seal_snapshot(label).unwrap();
                let checkpoint = receipt.checkpoint;
                if (s + 1) % 2 == 0 {
                    let checkpoint = checkpoint.expect("policy-due seal must checkpoint");
                    assert_eq!(checkpoint.last_seq, s);
                    assert_eq!(checkpoint.segments_compacted, 2);
                } else {
                    assert!(checkpoint.is_none());
                }
            }
        }
        let recovered = LiveGraph::recover(dir.path()).unwrap();
        assert_eq!(recovered.checkpoint_seq, Some(3));
        assert_eq!(recovered.segments_replayed, 1);
        // Bounded replay: only seal 4's two events, not the whole history.
        assert_eq!(recovered.recovery_replayed_events, 2);
        let live = recovered.graph.live();
        assert_eq!(live.version(), 5);
        assert_eq!(live.graph().to_parts(), twin.graph().to_parts());
        // Ingest continues after the compacted prefix without seq reuse.
        let mut durable = recovered.graph;
        durable.insert(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(durable.seal_snapshot(1000).unwrap().seq, 5);
    }

    #[test]
    fn a_bad_checkpoint_falls_back_to_an_older_one_and_then_to_full_replay() {
        let dir = TempDir::new("ckpt-fallback");
        let mut parts_v2 = None;
        {
            let mut durable = DurableGraph::create(dir.path(), 4, true).unwrap();
            for s in 0..3 {
                let (events, label) = scripted_batch(s);
                for event in events {
                    durable.apply(event).unwrap();
                }
                durable.seal_snapshot(label).unwrap();
                if s == 1 {
                    parts_v2 = Some(durable.live().graph().to_parts());
                }
            }
            // Install checkpoints by hand (no compaction) so every
            // fallback tier stays reachable: a valid one at seq 1 and a
            // newest one at seq 2 we then damage.
            let v2 = encode_checkpoint(parts_v2.as_ref().unwrap(), 2);
            egraph_log::write_checkpoint(dir.path(), 1, &v2).unwrap();
            let v3 = encode_checkpoint(&durable.live().graph().to_parts(), 3);
            egraph_log::write_checkpoint(dir.path(), 2, &v3).unwrap();
        }
        let newest = egraph_log::checkpoint_path(dir.path(), 2);
        let mut bytes = std::fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // breaks the payload CRC
        std::fs::write(&newest, &bytes).unwrap();

        let recovered = LiveGraph::recover(dir.path()).unwrap();
        assert_eq!(recovered.checkpoint_seq, Some(1));
        assert_eq!(recovered.segments_replayed, 1);
        assert_eq!(recovered.graph.live().version(), 3);
        let full_state = recovered.graph.live().graph().to_parts();

        // Damage the older one too (version/name mismatch this time):
        // recovery degrades to a full replay of the intact segment chain.
        let older = egraph_log::checkpoint_path(dir.path(), 1);
        let wrong_version = encode_checkpoint(parts_v2.as_ref().unwrap(), 99);
        std::fs::write(
            &older,
            egraph_log::encode_checkpoint_file(1, &wrong_version),
        )
        .unwrap();
        let recovered = LiveGraph::recover(dir.path()).unwrap();
        assert_eq!(recovered.checkpoint_seq, None);
        assert_eq!(recovered.segments_replayed, 3);
        assert_eq!(recovered.graph.live().version(), 3);
        assert_eq!(recovered.graph.live().graph().to_parts(), full_state);
    }

    #[test]
    fn a_compacted_log_without_a_valid_checkpoint_fails_loudly() {
        let dir = TempDir::new("ckpt-orphan");
        {
            let mut durable = DurableGraph::create(dir.path(), 4, true).unwrap();
            durable.set_checkpoint_policy(2, 1);
            for s in 0..2 {
                let (events, label) = scripted_batch(s);
                for event in events {
                    durable.apply(event).unwrap();
                }
                durable.seal_snapshot(label).unwrap();
            }
        }
        // Segments 0..=1 are compacted; destroying the covering checkpoint
        // leaves a history no fallback can honestly rebuild.
        let path = egraph_log::checkpoint_path(dir.path(), 1);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = LiveGraph::recover(dir.path()).unwrap_err();
        assert!(matches!(err, DurableError::Checkpoint(_)), "{err}");
        assert!(err.to_string().contains("no valid checkpoint"), "{err}");
    }

    #[test]
    fn write_checkpoint_requires_a_sealed_history() {
        let dir = TempDir::new("ckpt-v0");
        let mut durable = DurableGraph::create(dir.path(), 2, true).unwrap();
        assert!(matches!(
            durable.write_checkpoint(),
            Err(DurableError::Checkpoint(_))
        ));
    }

    #[test]
    fn open_or_create_is_idempotent_and_undirected_survives() {
        let dir = TempDir::new("undirected");
        {
            let mut recovered = DurableGraph::open_or_create(dir.path(), 4, false).unwrap();
            assert_eq!(recovered.segments_replayed, 0);
            recovered.graph.insert(NodeId(0), NodeId(1)).unwrap();
            recovered.graph.seal_snapshot(0).unwrap();
        }
        let recovered = DurableGraph::open_or_create(dir.path(), 4, false).unwrap();
        assert_eq!(recovered.segments_replayed, 1);
        let live = recovered.graph.live();
        assert!(!live.is_directed());
        // Undirected: the edge is visible from both endpoints.
        assert!(live
            .graph()
            .has_static_edge(NodeId(1), NodeId(0), TimeIndex(0)));
    }
}
