//! Durability for [`LiveGraph`]: write-ahead logging and crash recovery.
//!
//! This module is the bridge between the in-memory event model
//! ([`EdgeEvent`]) and the graph-agnostic storage engine (`egraph-log`):
//! it owns the `EdgeEvent` ↔ [`LogRecord`] mapping, the segment replay
//! used by both recovery and follower replication, and [`DurableGraph`] —
//! a `LiveGraph` paired with an [`EventLog`] so every applied event is
//! mirrored into the log and every seal is fsynced *before* it is
//! acknowledged.
//!
//! The write-ahead ordering on seal is:
//!
//! 1. validate the label with [`LiveGraph::can_seal`] (the only way a seal
//!    can fail, checked before anything is committed);
//! 2. [`EventLog::seal`] — encode, write, fsync; the durability point;
//! 3. [`LiveGraph::seal_snapshot`] — publish to searches; cannot fail
//!    after step 1.
//!
//! Events applied but not yet sealed live only in memory (both buffers);
//! a crash loses them, which is exactly the contract — the seal is the
//! acknowledgement boundary, and recovery restores the last sealed
//! snapshot bit-for-bit.

use std::path::Path;

use egraph_core::error::GraphError;
use egraph_core::ids::{NodeId, TimeIndex, Timestamp};
use egraph_io::binary::LogRecord;
use egraph_log::{EventLog, LogError, SealedSegment};

use crate::event::EdgeEvent;
use crate::live::LiveGraph;

/// Why a durable-graph operation failed.
#[derive(Debug)]
pub enum DurableError {
    /// The graph layer rejected an event or a seal.
    Graph(GraphError),
    /// The log layer failed (I/O or on-disk corruption).
    Log(LogError),
    /// A replayed record could not be turned into an event (e.g. a node
    /// count beyond this platform's address space). Never produced by
    /// logs this process wrote.
    Replay(String),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Graph(err) => write!(f, "graph: {err}"),
            DurableError::Log(err) => write!(f, "log: {err}"),
            DurableError::Replay(detail) => write!(f, "replay: {detail}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Graph(err) => Some(err),
            DurableError::Log(err) => Some(err),
            DurableError::Replay(_) => None,
        }
    }
}

impl From<GraphError> for DurableError {
    fn from(err: GraphError) -> Self {
        DurableError::Graph(err)
    }
}

impl From<LogError> for DurableError {
    fn from(err: LogError) -> Self {
        DurableError::Log(err)
    }
}

/// A [`DurableError`] result.
pub type Result<T> = std::result::Result<T, DurableError>;

/// The wire/log record for an event. Total: every event has a record.
pub fn event_to_record(event: &EdgeEvent) -> LogRecord {
    match *event {
        EdgeEvent::Insert { src, dst } => LogRecord::Insert {
            src: src.0,
            dst: dst.0,
        },
        EdgeEvent::InsertUnique { src, dst } => LogRecord::InsertUnique {
            src: src.0,
            dst: dst.0,
        },
        EdgeEvent::GrowNodes { num_nodes } => LogRecord::GrowNodes {
            num_nodes: num_nodes as u64,
        },
    }
}

/// The event a log record replays as.
///
/// # Errors
/// [`DurableError::Replay`] for `Init`/`Seal` (the log's own framing —
/// [`egraph_log::decode_segment`] never leaves them in a segment body) and
/// for a `GrowNodes` count that does not fit this platform's `usize`.
pub fn record_to_event(record: &LogRecord) -> Result<EdgeEvent> {
    match *record {
        LogRecord::Insert { src, dst } => Ok(EdgeEvent::insert(NodeId(src), NodeId(dst))),
        LogRecord::InsertUnique { src, dst } => {
            Ok(EdgeEvent::insert_unique(NodeId(src), NodeId(dst)))
        }
        LogRecord::GrowNodes { num_nodes } => match usize::try_from(num_nodes) {
            Ok(num_nodes) => Ok(EdgeEvent::grow_nodes(num_nodes)),
            Err(_) => Err(DurableError::Replay(format!(
                "grow_nodes({num_nodes}) exceeds this platform's usize"
            ))),
        },
        LogRecord::Seal { .. } | LogRecord::Init { .. } => Err(DurableError::Replay(format!(
            "{record:?} is log framing, not an event"
        ))),
    }
}

/// Applies one sealed segment to a live graph: every event, then the seal
/// under the segment's label. This is the single replay primitive shared
/// by crash recovery and follower replication, so a follower's graph is
/// built by exactly the code a restart uses.
pub fn replay_segment(live: &mut LiveGraph, segment: &SealedSegment) -> Result<TimeIndex> {
    for record in &segment.events {
        live.apply(record_to_event(record)?)?;
    }
    Ok(live.seal_snapshot(segment.label)?)
}

/// What [`DurableGraph::seal_snapshot`] durably committed.
#[derive(Clone, Debug)]
pub struct SealReceipt {
    /// The sealed snapshot's time index in the graph.
    pub time: TimeIndex,
    /// The sealed segment's sequence number in the log.
    pub seq: u64,
    /// The segment's exact on-disk bytes (what replication ships).
    pub bytes: Vec<u8>,
}

/// What [`DurableGraph::open`] (and [`LiveGraph::recover`]) rebuilt.
#[derive(Debug)]
pub struct RecoveredGraph {
    /// The recovered graph, ready to keep appending.
    pub graph: DurableGraph,
    /// How many sealed segments were replayed (= the restored
    /// [`LiveGraph::version`]).
    pub segments_replayed: u64,
    /// Whether a torn final segment — the residue of a crash mid-seal —
    /// was found and truncated away.
    pub dropped_torn_tail: bool,
}

/// A [`LiveGraph`] whose event stream is write-ahead logged to an
/// [`EventLog`] so it survives a crash or restart. See the
/// [module docs](self) for the ordering contract.
#[derive(Debug)]
pub struct DurableGraph {
    live: LiveGraph,
    log: EventLog,
}

impl DurableGraph {
    /// Creates a fresh durable graph: a new [`EventLog`] at `dir` plus an
    /// empty [`LiveGraph`] over `num_nodes` nodes.
    pub fn create(dir: impl AsRef<Path>, num_nodes: usize, directed: bool) -> Result<DurableGraph> {
        let log = EventLog::create(dir, num_nodes as u64, directed)?;
        let live = if directed {
            LiveGraph::directed(num_nodes)
        } else {
            LiveGraph::undirected(num_nodes)
        };
        Ok(DurableGraph { live, log })
    }

    /// Opens the log at `dir` and replays every sealed segment, rebuilding
    /// the live graph exactly as it stood at its last acknowledged seal
    /// (same CSR contents, same monotone version = seal count). A torn
    /// final segment is truncated; corrupt history fails loudly.
    pub fn open(dir: impl AsRef<Path>) -> Result<RecoveredGraph> {
        let recovered = EventLog::open(dir)?;
        let (num_nodes, directed) = recovered.log.init();
        let num_nodes = usize::try_from(num_nodes).map_err(|_| {
            DurableError::Replay(format!(
                "init num_nodes {num_nodes} exceeds this platform's usize"
            ))
        })?;
        let mut live = if directed {
            LiveGraph::directed(num_nodes)
        } else {
            LiveGraph::undirected(num_nodes)
        };
        for segment in &recovered.segments {
            replay_segment(&mut live, segment)?;
        }
        Ok(RecoveredGraph {
            graph: DurableGraph {
                live,
                log: recovered.log,
            },
            segments_replayed: recovered.segments.len() as u64,
            dropped_torn_tail: recovered.dropped_torn_tail,
        })
    }

    /// [`DurableGraph::open`] if a log exists at `dir`, otherwise
    /// [`DurableGraph::create`] (reported as zero segments replayed).
    pub fn open_or_create(
        dir: impl AsRef<Path>,
        num_nodes: usize,
        directed: bool,
    ) -> Result<RecoveredGraph> {
        let dir = dir.as_ref();
        if dir.join(egraph_log::log::MANIFEST_FILE).exists() {
            Self::open(dir)
        } else {
            Ok(RecoveredGraph {
                graph: Self::create(dir, num_nodes, directed)?,
                segments_replayed: 0,
                dropped_torn_tail: false,
            })
        }
    }

    /// The live graph (read-only: all mutation goes through this wrapper
    /// so the log never falls behind the graph).
    pub fn live(&self) -> &LiveGraph {
        &self.live
    }

    /// The underlying event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Splits into the live graph and the log — for callers (like the
    /// HTTP server) that interleave their own locking between the two.
    /// The caller inherits the ordering contract in the [module docs](self).
    pub fn into_parts(self) -> (LiveGraph, EventLog) {
        (self.live, self.log)
    }

    /// Buffers one event into the open snapshot of both the graph and the
    /// log. Validation happens in the graph first, so a rejected event is
    /// never logged.
    pub fn apply(&mut self, event: EdgeEvent) -> Result<()> {
        self.live.apply(event)?;
        self.log.append(event_to_record(&event));
        Ok(())
    }

    /// Convenience: buffers a plain edge insert.
    pub fn insert(&mut self, src: impl Into<NodeId>, dst: impl Into<NodeId>) -> Result<()> {
        self.apply(EdgeEvent::insert(src, dst))
    }

    /// Durably seals the open snapshot: validates the label, fsyncs the
    /// segment to disk, *then* publishes it to searches. Once this
    /// returns, the snapshot survives any crash.
    pub fn seal_snapshot(&mut self, label: Timestamp) -> Result<SealReceipt> {
        if !self.live.can_seal(label) {
            return Err(DurableError::Graph(GraphError::UnsortedTimestamps {
                position: self.live.num_sealed(),
            }));
        }
        let sealed = self.log.seal(label)?;
        // Failpoint between the durability point and the publish: a panic
        // scripted here models a crash *after* the fsync — recovery must
        // replay the sealed segment even though no ack was ever sent.
        let _ = egraph_fault::fired("durable.publish");
        let time = self
            .live
            .seal_snapshot(label)
            .expect("can_seal validated the label; publish after fsync cannot fail");
        Ok(SealReceipt {
            time,
            seq: sealed.seq,
            bytes: sealed.bytes,
        })
    }
}

impl LiveGraph {
    /// Recovers a live graph from the event log at `dir` — replays every
    /// durably sealed segment in order, rebuilding the CSR serve graph,
    /// the touched sets and the monotone version stamp exactly as they
    /// stood at the last acknowledged seal. Convenience alias for
    /// [`DurableGraph::open`]; the returned [`RecoveredGraph`] keeps the
    /// log handle so ingest can continue where it left off.
    pub fn recover(dir: impl AsRef<Path>) -> Result<RecoveredGraph> {
        DurableGraph::open(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::graph::EvolvingGraph;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir()
                .join(format!("egraph-durable-{tag}-{}-{n}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            TempDir(path)
        }
        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn every_event_round_trips_through_its_record() {
        for event in [
            EdgeEvent::insert(NodeId(0), NodeId(u32::MAX)),
            EdgeEvent::insert_unique(NodeId(7), NodeId(3)),
            EdgeEvent::grow_nodes(0),
            EdgeEvent::grow_nodes(1 << 20),
        ] {
            let record = event_to_record(&event);
            assert_eq!(record_to_event(&record).unwrap(), event);
        }
        assert!(matches!(
            record_to_event(&LogRecord::Seal { label: 3 }),
            Err(DurableError::Replay(_))
        ));
        assert!(matches!(
            record_to_event(&LogRecord::Init {
                num_nodes: 1,
                directed: true
            }),
            Err(DurableError::Replay(_))
        ));
    }

    #[test]
    fn recovery_rebuilds_the_graph_at_its_last_seal() {
        let dir = TempDir::new("rebuild");
        {
            let mut durable = DurableGraph::create(dir.path(), 3, true).unwrap();
            durable.insert(NodeId(0), NodeId(1)).unwrap();
            let receipt = durable.seal_snapshot(10).unwrap();
            assert_eq!((receipt.time, receipt.seq), (TimeIndex(0), 0));
            durable.apply(EdgeEvent::grow_nodes(5)).unwrap();
            durable.insert(NodeId(1), NodeId(4)).unwrap();
            durable
                .apply(EdgeEvent::insert_unique(NodeId(1), NodeId(4)))
                .unwrap();
            durable.seal_snapshot(20).unwrap();
            // Applied but never sealed: must not survive.
            durable.insert(NodeId(2), NodeId(3)).unwrap();
        }
        let recovered = LiveGraph::recover(dir.path()).unwrap();
        assert_eq!(recovered.segments_replayed, 2);
        assert!(!recovered.dropped_torn_tail);
        let live = recovered.graph.live();
        assert_eq!(live.version(), 2);
        assert_eq!(live.num_pending(), 0);
        assert_eq!(live.num_nodes(), 5);
        assert_eq!(live.num_static_edges(), 2); // the InsertUnique deduped
        assert!(live
            .graph()
            .has_static_edge(NodeId(0), NodeId(1), TimeIndex(0)));
        assert!(live
            .graph()
            .has_static_edge(NodeId(1), NodeId(4), TimeIndex(1)));
        assert_eq!(EvolvingGraph::timestamp(live, TimeIndex(1)), 20);

        // Ingest continues where the log left off.
        let mut durable = recovered.graph;
        durable.insert(NodeId(2), NodeId(3)).unwrap();
        let receipt = durable.seal_snapshot(30).unwrap();
        assert_eq!((receipt.time, receipt.seq), (TimeIndex(2), 2));
    }

    #[test]
    fn a_rejected_seal_commits_nothing_durably() {
        let dir = TempDir::new("reject");
        let mut durable = DurableGraph::create(dir.path(), 3, true).unwrap();
        durable.seal_snapshot(5).unwrap();
        durable.insert(NodeId(0), NodeId(1)).unwrap();
        assert!(matches!(
            durable.seal_snapshot(5),
            Err(DurableError::Graph(GraphError::UnsortedTimestamps { .. }))
        ));
        // Neither the log nor the graph advanced; a later label succeeds.
        assert_eq!(durable.log().segments_sealed(), 1);
        durable.seal_snapshot(6).unwrap();
        let recovered = DurableGraph::open(dir.path()).unwrap();
        assert_eq!(recovered.segments_replayed, 2);
    }

    #[test]
    fn a_rejected_event_is_never_logged() {
        let dir = TempDir::new("badevent");
        let mut durable = DurableGraph::create(dir.path(), 2, true).unwrap();
        assert!(durable.insert(NodeId(0), NodeId(9)).is_err());
        assert!(durable.insert(NodeId(1), NodeId(1)).is_err());
        durable.insert(NodeId(0), NodeId(1)).unwrap();
        durable.seal_snapshot(0).unwrap();
        assert_eq!(durable.log().num_pending(), 0);
        let recovered = DurableGraph::open(dir.path()).unwrap();
        assert_eq!(recovered.graph.live().num_static_edges(), 1);
    }

    #[test]
    fn open_or_create_is_idempotent_and_undirected_survives() {
        let dir = TempDir::new("undirected");
        {
            let mut recovered = DurableGraph::open_or_create(dir.path(), 4, false).unwrap();
            assert_eq!(recovered.segments_replayed, 0);
            recovered.graph.insert(NodeId(0), NodeId(1)).unwrap();
            recovered.graph.seal_snapshot(0).unwrap();
        }
        let recovered = DurableGraph::open_or_create(dir.path(), 4, false).unwrap();
        assert_eq!(recovered.segments_replayed, 1);
        let live = recovered.graph.live();
        assert!(!live.is_directed());
        // Undirected: the edge is visible from both endpoints.
        assert!(live
            .graph()
            .has_static_edge(NodeId(1), NodeId(0), TimeIndex(0)));
    }
}
