//! [`EdgeEvent`]: the append-only ingestion vocabulary of a
//! [`LiveGraph`](crate::LiveGraph).
//!
//! Events are buffered into the graph's *open* snapshot and become
//! searchable only when the snapshot is sealed — mirroring how streaming
//! graph systems batch a window of arrivals before publishing it to queries.
//! The vocabulary is deliberately append-only: edges and nodes can be added,
//! never removed, which is precisely the property that makes forward search
//! results extendable instead of recomputable (see the crate docs).

use egraph_core::ids::NodeId;

/// One ingestion event for the open (not yet sealed) snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeEvent {
    /// Insert the static edge `(src, dst)` into the open snapshot. Parallel
    /// edges are permitted, as in
    /// [`AdjacencyListGraph::add_edge`](egraph_core::adjacency::AdjacencyListGraph::add_edge).
    Insert {
        /// Source end point.
        src: NodeId,
        /// Destination end point.
        dst: NodeId,
    },
    /// Insert `(src, dst)` only if the open snapshot does not already
    /// contain it (from an earlier buffered event). Mirrors
    /// [`AdjacencyListGraph::add_edge_unique`](egraph_core::adjacency::AdjacencyListGraph::add_edge_unique).
    InsertUnique {
        /// Source end point.
        src: NodeId,
        /// Destination end point.
        dst: NodeId,
    },
    /// Grow the node universe to at least `num_nodes` before the snapshot
    /// seals. Takes effect for the open snapshot's own edges too, so an
    /// event stream may introduce a node and immediately connect it.
    GrowNodes {
        /// Requested minimum universe size.
        num_nodes: usize,
    },
}

impl EdgeEvent {
    /// Shorthand for [`EdgeEvent::Insert`].
    pub fn insert(src: impl Into<NodeId>, dst: impl Into<NodeId>) -> Self {
        EdgeEvent::Insert {
            src: src.into(),
            dst: dst.into(),
        }
    }

    /// Shorthand for [`EdgeEvent::InsertUnique`].
    pub fn insert_unique(src: impl Into<NodeId>, dst: impl Into<NodeId>) -> Self {
        EdgeEvent::InsertUnique {
            src: src.into(),
            dst: dst.into(),
        }
    }

    /// Shorthand for [`EdgeEvent::GrowNodes`].
    pub fn grow_nodes(num_nodes: usize) -> Self {
        EdgeEvent::GrowNodes { num_nodes }
    }
}
