//! # egraph-stream
//!
//! Live evolving graphs: the graph *keeps evolving while you query it*.
//!
//! The paper's premise is an evolving graph — a time-ordered sequence of
//! snapshots — yet the rest of the workspace only ever searches sequences
//! frozen up front. This crate closes that gap with three pieces:
//!
//! * [`LiveGraph`] — an append-only event API
//!   ([`apply`](LiveGraph::apply) / [`seal_snapshot`](LiveGraph::seal_snapshot))
//!   publishing sealed snapshots into a CSR-flattened serve graph
//!   ([`egraph_core::csr::CsrAdjacency`]: contiguous neighbor pools, one
//!   appended region per seal), with a monotonically increasing
//!   [`version`](LiveGraph::version) stamp and per-snapshot *touched*
//!   sets. Searches only ever see sealed snapshots.
//! * [`QueryCache`] — memoises [`Search`](egraph_query::Search) executions
//!   keyed by the builder's canonical
//!   [`QueryDescriptor`](egraph_query::QueryDescriptor), so the cache
//!   composes with all five strategies instead of bypassing the builder.
//!   Built to serve: hits are `O(1)` clones of a shared
//!   `Arc<SearchResult>`, [`execute`](QueryCache::execute) takes `&self`
//!   behind sharded `RwLock`s (concurrent readers), and
//!   [`with_capacity`](QueryCache::with_capacity) bounds memory with LRU
//!   eviction.
//! * **Incremental re-search** — the headline. Because snapshots are
//!   append-only in time, a *forward* traversal only ever gains
//!   reachability: when snapshots are sealed, cached forward hop-BFS and
//!   foremost results are **extended** from the retained per-node frontier /
//!   arrival table ([`egraph_core::resume`]) in time proportional to the
//!   delta, while shapes the delta can invalidate (backward, reversed,
//!   bounded-window, …) fall back to recompute-on-demand. See the
//!   invalidation matrix in [`cache`].
//! * [`durable`] — write-ahead logging over `egraph-log`:
//!   [`DurableGraph`] fsyncs every sealed snapshot as one binary segment
//!   before acknowledging it, and [`LiveGraph::recover`] rebuilds the CSR
//!   serve graph and the monotone version stamp exactly after a crash or
//!   restart — from the newest valid checkpoint plus a bounded segment
//!   suffix when a checkpoint policy is set, or by full segment replay.
//!
//! ```
//! use egraph_core::ids::{NodeId, TemporalNode};
//! use egraph_query::{Search, Strategy};
//! use egraph_stream::{CacheOutcome, EdgeEvent, LiveGraph, QueryCache};
//!
//! // Ingest a first batch and seal it at time 0.
//! let mut live = LiveGraph::directed(4);
//! live.apply(EdgeEvent::insert(NodeId(0), NodeId(1)))?;
//! live.seal_snapshot(0)?;
//!
//! let cache = QueryCache::new();
//! let root = TemporalNode::from_raw(0, 0);
//! let first = cache.execute(&live, &Search::from(root))?;
//! assert_eq!(first.num_reached(), 2);
//!
//! // The graph keeps evolving...
//! live.apply(EdgeEvent::insert(NodeId(1), NodeId(2)))?;
//! live.seal_snapshot(1)?;
//!
//! // ...and the cached forward search is *extended*, not recomputed.
//! let (second, outcome) = cache.execute_traced(&live, &Search::from(root))?;
//! assert_eq!(outcome, CacheOutcome::Extended);
//! assert!(second.reaches_node(NodeId(2)));
//! # Ok::<(), egraph_core::error::GraphError>(())
//! ```
//!
//! The differential suite (`tests/live_stream_differential.rs` at the
//! workspace root) pins every cached / extended / recomputed answer to a
//! from-scratch `Search::run` on the sealed graph over randomized event
//! streams — all five strategies × direction × window × reverse, errors
//! included.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod durable;
pub mod event;
pub mod live;

pub use cache::{CacheOutcome, CacheStats, CachedSession, QueryCache};
pub use durable::{
    event_to_record, record_to_event, replay_segment, CheckpointReceipt, DurableError,
    DurableGraph, RecoveredGraph, SealReceipt,
};
pub use event::EdgeEvent;
pub use live::LiveGraph;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::cache::{CacheOutcome, CacheStats, CachedSession, QueryCache};
    pub use crate::durable::{
        CheckpointReceipt, DurableError, DurableGraph, RecoveredGraph, SealReceipt,
    };
    pub use crate::event::EdgeEvent;
    pub use crate::live::LiveGraph;
}
