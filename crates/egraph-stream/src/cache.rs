//! [`QueryCache`]: memoised [`Search`] execution over a [`LiveGraph`], with
//! incremental re-search.
//!
//! Results are keyed by the builder's canonical [`QueryDescriptor`] —
//! root(s) × strategy × direction × window × reverse — so the cache composes
//! with every strategy the builder dispatches to, rather than bypassing it.
//! When the graph's [`version`](LiveGraph::version) moves (snapshots were
//! sealed), a stale entry is repaired according to the query's shape:
//!
//! | query shape | on appended snapshots |
//! |---|---|
//! | forward, unbounded-end window, hop strategy (no parents) | **extended** from the cached per-node frontier ([`ResumableBfs`]) |
//! | forward, unbounded-end window, `Foremost` | **extended** from the cached arrival table ([`ResumableForemost`]) |
//! | effective time reversal (backward and/or `.reverse()`) | recomputed — new snapshots add *predecessors* of nothing but may add sources of the reversed traversal |
//! | bounded window end | recomputed on demand (the window never covers the new snapshots, but result dimensions track the graph) |
//! | `with_parents` / `SharedFrontier` | recomputed (extension is an open item) |
//!
//! Extension does *graph work* proportional to the appended delta — the
//! `incremental_vs_recompute` bench pins this with
//! [`CountingView`](egraph_core::instrument::CountingView) counters — while
//! staying answer-identical to a from-scratch [`Search::run`] on the sealed
//! graph, errors included (the `live_stream_differential` suite). Like
//! [`Search::run`] itself, every outcome still hands back an *owned*
//! [`SearchResult`] (`O(nodes × snapshots)` to materialise/clone), and an
//! extendable entry keeps both its resumable state and the materialised
//! result; sharing results (`Arc`) to make hits `O(1)` is an open item in
//! the workspace ROADMAP.

use std::collections::HashMap;

use egraph_core::error::Result;
use egraph_core::graph::EvolvingGraph;
use egraph_core::ids::TimeIndex;
use egraph_core::resume::{ResumableBfs, ResumableForemost};
use egraph_query::{QueryDescriptor, QueryExecutor, Search, SearchResult, Strategy};

use crate::live::LiveGraph;

/// How the cache produced an answer — exposed for tests, benches and
/// observability ([`QueryCache::execute_traced`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// No entry existed; the query ran from scratch and was stored.
    Miss,
    /// A current entry was served without touching the graph.
    Hit,
    /// A stale extendable entry was advanced over the appended snapshots.
    Extended,
    /// A stale non-extendable entry was recomputed from scratch.
    Recomputed,
}

/// Running counters over every [`QueryCache::execute`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries served from a current entry.
    pub hits: u64,
    /// Queries served by incremental extension.
    pub extensions: u64,
    /// Stale entries recomputed from scratch.
    pub recomputes: u64,
    /// Queries with no prior entry.
    pub misses: u64,
}

/// Resumable (or opaque) state behind one cached query.
#[derive(Clone, Debug)]
enum CachedState {
    /// Per-source resumable hop-BFS states (forward, unbounded-end window).
    Hops(Vec<ResumableBfs>),
    /// Per-source resumable arrival tables (forward, unbounded-end window).
    Foremost(Vec<ResumableForemost>),
    /// Anything else: valid only at the version it was computed at.
    Opaque,
}

#[derive(Clone, Debug)]
struct CacheEntry {
    version: u64,
    state: CachedState,
    /// The materialised result at `version` (what a `Hit` clones).
    result: SearchResult,
}

/// A memoising execution layer for [`Search`] queries over a [`LiveGraph`].
///
/// See the [module docs](self) for the invalidation matrix. The cache never
/// stores errors: a failing query re-runs (and re-fails identically) each
/// time, which also lets queries that *become* valid as the graph grows —
/// e.g. a root in a not-yet-sealed snapshot — succeed later.
///
/// A cache binds to the identity ([`LiveGraph::graph_id`]) of the first
/// graph it executes against; handing it a *different* live graph — another
/// instance, or a clone that may have diverged — drops every entry and
/// rebinds, so one graph's results can never answer (or corrupt the
/// resumable state of) another's.
#[derive(Clone, Debug, Default)]
pub struct QueryCache {
    entries: HashMap<QueryDescriptor, CacheEntry>,
    stats: CacheStats,
    /// The [`LiveGraph::graph_id`] the entries belong to.
    bound_graph: Option<u64>,
}

impl QueryCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached queries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Executes `search` against `live`'s sealed graph, through the cache.
    /// Answer- and error-identical to `search.run(live.graph())`.
    pub fn execute(&mut self, live: &LiveGraph, search: &Search) -> Result<SearchResult> {
        self.execute_traced(live, search).map(|(result, _)| result)
    }

    /// [`QueryCache::execute`], additionally reporting how the answer was
    /// produced.
    pub fn execute_traced(
        &mut self,
        live: &LiveGraph,
        search: &Search,
    ) -> Result<(SearchResult, CacheOutcome)> {
        let descriptor = search.descriptor();
        let version = live.version();

        // A different graph instance (including a possibly diverged clone):
        // every entry is for the wrong history — drop them and rebind.
        if self.bound_graph != Some(live.graph_id()) {
            self.entries.clear();
            self.bound_graph = Some(live.graph_id());
        }

        if let Some(entry) = self.entries.get_mut(&descriptor) {
            if entry.version == version {
                self.stats.hits += 1;
                return Ok((entry.result.clone(), CacheOutcome::Hit));
            }
            // Stale. The graph only ever gained sealed snapshots (and
            // possibly nodes) since `entry.version` — the append-only
            // contract of `LiveGraph`.
            match &mut entry.state {
                CachedState::Hops(states) => {
                    extend_states(states, live);
                    entry.result = SearchResult::from_maps(
                        states.iter().map(|s| s.to_distance_map()).collect(),
                        false,
                    );
                    entry.version = version;
                    self.stats.extensions += 1;
                    return Ok((entry.result.clone(), CacheOutcome::Extended));
                }
                CachedState::Foremost(states) => {
                    extend_states(states, live);
                    entry.result = SearchResult::from_arrivals(
                        states.iter().map(|s| s.to_result()).collect(),
                        false,
                    );
                    entry.version = version;
                    self.stats.extensions += 1;
                    return Ok((entry.result.clone(), CacheOutcome::Extended));
                }
                CachedState::Opaque => {
                    self.stats.recomputes += 1;
                    let result = match search.run(live.graph()) {
                        Ok(result) => result,
                        Err(err) => {
                            // Drop the stale entry so the failure isn't
                            // re-derived from dead state forever.
                            self.entries.remove(&descriptor);
                            return Err(err);
                        }
                    };
                    entry.version = version;
                    entry.result = result.clone();
                    return Ok((result, CacheOutcome::Recomputed));
                }
            }
        }

        // Miss: run from scratch through the builder, then capture resumable
        // state when the shape admits extension.
        self.stats.misses += 1;
        let result = search.run(live.graph())?;
        let state = capture_state(&descriptor, &result, live);
        self.entries.insert(
            descriptor,
            CacheEntry {
                version,
                state,
                result: result.clone(),
            },
        );
        Ok((result, CacheOutcome::Miss))
    }
}

/// Captures resumable per-source state for extendable query shapes.
fn capture_state(
    descriptor: &QueryDescriptor,
    result: &SearchResult,
    live: &LiveGraph,
) -> CachedState {
    if !descriptor.is_append_extendable() {
        return CachedState::Opaque;
    }
    match descriptor.strategy() {
        Strategy::Serial | Strategy::Parallel | Strategy::Algebraic => CachedState::Hops(
            result
                .distance_maps()
                .iter()
                .map(ResumableBfs::from_map)
                .collect(),
        ),
        Strategy::Foremost => CachedState::Foremost(
            result
                .foremost_results()
                .iter()
                .map(|table| ResumableForemost::from_result(table, live.num_sealed()))
                .collect(),
        ),
        Strategy::SharedFrontier => CachedState::Opaque,
    }
}

/// The common resumable-state surface the extension loop needs, so the hop
/// and foremost paths share one implementation and cannot drift.
trait Resumable {
    fn grow_nodes(&mut self, num_nodes: usize);
    fn covered_timestamps(&self) -> usize;
    fn extend_snapshot(
        &mut self,
        graph: &egraph_core::adjacency::AdjacencyListGraph,
        touched: &[egraph_core::ids::NodeId],
    ) -> Result<()>;
}

impl Resumable for ResumableBfs {
    fn grow_nodes(&mut self, num_nodes: usize) {
        ResumableBfs::grow_nodes(self, num_nodes)
    }
    fn covered_timestamps(&self) -> usize {
        ResumableBfs::covered_timestamps(self)
    }
    fn extend_snapshot(
        &mut self,
        graph: &egraph_core::adjacency::AdjacencyListGraph,
        touched: &[egraph_core::ids::NodeId],
    ) -> Result<()> {
        ResumableBfs::extend_snapshot(self, graph, touched)
    }
}

impl Resumable for ResumableForemost {
    fn grow_nodes(&mut self, num_nodes: usize) {
        ResumableForemost::grow_nodes(self, num_nodes)
    }
    fn covered_timestamps(&self) -> usize {
        ResumableForemost::covered_timestamps(self)
    }
    fn extend_snapshot(
        &mut self,
        graph: &egraph_core::adjacency::AdjacencyListGraph,
        touched: &[egraph_core::ids::NodeId],
    ) -> Result<()> {
        ResumableForemost::extend_snapshot(self, graph, touched)
    }
}

/// Advances every per-source resumable state across the snapshots sealed
/// since the states' coverage, growing the node layout first.
fn extend_states<S: Resumable>(states: &mut [S], live: &LiveGraph) {
    let graph = live.graph();
    for state in states.iter_mut() {
        state.grow_nodes(graph.num_nodes());
        for t in state.covered_timestamps()..live.num_sealed() {
            let t = TimeIndex::from_index(t);
            state
                .extend_snapshot(graph, live.touched_at(t))
                .expect("coverage and layout were aligned above");
        }
    }
}

/// A borrowed (live graph, cache) pair implementing the builder's
/// [`QueryExecutor`] hook, so call sites keep the fluent shape:
///
/// ```
/// use egraph_core::ids::{NodeId, TemporalNode};
/// use egraph_query::Search;
/// use egraph_stream::{LiveGraph, QueryCache};
///
/// let mut live = LiveGraph::directed(3);
/// live.insert(NodeId(0), NodeId(1)).unwrap();
/// live.seal_snapshot(0).unwrap();
///
/// let mut cache = QueryCache::new();
/// let result = Search::from(TemporalNode::from_raw(0, 0))
///     .run_via(&mut live.session(&mut cache))
///     .unwrap();
/// assert_eq!(result.num_reached(), 2);
/// ```
#[derive(Debug)]
pub struct CachedSession<'a> {
    live: &'a LiveGraph,
    cache: &'a mut QueryCache,
}

impl QueryExecutor for CachedSession<'_> {
    fn run_search(&mut self, search: &Search) -> Result<SearchResult> {
        self.cache.execute(self.live, search)
    }
}

impl LiveGraph {
    /// Pairs this graph with a [`QueryCache`] for
    /// [`Search::run_via`](egraph_query::Search::run_via).
    pub fn session<'a>(&'a self, cache: &'a mut QueryCache) -> CachedSession<'a> {
        CachedSession { live: self, cache }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::error::GraphError;
    use egraph_core::ids::{NodeId, TemporalNode};
    use egraph_query::Direction;

    fn seeded_live() -> LiveGraph {
        let mut live = LiveGraph::directed(4);
        live.insert(NodeId(0), NodeId(1)).unwrap();
        live.seal_snapshot(0).unwrap();
        live.insert(NodeId(1), NodeId(2)).unwrap();
        live.seal_snapshot(1).unwrap();
        live
    }

    fn assert_matches_scratch(live: &LiveGraph, cache: &mut QueryCache, search: &Search) {
        let cached = cache.execute(live, search);
        let scratch = search.run(live.graph());
        match (cached, scratch) {
            (Ok(a), Ok(b)) => assert_eq!(a.reached_node_ids(), b.reached_node_ids()),
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("cached {a:?} disagrees with scratch {b:?}"),
        }
    }

    #[test]
    fn hit_extend_and_recompute_paths_are_reported() {
        let mut live = seeded_live();
        let mut cache = QueryCache::new();
        let forward = Search::from(TemporalNode::from_raw(0, 0));
        let backward = Search::from(TemporalNode::from_raw(2, 1)).direction(Direction::Backward);

        let (_, o) = cache.execute_traced(&live, &forward).unwrap();
        assert_eq!(o, CacheOutcome::Miss);
        let (_, o) = cache.execute_traced(&live, &forward).unwrap();
        assert_eq!(o, CacheOutcome::Hit);
        let (_, o) = cache.execute_traced(&live, &backward).unwrap();
        assert_eq!(o, CacheOutcome::Miss);

        live.insert(NodeId(2), NodeId(3)).unwrap();
        live.seal_snapshot(2).unwrap();

        let (result, o) = cache.execute_traced(&live, &forward).unwrap();
        assert_eq!(o, CacheOutcome::Extended);
        assert_eq!(
            result.distance_map().as_flat_slice(),
            forward
                .run(live.graph())
                .unwrap()
                .distance_map()
                .as_flat_slice()
        );
        let (_, o) = cache.execute_traced(&live, &backward).unwrap();
        assert_eq!(o, CacheOutcome::Recomputed);

        let stats = cache.stats();
        assert_eq!(
            (stats.misses, stats.hits, stats.extensions, stats.recomputes),
            (2, 1, 1, 1)
        );
    }

    #[test]
    fn foremost_entries_extend_too() {
        let mut live = seeded_live();
        let mut cache = QueryCache::new();
        let query = Search::from(TemporalNode::from_raw(0, 0)).strategy(Strategy::Foremost);
        cache.execute(&live, &query).unwrap();
        live.insert(NodeId(2), NodeId(3)).unwrap();
        live.seal_snapshot(5).unwrap();
        let (result, o) = cache.execute_traced(&live, &query).unwrap();
        assert_eq!(o, CacheOutcome::Extended);
        assert_eq!(result.arrival(NodeId(3)), Some(TimeIndex(2)));
    }

    #[test]
    fn errors_are_not_cached_and_can_heal_as_the_graph_grows() {
        let mut live = seeded_live();
        let mut cache = QueryCache::new();
        // Root in a snapshot that does not exist yet.
        let query = Search::from(TemporalNode::from_raw(0, 2));
        assert!(matches!(
            cache.execute(&live, &query),
            Err(GraphError::OutsideWindow { .. })
        ));
        live.insert(NodeId(0), NodeId(3)).unwrap();
        live.seal_snapshot(9).unwrap();
        let (result, o) = cache.execute_traced(&live, &query).unwrap();
        assert_eq!(o, CacheOutcome::Miss);
        assert!(result.is_reached(TemporalNode::from_raw(3, 2)));
    }

    #[test]
    fn node_growth_is_absorbed_by_extension() {
        let mut live = seeded_live();
        let mut cache = QueryCache::new();
        let query = Search::from(TemporalNode::from_raw(0, 0));
        cache.execute(&live, &query).unwrap();
        live.apply(crate::event::EdgeEvent::grow_nodes(7)).unwrap();
        live.insert(NodeId(2), NodeId(6)).unwrap();
        live.seal_snapshot(7).unwrap();
        let (result, o) = cache.execute_traced(&live, &query).unwrap();
        assert_eq!(o, CacheOutcome::Extended);
        assert_eq!(
            result.distance_map().as_flat_slice(),
            query
                .run(live.graph())
                .unwrap()
                .distance_map()
                .as_flat_slice()
        );
        assert!(result.reaches_node(NodeId(6)));
    }

    #[test]
    fn every_strategy_matches_scratch_through_the_cache() {
        let mut live = seeded_live();
        let mut cache = QueryCache::new();
        let root = TemporalNode::from_raw(0, 0);
        let strategies = [
            Strategy::Serial,
            Strategy::Parallel,
            Strategy::Algebraic,
            Strategy::Foremost,
            Strategy::SharedFrontier,
        ];
        for pass in 0..3 {
            for strategy in strategies {
                assert_matches_scratch(&live, &mut cache, &Search::from(root).strategy(strategy));
            }
            if pass < 2 {
                live.insert(NodeId(pass as u32), NodeId(3)).unwrap();
                live.seal_snapshot(10 + pass as i64).unwrap();
            }
        }
    }

    #[test]
    fn a_cache_never_serves_one_graphs_results_for_another() {
        // Regression: two distinct graphs at the same version used to alias
        // through descriptor-only keys, silently answering for the wrong
        // graph.
        let mut a = LiveGraph::directed(3);
        a.insert(NodeId(0), NodeId(1)).unwrap();
        a.seal_snapshot(0).unwrap();
        let mut b = LiveGraph::directed(3);
        b.insert(NodeId(0), NodeId(2)).unwrap();
        b.seal_snapshot(0).unwrap();
        assert_eq!(a.version(), b.version());

        let mut cache = QueryCache::new();
        let query = Search::from(TemporalNode::from_raw(0, 0));
        let on_a = cache.execute(&a, &query).unwrap();
        assert!(!on_a.reaches_node(NodeId(2)));
        let (on_b, outcome) = cache.execute_traced(&b, &query).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss, "rebinding must not hit");
        assert!(on_b.reaches_node(NodeId(2)));
        assert!(!on_b.reaches_node(NodeId(1)));
    }

    #[test]
    fn clones_count_as_different_graphs() {
        // A clone can diverge while keeping the same version; the cache must
        // treat it as a new graph rather than extend with foreign deltas.
        let mut a = seeded_live();
        let mut cache = QueryCache::new();
        let query = Search::from(TemporalNode::from_raw(0, 0));
        cache.execute(&a, &query).unwrap();

        let mut b = a.clone();
        a.insert(NodeId(1), NodeId(3)).unwrap();
        a.seal_snapshot(10).unwrap();
        b.insert(NodeId(2), NodeId(3)).unwrap();
        b.seal_snapshot(10).unwrap();
        assert_eq!(a.version(), b.version());

        let on_a = cache.execute(&a, &query).unwrap();
        assert_eq!(
            on_a.distance_map().as_flat_slice(),
            query.run(a.graph()).unwrap().distance_map().as_flat_slice()
        );
        let on_b = cache.execute(&b, &query).unwrap();
        assert_eq!(
            on_b.distance_map().as_flat_slice(),
            query.run(b.graph()).unwrap().distance_map().as_flat_slice()
        );
    }

    #[test]
    fn run_via_routes_through_the_cache() {
        let live = seeded_live();
        let mut cache = QueryCache::new();
        let root = TemporalNode::from_raw(0, 0);
        let a = Search::from(root)
            .run_via(&mut live.session(&mut cache))
            .unwrap();
        let b = Search::from(root)
            .run_via(&mut live.session(&mut cache))
            .unwrap();
        assert_eq!(a.num_reached(), b.num_reached());
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.len(), 1);
    }
}
