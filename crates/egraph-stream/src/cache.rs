//! [`QueryCache`]: memoised [`Search`] execution over a [`LiveGraph`], with
//! incremental re-search, built for concurrent serving.
//!
//! Results are keyed by the builder's canonical [`QueryDescriptor`] —
//! root(s) × strategy × direction × window × reverse — so the cache composes
//! with every strategy the builder dispatches to, rather than bypassing it.
//! When the graph's [`version`](LiveGraph::version) moves (snapshots were
//! sealed), a stale entry is repaired according to the query's shape:
//!
//! | query shape | on appended snapshots | outcome |
//! |---|---|---|
//! | forward, unbounded-end window, hop strategy | **extended** from the cached result's per-node frontier ([`ResumableBfs`]) — parent links included (`with_parents` rides the same path) | `Extended` |
//! | forward, unbounded-end window, `Foremost` | **extended** from the cached arrival table ([`ResumableForemost`]) | `Extended` |
//! | forward, unbounded-end window, `SharedFrontier` | **extended** from the cached packed `(dist<<32)\|src` claims ([`ResumableShared`]) | `Extended` |
//! | bounded window end (any strategy / direction / reverse / parents) | **re-dimensioned**: the window never covers appended snapshots, so the answer is append-invariant modulo its time dimensions — coordinates are remapped, no edge is touched | `Redimensioned` |
//! | effective time reversal, unbounded end | **stable-core resettle** (Afarin et al.): the prior value map is reused after [`StableCoreResettle`] *verifies* the unstable fringe drawn from the delta's touched nodes is empty — `O(\|touched\|)`, zero traversal; a non-empty fringe (append contract violated) falls back to recompute | `Resettled` |
//! | empty window | always errors; errors are never cached | — |
//!
//! Every row is now incremental: `Recomputed` survives only as the fallback
//! when a repair refuses (fringe violation above). Repairs do *graph work*
//! at most proportional to the appended delta — the
//! `incremental_vs_recompute` bench pins this with
//! [`CountingView`](egraph_core::instrument::CountingView) counters — while
//! staying answer-identical to a from-scratch [`Search::run`] on the sealed
//! graph, errors included (the `live_stream_differential` suite and the
//! seeded `cache_matrix_fuzz` harness, which checks every matrix cell
//! against a from-scratch twin after every seal).
//!
//! ## The serve path
//!
//! Three properties make this cache a serving layer rather than a memo pad:
//!
//! * **`O(1)` hits.** Entries hold `Arc<SearchResult>`; serving a hit is a
//!   reference-count bump, never an `O(nodes × snapshots)` deep copy, and
//!   never touches the graph. The `serving_throughput` bench pins hit cost
//!   independent of history length.
//! * **Concurrent readers.** [`QueryCache::execute`] takes `&self`: the
//!   descriptor space is split across [`QueryCache::SHARDS`] shards, each
//!   behind its own `RwLock`. Hits take a shard *read* lock, so readers of
//!   the same (or different) standing queries proceed in parallel. Repairs
//!   (extend / recompute / miss) do their graph work with **no lock held**
//!   — the graph cannot move under a repair because sealing requires
//!   `&mut LiveGraph` — and take the shard's write lock only to install
//!   the finished entry, so a slow traversal never stalls same-shard hits
//!   (and a panicking engine cannot poison a shard; poisoned locks are
//!   recovered regardless, since map mutations are atomic inserts).
//! * **Bounded memory.** [`QueryCache::with_capacity`] bounds the entry
//!   count with per-shard LRU eviction (stamped by a global access clock);
//!   [`CacheStats::evictions`] counts what was dropped. An entry stores only
//!   the shared result — resumable state is *rebuilt from the result* when
//!   an extension is actually needed, instead of being stored alongside it
//!   (the state duplicates the result's tables, so storing both doubled
//!   entry memory for no asymptotic gain).
//!
//! The cache never stores errors: a failing query re-runs (and re-fails
//! identically) each time, which also lets queries that *become* valid as
//! the graph grows — e.g. a root in a not-yet-sealed snapshot — succeed
//! later.
//!
//! Since the rayon shim gained a real executor (PR 5), repairs genuinely
//! overlap hit serving on a multi-core host: a recompute of a
//! `Strategy::Parallel` / `SharedFrontier` query expands its frontiers
//! across the thread pool, and a multi-source extension advances its
//! independent per-source resumable states in parallel (`extend_states`)
//! — all while holding **no** shard lock, so hit threads keep reading. The
//! `serving_throughput` bench's mixed workload pins hit latency while pool
//! recomputes run alongside.

use rayon::prelude::*;
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use egraph_core::error::Result;
use egraph_core::ids::TimeIndex;
use egraph_core::resume::{ResumableBfs, ResumableForemost, ResumableShared, StableCoreResettle};
use egraph_query::{AppendRepair, QueryDescriptor, QueryExecutor, Search, SearchResult, Strategy};

use crate::live::LiveGraph;

/// How the cache produced an answer — exposed for tests, benches and
/// observability ([`QueryCache::execute_traced`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// No entry existed; the query ran from scratch and was stored.
    Miss,
    /// A current entry was served without touching the graph.
    Hit,
    /// A stale extendable entry was advanced over the appended snapshots.
    Extended,
    /// A stale bounded-window entry was re-dimensioned to the grown graph —
    /// coordinates remapped, no graph work.
    Redimensioned,
    /// A stale time-reversed entry's stable core was reused after verifying
    /// the unstable fringe was empty — `O(|touched|)`, no traversal.
    Resettled,
    /// A stale entry was recomputed from scratch. With every matrix row now
    /// incremental this is a fallback only (a repair that refused, e.g. a
    /// stable-core fringe violation) — normal operation never reports it.
    Recomputed,
}

/// Running counters over every [`QueryCache::execute`] call.
///
/// Each outcome counter is bumped at the moment its result is actually
/// served — under the same shard lock as the lookup for hits, and at entry
/// installation for the repair paths — never earlier, so the counters can
/// not disagree with what callers observed (a query that *errors* serves
/// nothing and counts nothing).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries served from a current entry.
    pub hits: u64,
    /// Queries served by incremental extension of a hop or foremost entry
    /// ([`CacheOutcome::Extended`] on the rows PR 3 closed).
    pub extensions: u64,
    /// Queries served by extension of a shared-frontier or parent-tracking
    /// entry — the rows this matrix revision closed, counted separately so
    /// the new paths are observable ([`CacheOutcome::Extended`]).
    pub extended_shared: u64,
    /// Bounded-window entries re-dimensioned without graph work
    /// ([`CacheOutcome::Redimensioned`]).
    pub redimensioned: u64,
    /// Time-reversed entries whose stable core was reused after fringe
    /// verification ([`CacheOutcome::Resettled`]).
    pub stable_core_resettled: u64,
    /// Stale entries recomputed from scratch — fallback only; zero in
    /// normal operation now that every matrix row repairs incrementally.
    pub recomputes: u64,
    /// Queries with no prior entry.
    pub misses: u64,
    /// Entries dropped by the LRU bound (see [`QueryCache::with_capacity`]).
    pub evictions: u64,
    /// Requests that coalesced onto another request's in-flight computation
    /// instead of executing anything themselves — reported by single-flight
    /// admission layers via [`QueryCache::note_coalesced`]. Zero unless such
    /// a layer (e.g. `egraph-serve`) fronts the cache.
    pub coalesced: u64,
}

impl CacheStats {
    /// Total requests these stats describe: every served outcome plus the
    /// requests that coalesced onto one of them.
    pub fn requests(&self) -> u64 {
        self.hits
            + self.extensions
            + self.extended_shared
            + self.redimensioned
            + self.stable_core_resettled
            + self.recomputes
            + self.misses
            + self.coalesced
    }

    /// Every repair of a stale entry that avoided a from-scratch run: the
    /// sum of the per-row incremental counters.
    pub fn incremental_repairs(&self) -> u64 {
        self.extensions + self.extended_shared + self.redimensioned + self.stable_core_resettled
    }

    /// Fraction of requests served without any graph work — cache hits plus
    /// coalesced waits (which ride on a sibling's single computation) over
    /// all requests. `0.0` when nothing has been served yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.requests();
        if total == 0 {
            return 0.0;
        }
        (self.hits + self.coalesced) as f64 / total as f64
    }
}

/// How a stale entry can be repaired. Decided once, from the descriptor, at
/// insert time — one variant per row of the invalidation matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EntryKind {
    /// Forward unbounded-end hop maps: extendable via [`ResumableBfs`].
    Hops,
    /// As [`EntryKind::Hops`] with BFS-tree parents — the same resumable
    /// extension (parent links ride the frontier), counted separately
    /// ([`CacheStats::extended_shared`]).
    HopsParents,
    /// Forward unbounded-end arrival tables: extendable via
    /// [`ResumableForemost`].
    Foremost,
    /// Forward unbounded-end nearest-source maps: extendable via
    /// [`ResumableShared`].
    Shared,
    /// Bounded window end (any strategy / direction): append-invariant
    /// modulo time dimensions; repaired by coordinate remapping.
    Windowed,
    /// Effective time reversal, unbounded end: stable-core reuse after
    /// [`StableCoreResettle`] fringe verification.
    Reversed,
    /// No repair applies. Unused in practice: the only `AppendRepair::None`
    /// shape (an empty window) always errors, and errors are never cached.
    Opaque,
}

#[derive(Debug)]
struct CacheEntry {
    /// The [`LiveGraph::graph_id`] this entry answers for. Checked on every
    /// lookup so one graph's results can never be served for another, even
    /// mid-rebind under concurrency.
    graph_id: u64,
    version: u64,
    /// Snapshots covered by `result` — where an extension resumes from.
    covered: usize,
    kind: EntryKind,
    /// The shared materialised result at `version`; a `Hit` clones the
    /// `Arc`, not the payload.
    result: Arc<SearchResult>,
    /// Global-clock stamp of the last access (LRU victim selection).
    last_used: AtomicU64,
}

/// A memoising, concurrency-ready execution layer for [`Search`] queries
/// over a [`LiveGraph`].
///
/// See the [module docs](self) for the invalidation matrix and the serve
/// path design. All methods take `&self`; share a cache across threads with
/// scoped threads or an `Arc`.
///
/// A cache binds to the identity ([`LiveGraph::graph_id`]) of the graph it
/// executes against; handing it a *different* live graph — another
/// instance, or a clone that may have diverged — drops every entry and
/// rebinds (and each entry additionally records its graph id, so even a
/// racing rebind can never serve or extend across graphs).
#[derive(Debug)]
pub struct QueryCache {
    shards: Box<[RwLock<HashMap<QueryDescriptor, CacheEntry>>]>,
    /// Total entry bound; `None` = unbounded. Apportioned per shard as
    /// `max(1, capacity.div_ceil(SHARDS))`.
    capacity: Option<usize>,
    /// Monotone access clock behind the LRU stamps.
    clock: AtomicU64,
    /// The [`LiveGraph::graph_id`] the entries belong to (`u64::MAX` =
    /// unbound).
    bound_graph: AtomicU64,
    hits: AtomicU64,
    extensions: AtomicU64,
    extended_shared: AtomicU64,
    redimensioned: AtomicU64,
    stable_core_resettled: AtomicU64,
    recomputes: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    coalesced: AtomicU64,
}

impl Default for QueryCache {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryCache {
    /// Number of independently locked shards the descriptor space is split
    /// across.
    pub const SHARDS: usize = 16;

    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::build(None)
    }

    /// An empty cache evicting least-recently-used entries beyond
    /// `capacity`. The bound is apportioned across [`QueryCache::SHARDS`]
    /// shards (`max(1, capacity.div_ceil(SHARDS))` each), so it is enforced
    /// per shard: the cache holds at most `SHARDS` entries more than
    /// `capacity` under adversarial key distributions, and usually fewer.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::build(Some(capacity))
    }

    fn build(capacity: Option<usize>) -> Self {
        QueryCache {
            shards: (0..Self::SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            capacity,
            clock: AtomicU64::new(0),
            bound_graph: AtomicU64::new(u64::MAX),
            hits: AtomicU64::new(0),
            extensions: AtomicU64::new(0),
            extended_shared: AtomicU64::new(0),
            redimensioned: AtomicU64::new(0),
            stable_core_resettled: AtomicU64::new(0),
            recomputes: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Number of cached queries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| read_lock(s).len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            extensions: self.extensions.load(Ordering::Relaxed),
            extended_shared: self.extended_shared.load(Ordering::Relaxed),
            redimensioned: self.redimensioned.load(Ordering::Relaxed),
            stable_core_resettled: self.stable_core_resettled.load(Ordering::Relaxed),
            recomputes: self.recomputes.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }

    /// Records one request that coalesced onto another request's in-flight
    /// computation ([`CacheStats::coalesced`]). Called by single-flight
    /// admission layers fronting this cache, once per waiting request, at
    /// the moment the shared result is handed over.
    pub fn note_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Bumps the counter for `outcome` — called exactly where the outcome's
    /// result is served, so counters stay atomic with what callers observe.
    /// `Extended` splits by the entry's matrix row: the hop/foremost rows
    /// land in [`CacheStats::extensions`], the shared-frontier/parents rows
    /// in [`CacheStats::extended_shared`].
    fn record(&self, outcome: CacheOutcome, kind: EntryKind) {
        match outcome {
            CacheOutcome::Hit => &self.hits,
            CacheOutcome::Extended => match kind {
                EntryKind::Shared | EntryKind::HopsParents => &self.extended_shared,
                _ => &self.extensions,
            },
            CacheOutcome::Redimensioned => &self.redimensioned,
            CacheOutcome::Resettled => &self.stable_core_resettled,
            CacheOutcome::Recomputed => &self.recomputes,
            CacheOutcome::Miss => &self.misses,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            write_lock(shard).clear();
        }
    }

    /// The shard a descriptor lives in. `DefaultHasher::new()` hashes
    /// identically in every thread and process, so a descriptor's shard is
    /// stable.
    fn shard_index(descriptor: &QueryDescriptor) -> usize {
        let mut hasher = DefaultHasher::new();
        descriptor.hash(&mut hasher);
        (hasher.finish() % Self::SHARDS as u64) as usize
    }

    /// Next LRU stamp.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Rebinds the cache to `graph_id`, dropping every entry on a change.
    /// Entry-level `graph_id` checks make a racing rebind harmless.
    fn rebind(&self, graph_id: u64) {
        loop {
            let current = self.bound_graph.load(Ordering::Acquire);
            if current == graph_id {
                return;
            }
            if self
                .bound_graph
                .compare_exchange(current, graph_id, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.clear();
                return;
            }
        }
    }

    /// Executes `search` against `live`'s sealed graph, through the cache.
    /// Answer- and error-identical to `search.run(live.graph())`; a hit is
    /// an `O(1)` `Arc` clone.
    pub fn execute(&self, live: &LiveGraph, search: &Search) -> Result<Arc<SearchResult>> {
        self.execute_traced(live, search).map(|(result, _)| result)
    }

    /// [`QueryCache::execute`], additionally reporting how the answer was
    /// produced.
    pub fn execute_traced(
        &self,
        live: &LiveGraph,
        search: &Search,
    ) -> Result<(Arc<SearchResult>, CacheOutcome)> {
        let descriptor = search.descriptor();
        let version = live.version();
        let graph_id = live.graph_id();
        self.rebind(graph_id);
        let shard = &self.shards[Self::shard_index(&descriptor)];

        // Fast path: concurrent readers share the shard read lock.
        //
        // What repair (if any) the entry needs is decided here too, so the
        // graph work below runs with NO lock held: the graph cannot move
        // while we hold `&LiveGraph` (sealing needs `&mut`), so the plan
        // cannot go stale — at worst a sibling thread performs the same
        // repair concurrently and one copy wins the install.
        let plan = {
            let map = read_lock(shard);
            match map.get(&descriptor) {
                Some(entry) if entry.graph_id == graph_id && entry.version == version => {
                    entry.last_used.store(self.tick(), Ordering::Relaxed);
                    self.record(CacheOutcome::Hit, entry.kind);
                    return Ok((Arc::clone(&entry.result), CacheOutcome::Hit));
                }
                // Stale but extendable: the graph only ever gained sealed
                // snapshots (and possibly nodes) since the entry's version
                // — the append-only contract of `LiveGraph`.
                Some(entry) if entry.graph_id == graph_id && entry.kind != EntryKind::Opaque => {
                    RepairPlan::Extend {
                        kind: entry.kind,
                        covered: entry.covered,
                        result: Arc::clone(&entry.result),
                    }
                }
                // Stale and opaque: recompute. Absent (or left over from
                // another graph): run from scratch.
                Some(entry) if entry.graph_id == graph_id => RepairPlan::Recompute,
                _ => RepairPlan::Miss,
            }
        };

        // The expensive part — repair / traversal — outside any lock, so
        // same-shard hits keep flowing and a panicking engine cannot poison
        // the shard.
        let (outcome, computed) = match plan {
            RepairPlan::Extend {
                kind,
                covered,
                result,
            } => match extend_result(kind, covered, &result, live) {
                Some(repaired) => (outcome_for(kind), Ok(Arc::new(repaired))),
                // The repair refused (stable-core fringe violation): fall
                // back to the from-scratch run it no longer trusts itself
                // to avoid.
                None => (CacheOutcome::Recomputed, search.run(live.graph())),
            },
            RepairPlan::Recompute => (CacheOutcome::Recomputed, search.run(live.graph())),
            RepairPlan::Miss => (CacheOutcome::Miss, search.run(live.graph())),
        };

        // Install under the shard write lock — held only for map surgery.
        // The outcome counter is bumped at the serve points below, never
        // before: a failing query serves nothing and counts nothing, so the
        // counters cannot drift from what callers actually observed.
        let mut map = write_lock(shard);
        match computed {
            Err(err) => {
                // Errors are never cached; also drop any stale or foreign
                // entry so the failure isn't re-derived from dead state
                // forever. (A current entry cannot coexist with an error:
                // the graph is frozen, so a sibling running the same query
                // got the same error.)
                map.remove(&descriptor);
                Err(err)
            }
            Ok(result) => {
                let kind = entry_kind(&descriptor);
                if let Some(entry) = map.get(&descriptor) {
                    if entry.graph_id == graph_id && entry.version == version {
                        // A sibling installed the same repair first; serve
                        // the shared copy so every reader keeps pointing at
                        // one materialisation, and drop ours.
                        entry.last_used.store(self.tick(), Ordering::Relaxed);
                        self.record(outcome, kind);
                        return Ok((Arc::clone(&entry.result), outcome));
                    }
                }
                map.insert(
                    descriptor,
                    CacheEntry {
                        graph_id,
                        version,
                        covered: live.num_sealed(),
                        kind,
                        result: Arc::clone(&result),
                        last_used: AtomicU64::new(self.tick()),
                    },
                );
                self.evict_over_capacity(&mut map);
                self.record(outcome, kind);
                Ok((result, outcome))
            }
        }
    }

    /// A *current* entry for `search`, if one exists — the pure read path:
    /// no graph work, no repair, no entry installation. Serving layers probe
    /// this first so hot hits bypass single-flight admission entirely; on
    /// `None` the caller decides what to do (typically enter single-flight
    /// and call [`QueryCache::execute`]).
    ///
    /// A served result counts as a [`CacheStats::hits`] and refreshes the
    /// entry's LRU stamp, exactly like a hit through `execute`; a `None`
    /// counts nothing, since nothing was served.
    pub fn peek(&self, live: &LiveGraph, search: &Search) -> Option<Arc<SearchResult>> {
        let descriptor = search.descriptor();
        let graph_id = live.graph_id();
        let version = live.version();
        self.rebind(graph_id);
        let map = read_lock(&self.shards[Self::shard_index(&descriptor)]);
        match map.get(&descriptor) {
            Some(entry) if entry.graph_id == graph_id && entry.version == version => {
                entry.last_used.store(self.tick(), Ordering::Relaxed);
                self.record(CacheOutcome::Hit, entry.kind);
                Some(Arc::clone(&entry.result))
            }
            _ => None,
        }
    }

    /// Evicts least-recently-used entries until the shard respects its
    /// apportioned bound.
    fn evict_over_capacity(&self, map: &mut HashMap<QueryDescriptor, CacheEntry>) {
        let Some(capacity) = self.capacity else {
            return;
        };
        let per_shard = capacity.div_ceil(Self::SHARDS).max(1);
        while map.len() > per_shard {
            let victim = map
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
                .expect("shard over capacity is non-empty");
            map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

type Shard = RwLock<HashMap<QueryDescriptor, CacheEntry>>;

/// Locks recover from poisoning instead of propagating it: no graph work
/// runs under a lock (a panicking engine cannot poison a shard), and map
/// mutations are single insert/remove calls, so a poisoned shard's map is
/// still internally consistent.
fn read_lock(shard: &Shard) -> RwLockReadGuard<'_, HashMap<QueryDescriptor, CacheEntry>> {
    shard.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_lock(shard: &Shard) -> RwLockWriteGuard<'_, HashMap<QueryDescriptor, CacheEntry>> {
    shard.write().unwrap_or_else(PoisonError::into_inner)
}

/// What the slow path captured under the read lock and will perform with no
/// lock held.
enum RepairPlan {
    /// Advance the shared result over the appended snapshots.
    Extend {
        kind: EntryKind,
        covered: usize,
        result: Arc<SearchResult>,
    },
    /// A stale opaque entry: run from scratch.
    Recompute,
    /// No usable entry: run from scratch.
    Miss,
}

/// The repair kind a fresh entry will use when it goes stale. Mirrors the
/// descriptor's [`AppendRepair`] classification row for row.
fn entry_kind(descriptor: &QueryDescriptor) -> EntryKind {
    match descriptor.append_repair() {
        AppendRepair::None => EntryKind::Opaque,
        AppendRepair::Redimension => EntryKind::Windowed,
        AppendRepair::Resettle => EntryKind::Reversed,
        AppendRepair::Extend => match descriptor.strategy() {
            Strategy::Serial | Strategy::Parallel | Strategy::Algebraic => {
                if descriptor.with_parents() {
                    EntryKind::HopsParents
                } else {
                    EntryKind::Hops
                }
            }
            Strategy::Foremost => EntryKind::Foremost,
            Strategy::SharedFrontier => EntryKind::Shared,
        },
    }
}

/// The outcome a successful repair of `kind` reports.
fn outcome_for(kind: EntryKind) -> CacheOutcome {
    match kind {
        EntryKind::Hops | EntryKind::HopsParents | EntryKind::Foremost | EntryKind::Shared => {
            CacheOutcome::Extended
        }
        EntryKind::Windowed => CacheOutcome::Redimensioned,
        EntryKind::Reversed => CacheOutcome::Resettled,
        EntryKind::Opaque => unreachable!("opaque entries recompute"),
    }
}

/// Repairs the entry's shared result (covering `covered` snapshots) up to
/// the live graph's sealed state, per the entry's matrix row. Returns `None`
/// when the repair refuses — only the stable-core row can, on a fringe
/// verification failure — in which case the caller recomputes.
///
/// Extension rows rebuild resumable state from the result instead of
/// retaining it alongside (the state duplicates the result's tables, so
/// storing both doubled entry memory); the rebuild is a scan of the result,
/// no graph work, so repair work stays delta-proportional (pinned by the
/// `incremental_vs_recompute` bench).
fn extend_result(
    kind: EntryKind,
    covered: usize,
    result: &SearchResult,
    live: &LiveGraph,
) -> Option<SearchResult> {
    match kind {
        EntryKind::Hops | EntryKind::HopsParents => {
            // `ResumableBfs::from_map` captures parent links when the map
            // has them, so the parents row is the same extension.
            let mut states: Vec<ResumableBfs> = result
                .distance_maps()
                .iter()
                .map(ResumableBfs::from_map)
                .collect();
            extend_states(&mut states, live);
            Some(SearchResult::from_maps(
                states.iter().map(|s| s.to_distance_map()).collect(),
                false,
            ))
        }
        EntryKind::Foremost => {
            let mut states: Vec<ResumableForemost> = result
                .foremost_results()
                .iter()
                .map(|table| ResumableForemost::from_result(table, covered))
                .collect();
            extend_states(&mut states, live);
            Some(SearchResult::from_arrivals(
                states.iter().map(|s| s.to_result()).collect(),
                false,
            ))
        }
        EntryKind::Shared => {
            let mut states = [ResumableShared::from_map(result.shared_map())];
            extend_states(&mut states, live);
            let [state] = states;
            Some(SearchResult::from_shared(state.to_map(), false))
        }
        EntryKind::Windowed => Some(redimension_result(result, live)),
        EntryKind::Reversed => {
            // Stable-core reuse (Afarin et al.): the retained values are
            // append-invariant *if* none could flow into the appended
            // snapshots. Verify that over the deltas' touched sets —
            // `O(|touched|)` per seal, zero traversal — then the repair is
            // pure re-dimensioning.
            let graph = live.graph();
            let mut core = StableCoreResettle::from_reached_times(
                result_num_nodes(result),
                covered,
                reached_temporal_nodes(result),
            );
            core.grow_nodes(graph.num_nodes());
            for t in core.covered_timestamps()..live.num_sealed() {
                let t = TimeIndex::from_index(t);
                let fringe = core.extend_snapshot(graph, live.touched_at(t)).ok()?;
                if !fringe.is_empty() {
                    return None;
                }
            }
            Some(redimension_result(result, live))
        }
        EntryKind::Opaque => unreachable!("opaque entries recompute"),
    }
}

/// Re-expresses `result` in the live graph's current dimensions — the
/// re-dimension repair: distances / arrivals / attributions all keep their
/// values (they are indexed by snapshot label position and node id, neither
/// of which an append can move), new nodes and snapshots start unreached.
/// No graph work.
fn redimension_result(result: &SearchResult, live: &LiveGraph) -> SearchResult {
    let graph = live.graph();
    let (num_nodes, num_timestamps) = (graph.num_nodes(), graph.num_timestamps());
    let reversed = result.is_time_reversed();
    if let Some(maps) = result.try_distance_maps() {
        SearchResult::from_maps(
            maps.iter()
                .map(|m| m.redimensioned(num_nodes, num_timestamps))
                .collect(),
            reversed,
        )
    } else if let Some(tables) = result.try_foremost_results() {
        SearchResult::from_arrivals(
            tables.iter().map(|a| a.redimensioned(num_nodes)).collect(),
            reversed,
        )
    } else {
        SearchResult::from_shared(
            result.shared_map().redimensioned(num_nodes, num_timestamps),
            reversed,
        )
    }
}

/// The node dimension of a result's payload (all payloads agree).
fn result_num_nodes(result: &SearchResult) -> usize {
    if let Some(maps) = result.try_distance_maps() {
        maps.first().map(|m| m.num_nodes()).unwrap_or(0)
    } else if let Some(tables) = result.try_foremost_results() {
        tables.first().map(|a| a.arrivals().len()).unwrap_or(0)
    } else {
        result.shared_map().num_nodes()
    }
}

/// Every temporal node at which a result holds a value — the reached set
/// the stable-core verifier summarises.
fn reached_temporal_nodes(result: &SearchResult) -> Vec<egraph_core::ids::TemporalNode> {
    use egraph_core::ids::TemporalNode;
    if let Some(maps) = result.try_distance_maps() {
        maps.iter()
            .flat_map(|m| m.reached().into_iter().map(|(tn, _)| tn))
            .collect()
    } else if let Some(tables) = result.try_foremost_results() {
        tables
            .iter()
            .flat_map(|a| {
                a.reachable()
                    .into_iter()
                    .map(|(v, t)| TemporalNode::new(v, t))
            })
            .collect()
    } else {
        result
            .shared_map()
            .reached()
            .into_iter()
            .map(|(tn, _)| tn)
            .collect()
    }
}

/// The common resumable-state surface the extension loop needs, so the hop
/// and foremost paths share one implementation and cannot drift.
trait Resumable {
    fn grow_nodes(&mut self, num_nodes: usize);
    fn covered_timestamps(&self) -> usize;
    fn extend_snapshot(
        &mut self,
        graph: &egraph_core::csr::CsrAdjacency,
        touched: &[egraph_core::ids::NodeId],
    ) -> Result<()>;
}

impl Resumable for ResumableBfs {
    fn grow_nodes(&mut self, num_nodes: usize) {
        ResumableBfs::grow_nodes(self, num_nodes)
    }
    fn covered_timestamps(&self) -> usize {
        ResumableBfs::covered_timestamps(self)
    }
    fn extend_snapshot(
        &mut self,
        graph: &egraph_core::csr::CsrAdjacency,
        touched: &[egraph_core::ids::NodeId],
    ) -> Result<()> {
        ResumableBfs::extend_snapshot(self, graph, touched)
    }
}

impl Resumable for ResumableShared {
    fn grow_nodes(&mut self, num_nodes: usize) {
        ResumableShared::grow_nodes(self, num_nodes)
    }
    fn covered_timestamps(&self) -> usize {
        ResumableShared::covered_timestamps(self)
    }
    fn extend_snapshot(
        &mut self,
        graph: &egraph_core::csr::CsrAdjacency,
        touched: &[egraph_core::ids::NodeId],
    ) -> Result<()> {
        ResumableShared::extend_snapshot(self, graph, touched)
    }
}

impl Resumable for ResumableForemost {
    fn grow_nodes(&mut self, num_nodes: usize) {
        ResumableForemost::grow_nodes(self, num_nodes)
    }
    fn covered_timestamps(&self) -> usize {
        ResumableForemost::covered_timestamps(self)
    }
    fn extend_snapshot(
        &mut self,
        graph: &egraph_core::csr::CsrAdjacency,
        touched: &[egraph_core::ids::NodeId],
    ) -> Result<()> {
        ResumableForemost::extend_snapshot(self, graph, touched)
    }
}

/// Advances every per-source resumable state across the snapshots sealed
/// since the states' coverage, growing the node layout first.
///
/// Per-source states are independent, so a multi-source extension fans out
/// across the rayon pool (`par_iter_mut`); repairs run with no shard lock
/// held, so this traversal work overlaps hit serving on other threads. A
/// single-source extension (`states.len() == 1`, the common case) stays on
/// the calling thread — the pool's chunking already short-circuits
/// single-chunk inputs.
fn extend_states<S: Resumable + Send>(states: &mut [S], live: &LiveGraph) {
    let graph = live.graph();
    let num_sealed = live.num_sealed();
    states.par_iter_mut().for_each(|state| {
        state.grow_nodes(graph.num_nodes());
        for t in state.covered_timestamps()..num_sealed {
            let t = TimeIndex::from_index(t);
            state
                .extend_snapshot(graph, live.touched_at(t))
                .expect("coverage and layout were aligned above");
        }
    });
}

/// A borrowed (live graph, cache) pair implementing the builder's
/// [`QueryExecutor`] hook, so call sites keep the fluent shape. Both
/// borrows are shared, so any number of sessions — across threads — can
/// serve from one cache:
///
/// ```
/// use egraph_core::ids::{NodeId, TemporalNode};
/// use egraph_query::Search;
/// use egraph_stream::{LiveGraph, QueryCache};
///
/// let mut live = LiveGraph::directed(3);
/// live.insert(NodeId(0), NodeId(1)).unwrap();
/// live.seal_snapshot(0).unwrap();
///
/// let cache = QueryCache::new();
/// let result = Search::from(TemporalNode::from_raw(0, 0))
///     .run_via(&mut live.session(&cache))
///     .unwrap();
/// assert_eq!(result.num_reached(), 2);
/// ```
#[derive(Debug)]
pub struct CachedSession<'a> {
    live: &'a LiveGraph,
    cache: &'a QueryCache,
}

impl QueryExecutor for CachedSession<'_> {
    fn run_search(&mut self, search: &Search) -> Result<Arc<SearchResult>> {
        self.cache.execute(self.live, search)
    }
}

impl LiveGraph {
    /// Pairs this graph with a [`QueryCache`] for
    /// [`Search::run_via`](egraph_query::Search::run_via).
    pub fn session<'a>(&'a self, cache: &'a QueryCache) -> CachedSession<'a> {
        CachedSession { live: self, cache }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::error::GraphError;
    use egraph_core::ids::{NodeId, TemporalNode};
    use egraph_query::Direction;

    fn seeded_live() -> LiveGraph {
        let mut live = LiveGraph::directed(4);
        live.insert(NodeId(0), NodeId(1)).unwrap();
        live.seal_snapshot(0).unwrap();
        live.insert(NodeId(1), NodeId(2)).unwrap();
        live.seal_snapshot(1).unwrap();
        live
    }

    fn assert_matches_scratch(live: &LiveGraph, cache: &QueryCache, search: &Search) {
        let cached = cache.execute(live, search);
        let scratch = search.run(live.graph());
        match (cached, scratch) {
            (Ok(a), Ok(b)) => assert_eq!(a.reached_node_ids(), b.reached_node_ids()),
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("cached {a:?} disagrees with scratch {b:?}"),
        }
    }

    #[test]
    fn hit_extend_and_resettle_paths_are_reported() {
        let mut live = seeded_live();
        let cache = QueryCache::new();
        let forward = Search::from(TemporalNode::from_raw(0, 0));
        let backward = Search::from(TemporalNode::from_raw(2, 1)).direction(Direction::Backward);

        let (_, o) = cache.execute_traced(&live, &forward).unwrap();
        assert_eq!(o, CacheOutcome::Miss);
        let (_, o) = cache.execute_traced(&live, &forward).unwrap();
        assert_eq!(o, CacheOutcome::Hit);
        let (_, o) = cache.execute_traced(&live, &backward).unwrap();
        assert_eq!(o, CacheOutcome::Miss);

        live.insert(NodeId(2), NodeId(3)).unwrap();
        live.seal_snapshot(2).unwrap();

        let (result, o) = cache.execute_traced(&live, &forward).unwrap();
        assert_eq!(o, CacheOutcome::Extended);
        assert_eq!(
            result.distance_map().as_flat_slice(),
            forward
                .run(live.graph())
                .unwrap()
                .distance_map()
                .as_flat_slice()
        );
        let (result, o) = cache.execute_traced(&live, &backward).unwrap();
        assert_eq!(o, CacheOutcome::Resettled);
        assert_eq!(
            result.distance_map().as_flat_slice(),
            backward
                .run(live.graph())
                .unwrap()
                .distance_map()
                .as_flat_slice()
        );

        let stats = cache.stats();
        assert_eq!(
            (
                stats.misses,
                stats.hits,
                stats.extensions,
                stats.stable_core_resettled,
                stats.recomputes,
            ),
            (2, 1, 1, 1, 0)
        );
    }

    #[test]
    fn shared_frontier_and_parent_entries_extend() {
        let mut live = seeded_live();
        let cache = QueryCache::new();
        let shared =
            Search::from_sources([TemporalNode::from_raw(0, 0), TemporalNode::from_raw(1, 0)])
                .strategy(Strategy::SharedFrontier);
        let parents = Search::from(TemporalNode::from_raw(0, 0)).with_parents();
        cache.execute(&live, &shared).unwrap();
        cache.execute(&live, &parents).unwrap();

        live.insert(NodeId(2), NodeId(3)).unwrap();
        live.seal_snapshot(2).unwrap();

        let (result, o) = cache.execute_traced(&live, &shared).unwrap();
        assert_eq!(o, CacheOutcome::Extended);
        let scratch = shared.run(live.graph()).unwrap();
        assert_eq!(
            result.shared_map().reached_with_sources(),
            scratch.shared_map().reached_with_sources()
        );

        let (result, o) = cache.execute_traced(&live, &parents).unwrap();
        assert_eq!(o, CacheOutcome::Extended);
        let scratch = parents.run(live.graph()).unwrap();
        assert_eq!(
            result.distance_map().as_flat_slice(),
            scratch.distance_map().as_flat_slice()
        );
        assert!(result.distance_map().has_parents());
        // A path query exercises the extended parent links end to end.
        let deep = TemporalNode::from_raw(3, 2);
        let path = result.path_to(deep).expect("node 3 reached at t2");
        assert_eq!(path.first(), Some(&TemporalNode::from_raw(0, 0)));
        assert_eq!(path.last(), Some(&deep));

        let stats = cache.stats();
        assert_eq!(stats.extended_shared, 2);
        assert_eq!(stats.extensions, 0);
        assert_eq!(stats.recomputes, 0);
    }

    #[test]
    fn bounded_window_entries_redimension_without_graph_work() {
        let mut live = seeded_live();
        let cache = QueryCache::new();
        let windowed = Search::from(TemporalNode::from_raw(0, 0)).window(0u32..=1);
        let first = cache.execute(&live, &windowed).unwrap();

        live.insert(NodeId(2), NodeId(3)).unwrap();
        live.seal_snapshot(2).unwrap();

        let (result, o) = cache.execute_traced(&live, &windowed).unwrap();
        assert_eq!(o, CacheOutcome::Redimensioned);
        let scratch = windowed.run(live.graph()).unwrap();
        assert_eq!(
            result.distance_map().as_flat_slice(),
            scratch.distance_map().as_flat_slice()
        );
        // The repaired payload tracks the grown graph's dimensions even
        // though the window excludes the new snapshot.
        assert_eq!(result.distance_map().num_timestamps(), 3);
        assert_eq!(first.distance_map().num_timestamps(), 2);
        assert_eq!(cache.stats().redimensioned, 1);
        assert_eq!(cache.stats().recomputes, 0);
    }

    #[test]
    fn every_stale_row_repairs_incrementally() {
        // One query per matrix row; after a seal, none of them recompute.
        let mut live = seeded_live();
        let cache = QueryCache::new();
        let root = TemporalNode::from_raw(0, 0);
        let rows = [
            Search::from(root),
            Search::from(root).strategy(Strategy::Foremost),
            Search::from(root).strategy(Strategy::SharedFrontier),
            Search::from(root).with_parents(),
            Search::from(root).window(0u32..=1),
            Search::from(TemporalNode::from_raw(2, 1)).backward(),
            Search::from(root).reverse(),
        ];
        for row in &rows {
            cache.execute(&live, row).unwrap();
        }
        live.insert(NodeId(2), NodeId(3)).unwrap();
        live.seal_snapshot(2).unwrap();
        for row in &rows {
            let (_, o) = cache.execute_traced(&live, row).unwrap();
            assert_ne!(o, CacheOutcome::Recomputed, "{:?}", row.descriptor());
            assert_matches_scratch(&live, &cache, row);
        }
        let stats = cache.stats();
        assert_eq!(stats.recomputes, 0);
        assert_eq!(stats.incremental_repairs(), rows.len() as u64);
        assert_eq!(stats.extensions, 2);
        assert_eq!(stats.extended_shared, 2);
        assert_eq!(stats.redimensioned, 1);
        assert_eq!(stats.stable_core_resettled, 2);
    }

    #[test]
    fn hits_share_one_materialisation() {
        // The zero-copy contract: every hit serves the same allocation.
        let live = seeded_live();
        let cache = QueryCache::new();
        let query = Search::from(TemporalNode::from_raw(0, 0));
        let first = cache.execute(&live, &query).unwrap();
        let second = cache.execute(&live, &query).unwrap();
        let third = cache.execute(&live, &query).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert!(Arc::ptr_eq(&second, &third));
    }

    #[test]
    fn foremost_entries_extend_too() {
        let mut live = seeded_live();
        let cache = QueryCache::new();
        let query = Search::from(TemporalNode::from_raw(0, 0)).strategy(Strategy::Foremost);
        cache.execute(&live, &query).unwrap();
        live.insert(NodeId(2), NodeId(3)).unwrap();
        live.seal_snapshot(5).unwrap();
        let (result, o) = cache.execute_traced(&live, &query).unwrap();
        assert_eq!(o, CacheOutcome::Extended);
        assert_eq!(result.arrival(NodeId(3)), Some(TimeIndex(2)));
    }

    #[test]
    fn errors_are_not_cached_and_can_heal_as_the_graph_grows() {
        let mut live = seeded_live();
        let cache = QueryCache::new();
        // Root in a snapshot that does not exist yet.
        let query = Search::from(TemporalNode::from_raw(0, 2));
        assert!(matches!(
            cache.execute(&live, &query),
            Err(GraphError::OutsideWindow { .. })
        ));
        live.insert(NodeId(0), NodeId(3)).unwrap();
        live.seal_snapshot(9).unwrap();
        let (result, o) = cache.execute_traced(&live, &query).unwrap();
        assert_eq!(o, CacheOutcome::Miss);
        assert!(result.is_reached(TemporalNode::from_raw(3, 2)));
    }

    #[test]
    fn node_growth_is_absorbed_by_extension() {
        let mut live = seeded_live();
        let cache = QueryCache::new();
        let query = Search::from(TemporalNode::from_raw(0, 0));
        cache.execute(&live, &query).unwrap();
        live.apply(crate::event::EdgeEvent::grow_nodes(7)).unwrap();
        live.insert(NodeId(2), NodeId(6)).unwrap();
        live.seal_snapshot(7).unwrap();
        let (result, o) = cache.execute_traced(&live, &query).unwrap();
        assert_eq!(o, CacheOutcome::Extended);
        assert_eq!(
            result.distance_map().as_flat_slice(),
            query
                .run(live.graph())
                .unwrap()
                .distance_map()
                .as_flat_slice()
        );
        assert!(result.reaches_node(NodeId(6)));
    }

    #[test]
    fn every_strategy_matches_scratch_through_the_cache() {
        let mut live = seeded_live();
        let cache = QueryCache::new();
        let root = TemporalNode::from_raw(0, 0);
        let strategies = [
            Strategy::Serial,
            Strategy::Parallel,
            Strategy::Algebraic,
            Strategy::Foremost,
            Strategy::SharedFrontier,
        ];
        for pass in 0..3 {
            for strategy in strategies {
                assert_matches_scratch(&live, &cache, &Search::from(root).strategy(strategy));
            }
            if pass < 2 {
                live.insert(NodeId(pass as u32), NodeId(3)).unwrap();
                live.seal_snapshot(10 + pass as i64).unwrap();
            }
        }
    }

    #[test]
    fn a_cache_never_serves_one_graphs_results_for_another() {
        // Regression: two distinct graphs at the same version used to alias
        // through descriptor-only keys, silently answering for the wrong
        // graph.
        let mut a = LiveGraph::directed(3);
        a.insert(NodeId(0), NodeId(1)).unwrap();
        a.seal_snapshot(0).unwrap();
        let mut b = LiveGraph::directed(3);
        b.insert(NodeId(0), NodeId(2)).unwrap();
        b.seal_snapshot(0).unwrap();
        assert_eq!(a.version(), b.version());

        let cache = QueryCache::new();
        let query = Search::from(TemporalNode::from_raw(0, 0));
        let on_a = cache.execute(&a, &query).unwrap();
        assert!(!on_a.reaches_node(NodeId(2)));
        let (on_b, outcome) = cache.execute_traced(&b, &query).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss, "rebinding must not hit");
        assert!(on_b.reaches_node(NodeId(2)));
        assert!(!on_b.reaches_node(NodeId(1)));
    }

    #[test]
    fn clones_count_as_different_graphs() {
        // A clone can diverge while keeping the same version; the cache must
        // treat it as a new graph rather than extend with foreign deltas.
        let mut a = seeded_live();
        let cache = QueryCache::new();
        let query = Search::from(TemporalNode::from_raw(0, 0));
        cache.execute(&a, &query).unwrap();

        let mut b = a.clone();
        a.insert(NodeId(1), NodeId(3)).unwrap();
        a.seal_snapshot(10).unwrap();
        b.insert(NodeId(2), NodeId(3)).unwrap();
        b.seal_snapshot(10).unwrap();
        assert_eq!(a.version(), b.version());

        let on_a = cache.execute(&a, &query).unwrap();
        assert_eq!(
            on_a.distance_map().as_flat_slice(),
            query.run(a.graph()).unwrap().distance_map().as_flat_slice()
        );
        let on_b = cache.execute(&b, &query).unwrap();
        assert_eq!(
            on_b.distance_map().as_flat_slice(),
            query.run(b.graph()).unwrap().distance_map().as_flat_slice()
        );
    }

    #[test]
    fn run_via_routes_through_the_cache() {
        let live = seeded_live();
        let cache = QueryCache::new();
        let root = TemporalNode::from_raw(0, 0);
        let a = Search::from(root)
            .run_via(&mut live.session(&cache))
            .unwrap();
        let b = Search::from(root)
            .run_via(&mut live.session(&cache))
            .unwrap();
        assert_eq!(a.num_reached(), b.num_reached());
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.len(), 1);
    }

    /// A wide graph where every `(v, 0)` root is active — raw material for
    /// descriptor probing in the LRU tests.
    fn wide_live(num_nodes: usize) -> LiveGraph {
        let mut live = LiveGraph::directed(num_nodes);
        for v in 0..num_nodes as u32 - 1 {
            live.insert(NodeId(v), NodeId(v + 1)).unwrap();
        }
        live.seal_snapshot(0).unwrap();
        live
    }

    #[test]
    fn bounded_caches_evict_least_recently_used_entries() {
        let live = wide_live(64);
        // Capacity SHARDS → exactly one entry per shard: insertion into an
        // occupied shard must evict its previous occupant.
        let cache = QueryCache::with_capacity(QueryCache::SHARDS);
        let queries: Vec<Search> = (0..48)
            .map(|v| Search::from(TemporalNode::from_raw(v, 0)))
            .collect();
        for q in &queries {
            cache.execute(&live, q).unwrap();
        }
        assert!(cache.len() <= QueryCache::SHARDS);
        let stats = cache.stats();
        assert_eq!(stats.misses, 48);
        assert_eq!(stats.evictions, 48 - cache.len() as u64);
        assert!(stats.evictions > 0, "48 keys into 16 shards must evict");
        // The most recent insertion is never the LRU victim.
        let (_, o) = cache
            .execute_traced(&live, queries.last().unwrap())
            .unwrap();
        assert_eq!(o, CacheOutcome::Hit);
    }

    #[test]
    fn lru_prefers_evicting_the_stalest_entry_in_a_shard() {
        let live = wide_live(64);
        // Find three distinct queries landing in one shard.
        let mut by_shard: HashMap<usize, Vec<Search>> = HashMap::new();
        let colliding = (0..64u32)
            .map(|v| Search::from(TemporalNode::from_raw(v, 0)))
            .find_map(|q| {
                let shard = QueryCache::shard_index(&q.descriptor());
                let bucket = by_shard.entry(shard).or_default();
                bucket.push(q);
                (bucket.len() == 3).then(|| bucket.clone())
            })
            .expect("64 keys over 16 shards must collide 3 deep somewhere");
        let [a, b, c] = &colliding[..] else {
            unreachable!()
        };

        // Per-shard bound of 2: capacity SHARDS * 2.
        let cache = QueryCache::with_capacity(QueryCache::SHARDS * 2);
        cache.execute(&live, a).unwrap();
        cache.execute(&live, b).unwrap();
        cache.execute(&live, a).unwrap(); // touch a: b is now the LRU
        cache.execute(&live, c).unwrap(); // shard full: evicts b
        assert_eq!(cache.stats().evictions, 1);
        let (_, oa) = cache.execute_traced(&live, a).unwrap();
        assert_eq!(oa, CacheOutcome::Hit, "recently touched entry survives");
        // Probing b re-inserts it (and evicts the next LRU victim).
        let (_, ob) = cache.execute_traced(&live, b).unwrap();
        assert_eq!(ob, CacheOutcome::Miss, "LRU entry was evicted");
    }

    #[test]
    fn peek_serves_current_entries_without_computing() {
        let mut live = seeded_live();
        let cache = QueryCache::new();
        let query = Search::from(TemporalNode::from_raw(0, 0));
        // Nothing cached yet: peek computes nothing and counts nothing.
        assert!(cache.peek(&live, &query).is_none());
        assert_eq!(cache.stats(), CacheStats::default());

        let computed = cache.execute(&live, &query).unwrap();
        let peeked = cache.peek(&live, &query).unwrap();
        assert!(Arc::ptr_eq(&computed, &peeked));
        assert_eq!(cache.stats().hits, 1);

        // Stale entries are not served: peek never repairs.
        live.insert(NodeId(2), NodeId(3)).unwrap();
        live.seal_snapshot(2).unwrap();
        assert!(cache.peek(&live, &query).is_none());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn failed_queries_count_nothing() {
        // Counters are bumped when a result is served; an error serves
        // nothing, so the stats must not claim a miss happened.
        let live = seeded_live();
        let cache = QueryCache::new();
        let bad = Search::from(TemporalNode::from_raw(0, 7));
        assert!(cache.execute(&live, &bad).is_err());
        assert!(cache.execute(&live, &bad).is_err());
        assert_eq!(cache.stats(), CacheStats::default());
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }

    #[test]
    fn coalesced_requests_feed_the_hit_rate() {
        let live = seeded_live();
        let cache = QueryCache::new();
        let query = Search::from(TemporalNode::from_raw(0, 0));
        cache.execute(&live, &query).unwrap(); // miss
        cache.execute(&live, &query).unwrap(); // hit
        cache.note_coalesced();
        cache.note_coalesced();
        let stats = cache.stats();
        assert_eq!(stats.coalesced, 2);
        assert_eq!(stats.requests(), 4);
        // (1 hit + 2 coalesced) / 4 requests.
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn concurrent_hits_proceed_under_shared_locks() {
        // Smoke-level concurrency (the workspace-level concurrent_serving
        // suite does the heavy differential testing): many threads serving
        // the same standing queries all observe the shared materialisation.
        let live = seeded_live();
        let cache = QueryCache::new();
        let query = Search::from(TemporalNode::from_raw(0, 0));
        let baseline = cache.execute(&live, &query).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        let served = cache.execute(&live, &query).unwrap();
                        assert!(Arc::ptr_eq(&served, &baseline));
                    }
                });
            }
        });
        assert_eq!(cache.stats().hits, 400);
    }
}
