//! # egraph-fault
//!
//! A deterministic, zero-cost-when-disabled **failpoint registry** for the
//! evolving-graphs stack. Production code declares *named sites* at the
//! exact points where the outside world can fail — a segment write, an
//! fsync, a directory sync, a replication read — and tests (or the
//! `EGRAPH_FAILPOINTS` environment variable) script what those sites do:
//! return an error, tear a write partway through, delay, or panic.
//!
//! ```
//! use egraph_fault as fault;
//!
//! // Production code, at the site:
//! fn write_block() -> std::io::Result<()> {
//!     if fault::fired("example.write").is_some() {
//!         return Err(fault::injected_io_error("example.write", "write refused"));
//!     }
//!     Ok(()) // ... the real write
//! }
//!
//! // A test scripts the site, bounded to fire exactly once:
//! fault::reset();
//! fault::configure("example.write", fault::Rule::error().times(1));
//! if fault::is_active_build() {
//!     assert!(write_block().is_err()); // injected
//!     assert!(write_block().is_ok());  // rule exhausted
//! }
//! fault::reset();
//! ```
//!
//! ## Cost model
//!
//! * **Release builds**: [`fired`] starts with `cfg!(debug_assertions)`,
//!   which is a compile-time `false` — the whole body constant-folds away
//!   and every failpoint compiles to a no-op. No branch, no atomic, no
//!   lock on any hot path. [`is_active_build`] reports this so test suites
//!   can assert the contract instead of silently passing.
//! * **Debug builds, nothing configured**: one relaxed atomic load.
//! * **Debug builds, sites configured**: one mutex-guarded map lookup per
//!   site evaluation — fine for tests, never reached in production.
//!
//! ## Determinism
//!
//! Triggers are either *counted* (`after`/`times`: fire on exactly the
//! N-th..M-th evaluations) or *sampled* (`p`/`seed`: a seeded SplitMix64
//! stream decides each evaluation), so every chaos schedule replays
//! bit-identically from its seed. Nothing reads the clock.
//!
//! ## Scripting grammar (`EGRAPH_FAILPOINTS` / [`script`])
//!
//! ```text
//! spec   := entry (';' entry)*
//! entry  := site '=' rule
//! rule   := (modifier ',')* action
//! modifier := 'after:' N | 'times:' N | 'p:' FLOAT | 'seed:' N
//! action := 'error' | 'partial:' PCT | 'delay:' MS | 'panic' | 'off'
//! ```
//!
//! Example: `EGRAPH_FAILPOINTS="log.seal.fsync=times:1,error;serve.query.compute=delay:250"`

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What a triggered failpoint does at its site.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Action {
    /// The site reports failure (mapped to the site's own error type).
    Error,
    /// The site performs only the given percentage (`0..=99`) of its write
    /// before failing — the torn-file residue a crash mid-write leaves.
    Partial(u8),
    /// The site sleeps this many milliseconds, then proceeds normally.
    Delay(u64),
    /// The site panics — simulating a process crash at exactly this point.
    Panic,
}

/// What [`fired`] tells the site to do. `Delay` and `Panic` act inside
/// [`fired`] itself (sleep / panic), so sites only ever see the two
/// variants that need site-specific handling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fired {
    /// Fail the operation without side effects.
    Error,
    /// Perform only this percentage (`0..=99`) of the write, then fail.
    Partial(u8),
}

/// A scripted trigger for one site: an [`Action`] plus when it applies.
///
/// Evaluations are counted per configured site. The rule skips the first
/// `after` evaluations, fires at most `times` times (unlimited when
/// `None`), and — if `probability` is set — consults a seeded RNG stream
/// on each otherwise-eligible evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// What to do when the rule fires.
    pub action: Action,
    /// Skip this many eligible evaluations before the rule may fire.
    pub after: u64,
    /// Fire at most this many times; `None` is unlimited.
    pub times: Option<u64>,
    /// Fire with this probability per eligible evaluation (`None` = always).
    pub probability: Option<f64>,
    /// Seed for the sampling stream (only used with `probability`).
    pub seed: u64,
}

impl Rule {
    fn new(action: Action) -> Rule {
        Rule {
            action,
            after: 0,
            times: None,
            probability: None,
            seed: 0x5EED_FA17,
        }
    }

    /// A rule that makes the site report failure.
    pub fn error() -> Rule {
        Rule::new(Action::Error)
    }

    /// A rule that tears the site's write after `percent` (`0..=99`) of its
    /// bytes.
    ///
    /// # Panics
    /// If `percent > 99` (a 100% partial write would be a complete write).
    pub fn partial(percent: u8) -> Rule {
        assert!(percent <= 99, "a partial write keeps at most 99% of bytes");
        Rule::new(Action::Partial(percent))
    }

    /// A rule that delays the site by `ms` milliseconds, then proceeds.
    pub fn delay_ms(ms: u64) -> Rule {
        Rule::new(Action::Delay(ms))
    }

    /// A rule that panics at the site, simulating a crash exactly there.
    pub fn panic_now() -> Rule {
        Rule::new(Action::Panic)
    }

    /// Skips the first `n` eligible evaluations before firing.
    pub fn after(mut self, n: u64) -> Rule {
        self.after = n;
        self
    }

    /// Fires at most `n` times, then the rule goes inert.
    pub fn times(mut self, n: u64) -> Rule {
        self.times = Some(n);
        self
    }

    /// Fires with probability `p` per eligible evaluation, decided by a
    /// deterministic stream seeded with `seed`.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1]`.
    pub fn sampled(mut self, p: f64, seed: u64) -> Rule {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        self.probability = Some(p);
        self.seed = seed;
        self
    }
}

/// Per-site bookkeeping: the rule plus evaluation counters and the lazily
/// created sampling stream.
#[derive(Debug)]
struct SiteState {
    rule: Rule,
    evaluations: u64,
    fired: u64,
    rng: Option<SmallRng>,
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> MutexGuard<'static, HashMap<String, SiteState>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Whether failpoints are compiled in at all: `true` in debug builds,
/// `false` in release builds (where every site constant-folds to a no-op).
/// Chaos suites check this to skip fault-dependent assertions in release
/// rather than failing on faults that can never fire.
#[inline]
pub fn is_active_build() -> bool {
    cfg!(debug_assertions)
}

/// Configures (or replaces) the rule for `site`. Counters restart at zero.
/// No-op in release builds.
pub fn configure(site: &str, rule: Rule) {
    if !is_active_build() {
        return;
    }
    registry().insert(
        site.to_string(),
        SiteState {
            rule,
            evaluations: 0,
            fired: 0,
            rng: None,
        },
    );
    ARMED.store(true, Ordering::Release);
}

/// Removes the rule for `site`, if any.
pub fn clear(site: &str) {
    if !is_active_build() {
        return;
    }
    let mut sites = registry();
    sites.remove(site);
    if sites.is_empty() {
        ARMED.store(false, Ordering::Release);
    }
}

/// Removes every configured rule. Call between tests that share a process.
pub fn reset() {
    if !is_active_build() {
        return;
    }
    registry().clear();
    ARMED.store(false, Ordering::Release);
}

/// How many times `site` has fired since it was configured (`0` when the
/// site is not configured, and always `0` in release builds).
pub fn times_fired(site: &str) -> u64 {
    if !is_active_build() {
        return 0;
    }
    registry().get(site).map_or(0, |state| state.fired)
}

/// How many times `site` has been evaluated since it was configured (`0`
/// when not configured, and always `0` in release builds).
pub fn times_evaluated(site: &str) -> u64 {
    if !is_active_build() {
        return 0;
    }
    registry().get(site).map_or(0, |state| state.evaluations)
}

/// The failpoint itself: production code calls this at every named site.
///
/// Returns `None` when the site should proceed normally — always, in
/// release builds; otherwise whenever no rule is configured or the rule
/// does not fire on this evaluation. `Delay` rules sleep here and return
/// `None`; `Panic` rules panic here. `Error` and `Partial` are returned
/// as [`Fired`] for the site to act on.
#[inline]
pub fn fired(site: &str) -> Option<Fired> {
    if !is_active_build() {
        return None; // compile-time false: the whole body folds away
    }
    if !ARMED.load(Ordering::Acquire) {
        return None;
    }
    let action = {
        let mut sites = registry();
        let state = sites.get_mut(site)?;
        state.evaluations += 1;
        if state.evaluations <= state.rule.after {
            return None;
        }
        if let Some(times) = state.rule.times {
            if state.fired >= times {
                return None;
            }
        }
        if let Some(p) = state.rule.probability {
            let seed = state.rule.seed;
            let rng = state
                .rng
                .get_or_insert_with(|| SmallRng::seed_from_u64(seed));
            if !rng.gen_bool(p) {
                return None;
            }
        }
        state.fired += 1;
        state.rule.action
    }; // the lock drops before any side effect below
    match action {
        Action::Error => Some(Fired::Error),
        Action::Partial(percent) => Some(Fired::Partial(percent)),
        Action::Delay(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
        Action::Panic => panic!("failpoint {site}: injected panic"),
    }
}

/// The `std::io::Error` an injected fault surfaces as: always
/// `ErrorKind::Other` with a message naming the site, so a test can tell
/// an injected failure from a real one.
pub fn injected_io_error(site: &str, what: &str) -> std::io::Error {
    std::io::Error::other(format!("failpoint {site}: injected {what}"))
}

/// Declares a failpoint site. Expands to [`fired`]`(site)`; exists so call
/// sites read as annotations rather than function calls, and so release
/// builds visibly compile the macro to the no-op path.
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {
        $crate::fired($site)
    };
}

/// Parses and applies a failpoint script (see the [module docs](self) for
/// the grammar). `off` entries clear their site. Returns the number of
/// sites configured. In release builds the script is still *parsed* (so
/// typos fail loudly everywhere) but configures nothing.
pub fn script(spec: &str) -> Result<usize, String> {
    let mut configured = 0;
    for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
        let (site, rule_spec) = entry
            .split_once('=')
            .ok_or_else(|| format!("failpoint entry {entry:?} has no '='"))?;
        let site = site.trim();
        if site.is_empty() {
            return Err(format!("failpoint entry {entry:?} has an empty site"));
        }
        match parse_rule(rule_spec.trim())? {
            Some(rule) => {
                configure(site, rule);
                configured += 1;
            }
            None => clear(site),
        }
    }
    Ok(configured)
}

/// Applies the `EGRAPH_FAILPOINTS` environment variable as a script.
/// Returns the number of sites configured (`0` when the variable is
/// unset or empty).
///
/// # Errors
/// A malformed script is an error even in release builds — a chaos run
/// whose scripting silently parses to nothing would report false greens.
pub fn script_from_env() -> Result<usize, String> {
    match std::env::var("EGRAPH_FAILPOINTS") {
        Ok(spec) if !spec.trim().is_empty() => script(&spec),
        _ => Ok(0),
    }
}

/// Parses one rule; `Ok(None)` is the explicit `off` action.
fn parse_rule(spec: &str) -> Result<Option<Rule>, String> {
    let mut after = 0u64;
    let mut times = None;
    let mut probability = None;
    let mut seed = None;
    let clauses: Vec<&str> = spec.split(',').map(str::trim).collect();
    let (action_spec, modifiers) = clauses
        .split_last()
        .ok_or_else(|| format!("empty failpoint rule {spec:?}"))?;
    for clause in modifiers {
        let (key, value) = clause
            .split_once(':')
            .ok_or_else(|| format!("modifier {clause:?} has no ':'"))?;
        let value = value.trim();
        match key.trim() {
            "after" => after = parse_num(value, "after")?,
            "times" => times = Some(parse_num(value, "times")?),
            "p" => {
                let p: f64 = value
                    .parse()
                    .map_err(|_| format!("unparseable probability {value:?}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability {p} not in [0, 1]"));
                }
                probability = Some(p);
            }
            "seed" => seed = Some(parse_num(value, "seed")?),
            other => return Err(format!("unknown failpoint modifier {other:?}")),
        }
    }
    let action = match action_spec.split_once(':') {
        None => match *action_spec {
            "error" => Action::Error,
            "panic" => Action::Panic,
            "off" => {
                if !modifiers.is_empty() {
                    return Err("'off' takes no modifiers".into());
                }
                return Ok(None);
            }
            other => return Err(format!("unknown failpoint action {other:?}")),
        },
        Some((kind, arg)) => {
            let arg = arg.trim();
            match kind.trim() {
                "partial" => {
                    let percent: u8 = parse_num(arg, "partial")? as u8;
                    if percent > 99 {
                        return Err(format!("partial:{percent} must be <= 99"));
                    }
                    Action::Partial(percent)
                }
                "delay" => Action::Delay(parse_num(arg, "delay")?),
                other => return Err(format!("unknown failpoint action {other:?}")),
            }
        }
    };
    let mut rule = Rule::new(action);
    rule.after = after;
    rule.times = times;
    rule.probability = probability;
    if let Some(seed) = seed {
        rule.seed = seed;
    }
    Ok(Some(rule))
}

fn parse_num(value: &str, what: &str) -> Result<u64, String> {
    value
        .parse()
        .map_err(|_| format!("unparseable {what} value {value:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The registry is process-global; unit tests serialize on this gate
    /// and reset around themselves so they cannot contaminate each other.
    fn gate() -> MutexGuard<'static, ()> {
        static GATE: StdMutex<()> = StdMutex::new(());
        let guard = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        reset();
        guard
    }

    #[test]
    fn unconfigured_sites_never_fire() {
        let _gate = gate();
        assert_eq!(fired("nowhere"), None);
        assert_eq!(times_fired("nowhere"), 0);
    }

    #[test]
    fn counted_rules_fire_in_their_window_only() {
        let _gate = gate();
        if !is_active_build() {
            assert_eq!(fired("t.counted"), None);
            return;
        }
        configure("t.counted", Rule::error().after(1).times(2));
        assert_eq!(fired("t.counted"), None); // skipped by `after`
        assert_eq!(fired("t.counted"), Some(Fired::Error));
        assert_eq!(fired("t.counted"), Some(Fired::Error));
        assert_eq!(fired("t.counted"), None); // `times` exhausted
        assert_eq!(times_fired("t.counted"), 2);
        assert_eq!(times_evaluated("t.counted"), 4);
        reset();
    }

    #[test]
    fn sampled_rules_replay_identically_from_their_seed() {
        let _gate = gate();
        if !is_active_build() {
            return;
        }
        let run = || -> Vec<bool> {
            configure("t.sampled", Rule::error().sampled(0.5, 42));
            let outcomes = (0..32).map(|_| fired("t.sampled").is_some()).collect();
            clear("t.sampled");
            outcomes
        };
        let first = run();
        assert_eq!(first, run(), "same seed must replay the same schedule");
        assert!(first.iter().any(|&f| f) && first.iter().any(|&f| !f));
        reset();
    }

    #[test]
    fn partial_rules_carry_their_percentage() {
        let _gate = gate();
        if !is_active_build() {
            return;
        }
        configure("t.partial", Rule::partial(37));
        assert_eq!(fired("t.partial"), Some(Fired::Partial(37)));
        reset();
    }

    #[test]
    #[should_panic(expected = "failpoint t.panic: injected panic")]
    fn panic_rules_panic_at_the_site() {
        // Deliberately not gated: in release the panic cannot fire, so the
        // test would fail its expectation — gate on the build instead.
        if !is_active_build() {
            panic!("failpoint t.panic: injected panic"); // keep the contract trivially true
        }
        let _gate = gate();
        configure("t.panic", Rule::panic_now());
        let _ = fired("t.panic");
    }

    #[test]
    fn scripts_parse_configure_and_reject() {
        let _gate = gate();
        let n =
            script("a.b=times:1,error; c.d = after:2,partial:50 ;e.f=delay:5;g.h=panic").unwrap();
        if is_active_build() {
            assert_eq!(n, 4);
            assert_eq!(fired("a.b"), Some(Fired::Error));
            assert_eq!(fired("a.b"), None);
            script("a.b=off").unwrap();
            assert_eq!(times_evaluated("a.b"), 0);
        } else {
            assert_eq!(n, 4, "scripts parse (but configure nothing) in release");
        }
        for bad in [
            "no-equals",
            "=error",
            "x=",
            "x=maybe",
            "x=partial:100",
            "x=p:1.5,error",
            "x=after:x,error",
            "x=times:1,off",
            "x=wat:3,error",
        ] {
            assert!(script(bad).is_err(), "{bad:?} must be rejected");
        }
        reset();
    }

    #[test]
    fn clear_and_reset_disarm() {
        let _gate = gate();
        if !is_active_build() {
            return;
        }
        configure("t.x", Rule::error());
        configure("t.y", Rule::error());
        clear("t.x");
        assert_eq!(fired("t.x"), None);
        assert_eq!(fired("t.y"), Some(Fired::Error));
        reset();
        assert_eq!(fired("t.y"), None);
    }
}
