//! Benchmark report tables.
//!
//! The benchmark harness regenerates the paper's Figure 5 as a *series* —
//! edge count versus measured run time — rather than as a plot. This module
//! holds the small table type used to print such series consistently, both
//! as an aligned text table (for the terminal and EXPERIMENTS.md) and as CSV
//! (for plotting elsewhere).

use std::fmt::Write as _;

/// A rectangular table of measurement results.
#[derive(Clone, Debug, Default)]
pub struct SeriesTable {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl SeriesTable {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        SeriesTable {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Appends a row of already-formatted cells.
    ///
    /// # Panics
    /// Panics if the cell count does not match the number of columns.
    pub fn push_row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match the header"
        );
        self.rows.push(cells.to_vec());
    }

    /// Appends a row of numeric cells, formatted with sensible defaults
    /// (integers as-is, floats with four significant decimals).
    pub fn push_numeric_row(&mut self, cells: &[f64]) {
        let formatted: Vec<String> = cells
            .iter()
            .map(|&x| {
                if (x.fract()).abs() < f64::EPSILON && x.abs() < 1e15 {
                    format!("{}", x as i64)
                } else {
                    format!("{x:.4}")
                }
            })
            .collect();
        self.push_row(&formatted);
    }

    /// Renders an aligned, human-readable text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", rule.join("  "));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Renders the table as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Fits `y ≈ a·x + b` by least squares and returns `(a, b, r²)`. The Figure 5
/// reproduction uses this to check that run time is (close to) linear in the
/// number of static edges.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    let intercept = mean_y - slope * mean_x;
    let r2 = if sxx == 0.0 || syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    (slope, intercept, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_is_aligned_and_complete() {
        let mut t = SeriesTable::new("demo", &["edges", "time_ms"]);
        t.push_numeric_row(&[1000.0, 1.5]);
        t.push_numeric_row(&[2000.0, 3.25]);
        let text = t.to_text();
        assert!(text.contains("## demo"));
        assert!(text.contains("edges"));
        assert!(text.contains("1000"));
        assert!(text.contains("3.2500"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn csv_rendering_has_header_plus_rows() {
        let mut t = SeriesTable::new("", &["a", "b"]);
        t.push_row(&["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert_eq!(csv.lines().next().unwrap(), "a,b");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_are_rejected() {
        let mut t = SeriesTable::new("", &["a", "b"]);
        t.push_row(&["only one".into()]);
    }

    #[test]
    fn linear_fit_recovers_exact_lines() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0]; // y = 2x + 1
        let (a, b, r2) = linear_fit(&xs, &ys);
        assert!((a - 2.0).abs() < 1e-12);
        assert!((b - 1.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_reports_poor_r2_for_nonlinear_data() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, 16.0, 3.0, 44.0, 2.0];
        let (_, _, r2) = linear_fit(&xs, &ys);
        assert!(r2 < 0.9);
    }
}
