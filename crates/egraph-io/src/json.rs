//! JSON serialisation of graphs and search results.
//!
//! This module pins down a concrete interchange representation so downstream
//! tooling — notebooks, plotting scripts, the benchmark report generator,
//! and the `egraph-serve` HTTP wire format — can consume graphs and search
//! results without linking the Rust crates. The build environment has no
//! access to crates.io, so instead of serde the module carries a small
//! hand-rolled JSON writer and recursive-descent parser.
//!
//! The value model ([`Value`]) and parser are public: other crates build
//! their own document codecs on top of them (`egraph-query`'s descriptor and
//! result codecs, `egraph-serve`'s request/response framing). Input can be a
//! complete in-memory string ([`parse_value`], which requires the document
//! to span the whole input) or a byte stream ([`read_value`], which consumes
//! exactly one JSON value from a [`BufRead`] and leaves the stream
//! positioned after it — the shape a network protocol needs to read
//! consecutive frames off one connection).
//!
//! The parser accepts the full JSON string grammar (`\uXXXX` escapes with
//! surrogate pairs, all short escapes) and rejects what the grammar rejects
//! (unescaped control characters, lone surrogates, truncated documents). A
//! nesting-depth bound ([`MAX_DEPTH`]) turns adversarially deep documents
//! into a clean [`JsonError`] instead of a stack overflow — a serving layer
//! parses untrusted bytes.
//!
//! Two ready-made document shapes are defined here:
//!
//! * a graph document: `{"num_nodes", "directed", "timestamps", "edges"}`
//!   with edges as `[src, dst, time_index]` triples;
//! * a BFS-result document ([`BfsResultDocument`]): root coordinates, graph
//!   dimensions and the reached `(node, time, distance)` triples.

use egraph_core::adjacency::AdjacencyListGraph;
use egraph_core::distance::DistanceMap;
use egraph_core::graph::EvolvingGraph;
use egraph_core::ids::{NodeId, TemporalNode, TimeIndex, Timestamp};

use core::fmt;
use std::io::BufRead;

/// Deepest object/array nesting [`parse_value`] / [`read_value`] accept.
/// Beyond it the parser reports a syntax error instead of recursing toward
/// a stack overflow.
pub const MAX_DEPTH: usize = 128;

/// Errors produced while encoding or decoding JSON documents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonError {
    /// The input is not syntactically valid JSON (message, byte offset).
    Syntax(String, usize),
    /// The JSON is valid but does not have the expected document shape.
    Shape(String),
    /// The document decodes to an invalid graph (e.g. unsorted timestamps).
    Graph(String),
    /// The underlying stream failed while reading (message, byte offset).
    Io(String, usize),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Syntax(msg, at) => write!(f, "JSON syntax error at byte {at}: {msg}"),
            JsonError::Shape(msg) => write!(f, "unexpected JSON document shape: {msg}"),
            JsonError::Graph(msg) => write!(f, "decoded graph is invalid: {msg}"),
            JsonError::Io(msg, at) => write!(f, "I/O error at byte {at} of JSON input: {msg}"),
        }
    }
}

impl std::error::Error for JsonError {}

/// Result alias for JSON round-trip helpers.
pub type Result<T> = std::result::Result<T, JsonError>;

/// A self-describing JSON document for one BFS run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsResultDocument {
    /// Root node identifier.
    pub root_node: u32,
    /// Root snapshot index.
    pub root_time: u32,
    /// Number of nodes in the traversed graph's universe.
    pub num_nodes: usize,
    /// Number of snapshots in the traversed graph.
    pub num_timestamps: usize,
    /// Reached temporal nodes as `(node, time, distance)` triples.
    pub reached: Vec<(u32, u32, u32)>,
}

impl BfsResultDocument {
    /// Builds a document from a [`DistanceMap`].
    pub fn from_distance_map(map: &DistanceMap) -> Self {
        BfsResultDocument {
            root_node: map.root().node.0,
            root_time: map.root().time.0,
            num_nodes: map.num_nodes(),
            num_timestamps: map.num_timestamps(),
            reached: map
                .reached()
                .into_iter()
                .map(|(tn, d)| (tn.node.0, tn.time.0, d))
                .collect(),
        }
    }

    /// Reconstructs a [`DistanceMap`] from the document.
    pub fn to_distance_map(&self) -> DistanceMap {
        let root = TemporalNode::from_raw(self.root_node, self.root_time);
        let reached: Vec<(TemporalNode, u32)> = self
            .reached
            .iter()
            .map(|&(v, t, d)| (TemporalNode::from_raw(v, t), d))
            .collect();
        DistanceMap::from_reached(self.num_nodes, self.num_timestamps, root, &reached)
    }

    /// Encodes the document as a JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"root_node\":");
        out.push_str(&self.root_node.to_string());
        out.push_str(",\"root_time\":");
        out.push_str(&self.root_time.to_string());
        out.push_str(",\"num_nodes\":");
        out.push_str(&self.num_nodes.to_string());
        out.push_str(",\"num_timestamps\":");
        out.push_str(&self.num_timestamps.to_string());
        out.push_str(",\"reached\":[");
        for (i, &(v, t, d)) in self.reached.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{v},{t},{d}]"));
        }
        out.push_str("]}");
        out
    }

    /// Decodes a document from a JSON string.
    pub fn from_json(json: &str) -> Result<Self> {
        let value = parse_value(json)?;
        let obj = value.as_object("BFS-result document")?;
        let reached = obj
            .get("reached")?
            .as_array("reached")?
            .iter()
            .map(|triple| {
                let triple = triple.as_array("reached entry")?;
                if triple.len() != 3 {
                    return Err(JsonError::Shape(
                        "reached entries must be [node, time, distance] triples".into(),
                    ));
                }
                Ok((
                    triple[0].as_u32("reached node")?,
                    triple[1].as_u32("reached time")?,
                    triple[2].as_u32("reached distance")?,
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(BfsResultDocument {
            root_node: obj.get("root_node")?.as_u32("root_node")?,
            root_time: obj.get("root_time")?.as_u32("root_time")?,
            num_nodes: obj.get("num_nodes")?.as_usize("num_nodes")?,
            num_timestamps: obj.get("num_timestamps")?.as_usize("num_timestamps")?,
            reached,
        })
    }
}

/// Serialises a graph to a JSON string.
pub fn graph_to_json(graph: &AdjacencyListGraph) -> Result<String> {
    let mut out = String::new();
    out.push_str("{\"num_nodes\":");
    out.push_str(&graph.num_nodes().to_string());
    out.push_str(",\"directed\":");
    out.push_str(if graph.is_directed() { "true" } else { "false" });
    out.push_str(",\"timestamps\":[");
    for (i, label) in graph.timestamps().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&label.to_string());
    }
    out.push_str("],\"edges\":[");
    for (i, (u, v, t)) in graph.edge_triples().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{},{},{}]", u.0, v.0, t.0));
    }
    out.push_str("]}");
    Ok(out)
}

/// Deserialises a graph from a JSON string.
pub fn graph_from_json(json: &str) -> Result<AdjacencyListGraph> {
    let value = parse_value(json)?;
    let obj = value.as_object("graph document")?;
    let num_nodes = obj.get("num_nodes")?.as_usize("num_nodes")?;
    let directed = obj.get("directed")?.as_bool("directed")?;
    let timestamps: Vec<Timestamp> = obj
        .get("timestamps")?
        .as_array("timestamps")?
        .iter()
        .map(|v| v.as_i64("timestamp label"))
        .collect::<Result<_>>()?;
    let mut graph = AdjacencyListGraph::new(num_nodes, timestamps, directed)
        .map_err(|e| JsonError::Graph(e.to_string()))?;
    for triple in obj.get("edges")?.as_array("edges")? {
        let triple = triple.as_array("edge entry")?;
        if triple.len() != 3 {
            return Err(JsonError::Shape(
                "edges must be [src, dst, time_index] triples".into(),
            ));
        }
        graph
            .add_edge(
                NodeId(triple[0].as_u32("edge src")?),
                NodeId(triple[1].as_u32("edge dst")?),
                TimeIndex(triple[2].as_u32("edge time")?),
            )
            .map_err(|e| JsonError::Graph(e.to_string()))?;
    }
    Ok(graph)
}

/// Serialises a BFS result to a JSON string.
pub fn bfs_result_to_json(map: &DistanceMap) -> Result<String> {
    Ok(BfsResultDocument::from_distance_map(map).to_json())
}

/// Deserialises a BFS result from a JSON string.
pub fn bfs_result_from_json(json: &str) -> Result<DistanceMap> {
    Ok(BfsResultDocument::from_json(json)?.to_distance_map())
}

// ---------------------------------------------------------------------------
// The JSON value model.
// ---------------------------------------------------------------------------

/// A parsed JSON value.
///
/// Integer tokens (no fraction or exponent) are kept exact in [`Value::Int`]:
/// `i64` covers every timestamp label, so labels never round through `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// The `null` literal.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exact integer token.
    Int(i64),
    /// A number with a fraction or exponent part.
    Number(f64),
    /// A string (escapes already decoded).
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object as ordered key/value entries (duplicates kept; lookups
    /// return the first).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Views this value as an object, or reports what `what` must be.
    pub fn as_object(&self, what: &str) -> Result<Object<'_>> {
        match self {
            Value::Object(entries) => Ok(Object { entries }),
            _ => Err(JsonError::Shape(format!("{what} must be a JSON object"))),
        }
    }

    /// Views this value as an array, or reports what `what` must be.
    pub fn as_array(&self, what: &str) -> Result<&[Value]> {
        match self {
            Value::Array(items) => Ok(items),
            _ => Err(JsonError::Shape(format!("{what} must be a JSON array"))),
        }
    }

    /// Reads this value as an exact integer, or reports what `what` must be.
    pub fn as_i64(&self, what: &str) -> Result<i64> {
        match self {
            Value::Int(x) => Ok(*x),
            _ => Err(JsonError::Shape(format!("{what} must be an integer"))),
        }
    }

    /// Reads this value as a `u32`, or reports what `what` must be.
    pub fn as_u32(&self, what: &str) -> Result<u32> {
        let x = self.as_i64(what)?;
        u32::try_from(x).map_err(|_| JsonError::Shape(format!("{what} must fit in u32")))
    }

    /// Reads this value as a `usize`, or reports what `what` must be.
    pub fn as_usize(&self, what: &str) -> Result<usize> {
        let x = self.as_i64(what)?;
        usize::try_from(x).map_err(|_| JsonError::Shape(format!("{what} must be non-negative")))
    }

    /// Reads this value as a number (integer tokens included), or reports
    /// what `what` must be.
    pub fn as_f64(&self, what: &str) -> Result<f64> {
        match self {
            Value::Int(x) => Ok(*x as f64),
            Value::Number(x) => Ok(*x),
            _ => Err(JsonError::Shape(format!("{what} must be a number"))),
        }
    }

    /// Reads this value as a boolean, or reports what `what` must be.
    pub fn as_bool(&self, what: &str) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            _ => Err(JsonError::Shape(format!("{what} must be a boolean"))),
        }
    }

    /// Reads this value as a string, or reports what `what` must be.
    pub fn as_str(&self, what: &str) -> Result<&str> {
        match self {
            Value::String(s) => Ok(s),
            _ => Err(JsonError::Shape(format!("{what} must be a string"))),
        }
    }

    /// Whether this value is the `null` literal.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Serialises this value back to JSON text (strings escaped per the
    /// grammar; [`Value::Number`] uses Rust's shortest round-trip `f64`
    /// formatting, with non-finite values written as `null` since JSON has
    /// no representation for them).
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(x) => out.push_str(&x.to_string()),
            Value::Number(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_json_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, key);
                    out.push(':');
                    value.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// [`Value::write_json`] into a fresh string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

/// Borrowed view over an object's key/value entries.
pub struct Object<'a> {
    entries: &'a [(String, Value)],
}

impl<'a> Object<'a> {
    /// The value of field `key`, or a shape error naming the missing field.
    pub fn get(&self, key: &str) -> Result<&'a Value> {
        self.get_opt(key)
            .ok_or_else(|| JsonError::Shape(format!("missing field \"{key}\"")))
    }

    /// The value of field `key`, if present. A field explicitly set to
    /// `null` is treated as absent, so optional wire fields can be omitted
    /// or nulled interchangeably.
    pub fn get_opt(&self, key: &str) -> Option<&'a Value> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .filter(|v| !v.is_null())
    }
}

/// Appends `s` to `out` as a quoted JSON string, escaping `"`, `\\` and
/// every control character (`\n`, `\r`, `\t`, `\b`, `\f` short forms,
/// `\u00XX` otherwise). Multi-byte UTF-8 passes through verbatim.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document from `input`. The document must span the
/// whole input (trailing non-whitespace is an error); use [`read_value`] to
/// consume one value from a longer stream.
pub fn parse_value(input: &str) -> Result<Value> {
    let mut parser = Parser {
        src: SliceSource {
            bytes: input.as_bytes(),
            pos: 0,
        },
        depth: 0,
    };
    parser.skip_whitespace()?;
    let value = parser.value()?;
    parser.skip_whitespace()?;
    if parser.src.peek()?.is_some() {
        return Err(JsonError::Syntax(
            "trailing characters after document".into(),
            parser.src.pos(),
        ));
    }
    Ok(value)
}

/// Reads exactly one JSON value from `reader`, leaving the stream positioned
/// at the first byte after it (trailing bytes are *not* an error — the next
/// frame of a protocol can follow immediately). Leading whitespace is
/// skipped; whitespace after the value is left unread.
///
/// # Errors
/// [`JsonError::Syntax`] for invalid or truncated documents and
/// [`JsonError::Io`] if the underlying reader fails mid-value.
pub fn read_value<R: BufRead>(reader: &mut R) -> Result<Value> {
    let mut parser = Parser {
        src: ReaderSource {
            reader,
            peeked: None,
            eof: false,
            pos: 0,
        },
        depth: 0,
    };
    parser.skip_whitespace()?;
    parser.value()
}

// ---------------------------------------------------------------------------
// Recursive-descent parser over pluggable byte sources.
// ---------------------------------------------------------------------------

/// One byte of lookahead over either a slice or a stream. `peek` is the only
/// operation that can fail (stream I/O); `advance` consumes the peeked byte.
trait ByteSource {
    fn peek(&mut self) -> Result<Option<u8>>;
    fn advance(&mut self);
    fn pos(&self) -> usize;
}

struct SliceSource<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl ByteSource for SliceSource<'_> {
    fn peek(&mut self) -> Result<Option<u8>> {
        Ok(self.bytes.get(self.pos).copied())
    }
    fn advance(&mut self) {
        self.pos += 1;
    }
    fn pos(&self) -> usize {
        self.pos
    }
}

struct ReaderSource<'a, R: BufRead> {
    reader: &'a mut R,
    peeked: Option<u8>,
    eof: bool,
    pos: usize,
}

impl<R: BufRead> ByteSource for ReaderSource<'_, R> {
    fn peek(&mut self) -> Result<Option<u8>> {
        if self.peeked.is_none() && !self.eof {
            let mut byte = [0u8; 1];
            loop {
                match self.reader.read(&mut byte) {
                    Ok(0) => {
                        self.eof = true;
                        break;
                    }
                    Ok(_) => {
                        self.peeked = Some(byte[0]);
                        break;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(JsonError::Io(e.to_string(), self.pos)),
                }
            }
        }
        Ok(self.peeked)
    }
    fn advance(&mut self) {
        if self.peeked.take().is_some() {
            self.pos += 1;
        }
    }
    fn pos(&self) -> usize {
        self.pos
    }
}

struct Parser<S: ByteSource> {
    src: S,
    depth: usize,
}

impl<S: ByteSource> Parser<S> {
    fn error<T>(&self, msg: &str) -> Result<T> {
        Err(JsonError::Syntax(msg.into(), self.src.pos()))
    }

    fn skip_whitespace(&mut self) -> Result<()> {
        while matches!(self.src.peek()?, Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.src.advance();
        }
        Ok(())
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.src.peek()? == Some(byte) {
            self.src.advance();
            Ok(())
        } else {
            self.error(&format!("expected '{}'", byte as char))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.src.peek()? {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.error("expected a JSON value"),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value> {
        for &expected in text.as_bytes() {
            if self.src.peek()? != Some(expected) {
                return self.error(&format!("expected '{text}'"));
            }
            self.src.advance();
        }
        Ok(value)
    }

    /// Bounds object/array recursion: deeper than [`MAX_DEPTH`] is a syntax
    /// error, not a stack overflow.
    fn descend(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return self.error(&format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Value> {
        self.descend()?;
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace()?;
        if self.src.peek()? == Some(b'}') {
            self.src.advance();
            self.depth -= 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace()?;
            let key = self.string()?;
            self.skip_whitespace()?;
            self.expect(b':')?;
            self.skip_whitespace()?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_whitespace()?;
            match self.src.peek()? {
                Some(b',') => self.src.advance(),
                Some(b'}') => {
                    self.src.advance();
                    self.depth -= 1;
                    return Ok(Value::Object(entries));
                }
                _ => return self.error("expected ',' or '}' in object"),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.descend()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace()?;
        if self.src.peek()? == Some(b']') {
            self.src.advance();
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace()?;
            items.push(self.value()?);
            self.skip_whitespace()?;
            match self.src.peek()? {
                Some(b',') => self.src.advance(),
                Some(b']') => {
                    self.src.advance();
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.error("expected ',' or ']' in array"),
            }
        }
    }

    /// One `\uXXXX` code unit (the caller consumed `\u`).
    fn hex_code_unit(&mut self) -> Result<u16> {
        let mut unit: u16 = 0;
        for _ in 0..4 {
            let digit = match self.src.peek()? {
                Some(c @ b'0'..=b'9') => c - b'0',
                Some(c @ b'a'..=b'f') => c - b'a' + 10,
                Some(c @ b'A'..=b'F') => c - b'A' + 10,
                _ => return self.error("expected 4 hex digits after \\u"),
            };
            self.src.advance();
            unit = unit << 4 | digit as u16;
        }
        Ok(unit)
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        // Accumulate raw bytes: escapes contribute UTF-8-encoded scalars,
        // everything else is copied verbatim, so multi-byte UTF-8 sequences
        // survive intact (continuation bytes never collide with '"' or '\\').
        let mut out: Vec<u8> = Vec::new();
        loop {
            match self.src.peek()? {
                None => return self.error("unterminated string"),
                Some(b'"') => {
                    self.src.advance();
                    return String::from_utf8(out).map_err(|_| {
                        JsonError::Syntax("invalid UTF-8 in string".into(), self.src.pos())
                    });
                }
                Some(b'\\') => {
                    self.src.advance();
                    match self.src.peek()? {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0C),
                        Some(b'u') => {
                            self.src.advance();
                            let scalar = self.unicode_escape()?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(scalar.encode_utf8(&mut buf).as_bytes());
                            // The escape routines consumed their own bytes.
                            continue;
                        }
                        _ => return self.error("unsupported escape sequence"),
                    }
                    self.src.advance();
                }
                // The grammar forbids unescaped control characters inside
                // strings; truncated or binary-garbage input must not slip
                // through as "valid".
                Some(c) if c < 0x20 => return self.error("unescaped control character in string"),
                Some(c) => {
                    out.push(c);
                    self.src.advance();
                }
            }
        }
    }

    /// Decodes `XXXX[\uXXXX]` after a consumed `\u` into a scalar value,
    /// pairing surrogates per the grammar and rejecting lone ones.
    fn unicode_escape(&mut self) -> Result<char> {
        let unit = self.hex_code_unit()?;
        match unit {
            0xD800..=0xDBFF => {
                // High surrogate: a low surrogate escape must follow.
                if self.src.peek()? != Some(b'\\') {
                    return self.error("lone high surrogate in \\u escape");
                }
                self.src.advance();
                if self.src.peek()? != Some(b'u') {
                    return self.error("lone high surrogate in \\u escape");
                }
                self.src.advance();
                let low = self.hex_code_unit()?;
                if !(0xDC00..=0xDFFF).contains(&low) {
                    return self.error("invalid low surrogate in \\u escape");
                }
                let scalar = 0x10000 + ((unit as u32 - 0xD800) << 10) + (low as u32 - 0xDC00);
                char::from_u32(scalar)
                    .ok_or_else(|| JsonError::Syntax("invalid surrogate pair".into(), 0))
            }
            0xDC00..=0xDFFF => self.error("lone low surrogate in \\u escape"),
            _ => char::from_u32(unit as u32)
                .ok_or_else(|| JsonError::Syntax("invalid \\u escape".into(), 0)),
        }
    }

    fn number(&mut self) -> Result<Value> {
        let mut text = String::new();
        if self.src.peek()? == Some(b'-') {
            text.push('-');
            self.src.advance();
        }
        while let Some(c) = self.src.peek()? {
            if !c.is_ascii_digit() {
                break;
            }
            text.push(c as char);
            self.src.advance();
        }
        let mut integral = true;
        if self.src.peek()? == Some(b'.') {
            integral = false;
            text.push('.');
            self.src.advance();
            while let Some(c) = self.src.peek()? {
                if !c.is_ascii_digit() {
                    break;
                }
                text.push(c as char);
                self.src.advance();
            }
        }
        if matches!(self.src.peek()?, Some(b'e' | b'E')) {
            integral = false;
            text.push('e');
            self.src.advance();
            if let Some(c @ (b'+' | b'-')) = self.src.peek()? {
                text.push(c as char);
                self.src.advance();
            }
            while let Some(c) = self.src.peek()? {
                if !c.is_ascii_digit() {
                    break;
                }
                text.push(c as char);
                self.src.advance();
            }
        }
        if integral {
            // Exact integer path: i64 covers every timestamp label without
            // rounding through f64.
            return match text.parse::<i64>() {
                Ok(x) => Ok(Value::Int(x)),
                Err(_) => self.error("integer out of i64 range"),
            };
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(Value::Number(x)),
            Err(_) => self.error("malformed number"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::bfs::bfs;
    use egraph_core::examples::paper_figure1;
    use egraph_core::graph::EvolvingGraph;

    #[test]
    fn graph_round_trips_through_json() {
        let g = paper_figure1();
        let json = graph_to_json(&g).unwrap();
        let back = graph_from_json(&json).unwrap();
        assert_eq!(back.num_nodes(), 3);
        assert_eq!(back.num_static_edges(), 3);
        assert_eq!(back.edge_triples(), g.edge_triples());
        assert_eq!(back.timestamps(), g.timestamps());
    }

    #[test]
    fn bfs_result_round_trips_through_json() {
        let g = paper_figure1();
        let map = bfs(&g, TemporalNode::from_raw(0, 0)).unwrap();
        let json = bfs_result_to_json(&map).unwrap();
        let back = bfs_result_from_json(&json).unwrap();
        assert_eq!(back.as_flat_slice(), map.as_flat_slice());
        assert_eq!(back.root(), map.root());
        assert_eq!(back.num_reached(), map.num_reached());
    }

    #[test]
    fn document_structure_is_stable() {
        let g = paper_figure1();
        let map = bfs(&g, TemporalNode::from_raw(0, 1)).unwrap();
        let doc = BfsResultDocument::from_distance_map(&map);
        assert_eq!(doc.root_node, 0);
        assert_eq!(doc.root_time, 1);
        assert_eq!(doc.reached.len(), 3);
        let json = doc.to_json();
        assert!(json.contains("\"root_node\":0"));
        let parsed = BfsResultDocument::from_json(&json).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(graph_from_json("{not json").is_err());
        assert!(bfs_result_from_json("[]").is_err());
        assert!(graph_from_json("{}").is_err());
        assert!(graph_from_json("{\"num_nodes\": 2} trailing").is_err());
    }

    #[test]
    fn negative_timestamps_survive_the_round_trip() {
        // Reversed views negate labels; the format must cope with that.
        let mut g = AdjacencyListGraph::new(2, vec![-5, -2, 7], true).unwrap();
        g.add_edge(NodeId(0), NodeId(1), TimeIndex(1)).unwrap();
        let back = graph_from_json(&graph_to_json(&g).unwrap()).unwrap();
        assert_eq!(back.timestamps(), vec![-5, -2, 7]);
        assert_eq!(back.edge_triples(), g.edge_triples());
    }

    #[test]
    fn large_timestamp_labels_round_trip_exactly() {
        // Labels above 2^53 would corrupt silently if routed through f64.
        let big = (1i64 << 53) + 1;
        let mut g = AdjacencyListGraph::new(2, vec![-big, 0, big], true).unwrap();
        g.add_edge(NodeId(0), NodeId(1), TimeIndex(2)).unwrap();
        let back = graph_from_json(&graph_to_json(&g).unwrap()).unwrap();
        assert_eq!(back.timestamps(), vec![-big, 0, big]);
    }

    #[test]
    fn extreme_i64_labels_round_trip_exactly() {
        // The full label domain: i64::MIN is also the one integer whose
        // absolute value does not fit in i64, a classic parser edge case.
        let mut g = AdjacencyListGraph::new(2, vec![i64::MIN, 0, i64::MAX], true).unwrap();
        g.add_edge(NodeId(0), NodeId(1), TimeIndex(0)).unwrap();
        let back = graph_from_json(&graph_to_json(&g).unwrap()).unwrap();
        assert_eq!(back.timestamps(), vec![i64::MIN, 0, i64::MAX]);
        // One past either end of the domain must fail cleanly.
        assert!(parse_value("9223372036854775808").is_err());
        assert!(parse_value("-9223372036854775809").is_err());
        assert_eq!(
            parse_value("-9223372036854775808").unwrap(),
            Value::Int(i64::MIN)
        );
    }

    #[test]
    fn non_ascii_strings_survive_parsing() {
        let value = parse_value("{\"clé\": \"é → ✓\"}").unwrap();
        let obj = value.as_object("test").unwrap();
        assert_eq!(obj.get("clé").unwrap(), &Value::String("é → ✓".to_string()));
    }

    #[test]
    fn parser_handles_whitespace_and_strings() {
        let value = parse_value(" { \"a\" : [ 1 , 2.5 , true , null , \"x\\ny\" ] } ").unwrap();
        let obj = value.as_object("test").unwrap();
        let arr = obj.get("a").unwrap().as_array("a").unwrap();
        assert_eq!(arr.len(), 5);
        assert_eq!(arr[0].as_i64("n").unwrap(), 1);
        assert!(arr[1].as_i64("n").is_err());
        assert!(arr[2].as_bool("b").unwrap());
        assert_eq!(arr[4], Value::String("x\ny".to_string()));
    }

    #[test]
    fn all_escape_sequences_decode_and_re_encode() {
        let value = parse_value(r#""q\" b\\ s\/ n\n t\t r\r bb\b ff\f""#).unwrap();
        assert_eq!(
            value,
            Value::String("q\" b\\ s/ n\n t\t r\r bb\u{8} ff\u{c}".into())
        );
        // Writer round-trip: re-encoding and re-parsing is the identity.
        let reparsed = parse_value(&value.to_json()).unwrap();
        assert_eq!(reparsed, value);
    }

    #[test]
    fn unicode_escapes_decode_including_surrogate_pairs() {
        assert_eq!(
            parse_value(r#""Aé世""#).unwrap(),
            Value::String("Aé世".into())
        );
        // 𝄞 (U+1D11E) as a surrogate pair.
        assert_eq!(
            parse_value(r#""𝄞""#).unwrap(),
            Value::String("\u{1D11E}".into())
        );
        // Lone and malformed surrogates are rejected, not mangled.
        assert!(parse_value(r#""\ud834""#).is_err());
        assert!(parse_value(r#""\ud834x""#).is_err());
        assert!(parse_value(r#""\ud834A""#).is_err());
        assert!(parse_value(r#""\udd1e""#).is_err());
        assert!(parse_value(r#""\u12g4""#).is_err());
    }

    #[test]
    fn unescaped_control_characters_are_rejected() {
        assert!(parse_value("\"a\u{0}b\"").is_err());
        assert!(parse_value("\"a\nb\"").is_err());
        assert!(parse_value("\"a\u{1f}b\"").is_err());
        // ...while their escaped forms are fine.
        assert!(parse_value(r#""a\tb""#).is_ok());
    }

    #[test]
    fn control_characters_are_escaped_on_write() {
        let value = Value::String("a\u{1}\u{8}\u{c}\n\"\\z".into());
        let json = value.to_json();
        assert_eq!(json, r#""a\u0001\b\f\n\"\\z""#);
        assert_eq!(parse_value(&json).unwrap(), value);
    }

    #[test]
    fn deep_nesting_errors_cleanly_instead_of_overflowing() {
        // Within the bound: parses.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse_value(&ok).is_ok());
        // One past the bound (and absurdly past it): clean Err, no overflow.
        for depth in [MAX_DEPTH + 1, 100_000] {
            let deep = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
            let err = parse_value(&deep).unwrap_err();
            assert!(matches!(err, JsonError::Syntax(ref m, _) if m.contains("nesting")));
            let deep_obj = "{\"k\":".repeat(depth) + "1" + &"}".repeat(depth);
            assert!(parse_value(&deep_obj).is_err());
        }
    }

    #[test]
    fn truncated_documents_error_cleanly() {
        let full = r#"{"a":[1,2,{"b":"cA"}],"d":true}"#;
        // Every strict prefix is an error (never a panic, never an Ok).
        for cut in 1..full.len() {
            assert!(
                parse_value(&full[..cut]).is_err(),
                "prefix {cut} must not parse: {:?}",
                &full[..cut]
            );
        }
        assert!(parse_value(full).is_ok());
        assert!(parse_value("").is_err());
        assert!(parse_value("   ").is_err());
        assert!(parse_value("tru").is_err());
        assert!(parse_value("-").is_err());
        assert!(parse_value("\"abc").is_err());
        assert!(parse_value("\"abc\\").is_err());
    }

    #[test]
    fn read_value_consumes_exactly_one_value_from_a_stream() {
        use std::io::Read;
        let mut stream = std::io::BufReader::new(" {\"a\": 1}[2,3] rest".as_bytes());
        let first = read_value(&mut stream).unwrap();
        assert_eq!(first, Value::Object(vec![("a".into(), Value::Int(1))]));
        let second = read_value(&mut stream).unwrap();
        assert_eq!(second, Value::Array(vec![Value::Int(2), Value::Int(3)]));
        // The stream is positioned right after the second value.
        let mut rest = String::new();
        stream.read_to_string(&mut rest).unwrap();
        assert_eq!(rest, " rest");
    }

    #[test]
    fn read_value_reports_truncated_streams() {
        let mut stream = std::io::BufReader::new("{\"a\": [1, 2".as_bytes());
        assert!(read_value(&mut stream).is_err());
        let mut empty = std::io::BufReader::new("".as_bytes());
        assert!(read_value(&mut empty).is_err());
    }

    #[test]
    fn null_fields_read_as_absent() {
        let value = parse_value("{\"a\": null, \"b\": 1}").unwrap();
        let obj = value.as_object("test").unwrap();
        assert!(obj.get_opt("a").is_none());
        assert!(obj.get("a").is_err());
        assert_eq!(obj.get_opt("b").unwrap().as_i64("b").unwrap(), 1);
        assert!(obj.get_opt("missing").is_none());
    }

    #[test]
    fn write_json_round_trips_every_value_shape() {
        let value = Value::Object(vec![
            ("int".into(), Value::Int(-42)),
            ("big".into(), Value::Int(i64::MAX)),
            ("num".into(), Value::Number(2.5)),
            ("s".into(), Value::String("a\"b\\c\u{7}é".into())),
            ("t".into(), Value::Bool(true)),
            ("n".into(), Value::Null),
            (
                "arr".into(),
                Value::Array(vec![Value::Int(1), Value::Array(vec![])]),
            ),
            ("obj".into(), Value::Object(vec![])),
        ]);
        assert_eq!(parse_value(&value.to_json()).unwrap(), value);
    }
}
