//! JSON serialisation of graphs and search results.
//!
//! The core types derive `serde` traits behind the `serde` feature; this
//! module pins down a concrete interchange representation (serde_json) and
//! provides round-trip helpers so downstream tooling — notebooks, plotting
//! scripts, the benchmark report generator — can consume search results
//! without linking the Rust crates.

use egraph_core::adjacency::AdjacencyListGraph;
use egraph_core::distance::DistanceMap;
use egraph_core::ids::TemporalNode;
use serde::{Deserialize, Serialize};

/// A self-describing JSON document for one BFS run.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct BfsResultDocument {
    /// Root node identifier.
    pub root_node: u32,
    /// Root snapshot index.
    pub root_time: u32,
    /// Number of nodes in the traversed graph's universe.
    pub num_nodes: usize,
    /// Number of snapshots in the traversed graph.
    pub num_timestamps: usize,
    /// Reached temporal nodes as `(node, time, distance)` triples.
    pub reached: Vec<(u32, u32, u32)>,
}

impl BfsResultDocument {
    /// Builds a document from a [`DistanceMap`].
    pub fn from_distance_map(map: &DistanceMap) -> Self {
        BfsResultDocument {
            root_node: map.root().node.0,
            root_time: map.root().time.0,
            num_nodes: map.num_nodes(),
            num_timestamps: map.num_timestamps(),
            reached: map
                .reached()
                .into_iter()
                .map(|(tn, d)| (tn.node.0, tn.time.0, d))
                .collect(),
        }
    }

    /// Reconstructs a [`DistanceMap`] from the document.
    pub fn to_distance_map(&self) -> DistanceMap {
        let root = TemporalNode::from_raw(self.root_node, self.root_time);
        let reached: Vec<(TemporalNode, u32)> = self
            .reached
            .iter()
            .map(|&(v, t, d)| (TemporalNode::from_raw(v, t), d))
            .collect();
        DistanceMap::from_reached(self.num_nodes, self.num_timestamps, root, &reached)
    }
}

/// Serialises a graph to a JSON string.
pub fn graph_to_json(graph: &AdjacencyListGraph) -> serde_json::Result<String> {
    serde_json::to_string(graph)
}

/// Deserialises a graph from a JSON string.
pub fn graph_from_json(json: &str) -> serde_json::Result<AdjacencyListGraph> {
    serde_json::from_str(json)
}

/// Serialises a BFS result to a JSON string.
pub fn bfs_result_to_json(map: &DistanceMap) -> serde_json::Result<String> {
    serde_json::to_string(&BfsResultDocument::from_distance_map(map))
}

/// Deserialises a BFS result from a JSON string.
pub fn bfs_result_from_json(json: &str) -> serde_json::Result<DistanceMap> {
    let doc: BfsResultDocument = serde_json::from_str(json)?;
    Ok(doc.to_distance_map())
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::bfs::bfs;
    use egraph_core::examples::paper_figure1;
    use egraph_core::graph::EvolvingGraph;

    #[test]
    fn graph_round_trips_through_json() {
        let g = paper_figure1();
        let json = graph_to_json(&g).unwrap();
        let back = graph_from_json(&json).unwrap();
        assert_eq!(back.num_nodes(), 3);
        assert_eq!(back.num_static_edges(), 3);
        assert_eq!(back.edge_triples(), g.edge_triples());
    }

    #[test]
    fn bfs_result_round_trips_through_json() {
        let g = paper_figure1();
        let map = bfs(&g, TemporalNode::from_raw(0, 0)).unwrap();
        let json = bfs_result_to_json(&map).unwrap();
        let back = bfs_result_from_json(&json).unwrap();
        assert_eq!(back.as_flat_slice(), map.as_flat_slice());
        assert_eq!(back.root(), map.root());
        assert_eq!(back.num_reached(), map.num_reached());
    }

    #[test]
    fn document_structure_is_stable() {
        let g = paper_figure1();
        let map = bfs(&g, TemporalNode::from_raw(0, 1)).unwrap();
        let doc = BfsResultDocument::from_distance_map(&map);
        assert_eq!(doc.root_node, 0);
        assert_eq!(doc.root_time, 1);
        assert_eq!(doc.reached.len(), 3);
        let json = serde_json::to_string(&doc).unwrap();
        assert!(json.contains("\"root_node\":0"));
        let parsed: BfsResultDocument = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(graph_from_json("{not json").is_err());
        assert!(bfs_result_from_json("[]").is_err());
    }
}
