//! JSON serialisation of graphs and search results.
//!
//! This module pins down a concrete interchange representation so downstream
//! tooling — notebooks, plotting scripts, the benchmark report generator —
//! can consume graphs and search results without linking the Rust crates.
//! The build environment has no access to crates.io, so instead of serde the
//! module carries a small hand-rolled JSON writer and recursive-descent
//! parser covering exactly the documents it emits (objects, arrays, integers,
//! booleans and plain strings).
//!
//! Two document shapes are defined:
//!
//! * a graph document: `{"num_nodes", "directed", "timestamps", "edges"}`
//!   with edges as `[src, dst, time_index]` triples;
//! * a BFS-result document ([`BfsResultDocument`]): root coordinates, graph
//!   dimensions and the reached `(node, time, distance)` triples.

use egraph_core::adjacency::AdjacencyListGraph;
use egraph_core::distance::DistanceMap;
use egraph_core::graph::EvolvingGraph;
use egraph_core::ids::{NodeId, TemporalNode, TimeIndex, Timestamp};

use core::fmt;

/// Errors produced while encoding or decoding JSON documents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonError {
    /// The input is not syntactically valid JSON (message, byte offset).
    Syntax(String, usize),
    /// The JSON is valid but does not have the expected document shape.
    Shape(String),
    /// The document decodes to an invalid graph (e.g. unsorted timestamps).
    Graph(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Syntax(msg, at) => write!(f, "JSON syntax error at byte {at}: {msg}"),
            JsonError::Shape(msg) => write!(f, "unexpected JSON document shape: {msg}"),
            JsonError::Graph(msg) => write!(f, "decoded graph is invalid: {msg}"),
        }
    }
}

impl std::error::Error for JsonError {}

/// Result alias for JSON round-trip helpers.
pub type Result<T> = std::result::Result<T, JsonError>;

/// A self-describing JSON document for one BFS run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsResultDocument {
    /// Root node identifier.
    pub root_node: u32,
    /// Root snapshot index.
    pub root_time: u32,
    /// Number of nodes in the traversed graph's universe.
    pub num_nodes: usize,
    /// Number of snapshots in the traversed graph.
    pub num_timestamps: usize,
    /// Reached temporal nodes as `(node, time, distance)` triples.
    pub reached: Vec<(u32, u32, u32)>,
}

impl BfsResultDocument {
    /// Builds a document from a [`DistanceMap`].
    pub fn from_distance_map(map: &DistanceMap) -> Self {
        BfsResultDocument {
            root_node: map.root().node.0,
            root_time: map.root().time.0,
            num_nodes: map.num_nodes(),
            num_timestamps: map.num_timestamps(),
            reached: map
                .reached()
                .into_iter()
                .map(|(tn, d)| (tn.node.0, tn.time.0, d))
                .collect(),
        }
    }

    /// Reconstructs a [`DistanceMap`] from the document.
    pub fn to_distance_map(&self) -> DistanceMap {
        let root = TemporalNode::from_raw(self.root_node, self.root_time);
        let reached: Vec<(TemporalNode, u32)> = self
            .reached
            .iter()
            .map(|&(v, t, d)| (TemporalNode::from_raw(v, t), d))
            .collect();
        DistanceMap::from_reached(self.num_nodes, self.num_timestamps, root, &reached)
    }

    /// Encodes the document as a JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"root_node\":");
        out.push_str(&self.root_node.to_string());
        out.push_str(",\"root_time\":");
        out.push_str(&self.root_time.to_string());
        out.push_str(",\"num_nodes\":");
        out.push_str(&self.num_nodes.to_string());
        out.push_str(",\"num_timestamps\":");
        out.push_str(&self.num_timestamps.to_string());
        out.push_str(",\"reached\":[");
        for (i, &(v, t, d)) in self.reached.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{v},{t},{d}]"));
        }
        out.push_str("]}");
        out
    }

    /// Decodes a document from a JSON string.
    pub fn from_json(json: &str) -> Result<Self> {
        let value = parse(json)?;
        let obj = value.as_object("BFS-result document")?;
        let reached = obj
            .get("reached")?
            .as_array("reached")?
            .iter()
            .map(|triple| {
                let triple = triple.as_array("reached entry")?;
                if triple.len() != 3 {
                    return Err(JsonError::Shape(
                        "reached entries must be [node, time, distance] triples".into(),
                    ));
                }
                Ok((
                    triple[0].as_u32("reached node")?,
                    triple[1].as_u32("reached time")?,
                    triple[2].as_u32("reached distance")?,
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(BfsResultDocument {
            root_node: obj.get("root_node")?.as_u32("root_node")?,
            root_time: obj.get("root_time")?.as_u32("root_time")?,
            num_nodes: obj.get("num_nodes")?.as_usize("num_nodes")?,
            num_timestamps: obj.get("num_timestamps")?.as_usize("num_timestamps")?,
            reached,
        })
    }
}

/// Serialises a graph to a JSON string.
pub fn graph_to_json(graph: &AdjacencyListGraph) -> Result<String> {
    let mut out = String::new();
    out.push_str("{\"num_nodes\":");
    out.push_str(&graph.num_nodes().to_string());
    out.push_str(",\"directed\":");
    out.push_str(if graph.is_directed() { "true" } else { "false" });
    out.push_str(",\"timestamps\":[");
    for (i, label) in graph.timestamps().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&label.to_string());
    }
    out.push_str("],\"edges\":[");
    for (i, (u, v, t)) in graph.edge_triples().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{},{},{}]", u.0, v.0, t.0));
    }
    out.push_str("]}");
    Ok(out)
}

/// Deserialises a graph from a JSON string.
pub fn graph_from_json(json: &str) -> Result<AdjacencyListGraph> {
    let value = parse(json)?;
    let obj = value.as_object("graph document")?;
    let num_nodes = obj.get("num_nodes")?.as_usize("num_nodes")?;
    let directed = obj.get("directed")?.as_bool("directed")?;
    let timestamps: Vec<Timestamp> = obj
        .get("timestamps")?
        .as_array("timestamps")?
        .iter()
        .map(|v| v.as_i64("timestamp label"))
        .collect::<Result<_>>()?;
    let mut graph = AdjacencyListGraph::new(num_nodes, timestamps, directed)
        .map_err(|e| JsonError::Graph(e.to_string()))?;
    for triple in obj.get("edges")?.as_array("edges")? {
        let triple = triple.as_array("edge entry")?;
        if triple.len() != 3 {
            return Err(JsonError::Shape(
                "edges must be [src, dst, time_index] triples".into(),
            ));
        }
        graph
            .add_edge(
                NodeId(triple[0].as_u32("edge src")?),
                NodeId(triple[1].as_u32("edge dst")?),
                TimeIndex(triple[2].as_u32("edge time")?),
            )
            .map_err(|e| JsonError::Graph(e.to_string()))?;
    }
    Ok(graph)
}

/// Serialises a BFS result to a JSON string.
pub fn bfs_result_to_json(map: &DistanceMap) -> Result<String> {
    Ok(BfsResultDocument::from_distance_map(map).to_json())
}

/// Deserialises a BFS result from a JSON string.
pub fn bfs_result_from_json(json: &str) -> Result<DistanceMap> {
    Ok(BfsResultDocument::from_json(json)?.to_distance_map())
}

// ---------------------------------------------------------------------------
// Minimal JSON value model and recursive-descent parser.
// ---------------------------------------------------------------------------

/// A parsed JSON value (the subset this module emits).
#[derive(Clone, Debug, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    /// An integer token (no fraction or exponent), kept exact: `i64` covers
    /// every timestamp label, so labels never round through `f64`.
    Int(i64),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    fn as_object(&self, what: &str) -> Result<Object<'_>> {
        match self {
            Value::Object(entries) => Ok(Object { entries }),
            _ => Err(JsonError::Shape(format!("{what} must be a JSON object"))),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Value]> {
        match self {
            Value::Array(items) => Ok(items),
            _ => Err(JsonError::Shape(format!("{what} must be a JSON array"))),
        }
    }

    fn as_i64(&self, what: &str) -> Result<i64> {
        match self {
            Value::Int(x) => Ok(*x),
            _ => Err(JsonError::Shape(format!("{what} must be an integer"))),
        }
    }

    fn as_u32(&self, what: &str) -> Result<u32> {
        let x = self.as_i64(what)?;
        u32::try_from(x).map_err(|_| JsonError::Shape(format!("{what} must fit in u32")))
    }

    fn as_usize(&self, what: &str) -> Result<usize> {
        let x = self.as_i64(what)?;
        usize::try_from(x).map_err(|_| JsonError::Shape(format!("{what} must be non-negative")))
    }

    fn as_bool(&self, what: &str) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            _ => Err(JsonError::Shape(format!("{what} must be a boolean"))),
        }
    }
}

/// Borrowed view over an object's key/value entries.
struct Object<'a> {
    entries: &'a [(String, Value)],
}

impl Object<'_> {
    fn get(&self, key: &str) -> Result<&Value> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| JsonError::Shape(format!("missing field \"{key}\"")))
    }
}

fn parse(input: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(JsonError::Syntax(
            "trailing characters after document".into(),
            parser.pos,
        ));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error<T>(&self, msg: &str) -> Result<T> {
        Err(JsonError::Syntax(msg.into(), self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.error(&format!("expected '{}'", byte as char))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.error("expected a JSON value"),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            self.error(&format!("expected '{text}'"))
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return self.error("expected ',' or '}' in object"),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.error("expected ',' or ']' in array"),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        // Accumulate raw bytes: escapes contribute ASCII, everything else is
        // copied verbatim, so multi-byte UTF-8 sequences survive intact
        // (continuation bytes never collide with '"' or '\\').
        let mut out: Vec<u8> = Vec::new();
        loop {
            match self.peek() {
                None => return self.error("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out).map_err(|_| {
                        JsonError::Syntax("invalid UTF-8 in string".into(), self.pos)
                    });
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'r') => out.push(b'\r'),
                        _ => return self.error("unsupported escape sequence"),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans ASCII bytes");
        if integral {
            // Exact integer path: i64 covers every timestamp label without
            // rounding through f64.
            return match text.parse::<i64>() {
                Ok(x) => Ok(Value::Int(x)),
                Err(_) => self.error("integer out of i64 range"),
            };
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(Value::Number(x)),
            Err(_) => self.error("malformed number"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::bfs::bfs;
    use egraph_core::examples::paper_figure1;
    use egraph_core::graph::EvolvingGraph;

    #[test]
    fn graph_round_trips_through_json() {
        let g = paper_figure1();
        let json = graph_to_json(&g).unwrap();
        let back = graph_from_json(&json).unwrap();
        assert_eq!(back.num_nodes(), 3);
        assert_eq!(back.num_static_edges(), 3);
        assert_eq!(back.edge_triples(), g.edge_triples());
        assert_eq!(back.timestamps(), g.timestamps());
    }

    #[test]
    fn bfs_result_round_trips_through_json() {
        let g = paper_figure1();
        let map = bfs(&g, TemporalNode::from_raw(0, 0)).unwrap();
        let json = bfs_result_to_json(&map).unwrap();
        let back = bfs_result_from_json(&json).unwrap();
        assert_eq!(back.as_flat_slice(), map.as_flat_slice());
        assert_eq!(back.root(), map.root());
        assert_eq!(back.num_reached(), map.num_reached());
    }

    #[test]
    fn document_structure_is_stable() {
        let g = paper_figure1();
        let map = bfs(&g, TemporalNode::from_raw(0, 1)).unwrap();
        let doc = BfsResultDocument::from_distance_map(&map);
        assert_eq!(doc.root_node, 0);
        assert_eq!(doc.root_time, 1);
        assert_eq!(doc.reached.len(), 3);
        let json = doc.to_json();
        assert!(json.contains("\"root_node\":0"));
        let parsed = BfsResultDocument::from_json(&json).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(graph_from_json("{not json").is_err());
        assert!(bfs_result_from_json("[]").is_err());
        assert!(graph_from_json("{}").is_err());
        assert!(graph_from_json("{\"num_nodes\": 2} trailing").is_err());
    }

    #[test]
    fn negative_timestamps_survive_the_round_trip() {
        // Reversed views negate labels; the format must cope with that.
        let mut g = AdjacencyListGraph::new(2, vec![-5, -2, 7], true).unwrap();
        g.add_edge(NodeId(0), NodeId(1), TimeIndex(1)).unwrap();
        let back = graph_from_json(&graph_to_json(&g).unwrap()).unwrap();
        assert_eq!(back.timestamps(), vec![-5, -2, 7]);
        assert_eq!(back.edge_triples(), g.edge_triples());
    }

    #[test]
    fn large_timestamp_labels_round_trip_exactly() {
        // Labels above 2^53 would corrupt silently if routed through f64.
        let big = (1i64 << 53) + 1;
        let mut g = AdjacencyListGraph::new(2, vec![-big, 0, big], true).unwrap();
        g.add_edge(NodeId(0), NodeId(1), TimeIndex(2)).unwrap();
        let back = graph_from_json(&graph_to_json(&g).unwrap()).unwrap();
        assert_eq!(back.timestamps(), vec![-big, 0, big]);
    }

    #[test]
    fn non_ascii_strings_survive_parsing() {
        let value = parse("{\"clé\": \"é → ✓\"}").unwrap();
        let obj = value.as_object("test").unwrap();
        assert_eq!(obj.get("clé").unwrap(), &Value::String("é → ✓".to_string()));
    }

    #[test]
    fn parser_handles_whitespace_and_strings() {
        let value = parse(" { \"a\" : [ 1 , 2.5 , true , null , \"x\\ny\" ] } ").unwrap();
        let obj = value.as_object("test").unwrap();
        let arr = obj.get("a").unwrap().as_array("a").unwrap();
        assert_eq!(arr.len(), 5);
        assert_eq!(arr[0].as_i64("n").unwrap(), 1);
        assert!(arr[1].as_i64("n").is_err());
        assert!(arr[2].as_bool("b").unwrap());
        assert_eq!(arr[4], Value::String("x\ny".to_string()));
    }
}
