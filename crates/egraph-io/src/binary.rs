//! The compact binary event codec behind the durable segment log.
//!
//! JSON ([`crate::json`]) is the workspace's *conversation* format; this
//! module is its *storage* format: the append-only [`LogRecord`] vocabulary
//! an `egraph-log` segment file is made of, encoded as
//!
//! ```text
//! frame := varint(payload_len) ++ payload ++ crc32(payload) as u32 LE
//! ```
//!
//! * **varint lengths** — unsigned LEB128, so the common two-byte insert
//!   record pays one length byte, not four;
//! * **exact `i64` labels** — seal labels are zigzag-varint encoded, so
//!   every `i64` (negative, `i64::MIN`, `i64::MAX`) round-trips exactly,
//!   with no float detour anywhere;
//! * **per-record CRC32** — each frame carries the IEEE CRC32 of its
//!   payload, so a torn or bit-flipped record is *detected* at read time
//!   instead of silently replaying garbage into a recovered graph.
//!
//! Decoding distinguishes [`BinaryError::Truncated`] (the bytes stop before
//! the frame does — what a crash mid-append leaves behind) from
//! [`BinaryError::Corrupt`] (the bytes are all there but wrong — CRC
//! mismatch, unknown tag, trailing garbage), because the two demand
//! different recovery behavior: a truncated *tail* is expected after a
//! crash and gets truncated away, while corruption in sealed history must
//! fail loudly.

use std::fmt;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected), table-driven, built at compile time.
// ---------------------------------------------------------------------------

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The IEEE CRC32 of `bytes` (the polynomial `zlib`, PNG and Ethernet use).
pub fn crc32(bytes: &[u8]) -> u32 {
    !bytes.iter().fold(!0u32, |crc, &byte| {
        (crc >> 8) ^ CRC32_TABLE[((crc ^ byte as u32) & 0xFF) as usize]
    })
}

// ---------------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------------

/// Longest legal LEB128 encoding of a `u64` (10 × 7 bits ≥ 64 bits).
const MAX_VARINT_BYTES: usize = 10;

/// Appends `value` as an unsigned LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint from the front of `bytes`, returning the
/// value and how many bytes it consumed.
pub fn read_varint(bytes: &[u8]) -> Result<(u64, usize), BinaryError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in bytes.iter().take(MAX_VARINT_BYTES).enumerate() {
        let low = (byte & 0x7F) as u64;
        value |= low
            .checked_shl(shift)
            .filter(|_| shift < 64 && (shift != 63 || low <= 1))
            .ok_or_else(|| BinaryError::Corrupt("varint overflows u64".into()))?;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    if bytes.len() < MAX_VARINT_BYTES {
        Err(BinaryError::Truncated)
    } else {
        Err(BinaryError::Corrupt("varint runs past 10 bytes".into()))
    }
}

/// Zigzag-maps an `i64` to a `u64` so small-magnitude values (of either
/// sign) stay short under LEB128.
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// One record of the durable event log — the wire-level twin of
/// `egraph-stream`'s `EdgeEvent` vocabulary, plus the two records that exist
/// only on disk: [`LogRecord::Init`] (the graph's birth certificate, stored
/// in the log manifest) and [`LogRecord::Seal`] (the segment terminator
/// carrying the snapshot's exact `i64` time label).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogRecord {
    /// The log's opening declaration: initial node-universe size and
    /// directedness. Lives in the manifest, never inside a segment.
    Init {
        /// Node-universe size at creation.
        num_nodes: u64,
        /// Whether edges are directed.
        directed: bool,
    },
    /// Insert the edge `(src, dst)` into the open snapshot.
    Insert {
        /// Source end point.
        src: u32,
        /// Destination end point.
        dst: u32,
    },
    /// Insert `(src, dst)` unless the open snapshot already holds it.
    InsertUnique {
        /// Source end point.
        src: u32,
        /// Destination end point.
        dst: u32,
    },
    /// Grow the node universe to at least `num_nodes`.
    GrowNodes {
        /// Requested minimum universe size.
        num_nodes: u64,
    },
    /// Seal the open snapshot under `label` — the record that terminates a
    /// segment; durability is acknowledged only after it is on disk.
    Seal {
        /// The snapshot's time label, exact.
        label: i64,
    },
}

const TAG_INIT: u8 = 0;
const TAG_INSERT: u8 = 1;
const TAG_INSERT_UNIQUE: u8 = 2;
const TAG_GROW_NODES: u8 = 3;
const TAG_SEAL: u8 = 4;

/// Why a binary decode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinaryError {
    /// The input ends before the frame does — the shape a crash mid-append
    /// leaves at the tail of a segment.
    Truncated,
    /// The input is structurally present but wrong: CRC mismatch, unknown
    /// record tag, payload length disagreeing with its contents.
    Corrupt(String),
}

impl fmt::Display for BinaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryError::Truncated => write!(f, "binary record truncated"),
            BinaryError::Corrupt(detail) => write!(f, "binary record corrupt: {detail}"),
        }
    }
}

impl std::error::Error for BinaryError {}

/// Appends `record` to `out` as one CRC-framed record.
pub fn encode_record(record: &LogRecord, out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(12);
    match *record {
        LogRecord::Init {
            num_nodes,
            directed,
        } => {
            payload.push(TAG_INIT);
            write_varint(&mut payload, num_nodes);
            payload.push(directed as u8);
        }
        LogRecord::Insert { src, dst } => {
            payload.push(TAG_INSERT);
            write_varint(&mut payload, src as u64);
            write_varint(&mut payload, dst as u64);
        }
        LogRecord::InsertUnique { src, dst } => {
            payload.push(TAG_INSERT_UNIQUE);
            write_varint(&mut payload, src as u64);
            write_varint(&mut payload, dst as u64);
        }
        LogRecord::GrowNodes { num_nodes } => {
            payload.push(TAG_GROW_NODES);
            write_varint(&mut payload, num_nodes);
        }
        LogRecord::Seal { label } => {
            payload.push(TAG_SEAL);
            write_varint(&mut payload, zigzag(label));
        }
    }
    write_varint(out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
}

/// Decodes one CRC-framed record from the front of `bytes`, returning the
/// record and the total frame length consumed.
///
/// # Errors
/// [`BinaryError::Truncated`] if `bytes` ends inside the frame;
/// [`BinaryError::Corrupt`] on CRC mismatch, unknown tag, or a payload that
/// does not parse exactly to its declared length.
pub fn decode_record(bytes: &[u8]) -> Result<(LogRecord, usize), BinaryError> {
    if bytes.is_empty() {
        return Err(BinaryError::Truncated);
    }
    let (len, len_bytes) = read_varint(bytes)?;
    let len = usize::try_from(len).map_err(|_| BinaryError::Corrupt("payload length".into()))?;
    let frame_len = len_bytes
        .checked_add(len)
        .and_then(|n| n.checked_add(4))
        .ok_or_else(|| BinaryError::Corrupt("payload length overflows".into()))?;
    if bytes.len() < frame_len {
        return Err(BinaryError::Truncated);
    }
    let payload = &bytes[len_bytes..len_bytes + len];
    let stored_crc = u32::from_le_bytes(
        bytes[len_bytes + len..frame_len]
            .try_into()
            .expect("slice is exactly 4 bytes"),
    );
    let actual_crc = crc32(payload);
    if stored_crc != actual_crc {
        return Err(BinaryError::Corrupt(format!(
            "crc mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
        )));
    }
    let record = decode_payload(payload)?;
    Ok((record, frame_len))
}

/// Decodes a record payload (tag + fields), requiring it to be consumed
/// exactly.
fn decode_payload(payload: &[u8]) -> Result<LogRecord, BinaryError> {
    // A short payload inside a CRC-validated frame is corruption, not
    // truncation: the frame's declared length was all there.
    let as_corrupt = |err| match err {
        BinaryError::Truncated => BinaryError::Corrupt("payload shorter than its fields".into()),
        corrupt => corrupt,
    };
    let (&tag, mut rest) = payload
        .split_first()
        .ok_or_else(|| BinaryError::Corrupt("empty payload".into()))?;
    let read_u64 = |rest: &mut &[u8]| -> Result<u64, BinaryError> {
        let (value, n) = read_varint(rest).map_err(as_corrupt)?;
        *rest = &rest[n..];
        Ok(value)
    };
    let record = match tag {
        TAG_INIT => {
            let num_nodes = read_u64(&mut rest)?;
            let directed = match rest.split_first() {
                Some((&0, tail)) => {
                    rest = tail;
                    false
                }
                Some((&1, tail)) => {
                    rest = tail;
                    true
                }
                Some((&other, _)) => {
                    return Err(BinaryError::Corrupt(format!("bad directed flag {other}")))
                }
                None => return Err(BinaryError::Corrupt("init missing directed flag".into())),
            };
            LogRecord::Init {
                num_nodes,
                directed,
            }
        }
        TAG_INSERT | TAG_INSERT_UNIQUE => {
            let src = read_u64(&mut rest)?;
            let dst = read_u64(&mut rest)?;
            let narrow = |v: u64| {
                u32::try_from(v).map_err(|_| BinaryError::Corrupt(format!("node id {v} > u32")))
            };
            let (src, dst) = (narrow(src)?, narrow(dst)?);
            if tag == TAG_INSERT {
                LogRecord::Insert { src, dst }
            } else {
                LogRecord::InsertUnique { src, dst }
            }
        }
        TAG_GROW_NODES => LogRecord::GrowNodes {
            num_nodes: read_u64(&mut rest)?,
        },
        TAG_SEAL => LogRecord::Seal {
            label: unzigzag(read_u64(&mut rest)?),
        },
        other => return Err(BinaryError::Corrupt(format!("unknown record tag {other}"))),
    };
    if !rest.is_empty() {
        return Err(BinaryError::Corrupt(format!(
            "{} trailing payload bytes",
            rest.len()
        )));
    }
    Ok(record)
}

/// Encodes `record` into a fresh buffer (convenience over
/// [`encode_record`]).
pub fn record_to_bytes(record: &LogRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    encode_record(record, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every variant, with the extremes the format promises to carry
    /// exactly: `i64::MIN`/`MAX` and negative labels, `u32::MAX` node ids,
    /// varint length boundaries (0, 127, 128, u64::MAX).
    fn sweep() -> Vec<LogRecord> {
        let mut records = vec![
            LogRecord::Init {
                num_nodes: 0,
                directed: false,
            },
            LogRecord::Init {
                num_nodes: u64::MAX,
                directed: true,
            },
            LogRecord::Insert { src: 0, dst: 1 },
            LogRecord::Insert {
                src: u32::MAX,
                dst: u32::MAX - 1,
            },
            LogRecord::InsertUnique { src: 127, dst: 128 },
            LogRecord::InsertUnique {
                src: 16_383,
                dst: 16_384,
            },
            LogRecord::GrowNodes { num_nodes: 0 },
            LogRecord::GrowNodes { num_nodes: 1 << 35 },
        ];
        for label in [
            0i64,
            1,
            -1,
            63,
            -64,
            64,
            -65,
            i64::from(i32::MAX),
            i64::from(i32::MIN),
            i64::MAX,
            i64::MIN,
        ] {
            records.push(LogRecord::Seal { label });
        }
        records
    }

    #[test]
    fn every_variant_round_trips() {
        for record in sweep() {
            let bytes = record_to_bytes(&record);
            let (decoded, consumed) = decode_record(&bytes).unwrap();
            assert_eq!(decoded, record);
            assert_eq!(consumed, bytes.len(), "{record:?}: exact consumption");
        }
    }

    #[test]
    fn a_stream_of_records_decodes_in_order() {
        let records = sweep();
        let mut wire = Vec::new();
        for record in &records {
            encode_record(record, &mut wire);
        }
        let mut offset = 0;
        for expected in &records {
            let (decoded, n) = decode_record(&wire[offset..]).unwrap();
            assert_eq!(decoded, *expected);
            offset += n;
        }
        assert_eq!(offset, wire.len());
    }

    #[test]
    fn zigzag_is_exact_on_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, -2, 2] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay small on the wire.
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn every_truncation_is_truncated_never_corrupt_or_wrong() {
        // Cutting a valid frame at *any* interior byte must report
        // Truncated — the signal recovery uses to stop at a torn tail.
        for record in sweep() {
            let bytes = record_to_bytes(&record);
            for cut in 0..bytes.len() {
                assert_eq!(
                    decode_record(&bytes[..cut]),
                    Err(BinaryError::Truncated),
                    "{record:?} cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn bit_flips_are_caught_by_the_crc() {
        let record = LogRecord::Seal { label: -42 };
        let clean = record_to_bytes(&record);
        for i in 0..clean.len() {
            for bit in 0..8 {
                let mut dirty = clean.clone();
                dirty[i] ^= 1 << bit;
                // Flips in the length byte may declare a longer frame
                // (reads as truncated) — anything that decodes must not
                // silently produce a *different valid* record without
                // tripping the CRC. A flip that produces the original
                // frame is impossible (we flipped exactly one bit).
                if let Ok((decoded, _)) = decode_record(&dirty) {
                    panic!("flip {i}.{bit} decoded to {decoded:?} undetected")
                }
            }
        }
    }

    #[test]
    fn varint_rejects_overlong_and_overflowing_encodings() {
        // 11 continuation bytes: runs past the 10-byte bound.
        let overlong = [0x80u8; 11];
        assert!(matches!(
            read_varint(&overlong),
            Err(BinaryError::Corrupt(_))
        ));
        // 10 bytes whose top byte overflows 64 bits.
        let mut overflow = [0xFFu8; 10];
        overflow[9] = 0x7F;
        assert!(matches!(
            read_varint(&overflow),
            Err(BinaryError::Corrupt(_))
        ));
        // A continuation byte then EOF: truncated, not corrupt.
        assert_eq!(read_varint(&[0x80]), Err(BinaryError::Truncated));
        // u64::MAX itself round-trips.
        let mut wire = Vec::new();
        write_varint(&mut wire, u64::MAX);
        assert_eq!(read_varint(&wire).unwrap(), (u64::MAX, 10));
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_corrupt() {
        // Hand-build a frame with an unknown tag but a valid CRC.
        let payload = [9u8, 0, 0];
        let mut wire = Vec::new();
        write_varint(&mut wire, payload.len() as u64);
        wire.extend_from_slice(&payload);
        wire.extend_from_slice(&crc32(&payload).to_le_bytes());
        assert!(matches!(decode_record(&wire), Err(BinaryError::Corrupt(_))));

        // A valid record payload with one stray trailing byte, re-framed.
        let mut payload = vec![TAG_GROW_NODES];
        write_varint(&mut payload, 5);
        payload.push(0xAB);
        let mut wire = Vec::new();
        write_varint(&mut wire, payload.len() as u64);
        wire.extend_from_slice(&payload);
        wire.extend_from_slice(&crc32(&payload).to_le_bytes());
        assert!(matches!(decode_record(&wire), Err(BinaryError::Corrupt(_))));
    }

    #[test]
    fn crc32_matches_the_ieee_reference_vector() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn insert_frames_stay_compact() {
        // The common case — small node ids — must stay small on disk:
        // 1 length byte + tag + two 1-byte varints + 4 CRC bytes.
        let bytes = record_to_bytes(&LogRecord::Insert { src: 3, dst: 9 });
        assert_eq!(bytes.len(), 8);
    }
}
