//! Plain-text temporal edge lists.
//!
//! The de-facto interchange format for temporal graph datasets is a text
//! file with one `src dst time` triple per line (SNAP, KONECT and the
//! citation datasets the paper alludes to all ship variants of it). This
//! module reads and writes that format:
//!
//! * whitespace- or comma-separated columns,
//! * `#` or `%` comment lines and blank lines ignored,
//! * node identifiers are arbitrary `u32`s, time stamps arbitrary `i64`s.

use std::io::{BufRead, BufReader, Read, Write};

use egraph_core::adjacency::AdjacencyListGraph;
use egraph_core::error::Result as GraphResult;
use egraph_core::graph::EvolvingGraph;
use egraph_core::ids::Timestamp;

/// Errors arising while parsing a temporal edge list.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed as `src dst time`.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending line content.
        content: String,
    },
    /// The parsed edges could not be assembled into a graph.
    Graph(egraph_core::error::GraphError),
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "I/O error: {e}"),
            EdgeListError::Parse { line, content } => {
                write!(f, "cannot parse line {line}: {content:?}")
            }
            EdgeListError::Graph(e) => write!(f, "invalid edge list: {e}"),
        }
    }
}

impl std::error::Error for EdgeListError {}

impl From<std::io::Error> for EdgeListError {
    fn from(e: std::io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

impl From<egraph_core::error::GraphError> for EdgeListError {
    fn from(e: egraph_core::error::GraphError) -> Self {
        EdgeListError::Graph(e)
    }
}

/// Parses `(src, dst, time)` triples from a reader.
pub fn parse_edge_list<R: Read>(reader: R) -> Result<Vec<(u32, u32, Timestamp)>, EdgeListError> {
    let reader = BufReader::new(reader);
    let mut edges = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = trimmed
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|s| !s.is_empty())
            .collect();
        let parsed = (|| {
            if fields.len() < 3 {
                return None;
            }
            Some((
                fields[0].parse::<u32>().ok()?,
                fields[1].parse::<u32>().ok()?,
                fields[2].parse::<Timestamp>().ok()?,
            ))
        })();
        match parsed {
            Some(triple) => edges.push(triple),
            None => {
                return Err(EdgeListError::Parse {
                    line: i + 1,
                    content: trimmed.to_string(),
                })
            }
        }
    }
    Ok(edges)
}

/// Reads a directed evolving graph from a temporal edge list.
pub fn read_edge_list<R: Read>(reader: R) -> Result<AdjacencyListGraph, EdgeListError> {
    let edges = parse_edge_list(reader)?;
    Ok(AdjacencyListGraph::from_labeled_edges(&edges)?)
}

/// Writes an evolving graph as a temporal edge list (one `src dst time` line
/// per static edge), preceded by a comment header describing the graph.
pub fn write_edge_list<G: EvolvingGraph, W: Write>(
    graph: &G,
    mut writer: W,
) -> std::io::Result<()> {
    writeln!(
        writer,
        "# evolving graph: {} nodes, {} snapshots, {} static edges, {}",
        graph.num_nodes(),
        graph.num_timestamps(),
        graph.num_static_edges(),
        if graph.is_directed() {
            "directed"
        } else {
            "undirected"
        }
    )?;
    for edge in graph.static_edges() {
        writeln!(
            writer,
            "{} {} {}",
            edge.src,
            edge.dst,
            graph.timestamp(edge.time)
        )?;
    }
    Ok(())
}

/// Serialises a graph to an edge-list string.
pub fn to_edge_list_string<G: EvolvingGraph>(graph: &G) -> String {
    let mut buf = Vec::new();
    write_edge_list(graph, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("edge lists are ASCII")
}

/// Round-trip helper used by tests: write then re-read a graph.
pub fn round_trip<G: EvolvingGraph>(graph: &G) -> GraphResult<AdjacencyListGraph> {
    let text = to_edge_list_string(graph);
    read_edge_list(text.as_bytes()).map_err(|e| match e {
        EdgeListError::Graph(g) => g,
        other => panic!("round trip produced a non-graph error: {other}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::examples::paper_figure1;
    use egraph_core::ids::{NodeId, TimeIndex};

    #[test]
    fn parses_whitespace_and_comma_separated_lines() {
        let text = "# comment\n0 1 2010\n1,2,2011\n\n% another comment\n2 0 2012\n";
        let edges = parse_edge_list(text.as_bytes()).unwrap();
        assert_eq!(edges, vec![(0, 1, 2010), (1, 2, 2011), (2, 0, 2012)]);
    }

    #[test]
    fn reports_the_offending_line_on_parse_errors() {
        let text = "0 1 5\nnot an edge\n";
        let err = parse_edge_list(text.as_bytes()).unwrap_err();
        match err {
            EdgeListError::Parse { line, content } => {
                assert_eq!(line, 2);
                assert!(content.contains("not an edge"));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn writes_a_header_and_one_line_per_edge() {
        let g = paper_figure1();
        let text = to_edge_list_string(&g);
        assert!(text.starts_with("# evolving graph: 3 nodes, 3 snapshots"));
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("0 1 1"));
        assert!(text.contains("1 2 3"));
    }

    #[test]
    fn round_trip_preserves_structure() {
        let g = paper_figure1();
        let back = round_trip(&g).unwrap();
        assert_eq!(back.num_nodes(), g.num_nodes());
        assert_eq!(back.num_timestamps(), g.num_timestamps());
        assert_eq!(back.num_static_edges(), g.num_static_edges());
        assert!(back.has_static_edge(NodeId(0), NodeId(1), TimeIndex(0)));
        assert!(back.has_static_edge(NodeId(1), NodeId(2), TimeIndex(2)));
        // BFS results agree as well.
        let a = egraph_core::bfs::bfs(&g, egraph_core::ids::TemporalNode::from_raw(0, 0)).unwrap();
        let b =
            egraph_core::bfs::bfs(&back, egraph_core::ids::TemporalNode::from_raw(0, 0)).unwrap();
        assert_eq!(a.as_flat_slice(), b.as_flat_slice());
    }

    #[test]
    fn read_rejects_self_loops_via_graph_error() {
        let text = "0 0 1\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        assert!(matches!(err, EdgeListError::Graph(_)));
    }
}
