//! # egraph-io
//!
//! Input/output for evolving graphs and search results:
//!
//! * [`edgelist`] — plain-text `src dst time` temporal edge lists (read and
//!   write), the interchange format used by public temporal-graph datasets;
//! * [`json`] — hand-rolled JSON round-tripping of graphs and BFS results,
//!   plus the public [`json::Value`] model and stream reader other crates
//!   build wire formats on;
//! * [`binary`] — the compact CRC-framed binary event codec (varint
//!   lengths, exact `i64` seal labels) that `egraph-log` segment files and
//!   the replication wire are made of;
//! * [`checkpoint`] — the checkpoint payload codec: a sealed CSR graph's
//!   raw columns plus its version stamp as varint bytes, the body that
//!   `egraph-log`'s CRC-framed `checkpoint-<seq>.bin` files carry;
//! * [`report`] — the table/CSV formatter and the least-squares helper used
//!   by the benchmark harness to regenerate the paper's Figure 5 series.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binary;
pub mod checkpoint;
pub mod edgelist;
pub mod json;
pub mod report;

pub use binary::{crc32, decode_record, encode_record, BinaryError, LogRecord};
pub use checkpoint::{decode_checkpoint, encode_checkpoint};
pub use edgelist::{
    parse_edge_list, read_edge_list, to_edge_list_string, write_edge_list, EdgeListError,
};
pub use json::{
    bfs_result_from_json, bfs_result_to_json, graph_from_json, graph_to_json, parse_value,
    read_value, write_json_string, BfsResultDocument, JsonError, Value,
};
pub use report::{linear_fit, SeriesTable};
