//! The checkpoint payload codec: one sealed `CsrAdjacency` plus its
//! monotone version stamp, as compact varint-encoded bytes.
//!
//! A checkpoint replaces replaying a prefix of the event log, so it must
//! persist exactly what replaying that prefix would have rebuilt: the CSR
//! columns ([`CsrParts`] — neighbor pools, offset rows, activeness lists,
//! seal labels) and the version counter cached query descriptors re-validate
//! against. This module is only the *payload* codec — framing (magic, CRC,
//! atomic install) is `egraph-log`'s job, mirroring how segment files wrap
//! [`crate::binary`] records.
//!
//! Decoding is allocation-safe against arbitrary bytes: every claimed
//! length is checked against the remaining input before reserving space, so
//! a corrupt length field yields [`BinaryError::Truncated`], not an OOM.
//! Structural validity of the decoded columns is the caller's problem
//! (`CsrAdjacency::from_parts` re-checks every invariant).

use egraph_core::csr::CsrParts;
use egraph_core::ids::{NodeId, TimeIndex};

use crate::binary::{read_varint, unzigzag, write_varint, zigzag, BinaryError};

/// Encodes a graph's columns and version stamp as checkpoint payload bytes.
pub fn encode_checkpoint(parts: &CsrParts, version: u64) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, version);
    write_varint(&mut out, parts.num_nodes as u64);
    out.push(parts.directed as u8);
    write_varint(&mut out, parts.num_static_edges as u64);
    write_varint(&mut out, parts.timestamps.len() as u64);
    for &label in &parts.timestamps {
        write_varint(&mut out, zigzag(label));
    }
    for row in &parts.out_offsets {
        write_offset_row(&mut out, row);
    }
    write_pool(&mut out, &parts.out_pool);
    if parts.directed {
        for row in &parts.in_offsets {
            write_offset_row(&mut out, row);
        }
        write_pool(&mut out, &parts.in_pool);
    }
    for times in &parts.active {
        write_varint(&mut out, times.len() as u64);
        for &t in times {
            write_varint(&mut out, t.0 as u64);
        }
    }
    out
}

/// Decodes checkpoint payload bytes back into graph columns and the version
/// stamp. The inverse of [`encode_checkpoint`]; trailing bytes are corrupt.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<(CsrParts, u64), BinaryError> {
    let mut r = Reader { bytes, pos: 0 };
    let version = r.varint()?;
    let num_nodes = r.length("num_nodes")?;
    let directed = match r.byte()? {
        0 => false,
        1 => true,
        other => {
            return Err(BinaryError::Corrupt(format!(
                "checkpoint directed flag is {other}, not 0 or 1"
            )))
        }
    };
    let num_static_edges = r.length("num_static_edges")?;
    let snapshots = r.bounded_length("snapshot count")?;
    let mut timestamps = Vec::with_capacity(snapshots);
    for _ in 0..snapshots {
        timestamps.push(unzigzag(r.varint()?));
    }
    let out_offsets = r.offset_rows(snapshots)?;
    let out_pool = r.pool()?;
    let (in_offsets, in_pool) = if directed {
        (r.offset_rows(snapshots)?, r.pool()?)
    } else {
        (Vec::new(), Vec::new())
    };
    let mut active = Vec::with_capacity(num_nodes.min(r.remaining()));
    for _ in 0..num_nodes {
        let len = r.bounded_length("active list length")?;
        let mut times = Vec::with_capacity(len);
        for _ in 0..len {
            times.push(TimeIndex(r.u32("active time index")?));
        }
        active.push(times);
    }
    if r.pos != bytes.len() {
        return Err(BinaryError::Corrupt(format!(
            "checkpoint payload has {} trailing bytes",
            bytes.len() - r.pos
        )));
    }
    Ok((
        CsrParts {
            timestamps,
            num_nodes,
            directed,
            out_offsets,
            out_pool,
            in_offsets,
            in_pool,
            active,
            num_static_edges,
        },
        version,
    ))
}

fn write_offset_row(out: &mut Vec<u8>, row: &[u32]) {
    write_varint(out, row.len() as u64);
    for &offset in row {
        write_varint(out, offset as u64);
    }
}

fn write_pool(out: &mut Vec<u8>, pool: &[NodeId]) {
    write_varint(out, pool.len() as u64);
    for &node in pool {
        write_varint(out, node.0 as u64);
    }
}

/// A cursor over the payload bytes with length-sanity helpers.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn varint(&mut self) -> Result<u64, BinaryError> {
        let (value, used) = read_varint(&self.bytes[self.pos..])?;
        self.pos += used;
        Ok(value)
    }

    fn byte(&mut self) -> Result<u8, BinaryError> {
        let b = *self.bytes.get(self.pos).ok_or(BinaryError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self, what: &str) -> Result<u32, BinaryError> {
        let value = self.varint()?;
        u32::try_from(value)
            .map_err(|_| BinaryError::Corrupt(format!("checkpoint {what} {value} exceeds u32")))
    }

    /// A length field that must fit in `usize`.
    fn length(&mut self, what: &str) -> Result<usize, BinaryError> {
        let value = self.varint()?;
        usize::try_from(value)
            .map_err(|_| BinaryError::Corrupt(format!("checkpoint {what} {value} exceeds usize")))
    }

    /// A length field counting items that each occupy at least one byte of
    /// the remaining input — a claim larger than that is a truncation (or a
    /// corrupt length), caught *before* any allocation.
    fn bounded_length(&mut self, what: &str) -> Result<usize, BinaryError> {
        let len = self.length(what)?;
        if len > self.remaining() {
            return Err(BinaryError::Truncated);
        }
        Ok(len)
    }

    fn offset_rows(&mut self, snapshots: usize) -> Result<Vec<Vec<u32>>, BinaryError> {
        let mut rows = Vec::with_capacity(snapshots.min(self.remaining()));
        for _ in 0..snapshots {
            let len = self.bounded_length("offset row length")?;
            let mut row = Vec::with_capacity(len);
            for _ in 0..len {
                row.push(self.u32("offset")?);
            }
            rows.push(row);
        }
        Ok(rows)
    }

    fn pool(&mut self) -> Result<Vec<NodeId>, BinaryError> {
        let len = self.bounded_length("pool length")?;
        let mut pool = Vec::with_capacity(len);
        for _ in 0..len {
            pool.push(NodeId(self.u32("pool entry")?));
        }
        Ok(pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::csr::CsrAdjacency;
    use egraph_core::ids::NodeId;

    fn fixture(directed: bool) -> CsrAdjacency {
        let mut csr = CsrAdjacency::new(4, directed);
        csr.append_snapshot(-3, &[(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))])
            .unwrap();
        csr.grow_nodes(6);
        csr.append_snapshot(9, &[(NodeId(4), NodeId(5)), (NodeId(0), NodeId(1))])
            .unwrap();
        csr
    }

    #[test]
    fn round_trips_directed_and_undirected_graphs() {
        for directed in [true, false] {
            let csr = fixture(directed);
            let parts = csr.to_parts();
            let bytes = encode_checkpoint(&parts, 2);
            let (decoded, version) = decode_checkpoint(&bytes).unwrap();
            assert_eq!(version, 2);
            assert_eq!(decoded, parts, "directed={directed}");
            // The decoded columns pass full structural re-validation.
            CsrAdjacency::from_parts(decoded).unwrap();
        }
    }

    #[test]
    fn round_trips_an_empty_graph() {
        let csr = CsrAdjacency::new(0, true);
        let bytes = encode_checkpoint(&csr.to_parts(), 0);
        let (decoded, version) = decode_checkpoint(&bytes).unwrap();
        assert_eq!(version, 0);
        assert_eq!(decoded, csr.to_parts());
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = encode_checkpoint(&fixture(true).to_parts(), 2);
        for cut in 0..bytes.len() {
            assert!(
                decode_checkpoint(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn trailing_bytes_and_bad_flags_are_corrupt() {
        let mut bytes = encode_checkpoint(&fixture(false).to_parts(), 1);
        bytes.push(0);
        assert!(matches!(
            decode_checkpoint(&bytes),
            Err(BinaryError::Corrupt(_))
        ));

        // Flip every byte in turn: decode must never panic, and must never
        // hand back the original payload.
        let bytes = encode_checkpoint(&fixture(true).to_parts(), 1);
        let parts = fixture(true).to_parts();
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0xFF;
            if let Ok((decoded, version)) = decode_checkpoint(&flipped) {
                assert!(
                    decoded != parts || version != 1,
                    "flipping byte {i} must not decode to the same payload"
                );
            }
        }
    }

    #[test]
    fn absurd_length_claims_fail_without_allocating() {
        // varint 2^60 as a claimed snapshot count over a tiny buffer.
        let mut bytes = Vec::new();
        write_varint(&mut bytes, 1); // version
        write_varint(&mut bytes, 4); // num_nodes
        bytes.push(1); // directed
        write_varint(&mut bytes, 0); // num_static_edges
        write_varint(&mut bytes, 1u64 << 60); // snapshot count: absurd
        assert!(matches!(
            decode_checkpoint(&bytes),
            Err(BinaryError::Truncated)
        ));
    }
}
