//! # egraph-citation
//!
//! Citation-network mining with the evolving-graph BFS — the Section V
//! application of *"The Right Way to Search Evolving Graphs"* (Chen & Zhang,
//! IPPS 2016).
//!
//! The crate models authors citing each other over publication epochs,
//! stores the network as an evolving graph of *influence edges*
//! (cited → citing), and exposes the analyses the paper describes:
//!
//! * [`influence::influence_set`] — `T(a, t)`, the authors influenced by
//!   `a`'s work at epoch `t` (forward temporal BFS);
//! * [`influence::influencer_set`] — `T⁻¹(a, t)`, the authors who influenced
//!   `a` (backward temporal BFS);
//! * [`community::community_of`] — the paper's community procedure: find the
//!   leaves of the backward influence tree and union their forward cones;
//! * [`rank::rank_by_influence`] — whole-network influence ranking,
//!   parallelised over authors with rayon.
//!
//! ## Example
//!
//! ```
//! use egraph_citation::prelude::*;
//! use egraph_core::ids::NodeId;
//!
//! // Author 1 cites author 0 in epoch 2000; author 2 cites author 1 in 2001.
//! let net = CitationNetwork::from_records([
//!     CitationRecord { citing: NodeId(1), cited: NodeId(0), epoch: 2000 },
//!     CitationRecord { citing: NodeId(2), cited: NodeId(1), epoch: 2001 },
//! ]);
//! let influenced = influence_set(&net, NodeId(0), 2000).unwrap();
//! assert_eq!(influenced, vec![NodeId(1), NodeId(2)]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod community;
pub mod influence;
pub mod model;
pub mod rank;

pub use community::{communities_at_epoch, community_of, influence_leaves};
pub use influence::{
    influence_chain, influence_map, influence_profile, influence_set, influencer_map,
    influencer_set,
};
pub use model::{AuthorId, CitationNetwork, CitationRecord, Epoch};
pub use rank::{batch_influence_sizes, rank_by_influence, top_influencers, InfluenceScore};

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::community::{communities_at_epoch, community_of, influence_leaves};
    pub use crate::influence::{
        influence_chain, influence_map, influence_profile, influence_set, influencer_map,
        influencer_set,
    };
    pub use crate::model::{AuthorId, CitationNetwork, CitationRecord, Epoch};
    pub use crate::rank::{
        batch_influence_sizes, rank_by_influence, top_influencers, InfluenceScore,
    };
}
