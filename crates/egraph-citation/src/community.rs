//! Community extraction (Section V).
//!
//! The paper defines a community as "a group of researchers that have been
//! influenced by the same authors", and gives a concrete procedure: given a
//! paper published by `a` at time `t`,
//!
//! 1. search *backward* in time to find `T⁻¹(a, t)`, the authors that
//!    influenced `a`;
//! 2. take the leaves `(l₁, t₁), …, (l_k, t_k)` of that backward search
//!    tree — the original sources of the influence;
//! 3. search *forward* from every leaf and take the union
//!    `T(l₁, t₁) ∪ … ∪ T(l_k, t_k)`.
//!
//! [`community_of`] implements exactly this pipeline; [`influence_leaves`]
//! exposes step 2 on its own.

use egraph_core::bfs::bfs;
use egraph_core::graph::EvolvingGraph;
use egraph_core::ids::TemporalNode;

use crate::influence::influencer_map_with_parents;
use crate::model::{AuthorId, CitationNetwork, Epoch};
use egraph_core::error::Result;

/// The leaves of the backward influence tree of `(author, epoch)`: reached
/// temporal nodes that are not the BFS-tree parent of any other reached node.
/// These are the earliest sources from which influence flowed towards the
/// author. The root itself is excluded unless it is the only reached node.
pub fn influence_leaves(
    network: &CitationNetwork,
    author: AuthorId,
    epoch: Epoch,
) -> Result<Vec<(AuthorId, Epoch)>> {
    let map = influencer_map_with_parents(network, author, epoch)?;
    let reached = map.reached();
    if reached.len() == 1 {
        // No influencers at all: the author is its own source.
        return Ok(vec![(author, epoch)]);
    }
    let mut is_parent = vec![false; network.graph().num_nodes() * network.num_epochs()];
    for &(tn, _) in &reached {
        if let Some(parent) = map.parent(tn) {
            is_parent[parent.flat_index(network.graph().num_nodes())] = true;
        }
    }
    let leaves: Vec<(AuthorId, Epoch)> = reached
        .iter()
        .filter(|&&(tn, _)| {
            tn != map.root() && !is_parent[tn.flat_index(network.graph().num_nodes())]
        })
        .map(|&(tn, _)| (tn.node, network.epoch_label(tn.time)))
        .collect();
    Ok(leaves)
}

/// The community of `(author, epoch)`: everyone influenced by any of the
/// sources that influenced the author (including the author itself and the
/// sources, since they are trivially influenced by / identical to a source).
pub fn community_of(
    network: &CitationNetwork,
    author: AuthorId,
    epoch: Epoch,
) -> Result<Vec<AuthorId>> {
    let leaves = influence_leaves(network, author, epoch)?;
    let mut member = vec![false; network.num_authors()];
    for &(leaf, leaf_epoch) in &leaves {
        member[leaf.index()] = true;
        let Some(root) = network.temporal_node(leaf, leaf_epoch) else {
            continue;
        };
        // Forward search from each leaf; leaves are active by construction.
        let map = bfs(network.graph(), root)?;
        for reached in map.reached_node_ids() {
            member[reached.index()] = true;
        }
    }
    Ok(member
        .iter()
        .enumerate()
        .filter(|(_, &m)| m)
        .map(|(i, _)| AuthorId::from_index(i))
        .collect())
}

/// Groups every active `(author, epoch)` pair at the given epoch by its
/// community and returns the communities as author sets, largest first.
/// Authors can belong to several communities; this is a per-root grouping,
/// not a partition.
pub fn communities_at_epoch(network: &CitationNetwork, epoch: Epoch) -> Result<Vec<Vec<AuthorId>>> {
    let Some(t) = network.epoch_index(epoch) else {
        return Ok(Vec::new());
    };
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for tn in network.graph().active_at(t) {
        let community = community_of(network, tn.node, epoch)?;
        if seen.insert(community.clone()) {
            out.push(community);
        }
    }
    out.sort_by_key(|c| std::cmp::Reverse(c.len()));
    Ok(out)
}

/// Convenience: the temporal nodes of the backward influence tree rooted at
/// `(author, epoch)` (the full tree, not just the leaves), labelled by epoch.
pub fn influencer_tree_nodes(
    network: &CitationNetwork,
    author: AuthorId,
    epoch: Epoch,
) -> Result<Vec<(AuthorId, Epoch, u32)>> {
    let map = influencer_map_with_parents(network, author, epoch)?;
    Ok(map
        .reached()
        .into_iter()
        .map(|(tn, d)| (tn.node, network.epoch_label(tn.time), d))
        .collect())
}

/// Helper mirroring `TemporalNode::flat_index` for this crate's tests.
#[allow(dead_code)]
fn flat(tn: TemporalNode, n: usize) -> usize {
    tn.flat_index(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CitationRecord;
    use egraph_core::ids::NodeId;

    /// Two influence chains meeting at author 4:
    ///   epoch 0: 1 cites 0          (chain A source: 0)
    ///   epoch 0: 3 cites 2          (chain B source: 2)
    ///   epoch 1: 4 cites 1, 4 cites 3
    ///   epoch 2: 5 cites 4
    fn two_chain_network() -> CitationNetwork {
        CitationNetwork::from_records([
            CitationRecord {
                citing: NodeId(1),
                cited: NodeId(0),
                epoch: 0,
            },
            CitationRecord {
                citing: NodeId(3),
                cited: NodeId(2),
                epoch: 0,
            },
            CitationRecord {
                citing: NodeId(4),
                cited: NodeId(1),
                epoch: 1,
            },
            CitationRecord {
                citing: NodeId(4),
                cited: NodeId(3),
                epoch: 1,
            },
            CitationRecord {
                citing: NodeId(5),
                cited: NodeId(4),
                epoch: 2,
            },
        ])
    }

    #[test]
    fn leaves_are_the_original_sources() {
        let net = two_chain_network();
        let mut leaves = influence_leaves(&net, NodeId(4), 1).unwrap();
        leaves.sort();
        // Both chains trace back to their epoch-0 sources.
        assert_eq!(leaves, vec![(NodeId(0), 0), (NodeId(2), 0)]);
    }

    #[test]
    fn author_without_influencers_is_its_own_leaf() {
        let net = two_chain_network();
        let leaves = influence_leaves(&net, NodeId(0), 0).unwrap();
        assert_eq!(leaves, vec![(NodeId(0), 0)]);
    }

    #[test]
    fn community_unions_forward_reach_of_all_sources() {
        let net = two_chain_network();
        let mut community = community_of(&net, NodeId(4), 1).unwrap();
        community.sort();
        // Sources 0 and 2 jointly influence everyone.
        assert_eq!(
            community,
            vec![
                NodeId(0),
                NodeId(1),
                NodeId(2),
                NodeId(3),
                NodeId(4),
                NodeId(5)
            ]
        );
    }

    #[test]
    fn community_of_a_source_is_its_own_influence_cone() {
        let net = two_chain_network();
        let mut community = community_of(&net, NodeId(1), 0).unwrap();
        community.sort();
        // Author 1's only source is author 0, whose cone is {0,1,4,5}.
        assert_eq!(community, vec![NodeId(0), NodeId(1), NodeId(4), NodeId(5)]);
    }

    #[test]
    fn communities_at_epoch_deduplicates_identical_groups() {
        let net = two_chain_network();
        let communities = communities_at_epoch(&net, 1).unwrap();
        assert!(!communities.is_empty());
        // Largest community first.
        for w in communities.windows(2) {
            assert!(w[0].len() >= w[1].len());
        }
        // No duplicate sets.
        let set: std::collections::BTreeSet<_> = communities.iter().cloned().collect();
        assert_eq!(set.len(), communities.len());
    }

    #[test]
    fn influencer_tree_nodes_report_distances() {
        let net = two_chain_network();
        let tree = influencer_tree_nodes(&net, NodeId(5), 2).unwrap();
        // The root is at distance 0 and every ancestor has positive distance.
        assert!(tree.contains(&(NodeId(5), 2, 0)));
        assert!(tree.iter().any(|&(a, _, d)| a == NodeId(0) && d > 0));
        assert!(tree.iter().any(|&(a, _, d)| a == NodeId(2) && d > 0));
    }

    #[test]
    fn unknown_epoch_yields_no_communities() {
        let net = two_chain_network();
        assert!(communities_at_epoch(&net, 99).unwrap().is_empty());
    }
}
