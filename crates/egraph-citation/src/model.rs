//! The citation-network model of Section V.
//!
//! Nodes are authors; a directed edge `(i, j)` at time `t` records that
//! author `i` cited author `j` in a publication at time `t`. Influence flows
//! the other way — from the cited author to the citing author — so the
//! evolving graph held by [`CitationNetwork`] stores *influence edges*
//! `cited → citing`. With that orientation, the forward evolving-graph BFS
//! from `(a, t)` computes exactly `T(a, t)`, "the set of all the authors that
//! have been influenced by a's work at time t", and the backward BFS computes
//! `T⁻¹(a, t)`, the authors who influenced `a`.

use egraph_core::adjacency::AdjacencyListGraph;
use egraph_core::graph::EvolvingGraph;
use egraph_core::ids::{NodeId, TemporalNode, TimeIndex, Timestamp};
use egraph_gen::citation::{CitationCorpus, CitationEvent};

/// An author identifier (dense, `0..num_authors`).
pub type AuthorId = NodeId;

/// A publication epoch (snapshot label).
pub type Epoch = Timestamp;

/// One citation record: `citing` cites `cited` at `epoch`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CitationRecord {
    /// The citing author `i`.
    pub citing: AuthorId,
    /// The cited author `j`.
    pub cited: AuthorId,
    /// The epoch of the citing publication.
    pub epoch: Epoch,
}

/// A citation network stored as an evolving graph of influence edges.
#[derive(Clone, Debug)]
pub struct CitationNetwork {
    graph: AdjacencyListGraph,
    records: Vec<CitationRecord>,
    num_authors: usize,
}

impl CitationNetwork {
    /// Builds a network from raw `(citing, cited, epoch)` records.
    ///
    /// Self-citations are dropped (they carry no influence information and
    /// the activeness definition excludes self-loops anyway).
    pub fn from_records(records: impl IntoIterator<Item = CitationRecord>) -> Self {
        let records: Vec<CitationRecord> = records
            .into_iter()
            .filter(|r| r.citing != r.cited)
            .collect();
        // Influence edges: cited → citing.
        let edges: Vec<(u32, u32, Timestamp)> = records
            .iter()
            .map(|r| (r.cited.0, r.citing.0, r.epoch))
            .collect();
        let graph = AdjacencyListGraph::from_labeled_edges(&edges)
            .expect("labeled-edge construction cannot fail on filtered records");
        let num_authors = graph.num_nodes();
        CitationNetwork {
            graph,
            records,
            num_authors,
        }
    }

    /// Builds a network from the synthetic corpus generator of `egraph-gen`.
    pub fn from_corpus(corpus: &CitationCorpus) -> Self {
        Self::from_records(
            corpus
                .events
                .iter()
                .map(|e: &CitationEvent| CitationRecord {
                    citing: NodeId(e.citing),
                    cited: NodeId(e.cited),
                    epoch: e.epoch,
                }),
        )
    }

    /// The underlying evolving graph (influence orientation: cited → citing).
    pub fn graph(&self) -> &AdjacencyListGraph {
        &self.graph
    }

    /// The citation records the network was built from (self-citations
    /// removed).
    pub fn records(&self) -> &[CitationRecord] {
        &self.records
    }

    /// Number of authors in the node universe.
    pub fn num_authors(&self) -> usize {
        self.num_authors
    }

    /// Number of citation records.
    pub fn num_citations(&self) -> usize {
        self.records.len()
    }

    /// Number of distinct publication epochs present in the data.
    pub fn num_epochs(&self) -> usize {
        self.graph.num_timestamps()
    }

    /// The snapshot index of an epoch label, if any citation happened then.
    pub fn epoch_index(&self, epoch: Epoch) -> Option<TimeIndex> {
        self.graph.time_index_of(epoch)
    }

    /// The epoch label of a snapshot index.
    pub fn epoch_label(&self, t: TimeIndex) -> Epoch {
        self.graph.timestamp(t)
    }

    /// Whether `author` participates in any citation (as citer or cited) at
    /// `epoch` — i.e. whether `(author, epoch)` is an active temporal node.
    pub fn is_active(&self, author: AuthorId, epoch: Epoch) -> bool {
        match self.epoch_index(epoch) {
            Some(t) => self.graph.is_active(author, t),
            None => false,
        }
    }

    /// The epochs at which `author` is active.
    pub fn active_epochs(&self, author: AuthorId) -> Vec<Epoch> {
        self.graph
            .active_times(author)
            .into_iter()
            .map(|t| self.epoch_label(t))
            .collect()
    }

    /// The temporal node for `(author, epoch)` if that epoch exists in the
    /// network.
    pub fn temporal_node(&self, author: AuthorId, epoch: Epoch) -> Option<TemporalNode> {
        self.epoch_index(epoch)
            .map(|t| TemporalNode::new(author, t))
    }

    /// How many times each author is cited, over all epochs.
    pub fn citation_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_authors];
        for r in &self.records {
            counts[r.cited.index()] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small hand-built corpus:
    ///   epoch 0: author 1 cites author 0
    ///   epoch 1: author 2 cites author 1
    ///   epoch 2: author 3 cites author 2, author 3 cites author 0
    pub(crate) fn toy_network() -> CitationNetwork {
        CitationNetwork::from_records([
            CitationRecord {
                citing: NodeId(1),
                cited: NodeId(0),
                epoch: 0,
            },
            CitationRecord {
                citing: NodeId(2),
                cited: NodeId(1),
                epoch: 1,
            },
            CitationRecord {
                citing: NodeId(3),
                cited: NodeId(2),
                epoch: 2,
            },
            CitationRecord {
                citing: NodeId(3),
                cited: NodeId(0),
                epoch: 2,
            },
        ])
    }

    #[test]
    fn construction_counts_and_epochs() {
        let net = toy_network();
        assert_eq!(net.num_authors(), 4);
        assert_eq!(net.num_citations(), 4);
        assert_eq!(net.num_epochs(), 3);
        assert_eq!(net.epoch_index(1), Some(TimeIndex(1)));
        assert_eq!(net.epoch_label(TimeIndex(2)), 2);
        assert_eq!(net.citation_counts(), vec![2, 1, 1, 0]);
    }

    #[test]
    fn influence_edges_are_reversed_citations() {
        let net = toy_network();
        // Author 1 cites author 0 at epoch 0 ⇒ influence edge 0 → 1.
        let t0 = net.epoch_index(0).unwrap();
        assert!(net.graph().has_static_edge(NodeId(0), NodeId(1), t0));
        assert!(!net.graph().has_static_edge(NodeId(1), NodeId(0), t0));
    }

    #[test]
    fn self_citations_are_dropped() {
        let net = CitationNetwork::from_records([
            CitationRecord {
                citing: NodeId(0),
                cited: NodeId(0),
                epoch: 0,
            },
            CitationRecord {
                citing: NodeId(1),
                cited: NodeId(0),
                epoch: 0,
            },
        ]);
        assert_eq!(net.num_citations(), 1);
    }

    #[test]
    fn activeness_tracks_participation() {
        let net = toy_network();
        assert!(net.is_active(NodeId(0), 0));
        assert!(net.is_active(NodeId(0), 2));
        assert!(!net.is_active(NodeId(0), 1));
        assert!(!net.is_active(NodeId(3), 0));
        assert_eq!(net.active_epochs(NodeId(2)), vec![1, 2]);
    }

    #[test]
    fn from_corpus_round_trips_the_generator() {
        let corpus = egraph_gen::citation::synthetic_citation_corpus(
            &egraph_gen::citation::CitationConfig {
                num_authors: 50,
                num_epochs: 5,
                papers_per_epoch: 10,
                citations_per_paper: 2,
                preferential_bias: 1.0,
                seed: 3,
            },
        );
        let net = CitationNetwork::from_corpus(&corpus);
        assert_eq!(net.num_citations(), corpus.num_events());
        assert!(net.num_epochs() <= 5);
    }
}
