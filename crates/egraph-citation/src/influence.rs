//! Forward and backward influence sets (Section V).
//!
//! Given an author `a` publishing at epoch `t`:
//!
//! * `T(a, t)` — the authors influenced by `a`'s work at `t` — is the set of
//!   distinct authors reached by the forward evolving-graph BFS from
//!   `(a, t)` over influence edges;
//! * `T⁻¹(a, t)` — the authors who influenced `a` at `t` — is the set reached
//!   by the backward BFS.
//!
//! Both come in a plain variant (just the author set) and a detailed variant
//! exposing the underlying [`DistanceMap`] for callers that need distances,
//! shortest influence chains or reach times.

use egraph_core::distance::DistanceMap;
use egraph_core::error::{GraphError, Result};
use egraph_core::ids::TemporalNode;
use egraph_query::{Direction, Search};

use crate::model::{AuthorId, CitationNetwork, Epoch};

/// The influence set `T(a, t)`: distinct authors reached forward in time from
/// `(a, t)`, excluding `a` itself.
///
/// # Errors
/// Returns [`GraphError::UnknownTimestamp`] if no citation happened at
/// `epoch`, and [`GraphError::InactiveRoot`] if the author did not
/// participate in any citation at that epoch.
pub fn influence_set(
    network: &CitationNetwork,
    author: AuthorId,
    epoch: Epoch,
) -> Result<Vec<AuthorId>> {
    let map = influence_map(network, author, epoch)?;
    Ok(strip_root(map.reached_node_ids(), author))
}

/// The influencer set `T⁻¹(a, t)`: distinct authors from which `(a, t)` is
/// reachable, excluding `a` itself.
pub fn influencer_set(
    network: &CitationNetwork,
    author: AuthorId,
    epoch: Epoch,
) -> Result<Vec<AuthorId>> {
    let map = influencer_map(network, author, epoch)?;
    Ok(strip_root(map.reached_node_ids(), author))
}

/// The full forward distance map behind `T(a, t)`.
pub fn influence_map(
    network: &CitationNetwork,
    author: AuthorId,
    epoch: Epoch,
) -> Result<DistanceMap> {
    let root = root_of(network, author, epoch)?;
    // A fresh run is the sole owner of its Arc, so unwrapping never clones.
    Search::from(root)
        .run(network.graph())
        .map(|r| std::sync::Arc::unwrap_or_clone(r).into_distance_map())
}

/// The full backward distance map behind `T⁻¹(a, t)`.
pub fn influencer_map(
    network: &CitationNetwork,
    author: AuthorId,
    epoch: Epoch,
) -> Result<DistanceMap> {
    let root = root_of(network, author, epoch)?;
    Search::from(root)
        .direction(Direction::Backward)
        .run(network.graph())
        .map(|r| std::sync::Arc::unwrap_or_clone(r).into_distance_map())
}

/// Forward map with BFS-tree parents (used to exhibit explicit influence
/// chains).
pub fn influence_map_with_parents(
    network: &CitationNetwork,
    author: AuthorId,
    epoch: Epoch,
) -> Result<DistanceMap> {
    let root = root_of(network, author, epoch)?;
    Search::from(root)
        .with_parents()
        .run(network.graph())
        .map(|r| std::sync::Arc::unwrap_or_clone(r).into_distance_map())
}

/// Backward map with BFS-tree parents (used by the community extraction to
/// find the leaves of the influencer tree).
pub fn influencer_map_with_parents(
    network: &CitationNetwork,
    author: AuthorId,
    epoch: Epoch,
) -> Result<DistanceMap> {
    let root = root_of(network, author, epoch)?;
    Search::from(root)
        .direction(Direction::Backward)
        .with_parents()
        .run(network.graph())
        .map(|r| std::sync::Arc::unwrap_or_clone(r).into_distance_map())
}

/// An explicit shortest influence chain from `(author, epoch)` to `target`,
/// as a sequence of `(author, epoch)` pairs, if `target` was influenced.
pub fn influence_chain(
    network: &CitationNetwork,
    author: AuthorId,
    epoch: Epoch,
    target: AuthorId,
) -> Result<Option<Vec<(AuthorId, Epoch)>>> {
    let map = influence_map_with_parents(network, author, epoch)?;
    // Find the earliest-reached occurrence of the target author.
    let Some((_, t)) = map
        .earliest_reach_times()
        .into_iter()
        .find(|&(v, _)| v == target)
    else {
        return Ok(None);
    };
    let path = map.path_to(TemporalNode::new(target, t));
    Ok(path.map(|p| {
        p.into_iter()
            .map(|tn| (tn.node, network.epoch_label(tn.time)))
            .collect()
    }))
}

/// The size of `T(a, t)` for every epoch at which `a` is active — a profile
/// of how the author's influence changes depending on when the work is
/// published.
pub fn influence_profile(network: &CitationNetwork, author: AuthorId) -> Vec<(Epoch, usize)> {
    network
        .active_epochs(author)
        .into_iter()
        .map(|epoch| {
            let size = influence_set(network, author, epoch)
                .map(|s| s.len())
                .unwrap_or(0);
            (epoch, size)
        })
        .collect()
}

fn root_of(network: &CitationNetwork, author: AuthorId, epoch: Epoch) -> Result<TemporalNode> {
    let root = network
        .temporal_node(author, epoch)
        .ok_or(GraphError::UnknownTimestamp { timestamp: epoch })?;
    Ok(root)
}

fn strip_root(mut authors: Vec<AuthorId>, root: AuthorId) -> Vec<AuthorId> {
    authors.retain(|&a| a != root);
    authors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CitationNetwork, CitationRecord};
    use egraph_core::ids::NodeId;

    /// epoch 0: 1 cites 0; epoch 1: 2 cites 1; epoch 2: 3 cites 2, 3 cites 0.
    fn toy_network() -> CitationNetwork {
        CitationNetwork::from_records([
            CitationRecord {
                citing: NodeId(1),
                cited: NodeId(0),
                epoch: 0,
            },
            CitationRecord {
                citing: NodeId(2),
                cited: NodeId(1),
                epoch: 1,
            },
            CitationRecord {
                citing: NodeId(3),
                cited: NodeId(2),
                epoch: 2,
            },
            CitationRecord {
                citing: NodeId(3),
                cited: NodeId(0),
                epoch: 2,
            },
        ])
    }

    #[test]
    fn author_0_influences_the_whole_chain_from_epoch_0() {
        let net = toy_network();
        let mut influenced = influence_set(&net, NodeId(0), 0).unwrap();
        influenced.sort();
        // 1 cites 0 directly; 2 cites 1 later; 3 cites 2 later still.
        assert_eq!(influenced, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn influence_depends_on_the_publication_epoch() {
        let net = toy_network();
        // At epoch 2, author 0's only remaining influence is author 3's
        // direct citation — the earlier chain can no longer be entered.
        let influenced = influence_set(&net, NodeId(0), 2).unwrap();
        assert_eq!(influenced, vec![NodeId(3)]);
        let profile = influence_profile(&net, NodeId(0));
        assert_eq!(profile, vec![(0, 3), (2, 1)]);
    }

    #[test]
    fn influencers_are_the_backward_closure() {
        let net = toy_network();
        let mut influencers = influencer_set(&net, NodeId(3), 2).unwrap();
        influencers.sort();
        assert_eq!(influencers, vec![NodeId(0), NodeId(1), NodeId(2)]);
        // Author 1 at epoch 0 is influenced only by the author it cites.
        assert_eq!(influencer_set(&net, NodeId(1), 0).unwrap(), vec![NodeId(0)]);
    }

    #[test]
    fn inactive_queries_are_rejected() {
        let net = toy_network();
        assert!(matches!(
            influence_set(&net, NodeId(3), 0).unwrap_err(),
            GraphError::InactiveRoot { .. }
        ));
        assert!(matches!(
            influence_set(&net, NodeId(0), 99).unwrap_err(),
            GraphError::UnknownTimestamp { .. }
        ));
    }

    #[test]
    fn influence_chain_reconstructs_the_citation_cascade() {
        let net = toy_network();
        let chain = influence_chain(&net, NodeId(0), 0, NodeId(3))
            .unwrap()
            .unwrap();
        // 0 at epoch 0 → 1 at epoch 0 (cited) → … → 3 at epoch 2.
        assert_eq!(chain.first().unwrap().0, NodeId(0));
        assert_eq!(chain.last().unwrap().0, NodeId(3));
        // Epochs never decrease along the chain.
        for w in chain.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // A target that was never influenced yields None.
        assert_eq!(
            influence_chain(&net, NodeId(2), 2, NodeId(1)).unwrap(),
            None
        );
    }
}
