//! Influence rankings over a whole citation network.
//!
//! Section V motivates the evolving-graph BFS as a mining primitive: "given
//! an author a at time t1, … compute T(a, t1), the set of all the authors
//! that have been influenced by a's work at time t1". Ranking authors by the
//! size of that set is the simplest whole-network analysis built from the
//! primitive, and because every root is an independent BFS it parallelises
//! trivially over the rayon pool (the `citation_mining` benchmark measures
//! exactly this).

use egraph_core::graph::EvolvingGraph;
use egraph_core::ids::TemporalNode;
use egraph_query::Search;
use rayon::prelude::*;

use crate::model::{AuthorId, CitationNetwork, Epoch};

/// One row of an influence ranking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InfluenceScore {
    /// The author being scored.
    pub author: AuthorId,
    /// The epoch of the scored publication (the author's earliest activity
    /// unless stated otherwise).
    pub epoch: Epoch,
    /// `|T(author, epoch)|` — number of distinct authors influenced.
    pub influenced: usize,
}

/// Scores every author from its *earliest* active epoch (the point of maximal
/// potential influence) and returns the scores sorted by decreasing
/// influence. Runs one BFS per author, distributed over the rayon pool.
pub fn rank_by_influence(network: &CitationNetwork) -> Vec<InfluenceScore> {
    let graph = network.graph();
    let roots: Vec<TemporalNode> = (0..network.num_authors())
        .filter_map(|a| {
            let author = AuthorId::from_index(a);
            graph
                .active_times(author)
                .first()
                .map(|&t| TemporalNode::new(author, t))
        })
        .collect();

    let mut scores: Vec<InfluenceScore> = roots
        .par_iter()
        .map(|&root| {
            let influenced = Search::from(root)
                .run(graph)
                .map(|r| r.reached_node_ids().len().saturating_sub(1))
                .unwrap_or(0);
            InfluenceScore {
                author: root.node,
                epoch: network.epoch_label(root.time),
                influenced,
            }
        })
        .collect();

    scores.sort_by(|a, b| {
        b.influenced
            .cmp(&a.influenced)
            .then(a.author.cmp(&b.author))
    });
    scores
}

/// The `k` most influential authors (ties broken by author id).
pub fn top_influencers(network: &CitationNetwork, k: usize) -> Vec<InfluenceScore> {
    let mut scores = rank_by_influence(network);
    scores.truncate(k);
    scores
}

/// Scores a chosen set of `(author, epoch)` queries in parallel, skipping
/// queries whose temporal node is inactive or whose epoch is unknown.
pub fn batch_influence_sizes(
    network: &CitationNetwork,
    queries: &[(AuthorId, Epoch)],
) -> Vec<Option<usize>> {
    let graph = network.graph();
    queries
        .par_iter()
        .map(|&(author, epoch)| {
            let root = network.temporal_node(author, epoch)?;
            Search::from(root)
                .run(graph)
                .ok()
                .map(|r| r.reached_node_ids().len().saturating_sub(1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CitationRecord;
    use egraph_core::ids::NodeId;

    /// epoch 0: 1 cites 0; epoch 1: 2 cites 1; epoch 2: 3 cites 2, 3 cites 0.
    fn toy_network() -> CitationNetwork {
        CitationNetwork::from_records([
            CitationRecord {
                citing: NodeId(1),
                cited: NodeId(0),
                epoch: 0,
            },
            CitationRecord {
                citing: NodeId(2),
                cited: NodeId(1),
                epoch: 1,
            },
            CitationRecord {
                citing: NodeId(3),
                cited: NodeId(2),
                epoch: 2,
            },
            CitationRecord {
                citing: NodeId(3),
                cited: NodeId(0),
                epoch: 2,
            },
        ])
    }

    #[test]
    fn ranking_orders_authors_by_reach() {
        let net = toy_network();
        let ranking = rank_by_influence(&net);
        assert_eq!(ranking.len(), 4);
        // Author 0 (from epoch 0) influences 1, 2 and 3 — the maximum.
        assert_eq!(ranking[0].author, NodeId(0));
        assert_eq!(ranking[0].influenced, 3);
        // Scores never increase down the ranking.
        for w in ranking.windows(2) {
            assert!(w[0].influenced >= w[1].influenced);
        }
        // Author 3 never gets cited, so it influences nobody.
        let last = ranking.iter().find(|s| s.author == NodeId(3)).unwrap();
        assert_eq!(last.influenced, 0);
    }

    #[test]
    fn top_influencers_truncates() {
        let net = toy_network();
        let top = top_influencers(&net, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].author, NodeId(0));
    }

    #[test]
    fn batch_queries_handle_invalid_roots() {
        let net = toy_network();
        let sizes = batch_influence_sizes(&net, &[(NodeId(0), 0), (NodeId(3), 0), (NodeId(0), 42)]);
        assert_eq!(sizes[0], Some(3));
        // Author 3 is inactive at epoch 0.
        assert_eq!(sizes[1], None);
        // Epoch 42 does not exist.
        assert_eq!(sizes[2], None);
    }

    #[test]
    fn ranking_on_a_synthetic_corpus_runs_end_to_end() {
        let corpus = egraph_gen::citation::synthetic_citation_corpus(
            &egraph_gen::citation::CitationConfig {
                num_authors: 80,
                num_epochs: 8,
                papers_per_epoch: 15,
                citations_per_paper: 3,
                preferential_bias: 1.0,
                seed: 5,
            },
        );
        let net = CitationNetwork::from_corpus(&corpus);
        let ranking = rank_by_influence(&net);
        assert!(!ranking.is_empty());
        assert!(ranking[0].influenced >= ranking.last().unwrap().influenced);
    }
}
